"""Tests for deterministic RNG derivation."""

import numpy as np

from repro.utils.rng import seed_sequence, spawn_rng


class TestSeedSequence:
    def test_same_labels_same_stream(self):
        a = spawn_rng(7, "x", 1).random(5)
        b = spawn_rng(7, "x", 1).random(5)
        assert np.array_equal(a, b)

    def test_different_labels_different_stream(self):
        a = spawn_rng(7, "x", 1).random(5)
        b = spawn_rng(7, "x", 2).random(5)
        assert not np.array_equal(a, b)

    def test_different_root_seed_different_stream(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(8, "x").random(5)
        assert not np.array_equal(a, b)

    def test_label_order_matters(self):
        a = spawn_rng(7, "a", "b").random(5)
        b = spawn_rng(7, "b", "a").random(5)
        assert not np.array_equal(a, b)

    def test_mixed_label_types(self):
        rng = spawn_rng(0, "party", 17, ("window", 3), 2.5)
        assert rng.random() >= 0.0

    def test_seed_sequence_stable_entropy(self):
        s1 = seed_sequence(1, "k")
        s2 = seed_sequence(1, "k")
        assert s1.entropy == s2.entropy

    def test_large_root_seed_masked(self):
        rng = spawn_rng(2**40 + 3, "x")
        assert rng.random() >= 0.0

    def test_no_collision_over_party_grid(self):
        streams = set()
        for party in range(20):
            for window in range(5):
                streams.add(spawn_rng(0, "data", party, window).integers(0, 2**63))
        assert len(streams) == 100
