"""Tests for SGD and Adam."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam


def quadratic_grad(params):
    """Gradient of f(w) = 0.5 ||w||^2."""
    return [p.copy() for p in params]


class TestSGD:
    def test_plain_step(self):
        params = [np.array([1.0, -2.0])]
        SGD(lr=0.1).step(params, [np.array([1.0, 1.0])])
        assert np.allclose(params[0], [0.9, -2.1])

    def test_converges_on_quadratic(self):
        params = [np.array([5.0, -3.0])]
        opt = SGD(lr=0.2)
        for _ in range(100):
            opt.step(params, quadratic_grad(params))
        assert np.linalg.norm(params[0]) < 1e-6

    def test_momentum_converges_faster(self):
        def run(momentum):
            params = [np.array([5.0])]
            opt = SGD(lr=0.05, momentum=momentum)
            for i in range(30):
                opt.step(params, quadratic_grad(params))
            return abs(params[0][0])
        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        params = [np.array([1.0])]
        SGD(lr=0.1, weight_decay=0.5).step(params, [np.array([0.0])])
        assert params[0][0] == pytest.approx(0.95)

    def test_reset_clears_velocity(self):
        opt = SGD(lr=0.1, momentum=0.9)
        params = [np.array([1.0])]
        opt.step(params, [np.array([1.0])])
        opt.reset()
        assert opt._velocity is None

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, weight_decay=-0.1)

    def test_rejects_mismatched_lists(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1).step([np.zeros(2)], [])


class TestAdam:
    def test_converges_on_quadratic(self):
        params = [np.array([5.0, -3.0])]
        opt = Adam(lr=0.3)
        for _ in range(200):
            opt.step(params, quadratic_grad(params))
        assert np.linalg.norm(params[0]) < 1e-3

    def test_first_step_magnitude_is_lr(self):
        params = [np.array([1.0])]
        opt = Adam(lr=0.01)
        opt.step(params, [np.array([100.0])])
        # Bias-corrected Adam first step is ~lr regardless of gradient scale.
        assert params[0][0] == pytest.approx(1.0 - 0.01, abs=1e-4)

    def test_reset(self):
        opt = Adam()
        params = [np.array([1.0])]
        opt.step(params, [np.array([1.0])])
        opt.reset()
        assert opt._m is None and opt._t == 0

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam(lr=-1.0)
