"""Tests for the model zoo."""

import numpy as np
import pytest

from repro.nn.gradcheck import max_grad_error
from repro.nn.models import build_model, embedding_dim, model_names


class TestFactories:
    @pytest.mark.parametrize("name,shape", [
        ("mlp", (12,)),
        ("mlp", (1, 8, 8)),
        ("lenet_mini", (1, 8, 8)),
        ("lenet_mini", (3, 12, 12)),
        ("convnet_small", (3, 12, 12)),
    ])
    def test_forward_shapes(self, name, shape, rng):
        model = build_model(name, shape, 5, rng)
        x = rng.random((3, *shape))
        assert model.forward(x).shape == (3, 5)

    @pytest.mark.parametrize("name,shape", [
        ("mlp", (10,)),
        ("lenet_mini", (1, 8, 8)),
        ("convnet_small", (2, 8, 8)),
    ])
    def test_gradcheck(self, name, shape, rng):
        model = build_model(name, shape, 3, rng)
        x = rng.random((3, *shape))
        y = rng.integers(0, 3, 3)
        assert max_grad_error(model, x, y) < 2e-3

    def test_unknown_name_rejected(self, rng):
        with pytest.raises(KeyError):
            build_model("resnet152", (3, 8, 8), 10, rng)

    def test_too_few_classes_rejected(self, rng):
        with pytest.raises(ValueError):
            build_model("mlp", (4,), 1, rng)

    def test_lenet_rejects_non_divisible(self, rng):
        with pytest.raises(ValueError):
            build_model("lenet_mini", (1, 6, 6), 3, rng)

    def test_lenet_rejects_flat_input(self, rng):
        with pytest.raises(ValueError):
            build_model("lenet_mini", (16,), 3, rng)

    def test_model_names_registry(self):
        assert set(model_names()) == {"mlp", "lenet_mini", "convnet_small",
                                      "resnet_mini"}


class TestEmbeddingDim:
    @pytest.mark.parametrize("name,shape,kwargs", [
        ("mlp", (12,), {}),
        ("mlp", (12,), {"hidden": (20, 10)}),
        ("lenet_mini", (1, 8, 8), {}),
        ("lenet_mini", (1, 8, 8), {"embed_dim": 32}),
        ("convnet_small", (3, 8, 8), {}),
    ])
    def test_matches_features(self, name, shape, kwargs, rng):
        model = build_model(name, shape, 4, rng, **kwargs)
        feats = model.features(rng.random((2, *shape)))
        assert feats.shape[1] == embedding_dim(name, shape, **kwargs)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            embedding_dim("vgg", (3, 8, 8))


class TestDeterminism:
    def test_same_rng_same_init(self):
        from repro.utils.rng import spawn_rng
        a = build_model("mlp", (6,), 3, spawn_rng(5, "m"))
        b = build_model("mlp", (6,), 3, spawn_rng(5, "m"))
        assert np.allclose(a.get_flat_params(), b.get_flat_params())

    def test_different_rng_different_init(self):
        from repro.utils.rng import spawn_rng
        a = build_model("mlp", (6,), 3, spawn_rng(5, "m"))
        b = build_model("mlp", (6,), 3, spawn_rng(6, "m"))
        assert not np.allclose(a.get_flat_params(), b.get_flat_params())
