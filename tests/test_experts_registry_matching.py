"""Tests for the expert registry and latent-memory matching."""

import numpy as np
import pytest

from repro.experts.matching import match_cluster_to_expert, nearest_expert
from repro.experts.registry import ExpertRegistry
from repro.utils.rng import spawn_rng


def simple_params(rng, scale=1.0):
    return [scale * rng.normal(size=(4, 3)), scale * rng.normal(size=(3,))]


@pytest.fixture()
def registry():
    return ExpertRegistry(memory_capacity=16, memory_eta=0.5)


class TestRegistry:
    def test_create_assigns_sequential_ids(self, registry, rng):
        e0 = registry.create(simple_params(rng), window=0)
        e1 = registry.create(simple_params(rng), window=0)
        assert (e0.expert_id, e1.expert_id) == (0, 1)
        assert len(registry) == 2
        assert registry.ids() == [0, 1]

    def test_create_copies_params(self, registry, rng):
        params = simple_params(rng)
        expert = registry.create(params, window=0)
        params[0][...] = 99.0
        assert not np.allclose(expert.params[0], 99.0)

    def test_create_with_memory_seed(self, registry, rng):
        expert = registry.create(simple_params(rng), window=0,
                                 embeddings=rng.normal(size=(20, 5)), rng=rng)
        assert not expert.memory.is_empty
        assert expert.memory.signature.shape == (16, 5)

    def test_memory_seed_requires_rng(self, registry, rng):
        with pytest.raises(ValueError):
            registry.create(simple_params(rng), window=0,
                            embeddings=rng.normal(size=(5, 3)))

    def test_get_unknown_rejected(self, registry):
        with pytest.raises(KeyError):
            registry.get(7)

    def test_remove(self, registry, rng):
        expert = registry.create(simple_params(rng), window=0)
        registry.remove(expert.expert_id)
        assert len(registry) == 0
        assert expert.expert_id not in registry

    def test_clone_params_is_copy(self, registry, rng):
        expert = registry.create(simple_params(rng), window=0)
        clone = expert.clone_params()
        clone[0][...] = 5.0
        assert not np.allclose(expert.params[0], 5.0)

    def test_memory_footprint_accounting(self, registry, rng):
        registry.create(simple_params(rng), window=0,
                        embeddings=rng.normal(size=(20, 8)), rng=rng)
        footprint = registry.memory_footprint(embedding_dim=8, num_parties=10)
        assert footprint["num_experts"] == 1
        assert footprint["total_bytes"] > 0
        assert footprint["mapping_bytes"] == 80

    def test_allocate_id_reserves(self, registry, rng):
        registry.create(simple_params(rng), window=0)
        reserved = registry.allocate_id()
        e2 = registry.create(simple_params(rng), window=0)
        assert e2.expert_id == reserved + 1


class TestMatching:
    def make_registry_with_regimes(self, rng):
        registry = ExpertRegistry(memory_capacity=24)
        clean = registry.create(simple_params(rng), window=0,
                                embeddings=rng.normal(size=(40, 4)), rng=rng)
        foggy = registry.create(simple_params(rng), window=1,
                                embeddings=rng.normal(size=(40, 4)) + 5.0, rng=rng)
        return registry, clean, foggy

    def test_matches_same_regime(self, rng):
        registry, _clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(30, 4)) + 5.0
        result = match_cluster_to_expert(cluster, registry, epsilon=0.5, gamma=0.1)
        assert result.matched
        assert result.expert_id == foggy.expert_id

    def test_rejects_new_regime(self, rng):
        registry, _clean, _foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(30, 4)) - 5.0  # a third, unseen regime
        result = match_cluster_to_expert(cluster, registry, epsilon=0.3, gamma=0.1)
        assert not result.matched
        assert result.expert_id is None
        assert result.score > 0.3

    def test_empty_registry_no_match(self, rng):
        registry = ExpertRegistry()
        result = match_cluster_to_expert(rng.normal(size=(10, 3)), registry,
                                         epsilon=1.0)
        assert not result.matched
        assert result.score == float("inf")

    def test_experts_without_memory_skipped(self, rng):
        registry = ExpertRegistry()
        registry.create(simple_params(rng), window=0)  # no memory seed
        result = match_cluster_to_expert(rng.normal(size=(10, 3)), registry,
                                         epsilon=10.0)
        assert not result.matched

    def test_exclude_set(self, rng):
        registry, _clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(30, 4)) + 5.0
        result = match_cluster_to_expert(cluster, registry, epsilon=0.5,
                                         gamma=0.1,
                                         exclude={foggy.expert_id})
        assert result.expert_id != foggy.expert_id

    def test_scores_for_all_experts(self, rng):
        registry, clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(30, 4))
        result = match_cluster_to_expert(cluster, registry, epsilon=0.5, gamma=0.1)
        assert set(result.scores) == {clean.expert_id, foggy.expert_id}

    def test_subsampling_requires_rng(self, rng):
        registry, _c, _f = self.make_registry_with_regimes(rng)
        with pytest.raises(ValueError):
            match_cluster_to_expert(rng.normal(size=(100, 4)), registry,
                                    epsilon=0.5, max_rows=16)

    def test_subsampling_matches_at_capacity_scale(self, rng):
        registry, _clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(300, 4)) + 5.0
        result = match_cluster_to_expert(cluster, registry, epsilon=0.6,
                                         gamma=0.1, max_rows=24,
                                         rng=spawn_rng(0, "sub"))
        assert result.matched
        assert result.expert_id == foggy.expert_id

    def test_negative_epsilon_rejected(self, rng):
        registry = ExpertRegistry()
        with pytest.raises(ValueError):
            match_cluster_to_expert(rng.normal(size=(5, 3)), registry,
                                    epsilon=-0.1)

    def test_nearest_expert(self, rng):
        registry, _clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(20, 4)) + 5.0
        expert = nearest_expert(cluster, registry, gamma=0.1)
        assert expert is not None and expert.expert_id == foggy.expert_id

    def test_nearest_expert_empty_registry(self, rng):
        assert nearest_expert(rng.normal(size=(5, 3)), ExpertRegistry()) is None
