"""Tests for the expert registry and latent-memory matching."""

import numpy as np
import pytest

from repro.detection.mmd import class_conditional_mmd, mmd
from repro.experts.matching import match_cluster_to_expert, nearest_expert
from repro.experts.registry import ExpertRegistry
from repro.utils.rng import spawn_rng


def simple_params(rng, scale=1.0):
    return [scale * rng.normal(size=(4, 3)), scale * rng.normal(size=(3,))]


@pytest.fixture()
def registry():
    return ExpertRegistry(memory_capacity=16, memory_eta=0.5)


class TestRegistry:
    def test_create_assigns_sequential_ids(self, registry, rng):
        e0 = registry.create(simple_params(rng), window=0)
        e1 = registry.create(simple_params(rng), window=0)
        assert (e0.expert_id, e1.expert_id) == (0, 1)
        assert len(registry) == 2
        assert registry.ids() == [0, 1]

    def test_create_copies_params(self, registry, rng):
        params = simple_params(rng)
        expert = registry.create(params, window=0)
        params[0][...] = 99.0
        assert not np.allclose(expert.params[0], 99.0)

    def test_create_with_memory_seed(self, registry, rng):
        expert = registry.create(simple_params(rng), window=0,
                                 embeddings=rng.normal(size=(20, 5)), rng=rng)
        assert not expert.memory.is_empty
        assert expert.memory.signature.shape == (16, 5)

    def test_memory_seed_requires_rng(self, registry, rng):
        with pytest.raises(ValueError):
            registry.create(simple_params(rng), window=0,
                            embeddings=rng.normal(size=(5, 3)))

    def test_get_unknown_rejected(self, registry):
        with pytest.raises(KeyError):
            registry.get(7)

    def test_remove(self, registry, rng):
        expert = registry.create(simple_params(rng), window=0)
        registry.remove(expert.expert_id)
        assert len(registry) == 0
        assert expert.expert_id not in registry

    def test_clone_params_is_copy(self, registry, rng):
        expert = registry.create(simple_params(rng), window=0)
        clone = expert.clone_params()
        clone[0][...] = 5.0
        assert not np.allclose(expert.params[0], 5.0)

    def test_memory_footprint_accounting(self, registry, rng):
        registry.create(simple_params(rng), window=0,
                        embeddings=rng.normal(size=(20, 8)), rng=rng)
        footprint = registry.memory_footprint(embedding_dim=8, num_parties=10)
        assert footprint["num_experts"] == 1
        assert footprint["total_bytes"] > 0
        assert footprint["mapping_bytes"] == 80

    def test_allocate_id_reserves(self, registry, rng):
        registry.create(simple_params(rng), window=0)
        reserved = registry.allocate_id()
        e2 = registry.create(simple_params(rng), window=0)
        assert e2.expert_id == reserved + 1


class TestBankStorage:
    def test_pool_lives_in_one_bank(self, registry, rng):
        e0 = registry.create(simple_params(rng), window=0)
        e1 = registry.create(simple_params(rng), window=0)
        matrix = registry.param_matrix()
        assert matrix.shape == (2, 15)  # 4*3 + 3
        assert np.allclose(matrix[0], e0.flat)
        assert np.allclose(matrix[1], e1.flat)

    def test_mutating_row_view_is_visible_through_params(self, registry, rng):
        expert = registry.create(simple_params(rng), window=0)
        expert.flat[0] = 321.0  # private row: the flat view is writable
        assert expert.params[0][0, 0] == 321.0
        expert.params[0][0, 1] = 654.0
        assert registry.param_matrix()[0, 1] == 654.0

    def test_create_rejects_mismatched_shapes(self, registry, rng):
        registry.create(simple_params(rng), window=0)
        with pytest.raises(ValueError):
            registry.create([rng.normal(size=(2, 2))], window=0)

    def test_removed_expert_keeps_its_parameters(self, registry, rng):
        expert = registry.create(simple_params(rng), window=0)
        snapshot = expert.clone_params()
        registry.remove(expert.expert_id)
        other = registry.create(simple_params(rng), window=1)
        assert other is not expert
        assert all(np.allclose(a, b) for a, b in zip(expert.params, snapshot))


class TestCopyOnWriteClone:
    def test_clone_shares_row_until_write(self, registry, rng):
        source = registry.create(simple_params(rng), window=0)
        clone = registry.clone(source.expert_id, window=1)
        assert clone.expert_id != source.expert_id
        assert np.shares_memory(clone.flat, source.flat)
        assert source.is_cow_shared and clone.is_cow_shared

    def test_shared_views_are_read_only(self, registry, rng):
        source = registry.create(simple_params(rng), window=0)
        clone = registry.clone(source.expert_id, window=1)
        with pytest.raises(ValueError):
            source.params[0][0, 0] = 1.0
        with pytest.raises(ValueError):
            clone.flat[0] = 1.0

    def test_write_splits_clone_from_source(self, registry, rng):
        source = registry.create(simple_params(rng), window=0)
        before = source.clone_params()
        clone = registry.clone(source.expert_id, window=1)
        clone.set_params([p * 2 for p in before])
        assert not np.shares_memory(clone.flat, source.flat)
        assert all(np.allclose(a, b) for a, b in zip(source.params, before))
        assert np.allclose(clone.params[0], 2 * before[0])
        # Both rows are private again: writable views.
        source.params[0][0, 0] = 9.0
        assert source.flat[0] == 9.0

    def test_write_through_source_preserves_clone(self, registry, rng):
        source = registry.create(simple_params(rng), window=0)
        before = source.clone_params()
        clone = registry.clone(source.expert_id, window=1)
        source.set_flat(np.zeros_like(np.asarray(source.flat)))
        assert np.allclose(source.flat, 0.0)
        assert all(np.allclose(a, b) for a, b in zip(clone.params, before))

    def test_clone_starts_with_fresh_memory(self, registry, rng):
        source = registry.create(simple_params(rng), window=0,
                                 embeddings=rng.normal(size=(20, 5)), rng=rng)
        clone = registry.clone(source.expert_id, window=1)
        assert clone.memory.is_empty
        assert not source.memory.is_empty
        assert clone.notes.get("cloned_from") == source.expert_id

    def test_clone_keeps_provenance_with_caller_notes(self, registry, rng):
        source = registry.create(simple_params(rng), window=0)
        clone = registry.clone(source.expert_id, window=1,
                               notes={"reason": "drift"})
        assert clone.notes["cloned_from"] == source.expert_id
        assert clone.notes["reason"] == "drift"

    def test_clone_counts_as_created(self, registry, rng):
        source = registry.create(simple_params(rng), window=0)
        registry.clone(source.expert_id, window=1)
        assert registry.created_total == 2
        assert len(registry) == 2


class TestMatching:
    def make_registry_with_regimes(self, rng):
        registry = ExpertRegistry(memory_capacity=24)
        clean = registry.create(simple_params(rng), window=0,
                                embeddings=rng.normal(size=(40, 4)), rng=rng)
        foggy = registry.create(simple_params(rng), window=1,
                                embeddings=rng.normal(size=(40, 4)) + 5.0, rng=rng)
        return registry, clean, foggy

    def test_matches_same_regime(self, rng):
        registry, _clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(30, 4)) + 5.0
        result = match_cluster_to_expert(cluster, registry, epsilon=0.5, gamma=0.1)
        assert result.matched
        assert result.expert_id == foggy.expert_id

    def test_rejects_new_regime(self, rng):
        registry, _clean, _foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(30, 4)) - 5.0  # a third, unseen regime
        result = match_cluster_to_expert(cluster, registry, epsilon=0.3, gamma=0.1)
        assert not result.matched
        assert result.expert_id is None
        assert result.score > 0.3

    def test_empty_registry_no_match(self, rng):
        registry = ExpertRegistry()
        result = match_cluster_to_expert(rng.normal(size=(10, 3)), registry,
                                         epsilon=1.0)
        assert not result.matched
        assert result.score == float("inf")

    def test_experts_without_memory_skipped(self, rng):
        registry = ExpertRegistry()
        registry.create(simple_params(rng), window=0)  # no memory seed
        result = match_cluster_to_expert(rng.normal(size=(10, 3)), registry,
                                         epsilon=10.0)
        assert not result.matched

    def test_exclude_set(self, rng):
        registry, _clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(30, 4)) + 5.0
        result = match_cluster_to_expert(cluster, registry, epsilon=0.5,
                                         gamma=0.1,
                                         exclude={foggy.expert_id})
        assert result.expert_id != foggy.expert_id

    def test_scores_for_all_experts(self, rng):
        registry, clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(30, 4))
        result = match_cluster_to_expert(cluster, registry, epsilon=0.5, gamma=0.1)
        assert set(result.scores) == {clean.expert_id, foggy.expert_id}

    def test_subsampling_requires_rng(self, rng):
        registry, _c, _f = self.make_registry_with_regimes(rng)
        with pytest.raises(ValueError):
            match_cluster_to_expert(rng.normal(size=(100, 4)), registry,
                                    epsilon=0.5, max_rows=16)

    def test_subsampling_matches_at_capacity_scale(self, rng):
        registry, _clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(300, 4)) + 5.0
        result = match_cluster_to_expert(cluster, registry, epsilon=0.6,
                                         gamma=0.1, max_rows=24,
                                         rng=spawn_rng(0, "sub"))
        assert result.matched
        assert result.expert_id == foggy.expert_id

    def test_negative_epsilon_rejected(self, rng):
        registry = ExpertRegistry()
        with pytest.raises(ValueError):
            match_cluster_to_expert(rng.normal(size=(5, 3)), registry,
                                    epsilon=-0.1)

    def test_nearest_expert(self, rng):
        registry, _clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(20, 4)) + 5.0
        expert = nearest_expert(cluster, registry, gamma=0.1)
        assert expert is not None and expert.expert_id == foggy.expert_id

    def test_nearest_expert_empty_registry(self, rng):
        assert nearest_expert(rng.normal(size=(5, 3)), ExpertRegistry()) is None

    def test_batched_scores_match_per_expert_mmd(self, rng):
        registry, clean, foggy = self.make_registry_with_regimes(rng)
        cluster = rng.normal(size=(30, 4)) + 2.0
        result = match_cluster_to_expert(cluster, registry, epsilon=10.0,
                                         gamma=0.1)
        for expert in (clean, foggy):
            expected = mmd(cluster, expert.memory.signature, 0.1)
            assert result.scores[expert.expert_id] == pytest.approx(
                expected, abs=1e-9)

    def test_batched_class_conditional_matches_per_expert(self, rng):
        registry = ExpertRegistry(memory_capacity=24)
        experts = []
        for offset in (0.0, 3.0, 6.0):
            experts.append(registry.create(
                simple_params(rng), window=0,
                embeddings=rng.normal(size=(40, 4)) + offset,
                labels=rng.integers(0, 3, 40), rng=rng))
        cluster = rng.normal(size=(36, 4)) + 3.0
        labels = rng.integers(0, 3, 36)
        result = match_cluster_to_expert(cluster, registry, epsilon=10.0,
                                         gamma=0.1, cluster_labels=labels)
        for expert in experts:
            expected = class_conditional_mmd(
                cluster, labels, expert.memory.signature,
                expert.memory.signature_labels, 0.1)
            assert result.scores[expert.expert_id] == pytest.approx(
                expected, abs=1e-9)
