"""End-to-end integration: the full ShiftEx pipeline on a shifted federation.

These tests exercise the complete life cycle (bootstrap -> detection ->
clustering -> expert creation/reuse -> consolidation -> evaluation) and check
the paper's qualitative claims at miniature scale:

* ShiftEx detects the injected covariate shift and spawns a specialist;
* the specialist serves shifted parties better than the pre-shift model;
* recurring regimes reuse experts instead of growing the pool;
* the single-global-model baseline keeps one model throughout.
"""

import numpy as np
import pytest

from repro.baselines import FedProxStrategy
from repro.core import ShiftExConfig, ShiftExStrategy
from repro.data.federated import FederatedShiftDataset
from repro.harness.runner import run_strategy
from tests.conftest import make_run_settings, make_tiny_spec


@pytest.fixture(scope="module")
def scenario():
    spec = make_tiny_spec(
        name="integration", num_parties=10, num_windows=3,
        window_regimes=(("invert_polarity", 4), ("invert_polarity", 4)),
        train=32, test=16, seed=91,
    )
    settings = make_run_settings(rounds_burn_in=5, rounds_per_window=4,
                                 participants=5, epochs=2)
    return spec, settings


@pytest.fixture(scope="module")
def shiftex_result(scenario):
    spec, settings = scenario
    strategy = ShiftExStrategy()
    result = run_strategy(strategy, spec, settings, seed=0,
                          dataset=FederatedShiftDataset(spec))
    return strategy, result


@pytest.fixture(scope="module")
def fedprox_result(scenario):
    spec, settings = scenario
    strategy = FedProxStrategy()
    result = run_strategy(strategy, spec, settings, seed=0,
                          dataset=FederatedShiftDataset(spec))
    return strategy, result


class TestShiftExPipeline:
    def test_bootstrap_reaches_useful_accuracy(self, shiftex_result, scenario):
        _strategy, result = shiftex_result
        spec, _ = scenario
        chance = 100.0 / spec.num_classes
        assert result.window_series[0][-1] > 2 * chance

    def test_shift_detected_and_expert_created(self, shiftex_result):
        strategy, result = shiftex_result
        w1_log = strategy.shift_log[0]
        assert w1_log["window"] == 1
        assert w1_log["num_shifted"] > 0
        assert len(strategy.registry) >= 2
        assert len(result.expert_history[1]) >= 2

    def test_recurring_regime_does_not_grow_pool(self, shiftex_result):
        strategy, result = shiftex_result
        # W2 repeats W1's regime; the pool stays compact (2 live experts, as
        # in the paper's CIFAR-10-C dynamics).
        live_w2 = {eid for eid, n in result.expert_history[2].items() if n > 0}
        assert len(live_w2) <= 3

    def test_accuracy_recovers_after_shift(self, shiftex_result):
        _strategy, result = shiftex_result
        w1 = result.window_series[1]
        assert max(w1[1:]) > w1[0], "training after the shift must improve accuracy"

    def test_final_accuracy_not_degenerate(self, shiftex_result, scenario):
        _strategy, result = shiftex_result
        spec, _ = scenario
        assert result.window_series[-1][-1] > 100.0 / spec.num_classes

    def test_profiler_covers_pipeline_phases(self, shiftex_result):
        _strategy, result = shiftex_result
        phases = set(result.profiler_summary)
        assert {"calibration", "shift_detection"} <= phases

    def test_ledger_accounts_statistics_uploads(self, shiftex_result):
        _strategy, result = shiftex_result
        assert result.ledger_summary.get("shift_stats_up_mb", 0) > 0


class TestShapeVsBaseline:
    def test_fedprox_keeps_single_model(self, fedprox_result):
        strategy, _result = fedprox_result
        assert strategy.describe_state()["num_models"] == 1

    def test_shiftex_specialist_beats_preshift_model_on_shifted_parties(
            self, shiftex_result, scenario):
        """The core MoE claim: shifted parties do better on their expert than
        on the frozen pre-shift (bootstrap) model."""
        strategy, _result = shiftex_result
        spec, _ = scenario
        ctx = strategy.context
        dataset = FederatedShiftDataset(spec)
        shifted = dataset.schedule.parties_shifted_at(1)
        bootstrap = strategy._bootstrap_snapshot
        expert_acc, frozen_acc = [], []
        for pid in shifted:
            party = ctx.parties[pid]
            expert_acc.append(party.evaluate(strategy.params_for_party(pid))[0])
            frozen_acc.append(party.evaluate(bootstrap)[0])
        assert np.mean(expert_acc) > np.mean(frozen_acc)

    def test_shiftex_not_worse_than_fedprox_at_end(self, shiftex_result,
                                                   fedprox_result):
        _s, shiftex = shiftex_result
        _f, fedprox = fedprox_result
        # Allow a small tolerance: at miniature scale the gap is noisy, but
        # ShiftEx should never be substantially behind.
        assert shiftex.window_series[-1][-1] >= fedprox.window_series[-1][-1] - 8.0


class TestDeterminism:
    def test_full_pipeline_deterministic(self, scenario):
        spec, settings = scenario
        r1 = run_strategy(ShiftExStrategy(), spec, settings, seed=5,
                          dataset=FederatedShiftDataset(spec))
        r2 = run_strategy(ShiftExStrategy(), spec, settings, seed=5,
                          dataset=FederatedShiftDataset(spec))
        assert np.allclose(r1.flat_series, r2.flat_series)
        assert r1.expert_history == r2.expert_history


class TestLabelShiftPath:
    def test_label_shift_triggers_flips_rebalancing(self):
        spec = make_tiny_spec(
            name="integration_label", num_parties=10, num_windows=2,
            window_regimes=(("identity", 1),),  # pure label shift, no covariate
            label_shift=True, train=40, seed=93,
        )
        # Make label shift extreme so JSD clears its threshold.
        from dataclasses import replace
        spec = replace(spec, label_shift_alpha=0.15, dirichlet_alpha=5.0)
        settings = make_run_settings(rounds_burn_in=4, rounds_per_window=2,
                                     participants=5)
        strategy = ShiftExStrategy(ShiftExConfig(p_value=0.05))
        run_strategy(strategy, spec, settings, seed=0,
                     dataset=FederatedShiftDataset(spec))
        assert strategy.shift_log, "window logs must exist"
        detected = strategy.shift_log[0]["num_shifted"]
        assert detected > 0, "pure label shift must be detected via JSD"
