"""The privacy boundary: PrivacyPlan knobs, Shamir t-of-n recovery, sealing.

Four layers of pins:

* **Knob surface** — :class:`~repro.privacy.plan.PrivacyPlan` parsing
  (spec strings, mappings, the legacy ``secure_aggregation`` bool alias)
  and its threading through ``RunSettings`` → ``ExperimentPlan`` →
  ``StrategyContext`` → scenario docs → the CLI.
* **Threshold sessions** — share distribution and reconstruction are
  metered under the ledger's ``secure_agg`` channel; below-threshold
  availability refuses with :class:`IncompleteSubmissionError` before
  anything is unsealed; recovery is idempotent.
* **Differential runs** — a full-survival ``t``-of-``n`` run is bitwise
  identical to the seed-derived shortcut at float64 *and* float32 (only
  the ledger may differ, by exactly the share traffic), and a legacy
  masked run records zero ``secure_agg`` bytes.
* **Sealed scoring** — sign-sealing cancels bitwise in every scoring
  kernel (cosine, MMD, median-heuristic gamma) at both precisions, parked
  scorer snapshots hold no plaintext, and a ``sealed_scoring=on`` ShiftEx
  run reproduces its plain twin bit for bit.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.data.federated import FederatedShiftDataset
from repro.detection.mmd import (
    class_conditional_mmd,
    median_heuristic_gamma,
    mmd,
    mmd_to_many,
)
from repro.experiments.plan import ExperimentPlan
from repro.experiments.registry import build_strategy
from repro.experts.matching import WindowMatchScorer, match_cluster_to_expert
from repro.experts.registry import ExpertRegistry
from repro.federation.accounting import CommunicationLedger
from repro.federation.async_engine import FederationConfig
from repro.federation.availability import AvailabilityConfig
from repro.harness.profiles import RunSettings
from repro.harness.runner import run_strategy
from repro.privacy import PrivacyPlan, ScoreSeal, SHARE_BYTES
from repro.privacy.secure_aggregation import (
    IncompleteSubmissionError,
    SecureAggregationSession,
)
from repro.scenarios.doc import ScenarioDoc
from repro.utils.params import ParamBank, ParamSpec, cosine_similarity_matrix
from repro.utils.rng import spawn_rng
from repro.utils.serialization import run_result_to_dict
from tests.conftest import make_run_settings, make_tiny_spec


# ------------------------------------------------------------- knob surface

class TestPrivacyPlanKnobs:
    def test_default_plan_is_all_off(self):
        plan = PrivacyPlan()
        assert not plan.masking and not plan.sealed_scoring
        assert plan.threshold is None and plan.mask_seed is None
        assert not plan.is_active
        assert PrivacyPlan.from_value(None) == plan

    def test_legacy_bool_alias(self):
        assert PrivacyPlan.from_value(True) == PrivacyPlan(masking=True)
        assert PrivacyPlan.from_value(False) == PrivacyPlan()

    def test_spec_string_parsing(self):
        plan = PrivacyPlan.parse("masking=on,threshold=3")
        assert plan.masking and plan.threshold == 3
        assert PrivacyPlan.parse("on") == PrivacyPlan(masking=True)
        assert PrivacyPlan.parse("off") == PrivacyPlan()
        full = PrivacyPlan.parse(
            "masking=on,threshold=majority,sealed_scoring=on,mask_seed=7")
        assert full.threshold == "majority"
        assert full.sealed_scoring and full.mask_seed == 7

    @pytest.mark.parametrize("plan", [
        PrivacyPlan(),
        PrivacyPlan(masking=True),
        PrivacyPlan(masking=True, threshold=3),
        PrivacyPlan(masking=True, threshold="majority", sealed_scoring=True),
        PrivacyPlan(sealed_scoring=True, mask_seed=11),
    ])
    def test_str_and_dict_round_trip(self, plan):
        assert PrivacyPlan.parse(str(plan)) == plan
        assert PrivacyPlan.from_value(plan.to_dict()) == plan

    def test_threshold_resolution_per_cohort(self):
        plan = PrivacyPlan(masking=True, threshold="majority")
        assert plan.resolve_threshold(8) == 5
        assert plan.resolve_threshold(1) == 1
        fixed = PrivacyPlan(masking=True, threshold=3)
        assert fixed.resolve_threshold(8) == 3
        # Per-expert cohorts can be tiny: t degrades to n, never refuses.
        assert fixed.resolve_threshold(2) == 2
        assert PrivacyPlan().resolve_threshold(8) is None

    def test_mask_root_defaults_to_run_seed(self):
        assert PrivacyPlan(masking=True).mask_root(42) == 42
        assert PrivacyPlan(masking=True, mask_seed=7).mask_root(42) == 7

    def test_threshold_requires_masking(self):
        with pytest.raises(ValueError, match="requires"):
            PrivacyPlan(threshold=3)

    def test_invalid_values_fail_loudly(self):
        with pytest.raises(ValueError, match="unknown privacy keys"):
            PrivacyPlan.from_value({"masking": True, "tresholb": 3})
        with pytest.raises(ValueError, match="threshold"):
            PrivacyPlan(masking=True, threshold="sometimes")
        with pytest.raises(ValueError, match="threshold"):
            PrivacyPlan(masking=True, threshold=0)
        with pytest.raises(ValueError, match="key=value"):
            PrivacyPlan.parse("masking=")
        with pytest.raises(ValueError, match="masking"):
            PrivacyPlan.parse("maybe")
        with pytest.raises(ValueError, match="privacy plan"):
            PrivacyPlan.from_value(3.5)


class TestPlanThreading:
    def test_run_settings_always_carry_a_plan(self):
        settings = make_run_settings()
        assert settings.privacy == PrivacyPlan()
        assert settings.secure_aggregation is False

    def test_legacy_flag_upgrades_masking_one_way(self):
        masked = dataclasses.replace(make_run_settings(),
                                     secure_aggregation=True)
        assert masked.privacy.masking and masked.secure_aggregation
        # False never downgrades a declared plan: the default flag is
        # indistinguishable from "unset" at this level.
        spec = dataclasses.replace(make_run_settings(),
                                   privacy="masking=on,threshold=3")
        assert spec.privacy.threshold == 3
        assert spec.secure_aggregation is True  # mirror stays in sync

    def test_sealed_scoring_alone_does_not_mask(self):
        settings = dataclasses.replace(make_run_settings(),
                                       privacy="sealed_scoring=on")
        assert settings.privacy.sealed_scoring
        assert not settings.privacy.masking
        assert settings.secure_aggregation is False

    def test_experiment_plan_round_trip_and_resolve(self):
        plan = ExperimentPlan.build("fashion_mnist_sim", ["fedavg"],
                                    privacy="masking=on,threshold=3")
        assert plan.privacy == PrivacyPlan(masking=True, threshold=3)
        revived = ExperimentPlan.from_dict(plan.to_dict())
        assert revived.privacy == plan.privacy
        _, settings = revived.resolve()
        assert settings.privacy == plan.privacy
        assert settings.secure_aggregation is True

    def test_experiment_plan_legacy_alias_resolves(self):
        plan = ExperimentPlan.build("fashion_mnist_sim", ["fedavg"],
                                    secure_aggregation=True)
        _, settings = plan.resolve()
        assert settings.privacy == PrivacyPlan(masking=True)
        assert "privacy" not in ExperimentPlan.build(
            "fashion_mnist_sim", ["fedavg"]).to_dict()

    def test_experiment_plan_rejects_contradiction(self):
        with pytest.raises(ValueError, match="conflicts"):
            ExperimentPlan.build("fashion_mnist_sim", ["fedavg"],
                                 secure_aggregation=False,
                                 privacy="masking=on")

    def test_scenario_doc_privacy_block(self):
        doc = ScenarioDoc(dataset="fashion_mnist_sim", strategies=["fedavg"],
                          privacy={"masking": True, "threshold": "majority"})
        assert doc.to_dict()["privacy"] == {"masking": True,
                                            "threshold": "majority"}
        revived = ScenarioDoc.from_dict(doc.to_dict())
        from repro.scenarios.compiler import compile_scenario
        compiled = compile_scenario(revived)
        assert compiled.privacy == PrivacyPlan(masking=True,
                                               threshold="majority")

    def test_scenario_doc_rejects_unknown_privacy_key(self):
        with pytest.raises(ValueError, match="privacy"):
            ScenarioDoc(dataset="fashion_mnist_sim", strategies=["fedavg"],
                        privacy={"masking": True, "treshold": 3})

    def test_cli_accepts_privacy_spec(self):
        from repro.__main__ import build_parser
        args = build_parser().parse_args(
            ["compare", "fashion_mnist_sim", "--methods", "fedavg",
             "--privacy", "masking=on,threshold=3,sealed_scoring=on"])
        plan = PrivacyPlan.from_value(args.privacy)
        assert plan.masking and plan.threshold == 3 and plan.sealed_scoring


# ------------------------------------------------------- threshold sessions

class TestThresholdSession:
    def _session(self, cohort=(0, 1, 2, 3), threshold=3, ledger=None):
        return SecureAggregationSession(list(cohort), [(4,)], shared_seed=7,
                                        threshold=threshold, ledger=ledger)

    def test_share_distribution_is_metered(self):
        ledger = CommunicationLedger()
        n = 4
        self._session(ledger=ledger)
        # n parties x (1 self + n-1 pair) words, each split t-of-n with
        # n-1 shares transiting the server.
        setup = n * n * (n - 1) * SHARE_BYTES
        assert ledger.uplink_bytes == setup
        assert ledger.downlink_bytes == setup
        assert ledger.by_category["secure_agg"] == 2 * setup

    def test_recovery_pulls_t_shares_per_word_once(self):
        ledger = CommunicationLedger()
        session = self._session(ledger=ledger)
        base = ledger.downlink_bytes
        session.recover([0])
        pulled = 4 * 3 * SHARE_BYTES  # (1 self + 3 pair) words x t shares
        assert ledger.downlink_bytes == base + pulled
        assert session.is_recovered(0)
        session.recover([0])  # idempotent: no re-pull, no double metering
        assert ledger.downlink_bytes == base + pulled

    def test_below_threshold_refuses_reconstruction(self):
        session = self._session()
        with pytest.raises(IncompleteSubmissionError, match="refusing"):
            session.recover([0], available=[1, 2])

    def test_no_threshold_session_records_zero_share_traffic(self):
        ledger = CommunicationLedger()
        session = self._session(threshold=None, ledger=ledger)
        session.recover([0, 1])
        assert ledger.total_bytes == 0
        assert "secure_agg" not in ledger.by_category

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_threshold_combine_matches_plain_combine(self, rng, dtype):
        spec = ParamSpec(((5,), (2, 3)))
        rows = [rng.normal(size=spec.total_size).astype(dtype)
                for _ in range(3)]
        weights = np.array([2.0, 1.0, 1.0])

        plain_bank = ParamBank(spec, dtype=dtype, capacity=3)
        plain_rows = [plain_bank.alloc(r.copy()) for r in rows]
        expected = plain_bank.weighted_combine(weights, plain_rows)

        bank = ParamBank(spec, dtype=dtype, capacity=3)
        session = SecureAggregationSession([0, 1, 2], spec, shared_seed=9,
                                           dtype=dtype, threshold=2)
        party_rows = []
        for pid, r in enumerate(rows):
            row = bank.alloc(r.copy())
            session.seal_row(pid, bank.row(row))
            party_rows.append((pid, row))
        got = session.combine_rows(bank, weights, party_rows)
        assert np.array_equal(got, expected)
        # Full survival went through real reconstruction, not the shortcut.
        assert all(session.is_recovered(pid) for pid, _ in party_rows)


# ----------------------------------------------------- differential run pins

def _spec_ds(seed):
    spec = make_tiny_spec(name=f"unit_privacy_{seed}", num_parties=6,
                          num_windows=2, window_regimes=(("fog", 4),),
                          seed=seed)
    return spec, FederatedShiftDataset(spec)


def _run(method, spec, ds, settings, seed=0):
    return run_strategy(build_strategy(method), spec, settings, seed=seed,
                        dataset=ds)


class TestThresholdRunsBitwise:
    def test_full_survival_t_of_n_matches_shortcut_at_float64(self):
        """The acceptance pin: recovery changes *when* the server may derive
        masks, never *what* it derives — so the only difference a threshold
        leaves on a full-survival run is the share traffic in the ledger."""
        spec, ds = _spec_ds(51)
        base = make_run_settings()
        shortcut = _run("fedavg", spec, ds,
                        dataclasses.replace(base, secure_aggregation=True))
        recovered = _run("fedavg", spec, ds,
                         dataclasses.replace(base,
                                             privacy="masking=on,threshold=3"))
        first = run_result_to_dict(shortcut)
        second = run_result_to_dict(recovered)
        shortcut_ledger = first.pop("ledger")
        recovered_ledger = second.pop("ledger")
        assert first == second
        # secure_agg bytes are nonzero iff threshold recovery ran.
        assert "secure_agg_mb" not in shortcut_ledger
        assert recovered_ledger["secure_agg_mb"] > 0
        # Share traffic is the *only* ledger delta.
        non_share = {k: v for k, v in recovered_ledger.items()
                     if not k.startswith(("secure_agg", "uplink", "downlink",
                                          "total"))}
        assert non_share == {k: v for k, v in shortcut_ledger.items()
                             if not k.startswith(("uplink", "downlink",
                                                  "total"))}

    def test_full_survival_t_of_n_matches_shortcut_at_float32(self):
        from repro.utils.precision import PrecisionPlan

        spec, ds = _spec_ds(53)
        base = dataclasses.replace(make_run_settings(),
                                   precision=PrecisionPlan(params="float32"),
                                   dtype=None)
        shortcut = _run("fedavg", spec, ds,
                        dataclasses.replace(base, secure_aggregation=True,
                                            precision=base.precision,
                                            dtype=None))
        recovered = _run("fedavg", spec, ds,
                         dataclasses.replace(base,
                                             privacy="masking=on,threshold=3",
                                             precision=base.precision,
                                             dtype=None))
        first = run_result_to_dict(shortcut)
        second = run_result_to_dict(recovered)
        first.pop("ledger")
        ledger = second.pop("ledger")
        assert first == second
        assert ledger["secure_agg_mb"] > 0

    def test_dropout30_threshold_run_is_deterministic(self):
        """The CI determinism contract: a masking=on,threshold=3 run under
        the dropout30 availability preset recovers masks through real share
        reconstruction (nonzero secure_agg bytes) and reproduces itself."""
        spec, ds = _spec_ds(59)
        federation = FederationConfig(
            mode="buffered", min_reports=3, max_wait_rounds=2,
            availability=AvailabilityConfig.scenario("dropout30"))
        settings = dataclasses.replace(make_run_settings(),
                                       federation=federation,
                                       privacy="masking=on,threshold=3")
        first = _run("fedavg", spec, ds, settings, seed=2)
        second = _run("fedavg", spec, ds, settings, seed=2)
        assert run_result_to_dict(first) == run_result_to_dict(second)
        assert first.extras["federation"]["dropped"] > 0
        assert first.ledger_summary["secure_agg_mb"] > 0

    def test_mask_seed_override_changes_masks_not_results(self):
        """mask_seed decouples the mask streams from the data/model seed;
        exact unsealing keeps the aggregate bit-identical regardless."""
        spec, ds = _spec_ds(61)
        base = make_run_settings()
        default = _run("fedavg", spec, ds,
                       dataclasses.replace(base, privacy="masking=on"))
        pinned = _run("fedavg", spec, ds,
                      dataclasses.replace(base,
                                          privacy="masking=on,mask_seed=999"))
        assert (run_result_to_dict(default)
                == run_result_to_dict(pinned))


# ------------------------------------------------------------ sealed scoring

class TestSealedScoringKernels:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_every_kernel_is_seal_invariant_bitwise(self, dtype):
        """cosine, MMD, class-conditional MMD, and the median-heuristic
        bandwidth are built from inner products and row differences, so a
        shared sign seal cancels exactly — in IEEE-754 bits, not just
        algebraically, at both precisions."""
        rng = spawn_rng(0, "seal-pin")
        x = rng.normal(size=(24, 12)).astype(dtype)
        y = rng.normal(size=(18, 12)).astype(dtype)
        labels_x = rng.integers(0, 3, size=24)
        labels_y = rng.integers(0, 3, size=18)
        seal = ScoreSeal(seed=5)
        sx, sy = seal.seal(x), seal.seal(y)
        assert not np.array_equal(sx, x)  # the seal actually flips signs
        assert sx.dtype == dtype

        assert median_heuristic_gamma(sx, sy) == median_heuristic_gamma(x, y)
        gamma = median_heuristic_gamma(x, y)
        assert mmd(sx, sy, gamma) == mmd(x, y, gamma)
        assert mmd(sx, sy, None) == mmd(x, y, None)
        assert (class_conditional_mmd(sx, labels_x, sy, labels_y, gamma)
                == class_conditional_mmd(x, labels_x, y, labels_y, gamma))
        assert np.array_equal(mmd_to_many(sx, [sy, sx], gamma),
                              mmd_to_many(x, [y, x], gamma))
        assert np.array_equal(cosine_similarity_matrix(seal.seal(x)),
                              cosine_similarity_matrix(x))

    def _registry(self, seed, sealed):
        rng = spawn_rng(seed, "seal-reg")
        registry = ExpertRegistry(memory_capacity=64)
        params = [rng.normal(size=(16, 8))]
        for regime in range(4):
            registry.create(params, window=0,
                            embeddings=rng.normal(size=(48, 12)) + 2.0 * regime,
                            rng=rng)
        if sealed:
            registry.score_seal = ScoreSeal(seed=seed)
        return registry

    def test_registry_cosine_matrix_seal_invariant(self):
        plain = self._registry(3, sealed=False).cosine_matrix()
        sealed = self._registry(3, sealed=True).cosine_matrix()
        assert np.array_equal(plain, sealed)

    def test_match_cluster_seal_invariant(self):
        cluster = spawn_rng(1, "seal-cluster").normal(size=(40, 12)) + 1.0
        results = []
        for sealed in (False, True):
            registry = self._registry(7, sealed=sealed)
            results.append(match_cluster_to_expert(
                cluster, registry, epsilon=0.5, gamma=0.05, max_rows=32,
                rng=spawn_rng(2, "m")))
        assert results[0] == results[1]

    def test_window_scorer_parks_sealed_snapshots(self):
        """The async-buffer park path: a scorer built under a seal stores
        only sealed cluster pools (no plaintext row survives outside the
        aggregation path's unseal window) yet matches its plain twin —
        including the stale-expert rescore after a memory refresh."""
        rng = spawn_rng(4, "seal-park")
        clusters = [rng.normal(size=(30, 12)) + i for i in range(2)]
        refresh = rng.normal(size=(48, 12)) + 5.0

        def score_all(sealed):
            registry = self._registry(9, sealed=sealed)
            scorer = WindowMatchScorer(registry, [c.copy() for c in clusters],
                                       None, gamma=0.05, max_rows=24,
                                       rngs=[spawn_rng(6, "s", i)
                                             for i in range(2)])
            if sealed:
                seal = registry.score_seal
                for parked, raw in zip(scorer._xs, clusters):
                    # Parked rows are sealed, and unsealing them (the seal
                    # is an involution) recovers the subsampled plaintext —
                    # i.e. the snapshot differs from plaintext only by seal.
                    assert not any(
                        np.array_equal(parked[j], raw[k])
                        for j in range(parked.shape[0])
                        for k in range(raw.shape[0]))
                    unsealed = seal.seal(parked)
                    assert all(
                        any(np.array_equal(unsealed[j], raw[k])
                            for k in range(raw.shape[0]))
                        for j in range(unsealed.shape[0]))
            first = scorer.match(0, epsilon=0.5)
            # Refresh one expert's memory between clusters: cluster 1 must
            # rescore it (the stale path seals signatures on the fly).
            registry.get(registry.ids()[0]).memory.update(
                refresh, spawn_rng(8, "r"))
            second = scorer.match(1, epsilon=0.5)
            return first, second

        assert score_all(sealed=False) == score_all(sealed=True)


class TestSealedRunsBitwise:
    def test_shiftex_sealed_scoring_run_is_bitwise_identical(self):
        """sealed_scoring=on must be invisible in the run result: every
        consolidation/matching score the strategy acts on is bit-identical
        to its plaintext value, down through the ledger."""
        spec, ds = _spec_ds(67)
        base = make_run_settings()
        plain = _run("shiftex", spec, ds, base)
        sealed = _run("shiftex", spec, ds,
                      dataclasses.replace(base, privacy="sealed_scoring=on"))
        first, second = run_result_to_dict(plain), run_result_to_dict(sealed)
        first.pop("profiler")
        second.pop("profiler")
        assert first == second

    def test_full_privacy_plan_run_matches_plain(self):
        """All three mechanisms at once — masking, t-of-n recovery, sealed
        scoring — leave a ShiftEx run bitwise unchanged outside the ledger's
        share-traffic entry."""
        spec, ds = _spec_ds(71)
        base = make_run_settings()
        plain = _run("shiftex", spec, ds, base)
        private = _run(
            "shiftex", spec, ds,
            dataclasses.replace(
                base,
                privacy="masking=on,threshold=majority,sealed_scoring=on"))
        first, second = run_result_to_dict(plain), run_result_to_dict(private)
        first.pop("profiler")
        second.pop("profiler")
        first.pop("ledger")
        ledger = second.pop("ledger")
        assert first == second
        assert ledger["secure_agg_mb"] > 0
