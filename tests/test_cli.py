"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("fmow_sim", "cifar10_c_sim", "femnist_sim"):
            assert name in out

    def test_inspect_shows_schedule(self, capsys):
        assert main(["inspect", "cifar10_c_sim"]) == 0
        out = capsys.readouterr().out
        assert "clean burn-in" in out
        assert "fog" in out

    def test_inspect_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["inspect", "imagenet"])

    def test_compare_rejects_unknown_method(self, capsys):
        rc = main(["compare", "cifar10_c_sim", "--methods", "fedsgd"])
        assert rc == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
