"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import _federation_from_args, build_parser, main
from repro.experiments import ExperimentPlan, save_plan
from tests.conftest import make_run_settings, make_tiny_spec


class TestCli:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("fmow_sim", "cifar10_c_sim", "femnist_sim"):
            assert name in out

    def test_inspect_shows_schedule(self, capsys):
        assert main(["inspect", "cifar10_c_sim"]) == 0
        out = capsys.readouterr().out
        assert "clean burn-in" in out
        assert "fog" in out

    def test_inspect_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["inspect", "imagenet"])

    def test_compare_rejects_unknown_method(self, capsys):
        rc = main(["compare", "cifar10_c_sim", "--methods", "fedsgd"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "fedsgd" in err and "available" in err

    def test_methods_lists_registry(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("fedavg", "fedprox", "oort", "fielding", "feddrift",
                     "shiftex"):
            assert name in out

    def test_run_rejects_missing_plan(self, tmp_path, capsys):
        rc = main(["run", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_run_rejects_invalid_plan(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["run", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_run_rejects_unregistered_method(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "dataset": "cifar10_c_sim",
            "strategies": {"mystery": {"method": "mystery"}},
        }))
        assert main(["run", str(plan_path)]) == 2
        assert "unregistered" in capsys.readouterr().err

    def test_run_executes_tiny_plan(self, tmp_path, capsys):
        spec = make_tiny_spec(name="unit_cli_plan", num_parties=6,
                              num_windows=2, window_regimes=(("fog", 4),),
                              train=24, test=12, seed=73)
        settings = make_run_settings(rounds_burn_in=2, rounds_per_window=2,
                                     participants=3, epochs=1)
        plan = ExperimentPlan.build("cifar10_c_sim", ["fedavg"], seeds=(0,),
                                    spec_override=spec,
                                    settings_override=settings,
                                    name="unit-cli")
        plan_path = save_plan(tmp_path / "tiny_plan.json", plan)
        out_dir = tmp_path / "results"
        rc = main(["run", str(plan_path), "--output-dir", str(out_dir),
                   "--progress"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "unit-cli" in out
        assert "W1 Drop" in out
        saved = json.loads(
            (out_dir / "cifar10_c_sim_fedavg_seed0.json").read_text())
        assert saved["strategy"] == "fedavg"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestFederationFlags:
    def parse(self, *extra):
        return build_parser().parse_args(["compare", "cifar10_c_sim", *extra])

    def test_no_flags_means_no_override(self):
        assert _federation_from_args(self.parse()) is None

    def test_participation_and_scenario_compose(self):
        cfg = _federation_from_args(self.parse(
            "--participation", "buffered", "--scenario", "dropout30",
            "--straggler", "0.1", "--min-reports", "4", "--max-wait", "3",
            "--staleness-policy", "exponential"))
        assert cfg.mode == "buffered"
        assert cfg.min_reports == 4
        assert cfg.max_wait_rounds == 3
        assert cfg.staleness_policy == "exponential"
        assert cfg.availability.dropout_prob == 0.3  # from the preset
        assert cfg.availability.straggler_prob == 0.1  # explicit override

    def test_dropout_alone_keeps_sync_mode(self):
        cfg = _federation_from_args(self.parse("--dropout", "0.25"))
        assert cfg.mode == "sync"
        assert cfg.availability.dropout_prob == 0.25
        assert cfg.is_active

    def test_invalid_participation_rejected(self):
        with pytest.raises(SystemExit):
            self.parse("--participation", "lazy")

    def test_invalid_dropout_value_reported(self, capsys):
        rc = main(["compare", "cifar10_c_sim", "--methods", "fedavg",
                   "--dropout", "1.5"])
        assert rc == 2
        assert "dropout_prob" in capsys.readouterr().err
