"""Tests for the composable experiment API: registry, plans, executors, events."""

import json

import numpy as np
import pytest

from repro.baselines import FedAvgStrategy
from repro.experiments import (
    EarlyStopper,
    ExperimentPlan,
    JsonCheckpointer,
    ParallelExecutor,
    ProgressLogger,
    RunCallback,
    SerialExecutor,
    StrategySpec,
    build_strategy,
    is_registered,
    load_plan,
    register_strategy,
    save_plan,
    strategy_description,
    strategy_names,
    unregister_strategy,
)
from repro.harness import render_drop_time_max_table, run_strategy
from repro.harness.comparison import PAPER_METHODS
from tests.conftest import make_run_settings, make_tiny_spec


# ------------------------------------------------------------------- registry

class TestRegistry:
    def test_builtins_registered(self):
        names = strategy_names()
        for name in PAPER_METHODS + ("fedavg",):
            assert name in names

    def test_build_strategy_builds_instances(self):
        assert build_strategy("fedavg").name == "fedavg"
        assert build_strategy("shiftex").name == "shiftex"

    def test_build_unknown_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            build_strategy("fedsgd")

    def test_register_and_build_with_kwargs(self):
        @register_strategy("unit-custom")
        class CustomStrategy(FedAvgStrategy):
            name = "unit-custom"

            def __init__(self, knob: int = 1):
                super().__init__()
                self.knob = knob

        try:
            assert is_registered("unit-custom")
            built = build_strategy("unit-custom", knob=7)
            assert built.knob == 7
        finally:
            unregister_strategy("unit-custom")
        assert not is_registered("unit-custom")

    def test_duplicate_name_rejected(self):
        @register_strategy("unit-dup")
        def factory():
            return FedAvgStrategy()

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_strategy("unit-dup")(lambda: FedAvgStrategy())
            # overwrite=True replaces instead of raising
            register_strategy("unit-dup", overwrite=True)(
                lambda: FedAvgStrategy())
        finally:
            unregister_strategy("unit-dup")

    def test_invalid_names_rejected(self):
        with pytest.raises(TypeError):
            register_strategy("")
        with pytest.raises(TypeError):
            register_strategy(3)

    def test_description_uses_docstring(self):
        assert "mixture-of-experts" in strategy_description("shiftex")


# ----------------------------------------------------------------------- plans

class TestPlan:
    def test_build_from_names_and_cell_order(self):
        plan = ExperimentPlan.build("cifar10_c_sim", ["fedavg", "fedprox"],
                                    seeds=(3, 5))
        cells = plan.cells()
        assert [(c.spec.label, c.seed) for c in cells] == [
            ("fedavg", 3), ("fedavg", 5), ("fedprox", 3), ("fedprox", 5)]
        assert [c.index for c in cells] == [0, 1, 2, 3]

    def test_build_from_mapping_with_kwargs(self):
        plan = ExperimentPlan.build(
            "cifar10_c_sim",
            {"prox": {"method": "fedprox"},
             "avg": "fedavg"})
        labels = {s.label: (s.method) for s in plan.strategies}
        assert labels == {"prox": "fedprox", "avg": "fedavg"}

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one strategy"):
            ExperimentPlan.build("cifar10_c_sim", [])
        with pytest.raises(ValueError, match="at least one seed"):
            ExperimentPlan.build("cifar10_c_sim", ["fedavg"], seeds=())
        with pytest.raises(ValueError, match="duplicate"):
            ExperimentPlan(dataset="cifar10_c_sim",
                           strategies=(StrategySpec(label="a", method="fedavg"),
                                       StrategySpec(label="a", method="fedprox")))

    def test_dict_round_trip(self):
        plan = ExperimentPlan.build(
            "cifar10_c_sim",
            {"avg": "fedavg",
             "prox": {"method": "fedprox", "kwargs": {}}},
            seeds=(0, 1), profile="small", name="rt")
        restored = ExperimentPlan.from_dict(plan.to_dict())
        assert restored.to_dict() == plan.to_dict()
        assert restored.dataset == "cifar10_c_sim"
        assert restored.profile == "small"
        assert restored.seeds == (0, 1)

    def test_overrides_round_trip(self):
        spec = make_tiny_spec(name="unit_plan_rt", num_windows=2,
                              window_regimes=(("fog", 3),))
        settings = make_run_settings(rounds_burn_in=2, rounds_per_window=2)
        plan = ExperimentPlan.build("unit_plan_rt", ["fedavg"],
                                    spec_override=spec,
                                    settings_override=settings)
        restored = ExperimentPlan.from_dict(
            json.loads(json.dumps(plan.to_dict())))
        r_spec, r_settings = restored.resolve()
        assert r_spec == spec
        assert r_settings == settings

    def test_dtype_round_trip_and_resolve(self):
        plan = ExperimentPlan.build("cifar10_c_sim", ["fedavg"],
                                    dtype="float32")
        restored = ExperimentPlan.from_dict(
            json.loads(json.dumps(plan.to_dict())))
        assert restored.dtype == "float32"
        _spec, settings = restored.resolve()
        assert settings.dtype == "float32"
        # Default: precision comes from the profile settings — ci runs
        # float32 parameters, paper keeps the all-float64 plane.
        _spec, settings = ExperimentPlan.build(
            "cifar10_c_sim", ["fedavg"]).resolve()
        assert settings.dtype == "float32"
        assert settings.precision.detection_stats == "float64"
        _spec, settings = ExperimentPlan.build(
            "cifar10_c_sim", ["fedavg"], profile="paper").resolve()
        assert settings.dtype == "float64"

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            ExperimentPlan.build("cifar10_c_sim", ["fedavg"], dtype="int8")

    def test_json_and_toml_files(self, tmp_path):
        plan = ExperimentPlan.build("cifar10_c_sim", ["fedavg"], seeds=(0, 1),
                                    name="files")
        path = save_plan(tmp_path / "plan.json", plan)
        assert load_plan(path).to_dict() == plan.to_dict()

        toml_path = tmp_path / "plan.toml"
        toml_path.write_text(
            'name = "files"\n'
            'dataset = "cifar10_c_sim"\n'
            'profile = "ci"\n'
            'seeds = [0, 1]\n'
            '[strategies.fedavg]\n'
            'method = "fedavg"\n')
        assert load_plan(toml_path).to_dict() == plan.to_dict()

    def test_load_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_plan(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_plan(bad)
        nokeys = tmp_path / "nokeys.json"
        nokeys.write_text('{"dataset": "cifar10_c_sim"}')
        with pytest.raises(ValueError, match="missing required key"):
            load_plan(nokeys)

    def test_factory_spec_does_not_serialize(self):
        plan = ExperimentPlan.build("cifar10_c_sim",
                                    {"adhoc": FedAvgStrategy})
        assert plan.strategies[0].build().name == "fedavg"
        with pytest.raises(ValueError, match="cannot be serialized"):
            plan.to_dict()


# ------------------------------------------------------------------- executors

@pytest.fixture(scope="module")
def tiny_plan():
    spec = make_tiny_spec(name="unit_exec", num_parties=6, num_windows=2,
                          window_regimes=(("fog", 4),),
                          train=24, test=12, seed=59)
    settings = make_run_settings(rounds_burn_in=2, rounds_per_window=2,
                                 participants=3, epochs=1)
    return ExperimentPlan.build("cifar10_c_sim", ["fedavg", "fedprox"],
                                seeds=(0, 1), profile="ci",
                                spec_override=spec,
                                settings_override=settings)


class TestExecutors:
    def test_parallel_matches_serial_bitwise(self, tiny_plan):
        serial = tiny_plan.run(executor=SerialExecutor())
        parallel = tiny_plan.run(executor=ParallelExecutor(jobs=2))
        assert render_drop_time_max_table(parallel) == \
            render_drop_time_max_table(serial)
        for label in serial.runs:
            for s_run, p_run in zip(serial.runs[label], parallel.runs[label]):
                assert s_run.flat_series == p_run.flat_series
                assert s_run.summaries == p_run.summaries

    def test_result_shape(self, tiny_plan):
        result = tiny_plan.run()
        assert result.strategy_names == ["fedavg", "fedprox"]
        assert result.seeds == (0, 1)
        assert result.num_windows() == 2
        assert all(len(runs) == 2 for runs in result.runs.values())

    def test_parallel_rejects_unpicklable(self, tiny_plan):
        from repro.experiments.plan import StrategySpec
        import dataclasses
        bad = dataclasses.replace(
            tiny_plan,
            strategies=(StrategySpec(label="lam",
                                     factory=lambda: FedAvgStrategy()),),
            seeds=(0, 1))
        with pytest.raises(ValueError, match="picklable"):
            ParallelExecutor(jobs=2).map(bad)

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)

    def test_empty_result_num_windows(self):
        from repro.experiments import ComparisonResult
        empty = ComparisonResult(dataset="d", profile="ci", seeds=(0,))
        assert empty.num_windows() == 0


# -------------------------------------------------------------------- events

class RecordingCallback(RunCallback):
    def __init__(self):
        self.events = []

    def on_run_start(self, info):
        self.events.append(("run_start", info.strategy_name))

    def on_round_end(self, info, window, round_index, accuracy):
        self.events.append(("round_end", window, round_index))
        assert 0.0 <= accuracy <= 100.0

    def on_window_end(self, info, window, series, state):
        self.events.append(("window_end", window, len(series)))

    def on_run_end(self, info, result):
        self.events.append(("run_end", len(result.window_series)))


@pytest.fixture(scope="module")
def tiny_env():
    spec = make_tiny_spec(name="unit_events", num_parties=6, num_windows=2,
                          window_regimes=(("fog", 4),),
                          train=24, test=12, seed=61)
    settings = make_run_settings(rounds_burn_in=2, rounds_per_window=2,
                                 participants=3, epochs=1)
    return spec, settings


class TestCallbacks:
    def test_firing_order(self, tiny_env):
        spec, settings = tiny_env
        cb = RecordingCallback()
        run_strategy(FedAvgStrategy(), spec, settings, seed=0, callbacks=[cb])
        assert cb.events == [
            ("run_start", "fedavg"),
            ("round_end", 0, 0), ("round_end", 0, 1), ("window_end", 0, 3),
            ("round_end", 1, 0), ("round_end", 1, 1), ("window_end", 1, 3),
            ("run_end", 2),
        ]

    def test_callbacks_do_not_change_results(self, tiny_env):
        spec, settings = tiny_env
        plain = run_strategy(FedAvgStrategy(), spec, settings, seed=4)
        observed = run_strategy(FedAvgStrategy(), spec, settings, seed=4,
                                callbacks=[RecordingCallback()])
        assert np.allclose(plain.flat_series, observed.flat_series)
        assert "stopped_early" not in observed.extras

    def test_early_stop_truncates(self, tiny_env):
        spec, settings = tiny_env
        stopper = EarlyStopper(max_total_rounds=1)
        result = run_strategy(FedAvgStrategy(), spec, settings, seed=0,
                              callbacks=[stopper])
        assert result.extras["stopped_early"] is True
        assert "round budget" in result.extras["stop_reason"]
        assert result.extras["completed_windows"] == 1
        assert len(result.window_series) == 1
        assert len(result.window_series[0]) == 2  # entry + 1 round

    def test_early_stopper_needs_a_condition(self):
        with pytest.raises(ValueError):
            EarlyStopper()

    def test_stop_state_resets_between_runs(self, tiny_env):
        # A shared stopper instance must not leak its stop request from one
        # cell into the next: both seeds should truncate at the same point.
        spec, settings = tiny_env
        plan = ExperimentPlan.build("cifar10_c_sim", ["fedavg"], seeds=(0, 1),
                                    spec_override=spec,
                                    settings_override=settings)
        result = plan.run(callbacks=[EarlyStopper(max_total_rounds=3)])
        runs = result.runs["fedavg"]
        assert [r.extras["completed_windows"] for r in runs] == [2, 2]
        assert all(len(r.window_series[-1]) == 2 for r in runs)  # entry + 1 round
        assert len(result.aggregates["fedavg"]) == 1

    def test_aggregates_cover_common_window_prefix(self):
        from repro.experiments import ComparisonResult
        from repro.harness.runner import StrategyRunResult
        from repro.metrics.windows import WindowSummary

        def fake_run(seed, n_summaries):
            summaries = [WindowSummary(window=w + 1, accuracy_drop=1.0,
                                       recovery_rounds=1, max_accuracy=50.0,
                                       pre_shift_accuracy=50.0, rounds=2)
                         for w in range(n_summaries)]
            return StrategyRunResult(
                strategy_name="fake", dataset="d", seed=seed,
                window_series=[[1.0]] * (n_summaries + 1),
                summaries=summaries, state_log=[], expert_history=None,
                ledger_summary={}, profiler_summary={})

        result = ComparisonResult(dataset="d", profile="ci", seeds=(0, 1))
        result.add_runs("fake", [fake_run(0, 3), fake_run(1, 1)])
        assert len(result.aggregates["fake"]) == 1
        result.add_runs("empty", [fake_run(0, 0), fake_run(1, 2)])
        assert result.aggregates["empty"] == []

    def test_progress_logger_emits(self, tiny_env):
        spec, settings = tiny_env
        lines = []
        run_strategy(FedAvgStrategy(), spec, settings, seed=0,
                     callbacks=[ProgressLogger(emit=lines.append)])
        assert any("starting" in line for line in lines)
        assert any("W1" in line for line in lines)
        assert any("done" in line for line in lines)

    def test_json_checkpointer(self, tiny_env, tmp_path):
        spec, settings = tiny_env
        result = run_strategy(FedAvgStrategy(), spec, settings, seed=0,
                              callbacks=[JsonCheckpointer(tmp_path)])
        final = tmp_path / f"{spec.name}_fedavg_seed0.json"
        assert final.exists()
        assert not (tmp_path / f"{spec.name}_fedavg_seed0.partial.json").exists()
        saved = json.loads(final.read_text())
        assert saved["window_series"] == result.window_series

    def test_callbacks_through_plan_run(self):
        spec = make_tiny_spec(name="unit_plan_events", num_parties=6,
                              num_windows=2, window_regimes=(("fog", 4),),
                              train=24, test=12, seed=67)
        settings = make_run_settings(rounds_burn_in=2, rounds_per_window=2,
                                     participants=3, epochs=1)
        plan = ExperimentPlan.build("cifar10_c_sim", ["fedavg"], seeds=(0,),
                                    spec_override=spec,
                                    settings_override=settings)
        cb = RecordingCallback()
        plan.run(callbacks=[cb])
        assert cb.events[0] == ("run_start", "fedavg")
        assert cb.events[-1] == ("run_end", 2)
