"""Differential tests: every aggregation path must agree with every other.

The repo now has four ways to average a cohort of updates — the list-based
``fedavg``, the bank-resident ``weighted_combine`` kernel, the
staleness-weighted async path, and ``SecureAggregationSession``'s masked sum
— plus the rule that ``buffered``/``async`` participation with no
availability perturbation must reproduce ``sync`` *bitwise*.  These tests pin
all of them to each other over random shapes, weights, and dtypes, so a
refactor of any one path cannot silently drift.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.federated import FederatedShiftDataset
from repro.experiments.registry import build_strategy
from repro.federation.aggregation import (
    fedavg,
    staleness_decay,
    staleness_weighted_fedavg,
)
from repro.federation.async_engine import FederationConfig, FederationEngine
from repro.federation.availability import AvailabilityConfig
from repro.federation.party import LocalUpdate
from repro.federation.rounds import run_fl_round
from repro.harness.runner import run_strategy
from repro.nn.models import build_model
from repro.privacy.secure_aggregation import SecureAggregationSession
from repro.utils.params import ParamBank, flatten_params
from repro.utils.rng import spawn_rng
from repro.utils.serialization import run_result_to_dict
from tests.conftest import make_context, make_run_settings, make_tiny_spec


@st.composite
def cohort_updates(draw):
    """A random cohort: shapes, per-party values, sample weights, dtype."""
    n_tensors = draw(st.integers(1, 3))
    shapes = [
        tuple(draw(st.lists(st.integers(1, 4), min_size=0, max_size=2)))
        for _ in range(n_tensors)
    ]
    n_parties = draw(st.integers(1, 5))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    value_seed = draw(st.integers(0, 2**16))
    weights = draw(st.lists(st.integers(1, 50), min_size=n_parties,
                            max_size=n_parties))
    rng = spawn_rng(value_seed, "differential")
    updates = [
        LocalUpdate(
            party_id=pid,
            params=[rng.normal(size=shape).astype(dtype) for shape in shapes],
            num_samples=weights[pid],
            mean_loss=1.0,
        )
        for pid in range(n_parties)
    ]
    return updates, dtype


class TestAggregationPathsAgree:
    @given(cohort_updates())
    @settings(max_examples=60, deadline=None)
    def test_fedavg_matches_bank_combine(self, case):
        updates, dtype = case
        expected = flatten_params(fedavg(updates))
        bank = ParamBank.from_param_sets([u.params for u in updates],
                                         dtype=dtype)
        got = bank.weighted_combine([float(u.num_samples) for u in updates],
                                    rows=list(range(len(updates))))
        tol = 1e-5 if dtype == np.float32 else 1e-12
        np.testing.assert_allclose(got, expected, rtol=tol, atol=tol)

    @given(cohort_updates())
    @settings(max_examples=60, deadline=None)
    def test_zero_staleness_is_bitwise_fedavg(self, case):
        updates, _dtype = case
        plain = flatten_params(fedavg(updates))
        stale = flatten_params(
            staleness_weighted_fedavg(updates, [0] * len(updates),
                                      policy="exponential", gamma=0.25))
        assert np.array_equal(stale, plain)

    @given(cohort_updates())
    @settings(max_examples=40, deadline=None)
    def test_staleness_path_matches_manual_weights(self, case):
        updates, dtype = case
        ages = [i % 3 for i in range(len(updates))]
        got = flatten_params(staleness_weighted_fedavg(
            updates, ages, policy="polynomial", alpha=0.7))
        decay = staleness_decay(ages, "polynomial", alpha=0.7)
        weights = np.array([float(u.num_samples) for u in updates]) * decay
        bank = ParamBank.from_param_sets([u.params for u in updates],
                                         dtype=dtype)
        manual = bank.weighted_combine(weights, rows=list(range(len(updates))))
        tol = 1e-5 if dtype == np.float32 else 1e-12
        np.testing.assert_allclose(got, manual, rtol=tol, atol=tol)

    @given(cohort_updates())
    @settings(max_examples=30, deadline=None)
    def test_sealed_bank_combine_is_bitwise_weighted_combine(self, case):
        """Bit-domain sealing must vanish exactly: seal every row, run the
        recovery-phase combine, and require bit equality with the unmasked
        kernel over the same rows — at float32 and float64 alike."""
        updates, dtype = case
        bank = ParamBank.from_param_sets([u.params for u in updates],
                                         dtype=dtype)
        rows = list(range(len(updates)))
        weights = [float(u.num_samples) for u in updates]
        expected = bank.weighted_combine(weights, rows=rows)
        sealed_bank = ParamBank.from_param_sets([u.params for u in updates],
                                                dtype=dtype)
        session = SecureAggregationSession(
            [u.party_id for u in updates], sealed_bank.spec, shared_seed=3,
            dtype=dtype, context=("diff", 0))
        for u, row in zip(updates, rows):
            session.seal_row(u.party_id, sealed_bank.row(row))
        got = session.combine_rows(
            sealed_bank, weights,
            [(u.party_id, row) for u, row in zip(updates, rows)])
        assert np.array_equal(got, expected)
        # combine_rows scrubs what it unsealed.
        assert not sealed_bank.matrix(rows).any()

    @given(cohort_updates())
    @settings(max_examples=30, deadline=None)
    def test_secure_aggregation_matches_uniform_fedavg(self, case):
        updates, _dtype = case
        # The masked sum is an unweighted mean, so pin it against fedavg
        # with every party reporting the same sample count.  The facade
        # masks in float64, so the reference must be float64 too — a
        # float32 reference carries its own cancellation error, larger
        # than the mask residual this test bounds.
        uniform = [dataclasses.replace(
            u, num_samples=7,
            params=[np.asarray(p, dtype=np.float64) for p in u.params])
            for u in updates]
        expected = flatten_params(fedavg(uniform))
        shapes = [tuple(p.shape) for p in updates[0].params]
        session = SecureAggregationSession(
            [u.party_id for u in updates], shapes, shared_seed=11)
        for u in updates:
            session.submit(u.party_id, [np.asarray(p, dtype=np.float64)
                                        for p in u.params])
        got = flatten_params(session.aggregate())
        # Pairwise masks are O(1)-magnitude normals that must cancel; the
        # residual is float cancellation noise, not systematic error.
        np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-8)


class TestStalenessDecay:
    def test_age_zero_is_exactly_one(self):
        for policy in ("constant", "polynomial", "exponential"):
            assert staleness_decay([0], policy)[0] == 1.0

    def test_monotone_nonincreasing(self):
        ages = np.arange(6)
        for policy, kwargs in (("polynomial", {"alpha": 0.5}),
                               ("exponential", {"gamma": 0.5})):
            decay = staleness_decay(ages, policy, **kwargs)
            assert np.all(np.diff(decay) < 0)

    def test_constant_ignores_age(self):
        assert np.array_equal(staleness_decay([0, 3, 9], "constant"),
                              np.ones(3))

    def test_rejects_negative_age_and_unknown_policy(self):
        with pytest.raises(ValueError):
            staleness_decay([-1], "polynomial")
        with pytest.raises(KeyError):
            staleness_decay([1], "linear")


class TestRoundDtype:
    """The round bank must honor the cohort's bound model precision."""

    def _float32_context(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        for pid, party in ctx.parties.items():
            model = build_model(tiny_spec.model_name, tiny_spec.input_shape,
                                tiny_spec.num_classes,
                                spawn_rng(0, "party-model", pid),
                                dtype=np.float32)
            party._model = model
        return ctx

    def test_float32_model_keeps_float32_bank(self, tiny_spec, tiny_dataset):
        ctx = self._float32_context(tiny_spec, tiny_dataset)
        # A strategy handing over float64 params (e.g. a fresh
        # weighted_average of plain lists) must not upcast the round.
        params64 = [np.asarray(p, dtype=np.float64)
                    for p in ctx.parties[0]._model.get_params()]
        new_params, _ = run_fl_round(ctx.parties, [0, 1, 2], params64,
                                     ctx.round_config)
        assert all(p.dtype == np.float32 for p in new_params)

    def test_explicit_dtype_overrides(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        new_params, _ = run_fl_round(ctx.parties, [0, 1], params,
                                     ctx.round_config, dtype=np.float32)
        assert all(p.dtype == np.float32 for p in new_params)

    def test_float64_default_unchanged(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        new_params, _ = run_fl_round(ctx.parties, [0, 1], params,
                                     ctx.round_config)
        assert all(p.dtype == np.float64 for p in new_params)


def _quiet_engine(mode, **avail) -> FederationEngine:
    return FederationEngine(
        FederationConfig(mode=mode,
                         availability=AvailabilityConfig(**avail)),
        seed=0, num_parties=8)


class TestAsyncSyncEquivalence:
    def test_round_level_bitwise(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        expected, _ = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                   ctx.round_config, round_tag=(0, 0))
        for mode in ("sync", "buffered", "async"):
            engine = _quiet_engine(mode)
            engine.advance((0, 0))
            got, stats = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                      ctx.round_config, round_tag=(0, 0),
                                      engine=engine, stream="g")
            assert stats.aggregated
            assert np.array_equal(flatten_params(got),
                                  flatten_params(expected)), mode

    @pytest.mark.slow
    @pytest.mark.parametrize("method", ["fedavg", "fielding"])
    def test_full_run_bitwise(self, method):
        spec = make_tiny_spec(name="unit_diff_equiv", num_parties=6,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=17)
        ds = FederatedShiftDataset(spec)
        base = make_run_settings()
        reference = run_strategy(build_strategy(method), spec, base, seed=0,
                                 dataset=ds)
        for mode in ("buffered", "async"):
            st_mode = dataclasses.replace(
                base, federation=FederationConfig(mode=mode))
            got = run_strategy(build_strategy(method), spec, st_mode, seed=0,
                               dataset=ds)
            assert got.window_series == reference.window_series, mode


class TestSeededAvailabilityDeterminism:
    """The CI determinism job's in-process assertion (30% dropout, 2 runs)."""

    @pytest.mark.slow
    def test_dropout_run_is_deterministic(self):
        spec = make_tiny_spec(name="unit_diff_determ", num_parties=6,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=23)
        ds = FederatedShiftDataset(spec)
        st_drop = dataclasses.replace(
            make_run_settings(),
            federation=FederationConfig(
                mode="async", staleness_policy="polynomial",
                availability=AvailabilityConfig(dropout_prob=0.3,
                                                straggler_prob=0.2)))
        runs = [run_strategy(build_strategy("fedavg"), spec, st_drop, seed=5,
                             dataset=ds) for _ in range(2)]
        first, second = (run_result_to_dict(r) for r in runs)
        assert first == second
        fed = first["extras"]["federation"]
        assert fed["dropped"] > 0  # the scenario actually perturbed the run
