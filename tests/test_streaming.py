"""Tests for the stream-processing substrate (windows, engine, sources)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.streaming import (
    ArrayStreamSource,
    Record,
    SlidingWindowAssigner,
    StreamEngine,
    TumblingWindowAssigner,
    WindowBatch,
)
from repro.streaming.engine import LateRecordError


class TestTumblingWindows:
    def test_assignment(self):
        assigner = TumblingWindowAssigner(size=10.0)
        assert assigner.assign(0.0) == [0]
        assert assigner.assign(9.999) == [0]
        assert assigner.assign(10.0) == [1]

    def test_bounds(self):
        assigner = TumblingWindowAssigner(size=5.0, offset=1.0)
        assert assigner.window_bounds(2) == (11.0, 16.0)

    def test_last_closed(self):
        assigner = TumblingWindowAssigner(size=10.0)
        assert assigner.last_closed_window(9.0) == -1
        assert assigner.last_closed_window(10.0) == 0
        assert assigner.last_closed_window(25.0) == 1

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            TumblingWindowAssigner(size=0)

    @given(st.floats(0, 1000), st.floats(0.5, 50))
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, t, size):
        assigner = TumblingWindowAssigner(size=size)
        ids = assigner.assign(t)
        assert len(ids) == 1
        start, end = assigner.window_bounds(ids[0])
        assert start <= t < end


class TestSlidingWindows:
    def test_overlapping_assignment(self):
        assigner = SlidingWindowAssigner(size=10.0, slide=5.0)
        assert assigner.assign(7.0) == [0, 1]
        assert assigner.assign(2.0) == [0]

    def test_tumbling_special_case(self):
        sliding = SlidingWindowAssigner(size=10.0, slide=10.0)
        tumbling = TumblingWindowAssigner(size=10.0)
        for t in (0.0, 3.7, 9.99, 10.0, 25.3):
            assert sliding.assign(t) == tumbling.assign(t)

    def test_rejects_slide_bigger_than_size(self):
        with pytest.raises(ValueError):
            SlidingWindowAssigner(size=5.0, slide=6.0)

    @given(st.floats(0, 500), st.floats(1, 20), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_coverage_property(self, t, slide, ratio):
        size = slide * ratio
        assigner = SlidingWindowAssigner(size=size, slide=slide)
        ids = assigner.assign(t)
        assert ids, "every timestamp belongs to at least one window"
        for wid in ids:
            start, end = assigner.window_bounds(wid)
            assert start <= t < end
        # Number of covering windows equals size/slide (up to boundary).
        assert len(ids) <= ratio + 1


class TestRecordsAndBatches:
    def test_record_rejects_nan_timestamp(self):
        with pytest.raises(ValueError):
            Record(timestamp=float("nan"), x=np.zeros(2), y=0)

    def test_batch_to_arrays(self):
        batch = WindowBatch(0, 0.0, 1.0, [
            Record(0.1, np.array([1.0]), 0),
            Record(0.2, np.array([2.0]), 1),
        ])
        x, y = batch.to_arrays()
        assert x.shape == (2, 1)
        assert np.array_equal(y, [0, 1])

    def test_empty_batch_to_arrays_rejected(self):
        with pytest.raises(ValueError):
            WindowBatch(0, 0.0, 1.0).to_arrays()

    def test_label_histogram(self):
        batch = WindowBatch(0, 0.0, 1.0, [
            Record(0.1, np.zeros(1), 0),
            Record(0.2, np.zeros(1), 0),
            Record(0.3, np.zeros(1), 2),
        ])
        hist = batch.label_histogram(3)
        assert np.allclose(hist, [2 / 3, 0.0, 1 / 3])

    def test_label_histogram_rejects_out_of_range(self):
        batch = WindowBatch(0, 0.0, 1.0, [Record(0.1, np.zeros(1), 5)])
        with pytest.raises(ValueError):
            batch.label_histogram(3)


class TestStreamEngine:
    def make_engine(self, size=10.0):
        return StreamEngine(TumblingWindowAssigner(size=size))

    def test_emits_closed_windows_in_order(self):
        engine = self.make_engine()
        for t in (1.0, 5.0, 12.0, 15.0, 23.0):
            engine.ingest(Record(t, np.zeros(1), 0))
        batches = engine.advance_watermark(20.0)
        assert [b.window_id for b in batches] == [0, 1]
        assert batches[0].size == 2

    def test_watermark_must_be_monotone(self):
        engine = self.make_engine()
        engine.advance_watermark(10.0)
        with pytest.raises(ValueError):
            engine.advance_watermark(5.0)

    def test_late_records_dropped_and_counted(self):
        engine = self.make_engine()
        engine.advance_watermark(10.0)
        engine.ingest(Record(3.0, np.zeros(1), 0))
        assert engine.records_dropped_late == 1

    def test_late_records_strict_raises(self):
        engine = self.make_engine()
        engine.advance_watermark(10.0)
        with pytest.raises(LateRecordError):
            engine.ingest(Record(3.0, np.zeros(1), 0), strict=True)

    def test_records_sorted_within_window(self):
        engine = self.make_engine()
        for t in (5.0, 1.0, 3.0):
            engine.ingest(Record(t, np.zeros(1), 0))
        [batch] = engine.advance_watermark(10.0)
        assert [r.timestamp for r in batch.records] == [1.0, 3.0, 5.0]

    def test_pending_windows(self):
        engine = self.make_engine()
        engine.ingest(Record(25.0, np.zeros(1), 0))
        assert engine.pending_windows() == [2]

    def test_sliding_engine_duplicates_records(self):
        engine = StreamEngine(SlidingWindowAssigner(size=10.0, slide=5.0))
        engine.ingest(Record(7.0, np.zeros(1), 0))
        batches = engine.advance_watermark(100.0)
        assert sum(b.size for b in batches) == 2


class TestArrayStreamSource:
    def test_segments_occupy_disjoint_time(self, rng):
        x1, y1 = rng.random((5, 2)), rng.integers(0, 2, 5)
        x2, y2 = rng.random((3, 2)), rng.integers(0, 2, 3)
        source = ArrayStreamSource([(x1, y1), (x2, y2)], segment_duration=1.0)
        records = list(source)
        assert len(records) == 8
        assert all(r.timestamp < 1.0 for r in records[:5])
        assert all(1.0 <= r.timestamp < 2.0 for r in records[5:])

    def test_jitter_requires_rng(self, rng):
        with pytest.raises(ValueError):
            ArrayStreamSource([(np.zeros((2, 1)), np.zeros(2, dtype=int))],
                              jitter=0.5)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            ArrayStreamSource([(np.zeros((3, 1)), np.zeros(2, dtype=int))])

    def test_end_to_end_with_engine(self, rng):
        """Stream two windows of data through the engine and recover them."""
        x1, y1 = rng.random((6, 2)), rng.integers(0, 3, 6)
        x2, y2 = rng.random((6, 2)), rng.integers(0, 3, 6)
        source = ArrayStreamSource([(x1, y1), (x2, y2)], segment_duration=1.0)
        engine = StreamEngine(TumblingWindowAssigner(size=1.0))
        for record in source:
            engine.ingest(record)
        batches = engine.advance_watermark(source.total_duration)
        assert len(batches) == 2
        rx, ry = batches[0].to_arrays()
        assert np.allclose(np.sort(rx, axis=0), np.sort(x1, axis=0))
