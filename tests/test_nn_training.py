"""Tests for the local training loop (SGD + FedProx)."""

import numpy as np
import pytest

from repro.nn.models import build_model
from repro.nn.training import LocalTrainingConfig, evaluate, train_local
from repro.utils.params import params_l2_distance
from repro.utils.rng import spawn_rng


def linear_task(rng, n=150, d=6):
    x = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = (x @ w > 0).astype(int)
    return x, y


class TestTrainLocal:
    def test_learns_linear_task(self, rng):
        x, y = linear_task(rng)
        model = build_model("mlp", (6,), 2, rng)
        train_local(model, x, y, LocalTrainingConfig(epochs=25, lr=0.1), rng)
        acc, _ = evaluate(model, x, y)
        assert acc > 0.9

    def test_loss_decreases(self, rng):
        x, y = linear_task(rng)
        model = build_model("mlp", (6,), 2, rng)
        result = train_local(model, x, y, LocalTrainingConfig(epochs=10, lr=0.05), rng)
        first = np.mean(result.losses[:3])
        last = np.mean(result.losses[-3:])
        assert last < first

    def test_empty_data_is_noop(self, rng):
        model = build_model("mlp", (6,), 2, rng)
        before = model.get_flat_params()
        result = train_local(model, np.zeros((0, 6)), np.zeros(0, dtype=int),
                             LocalTrainingConfig(), rng)
        assert result.num_samples == 0
        assert np.allclose(model.get_flat_params(), before)

    def test_zero_epochs_is_noop(self, rng):
        x, y = linear_task(rng, n=20)
        model = build_model("mlp", (6,), 2, rng)
        before = model.get_flat_params()
        train_local(model, x, y, LocalTrainingConfig(epochs=0), rng)
        assert np.allclose(model.get_flat_params(), before)

    def test_max_batches_cap(self, rng):
        x, y = linear_task(rng, n=100)
        model = build_model("mlp", (6,), 2, rng)
        result = train_local(model, x, y,
                             LocalTrainingConfig(epochs=2, batch_size=10,
                                                 max_batches_per_epoch=3), rng)
        assert result.batches == 6

    def test_mismatched_xy_rejected(self, rng):
        model = build_model("mlp", (6,), 2, rng)
        with pytest.raises(ValueError):
            train_local(model, np.zeros((5, 6)), np.zeros(4, dtype=int),
                        LocalTrainingConfig(), rng)

    def test_result_params_match_model(self, rng):
        x, y = linear_task(rng, n=30)
        model = build_model("mlp", (6,), 2, rng)
        result = train_local(model, x, y, LocalTrainingConfig(epochs=2), rng)
        assert all(np.allclose(a, b)
                   for a, b in zip(result.params, model.get_params()))


class TestFedProx:
    def test_prox_requires_global_params(self, rng):
        x, y = linear_task(rng, n=20)
        model = build_model("mlp", (6,), 2, rng)
        with pytest.raises(ValueError):
            train_local(model, x, y, LocalTrainingConfig(prox_mu=0.1), rng)

    def test_prox_keeps_params_closer_to_anchor(self, rng):
        x, y = linear_task(rng, n=80)
        anchor_model = build_model("mlp", (6,), 2, spawn_rng(3, "anchor"))
        anchor = anchor_model.get_params()

        def distance_after(mu):
            model = build_model("mlp", (6,), 2, spawn_rng(3, "anchor"))
            train_local(model, x, y,
                        LocalTrainingConfig(epochs=8, lr=0.1, prox_mu=mu),
                        spawn_rng(4, "t"), global_params=anchor)
            return params_l2_distance(model.get_params(), anchor)

        assert distance_after(1.0) < distance_after(0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LocalTrainingConfig(prox_mu=-0.1)
        with pytest.raises(ValueError):
            LocalTrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            LocalTrainingConfig(epochs=-1)


class TestEvaluate:
    def test_accuracy_and_loss_ranges(self, rng):
        x, y = linear_task(rng, n=40)
        model = build_model("mlp", (6,), 2, rng)
        acc, loss = evaluate(model, x, y)
        assert 0.0 <= acc <= 1.0
        assert loss > 0.0

    def test_empty_rejected(self, rng):
        model = build_model("mlp", (6,), 2, rng)
        with pytest.raises(ValueError):
            evaluate(model, np.zeros((0, 6)), np.zeros(0, dtype=int))
