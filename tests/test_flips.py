"""Tests for FLIPS participant selection."""

import numpy as np
import pytest

from repro.flips import FlipsSelector, label_balance_score
from repro.utils.rng import spawn_rng


def two_camp_histograms(num_parties=12, num_classes=4):
    """Half the parties see only low classes, half only high classes."""
    histograms = {}
    for pid in range(num_parties):
        hist = np.zeros(num_classes)
        if pid < num_parties // 2:
            hist[:num_classes // 2] = 1.0
        else:
            hist[num_classes // 2:] = 1.0
        histograms[pid] = hist / hist.sum()
    return histograms


class TestLabelBalanceScore:
    def test_balanced_cohort_scores_zero(self):
        hists = [np.array([0.25, 0.25, 0.25, 0.25])] * 3
        assert label_balance_score(hists) == pytest.approx(0.0)

    def test_skewed_cohort_scores_higher(self):
        balanced = [np.array([0.25, 0.25, 0.25, 0.25])] * 2
        skewed = [np.array([1.0, 0.0, 0.0, 0.0])] * 2
        assert label_balance_score(skewed) > label_balance_score(balanced)

    def test_complementary_parties_balance_out(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert label_balance_score([a, b]) == pytest.approx(0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            label_balance_score([])


class TestFit:
    def test_clusters_separate_label_camps(self, rng):
        histograms = two_camp_histograms()
        selector = FlipsSelector().fit(histograms, rng)
        clusters = selector.clusters
        assert len(clusters) == 2
        for members in clusters.values():
            camps = {0 if pid < 6 else 1 for pid in members}
            assert len(camps) == 1

    def test_fixed_num_clusters(self, rng):
        histograms = two_camp_histograms()
        selector = FlipsSelector(num_clusters=3).fit(histograms, rng)
        assert len(selector.clusters) == 3

    def test_rejects_empty_fit(self, rng):
        with pytest.raises(ValueError):
            FlipsSelector().fit({}, rng)

    def test_is_fitted_flag(self, rng):
        selector = FlipsSelector()
        assert not selector.is_fitted
        selector.fit(two_camp_histograms(), rng)
        assert selector.is_fitted


class TestSelect:
    def test_select_before_fit_rejected(self, rng):
        with pytest.raises(RuntimeError):
            FlipsSelector().select(3, rng)

    def test_selection_size(self, rng):
        selector = FlipsSelector().fit(two_camp_histograms(), rng)
        assert len(selector.select(4, rng)) == 4

    def test_selection_is_label_balanced(self):
        """FLIPS cohorts should pool to a flatter label distribution than
        uniform sampling (the mu-term of the ShiftEx objective)."""
        histograms = two_camp_histograms(num_parties=20)
        selector = FlipsSelector().fit(histograms, spawn_rng(0, "fit"))
        flips_scores, uniform_scores = [], []
        for trial in range(20):
            chosen = selector.select(4, spawn_rng(trial, "sel"))
            flips_scores.append(label_balance_score([histograms[p] for p in chosen]))
            uni = spawn_rng(trial, "uni").choice(20, size=4, replace=False)
            uniform_scores.append(label_balance_score([histograms[p] for p in uni]))
        assert np.mean(flips_scores) <= np.mean(uniform_scores)

    def test_fairness_counts_spread(self, rng):
        histograms = two_camp_histograms(num_parties=8)
        selector = FlipsSelector().fit(histograms, rng)
        for trial in range(8):
            selector.select(2, spawn_rng(trial, "fair"))
        counts = selector.selection_counts()
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_available_filter(self, rng):
        histograms = two_camp_histograms()
        selector = FlipsSelector().fit(histograms, rng)
        available = {0, 1, 2}
        chosen = selector.select(3, rng, available=available)
        assert set(chosen) <= available

    def test_no_eligible_rejected(self, rng):
        selector = FlipsSelector().fit(two_camp_histograms(), rng)
        with pytest.raises(ValueError):
            selector.select(2, rng, available=set())

    def test_request_more_than_population(self, rng):
        histograms = two_camp_histograms(num_parties=4)
        selector = FlipsSelector().fit(histograms, rng)
        chosen = selector.select(10, rng)
        assert sorted(chosen) == [0, 1, 2, 3]

    def test_no_duplicates_in_selection(self, rng):
        selector = FlipsSelector().fit(two_camp_histograms(), rng)
        chosen = selector.select(6, rng)
        assert len(chosen) == len(set(chosen))

    def test_rejects_nonpositive_request(self, rng):
        selector = FlipsSelector().fit(two_camp_histograms(), rng)
        with pytest.raises(ValueError):
            selector.select(0, rng)
