"""Property and differential suite for the scenario DSL.

Three layers of assurance, cheapest first:

1. **Hypothesis properties** over the seeded generator's document space:
   every sampled doc is deterministic, survives JSON, compiles, and its
   drift schedule satisfies the schedule invariants (clean W0, normalized
   priors, no shift before the earliest scheduled arrival).
2. **Run-level invariants** for all six registered strategies on a
   drift-diverse scenario: runs cover every scheduled window, federation
   counters conserve reports, detection fires inside the scheduled window
   for sudden shifts, and the same seed reproduces the run bitwise.
3. **Pinned differentials**: every legacy availability preset expressed as
   a scenario doc compiles to a plan *equal* to the flag-built one (so the
   two run identically at any scale), and at test scale the scenario
   pipeline's runs are bitwise identical to the plan-API pipeline's —
   pinned for fedavg on every preset and for all six strategies on the
   ``flaky`` preset.

The bounded CI fuzz job drives ``python -m repro.scenarios.fuzz`` over the
same generator; this file is the deterministic, always-on slice.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.drift import ARRIVALS, CohortDrift
from repro.data.registry import build_shift_schedule
from repro.experiments.plan import ExperimentPlan
from repro.experiments.registry import build_strategy, strategy_names
from repro.federation.availability import SCENARIOS
from repro.harness.profiles import get_profile
from repro.harness.runner import run_strategy
from repro.scenarios import (
    ScenarioDoc,
    ScenarioGenerator,
    compile_scenario,
    federation_from_knobs,
)
from repro.scenarios.fuzz import (
    check_federation_counters,
    check_run_invariants,
)
from repro.utils.serialization import run_result_to_dict

ALL_STRATEGIES = strategy_names()
PRESETS = tuple(s for s in SCENARIOS if s != "none")

TINY_DATA = {"parties": 8, "train_per_window": 24, "test_per_window": 12}
TINY_ROUNDS = {"burn_in": 2, "per_window": 1, "participants": 4}


def drift_doc(strategy: str, *, availability: dict | None = None,
              drift: list | None = None, seeds=(0,)) -> dict:
    if drift is None:
        drift = [{"arrival": "sudden", "corruption": "fog", "severity": 4,
                  "fraction": 0.5, "start_window": 1}]
    doc = {
        "dataset": "fashion_mnist_sim",
        "strategies": [strategy],
        "seeds": list(seeds),
        "data": {**TINY_DATA, "num_windows": 3},
        "rounds": dict(TINY_ROUNDS),
        "drift": drift,
    }
    if availability is not None:
        doc["availability"] = availability
    return doc


def canonical(result) -> str:
    out = run_result_to_dict(result)
    out.pop("profiler", None)  # wall-clock noise, not run state
    return json.dumps(out, sort_keys=True)


# ------------------------------------------------------------- properties


FUZZ_SETTINGS = settings(
    max_examples=25, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow])


class TestGeneratedDocumentProperties:
    @given(seed=st.integers(0, 2**16), index=st.integers(0, 15))
    @FUZZ_SETTINGS
    def test_sampling_is_deterministic_and_serializable(self, seed, index):
        doc = ScenarioGenerator(seed=seed).sample(index)
        again = ScenarioGenerator(seed=seed).sample(index)
        assert again.to_dict() == doc.to_dict()
        rebuilt = ScenarioDoc.from_dict(json.loads(json.dumps(doc.to_dict())))
        assert rebuilt.to_dict() == doc.to_dict()

    @given(seed=st.integers(0, 2**16), index=st.integers(0, 15))
    @FUZZ_SETTINGS
    def test_sampled_docs_compile_to_valid_schedules(self, seed, index):
        doc = ScenarioGenerator(seed=seed).sample(index)
        spec, run_settings = compile_scenario(doc).resolve()
        assert run_settings.rounds_burn_in >= 1
        schedule = build_shift_schedule(spec)
        assert schedule.parties_shifted_at(0) == set()
        if spec.drift:
            earliest = min(d.start_window for d in spec.drift)
            for w in range(1, earliest):
                assert schedule.parties_shifted_at(w) == set()
        for w in range(spec.num_windows):
            assert schedule.parties_shifted_at(w) <= set(
                range(spec.num_parties))
            for p in range(spec.num_parties):
                prior = schedule.prior_of(w, p)
                assert np.isclose(prior.sum(), 1.0)
                assert (prior >= 0).all()
                regime = schedule.regime_of(w, p)
                assert 1 <= regime.severity <= 5

    @given(arrival=st.sampled_from(ARRIVALS),
           severity=st.integers(2, 5),
           start=st.integers(1, 3),
           ramp=st.integers(1, 4),
           period=st.integers(1, 3),
           window=st.integers(0, 12))
    @FUZZ_SETTINGS
    def test_drift_trajectory_properties(self, arrival, severity, start,
                                         ramp, period, window):
        entry = CohortDrift(arrival=arrival, corruption="fog",
                            severity=severity, start_window=start,
                            ramp_windows=ramp, period=period)
        corruption, level = entry.regime_at(window)
        assert 1 <= level <= 5
        if window < start:
            assert (corruption, level) == ("identity", 1)
        elif arrival == "sudden":
            assert (corruption, level) == ("fog", severity)
        elif arrival == "gradual":
            assert corruption == "fog" and level <= severity
            # Severity never decreases along the ramp.
            assert level >= entry.regime_at(max(start, window - 1))[1]
        elif arrival == "recurring":
            # One full on/off cycle later the trajectory repeats exactly.
            assert entry.regime_at(window + 2 * period) == (corruption, level)


# ------------------------------------------------------- run-level invariants


class TestRunInvariants:
    """Every registered strategy completes a drift-diverse scenario with
    internally consistent accounting, deterministically."""

    AVAILABILITY = {"participation": "async", "straggler": 0.6,
                    "dropout": 0.2}
    DRIFT = [{"arrival": "sudden", "corruption": "fog", "severity": 4,
              "fraction": 0.4, "start_window": 1, "max_phase_offset": 1},
             {"arrival": "class_incremental", "corruption": "identity",
              "severity": 1, "fraction": 0.3, "start_window": 1,
              "classes_per_window": 3}]

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_run_completes_with_consistent_counters(self, strategy):
        doc = drift_doc(strategy, availability=self.AVAILABILITY,
                        drift=self.DRIFT)
        plan = compile_scenario(doc)
        spec, _settings = plan.resolve()
        result = plan.run().runs[strategy][0]
        assert check_run_invariants(result, spec) == []
        fed = result.extras["federation"]
        assert fed["dispatched"] > 0

    @pytest.mark.slow
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_same_seed_reproduces_run_bitwise(self, strategy):
        doc = drift_doc(strategy, availability=self.AVAILABILITY,
                        drift=self.DRIFT)
        first = compile_scenario(doc).run().runs[strategy][0]
        again = compile_scenario(doc).run().runs[strategy][0]
        assert canonical(first) == canonical(again)

    def test_detection_fires_in_the_scheduled_window(self):
        doc = drift_doc("shiftex", drift=[
            {"arrival": "sudden", "corruption": "fog", "severity": 5,
             "fraction": 0.5, "start_window": 1}])
        spec, run_settings = compile_scenario(doc).resolve()
        schedule = build_shift_schedule(spec)
        strategy = build_strategy("shiftex")
        run_strategy(strategy, spec, run_settings, seed=0)
        detected = {e["window"]: e["num_shifted"] for e in strategy.shift_log}
        start = spec.drift[0].start_window
        # Detection fires at the scheduled arrival and covers (at least) the
        # scheduled cohort; the drift-aware MMD may also flag a clean party
        # whose samples sit near the boundary, so >= rather than ==.
        assert detected[start] >= len(schedule.parties_shifted_at(start)) > 0
        # No alarms before the scheduled arrival, and none after the cohort
        # settles into its (stable) post-shift regime.
        for window, count in detected.items():
            if window != start:
                assert count == 0


# -------------------------------------------------------- pinned differentials


def tiny_overrides(dataset: str):
    """The flag-built twin of ``TINY_DATA``/``TINY_ROUNDS``: the same resize
    expressed through the plan API's profile overrides."""
    spec, run_settings = get_profile("ci", dataset)
    spec = dataclasses.replace(spec, **{
        "num_parties": TINY_DATA["parties"],
        "train_per_window": TINY_DATA["train_per_window"],
        "test_per_window": TINY_DATA["test_per_window"]})
    run_settings = dataclasses.replace(
        run_settings,
        rounds_burn_in=TINY_ROUNDS["burn_in"],
        rounds_per_window=TINY_ROUNDS["per_window"],
        round_config=dataclasses.replace(
            run_settings.round_config,
            participants_per_round=TINY_ROUNDS["participants"]))
    return spec, run_settings


class TestPresetDifferential:
    """Scenario-compiled preset runs are bitwise identical to flag-built.

    Full-scale equivalence follows from plan equality (the full-profile
    plans compare equal in ``test_scenarios.py::TestFlagParity``, and equal
    plans run identically); here the *runs* themselves are compared, at
    test scale, to pin the whole doc -> compile -> run pipeline against the
    plan-API pipeline.
    """

    def _pair(self, preset: str, strategy: str):
        federation, _ = federation_from_knobs(preset=preset)
        spec, run_settings = tiny_overrides("fashion_mnist_sim")
        flag_plan = ExperimentPlan.build(
            "fashion_mnist_sim", (strategy,), federation=federation,
            spec_override=spec, settings_override=run_settings)
        scenario_plan = compile_scenario({
            "dataset": "fashion_mnist_sim", "strategies": [strategy],
            "data": dict(TINY_DATA), "rounds": dict(TINY_ROUNDS),
            "availability": {"preset": preset}})
        return flag_plan, scenario_plan

    @pytest.mark.parametrize("preset", PRESETS)
    def test_fedavg_runs_match_flag_built(self, preset):
        flag_plan, scenario_plan = self._pair(preset, "fedavg")
        assert flag_plan.resolve() == scenario_plan.resolve()
        flag_run = flag_plan.run().runs["fedavg"][0]
        scenario_run = scenario_plan.run().runs["fedavg"][0]
        assert canonical(flag_run) == canonical(scenario_run)
        assert check_federation_counters(scenario_run.extras) == []

    @pytest.mark.slow
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_all_strategies_match_on_flaky(self, strategy):
        flag_plan, scenario_plan = self._pair("flaky", strategy)
        assert flag_plan.resolve() == scenario_plan.resolve()
        flag_run = flag_plan.run().runs[strategy][0]
        scenario_run = scenario_plan.run().runs[strategy][0]
        assert canonical(flag_run) == canonical(scenario_run)


# ------------------------------------------------- cross-window boundary pins


class TestCrossWindowBoundary:
    """Async reports straddling a window boundary during a scheduled shift
    are dropped-or-decayed deterministically (pins current behavior: the
    engine flushes in-flight reports into ``expired_reports`` at every
    ``begin_window``, so stale pre-shift updates never leak into the
    post-shift window's aggregate)."""

    DOC = {
        "dataset": "fashion_mnist_sim",
        "strategies": ["fedavg"],
        "data": {**TINY_DATA, "num_windows": 3},
        "rounds": dict(TINY_ROUNDS),
        "availability": {"participation": "async", "straggler": 0.6,
                         "dropout": 0.2},
        "drift": [{"arrival": "sudden", "corruption": "fog", "severity": 4,
                   "fraction": 0.5, "start_window": 1,
                   "max_phase_offset": 1}],
    }

    def test_straddling_reports_expire_not_leak(self):
        result = compile_scenario(self.DOC).run().runs["fedavg"][0]
        fed = result.extras["federation"]
        # The straggler rate guarantees some reports were still in flight
        # when a window boundary (and with it, the shift) arrived.
        assert fed["expired_reports"] > 0
        assert check_federation_counters(result.extras) == []

    def test_boundary_behavior_is_deterministic_under_offsets(self):
        first = compile_scenario(self.DOC).run().runs["fedavg"][0]
        again = compile_scenario(self.DOC).run().runs["fedavg"][0]
        assert canonical(first) == canonical(again)
        assert (first.extras["federation"]["expired_reports"]
                == again.extras["federation"]["expired_reports"])

    def test_buffered_boundary_flush_matches_async(self):
        # The flush-at-boundary pin holds for buffered mode too: in-flight
        # buffered reports expire at the window edge rather than carrying
        # their pre-shift gradients across it.
        doc = {**self.DOC,
               "availability": {"participation": "buffered",
                                "min_reports": 4, "max_wait": 3,
                                "straggler": 0.6}}
        result = compile_scenario(doc).run().runs["fedavg"][0]
        assert check_federation_counters(result.extras) == []
        fed = result.extras["federation"]
        assert fed["dispatched"] - fed["dropped"] >= fed["aggregated_reports"]
