"""Tests for window metrics and cross-seed aggregation."""

import pytest

from repro.metrics import (
    MetricAggregate,
    accuracy_drop,
    aggregate_summaries,
    max_accuracy,
    recovery_time,
    summarize_run,
    summarize_window,
)


class TestAccuracyDrop:
    def test_basic_drop(self):
        assert accuracy_drop(80.0, [65.0, 70.0]) == pytest.approx(15.0)

    def test_negative_drop_when_improving(self):
        assert accuracy_drop(60.0, [65.0]) == pytest.approx(-5.0)

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            accuracy_drop(80.0, [])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            accuracy_drop(80.0, [float("nan")])


class TestRecoveryTime:
    def test_immediate_recovery_is_zero(self):
        assert recovery_time(80.0, [79.0, 81.0]) == 0

    def test_counts_rounds(self):
        assert recovery_time(80.0, [50.0, 60.0, 77.0]) == 2

    def test_never_recovers_returns_none(self):
        assert recovery_time(80.0, [50.0, 60.0, 70.0]) is None

    def test_ratio_changes_target(self):
        series = [50.0, 60.0, 70.0]
        assert recovery_time(80.0, series, recovery_ratio=0.75) == 1

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            recovery_time(80.0, [70.0], recovery_ratio=0.0)


class TestSummaries:
    def test_window_summary_fields(self):
        summary = summarize_window(2, 80.0, [60.0, 70.0, 78.0])
        assert summary.window == 2
        assert summary.accuracy_drop == pytest.approx(20.0)
        assert summary.recovery_rounds == 2
        assert summary.max_accuracy == pytest.approx(78.0)
        assert summary.rounds == 2
        assert summary.recovery_label() == "2"

    def test_unrecovered_label(self):
        summary = summarize_window(1, 80.0, [50.0, 55.0])
        assert summary.recovery_label() == ">1"

    def test_summarize_run_uses_previous_window_end(self):
        series = [[10.0, 50.0, 80.0], [60.0, 70.0, 79.0], [75.0, 80.0, 81.0]]
        summaries = summarize_run(series)
        assert len(summaries) == 2
        assert summaries[0].pre_shift_accuracy == pytest.approx(80.0)
        assert summaries[0].accuracy_drop == pytest.approx(20.0)
        assert summaries[1].pre_shift_accuracy == pytest.approx(79.0)

    def test_summarize_run_requires_two_windows(self):
        with pytest.raises(ValueError):
            summarize_run([[10.0]])

    def test_max_accuracy(self):
        assert max_accuracy([50.0, 80.0, 70.0]) == 80.0


class TestAggregation:
    def make_runs(self):
        run1 = summarize_run([[0.0, 80.0], [60.0, 70.0, 78.0]])
        run2 = summarize_run([[0.0, 82.0], [58.0, 72.0, 80.0]])
        return [run1, run2]

    def test_aggregate_means(self):
        aggregates = aggregate_summaries(self.make_runs())
        assert len(aggregates) == 1
        agg = aggregates[0]
        assert agg.drop_mean == pytest.approx((20.0 + 24.0) / 2)
        assert agg.max_mean == pytest.approx(79.0)
        assert agg.drop_std > 0

    def test_recovery_median(self):
        aggregates = aggregate_summaries(self.make_runs())
        assert aggregates[0].recovery_median == 2

    def test_majority_non_recovery_reports_none(self):
        runs = [
            summarize_run([[0.0, 80.0], [50.0, 55.0, 60.0]]),
            summarize_run([[0.0, 80.0], [50.0, 52.0, 58.0]]),
            summarize_run([[0.0, 80.0], [60.0, 70.0, 79.0]]),
        ]
        agg = aggregate_summaries(runs)[0]
        assert agg.recovery_median is None
        assert agg.recovery_label().startswith(">")

    def test_single_run_std_zero(self):
        agg = aggregate_summaries([self.make_runs()[0]])[0]
        assert agg.drop_std == 0.0
        assert isinstance(agg, MetricAggregate)

    def test_misaligned_runs_rejected(self):
        run1 = summarize_run([[0.0, 80.0], [60.0, 70.0]])
        run2 = summarize_run([[0.0, 80.0], [60.0, 70.0], [65.0, 72.0]])
        with pytest.raises(ValueError):
            aggregate_summaries([run1, run2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_summaries([])
