"""Tests for Dirichlet partitioning and label-shift machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.partition import (
    dirichlet_label_priors,
    partition_by_dirichlet,
    sample_counts_from_prior,
    shift_prior,
)
from repro.utils.rng import spawn_rng


class TestDirichletPriors:
    def test_shape_and_normalization(self, rng):
        priors = dirichlet_label_priors(10, 5, 0.5, rng)
        assert priors.shape == (10, 5)
        assert np.allclose(priors.sum(axis=1), 1.0)

    def test_small_alpha_is_skewed(self, rng):
        skewed = dirichlet_label_priors(50, 10, 0.1, rng)
        flat = dirichlet_label_priors(50, 10, 100.0, rng)
        assert skewed.max(axis=1).mean() > flat.max(axis=1).mean()

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            dirichlet_label_priors(0, 5, 1.0, rng)
        with pytest.raises(ValueError):
            dirichlet_label_priors(5, 1, 1.0, rng)
        with pytest.raises(ValueError):
            dirichlet_label_priors(5, 5, 0.0, rng)

    @given(st.floats(0.05, 50.0))
    @settings(max_examples=20, deadline=None)
    def test_always_valid_distributions(self, alpha):
        priors = dirichlet_label_priors(5, 4, alpha, spawn_rng(1, alpha))
        assert np.all(priors > 0)
        assert np.allclose(priors.sum(axis=1), 1.0)


class TestSampleCounts:
    def test_counts_sum_to_n(self, rng):
        counts = sample_counts_from_prior(np.array([0.3, 0.7]), 100, rng)
        assert counts.sum() == 100

    def test_degenerate_prior(self, rng):
        counts = sample_counts_from_prior(np.array([1.0, 0.0]), 50, rng)
        assert counts[0] == 50

    def test_rejects_negative_n(self, rng):
        with pytest.raises(ValueError):
            sample_counts_from_prior(np.array([0.5, 0.5]), -1, rng)

    def test_unnormalized_prior_accepted(self, rng):
        counts = sample_counts_from_prior(np.array([2.0, 2.0]), 40, rng)
        assert counts.sum() == 40


class TestPartition:
    def test_partition_covers_everything_once(self, rng):
        labels = rng.integers(0, 5, 300)
        shards = partition_by_dirichlet(labels, 6, 0.5, rng)
        all_indices = np.concatenate(shards)
        assert sorted(all_indices.tolist()) == list(range(300))

    def test_min_samples_respected(self, rng):
        labels = rng.integers(0, 3, 200)
        shards = partition_by_dirichlet(labels, 8, 0.2, rng,
                                        min_samples_per_party=5)
        assert min(len(s) for s in shards) >= 5

    def test_skew_increases_with_small_alpha(self, rng):
        labels = rng.integers(0, 10, 2000)

        def mean_top_class_share(alpha):
            shards = partition_by_dirichlet(labels, 10, alpha, spawn_rng(2, alpha))
            shares = []
            for shard in shards:
                counts = np.bincount(labels[shard], minlength=10)
                shares.append(counts.max() / max(counts.sum(), 1))
            return np.mean(shares)

        assert mean_top_class_share(0.1) > mean_top_class_share(100.0)

    def test_rejects_2d_labels(self, rng):
        with pytest.raises(ValueError):
            partition_by_dirichlet(np.zeros((5, 2)), 2, 1.0, rng)


class TestShiftPrior:
    def test_full_blend_replaces(self, rng):
        old = np.array([0.25, 0.25, 0.25, 0.25])
        new = shift_prior(old, 0.3, rng, blend=1.0)
        assert new.shape == old.shape
        assert np.isclose(new.sum(), 1.0)

    def test_partial_blend_stays_closer(self, rng):
        old = np.array([0.7, 0.1, 0.1, 0.1])
        gentle = shift_prior(old, 0.3, spawn_rng(3, "a"), blend=0.1)
        abrupt = shift_prior(old, 0.3, spawn_rng(3, "a"), blend=1.0)
        assert np.abs(gentle - old).sum() < np.abs(abrupt - old).sum()

    def test_rejects_bad_blend(self, rng):
        with pytest.raises(ValueError):
            shift_prior(np.array([0.5, 0.5]), 0.3, rng, blend=0.0)

    @given(st.floats(0.05, 5.0), st.floats(0.05, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_output_always_distribution(self, alpha, blend):
        out = shift_prior(np.array([0.4, 0.3, 0.3]), alpha,
                          spawn_rng(4, alpha, blend), blend=blend)
        assert np.all(out >= 0)
        assert np.isclose(out.sum(), 1.0)
