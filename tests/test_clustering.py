"""Tests for k-means, Davies-Bouldin, model selection and similarity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering import (
    cosine_similarity,
    davies_bouldin_index,
    kmeans,
    select_num_clusters,
)
from repro.utils.rng import spawn_rng


def blobs(rng, centers, n_per=20, spread=0.2):
    xs, labels = [], []
    for i, center in enumerate(centers):
        xs.append(rng.normal(size=(n_per, len(center))) * spread + np.asarray(center))
        labels.extend([i] * n_per)
    return np.vstack(xs), np.array(labels)


class TestKmeans:
    def test_recovers_separated_blobs(self, rng):
        x, truth = blobs(rng, [(0, 0), (10, 10), (-10, 10)])
        result = kmeans(x, 3, rng)
        # Cluster labels should be a permutation of the ground truth.
        for cluster in range(3):
            members = truth[result.labels == cluster]
            assert len(np.unique(members)) == 1

    def test_labels_and_centroids_shapes(self, rng):
        x, _ = blobs(rng, [(0, 0), (5, 5)])
        result = kmeans(x, 2, rng)
        assert result.labels.shape == (x.shape[0],)
        assert result.centroids.shape == (2, 2)

    def test_centroids_are_cluster_means(self, rng):
        x, _ = blobs(rng, [(0, 0), (8, 8)])
        result = kmeans(x, 2, rng)
        for cluster in range(2):
            members = x[result.labels == cluster]
            assert np.allclose(result.centroids[cluster], members.mean(axis=0),
                               atol=1e-8)

    def test_inertia_decreases_with_k(self, rng):
        x, _ = blobs(rng, [(0, 0), (4, 4), (8, 0)])
        inertias = [kmeans(x, k, spawn_rng(0, k)).inertia for k in (1, 2, 3)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_k_equals_n(self, rng):
        x = rng.normal(size=(5, 2))
        result = kmeans(x, 5, rng)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_rejects_k_greater_than_n(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(3, 2)), 4, rng)

    def test_rejects_nonpositive_k(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(3, 2)), 0, rng)

    def test_duplicate_points_handled(self, rng):
        x = np.ones((10, 3))
        result = kmeans(x, 2, rng)
        assert result.labels.shape == (10,)

    def test_members_helper(self, rng):
        x, _ = blobs(rng, [(0, 0), (9, 9)])
        result = kmeans(x, 2, rng)
        for cluster in range(2):
            assert np.all(result.labels[result.members(cluster)] == cluster)

    @given(st.integers(0, 500), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_every_cluster_nonempty(self, seed, k):
        rng = spawn_rng(seed, "km")
        x = rng.normal(size=(12, 3))
        result = kmeans(x, k, rng)
        assert len(np.unique(result.labels)) == k


class TestDaviesBouldin:
    def test_lower_for_better_separation(self, rng):
        x_tight, labels = blobs(rng, [(0, 0), (20, 20)], spread=0.1)
        x_loose, _ = blobs(rng, [(0, 0), (2, 2)], spread=1.0)
        assert davies_bouldin_index(x_tight, labels) < \
            davies_bouldin_index(x_loose, labels)

    def test_single_cluster_is_zero(self, rng):
        x = rng.normal(size=(10, 2))
        assert davies_bouldin_index(x, np.zeros(10, dtype=int)) == 0.0

    def test_rejects_misaligned_labels(self, rng):
        with pytest.raises(ValueError):
            davies_bouldin_index(rng.normal(size=(5, 2)), np.zeros(4, dtype=int))

    def test_nonnegative(self, rng):
        x = rng.normal(size=(20, 3))
        labels = rng.integers(0, 3, 20)
        assert davies_bouldin_index(x, labels) >= 0.0


class TestSelectNumClusters:
    def test_finds_three_blobs(self):
        rng = spawn_rng(0, "sel")
        x, _ = blobs(rng, [(0, 0), (15, 15), (-15, 15)], spread=0.3)
        k, result, scores = select_num_clusters(x, rng, k_max=5)
        assert k == 3
        assert result.num_clusters == 3

    def test_single_blob_returns_one(self):
        rng = spawn_rng(1, "sel")
        x = rng.normal(size=(30, 3)) * 0.01
        k, _result, _scores = select_num_clusters(x, rng, k_max=4)
        assert k == 1

    def test_single_point(self, rng):
        k, result, _ = select_num_clusters(np.ones((1, 2)), rng)
        assert k == 1
        assert result.num_clusters == 1

    def test_k_max_respected(self):
        rng = spawn_rng(2, "sel")
        x, _ = blobs(rng, [(i * 20, 0) for i in range(6)], n_per=5)
        k, _result, scores = select_num_clusters(x, rng, k_max=3)
        assert k <= 3
        assert max(scores) <= 3


class TestCosineSimilarity:
    def test_parallel_vectors(self):
        assert cosine_similarity(np.array([1, 2]), np.array([2, 4])) == \
            pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1, 0]), np.array([0, 1])) == \
            pytest.approx(0.0)

    def test_opposite_vectors(self):
        assert cosine_similarity(np.array([1, 1]), np.array([-1, -1])) == \
            pytest.approx(-1.0)

    def test_zero_vectors(self):
        assert cosine_similarity(np.zeros(3), np.zeros(3)) == 1.0
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.ones(3), np.ones(4))
