"""Tests for the ShiftEx aggregator (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import ShiftExConfig, ShiftExStrategy
from repro.core.server import split_budget
from repro.data.federated import FederatedShiftDataset
from repro.utils.params import flatten_params
from tests.conftest import make_context, make_run_settings, make_tiny_spec


@pytest.fixture(scope="module")
def shift_env():
    """A small federation with a strong covariate shift at W1 (recurring at W2)."""
    spec = make_tiny_spec(name="unit_core", num_parties=10, num_windows=3,
                          window_regimes=(("invert_polarity", 4),
                                          ("invert_polarity", 4)),
                          train=32, seed=71)
    dataset = FederatedShiftDataset(spec)
    return spec, dataset


def run_shiftex(spec, dataset, config=None, windows=None, rounds=3, seed=0):
    strategy = ShiftExStrategy(config)
    settings = make_run_settings(rounds_burn_in=rounds + 1,
                                 rounds_per_window=rounds, participants=5)
    ctx = make_context(spec, dataset, seed=seed, settings=settings)
    strategy.setup(ctx)
    for window in range(windows if windows is not None else spec.num_windows):
        for pid, party in ctx.parties.items():
            party.set_window_data(dataset.party_window(pid, window))
        strategy.start_window(window)
        for r in range(settings.rounds_for_window(window)):
            strategy.run_round(window, r)
        strategy.end_window(window)
    return strategy, ctx


class TestSplitBudget:
    def test_proportional(self):
        budget = split_budget({0: 30, 1: 10}, 8)
        assert budget[0] == 6 and budget[1] == 2

    def test_min_one_each(self):
        budget = split_budget({0: 100, 1: 1}, 4)
        assert budget[1] >= 1

    def test_capped_at_cohort_size(self):
        budget = split_budget({0: 2}, 10)
        assert budget[0] == 2

    def test_empty_cohorts_skipped(self):
        assert split_budget({0: 0}, 4) == {}


class TestBootstrapPhase:
    def test_single_expert_after_setup(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=1)
        assert len(strategy.registry) == 1
        assert set(strategy.assignments.values()) == {0}

    def test_thresholds_calibrated_after_w0(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=1)
        assert strategy.thresholds is not None
        assert strategy.thresholds.delta_cov > 0
        assert strategy.thresholds.delta_label > 0
        assert strategy._epsilon is not None and strategy._epsilon > 0

    def test_encoder_frozen_at_w0(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=1)
        expert0 = strategy.registry.get(list(strategy.registry.ids())[0])
        assert np.allclose(flatten_params(strategy._encoder),
                           flatten_params(expert0.params))

    def test_expert0_memory_seeded(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=1)
        assert not strategy.registry.all()[0].memory.is_empty

    def test_explicit_threshold_override(self, shift_env):
        spec, dataset = shift_env
        config = ShiftExConfig(delta_cov=123.0, delta_label=0.5)
        strategy, _ctx = run_shiftex(spec, dataset, config=config, windows=1)
        assert strategy.thresholds.delta_cov == 123.0
        assert strategy.thresholds.delta_label == 0.5

    def test_later_window_without_bootstrap_rejected(self, shift_env):
        spec, dataset = shift_env
        strategy = ShiftExStrategy()
        ctx = make_context(spec, dataset)
        strategy.setup(ctx)
        with pytest.raises(RuntimeError):
            strategy.start_window(1)


class TestShiftResponse:
    def test_new_expert_created_on_shift(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=2)
        assert len(strategy.registry) >= 2
        log = strategy.shift_log[-1]
        assert log["num_shifted"] > 0
        actions = {c["action"] for c in log["clusters"]}
        assert "create" in actions or "reuse" in actions

    def test_shifted_parties_reassigned(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=2)
        shifted = dataset.schedule.parties_shifted_at(1)
        moved = {pid for pid, eid in strategy.assignments.items() if eid != 0}
        # Most truly shifted parties end up off the bootstrap expert.
        assert len(moved & shifted) >= len(shifted) // 2

    def test_stable_parties_keep_expert(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=2)
        stable = set(range(spec.num_parties)) - dataset.schedule.parties_shifted_at(1)
        expert0 = strategy.registry.ids()[0]
        keepers = {pid for pid in stable if strategy.assignments[pid] == expert0}
        assert len(keepers) >= max(1, len(stable) - 2)

    def test_recurring_regime_reuses_expert(self, shift_env):
        """W2 repeats W1's regime: the matched cluster must reuse, not create."""
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=3)
        log_w2 = [log for log in strategy.shift_log if log["window"] == 2]
        assert log_w2
        actions = [c["action"] for c in log_w2[0]["clusters"]
                   if c["action"] in ("create", "reuse")]
        assert actions, "expected at least one large-cluster action at W2"
        assert "reuse" in actions

    def test_expert_distribution_tracks_assignments(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=2)
        distribution = strategy.expert_distribution()
        assert sum(distribution.values()) == spec.num_parties

    def test_params_for_party_serves_assigned_expert(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=2)
        for pid, eid in strategy.assignments.items():
            if pid in strategy._finetuned:
                continue
            assert np.allclose(
                flatten_params(strategy.params_for_party(pid)),
                flatten_params(strategy.registry.get(eid).params),
            )

    def test_describe_state_fields(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=2)
        state = strategy.describe_state()
        assert state["num_models"] == len(strategy.registry)
        assert "delta_cov" in state and "epsilon" in state

    def test_assignment_history_per_window(self, shift_env):
        spec, dataset = shift_env
        strategy, _ctx = run_shiftex(spec, dataset, windows=3)
        assert set(strategy.assignment_history) == {0, 1, 2}


class TestAblationsToggles:
    def test_no_latent_memory_creates_more_experts(self, shift_env):
        spec, dataset = shift_env
        base, _ = run_shiftex(spec, dataset, windows=3, seed=1)
        config = ShiftExConfig(enable_latent_memory=False,
                               enable_consolidation=False)
        ablated, _ = run_shiftex(spec, dataset, config=config, windows=3, seed=1)
        assert ablated.registry.created_total >= base.registry.created_total

    def test_small_cluster_finetune(self):
        spec = make_tiny_spec(name="unit_finetune", num_parties=6, num_windows=2,
                              window_regimes=(("invert_polarity", 4),),
                              seed=73)
        dataset = FederatedShiftDataset(spec)
        config = ShiftExConfig(min_cluster_size=100)  # force the finetune path
        strategy, _ctx = run_shiftex(spec, dataset, config=config, windows=2)
        log = strategy.shift_log[-1]
        if log["num_shifted"]:
            assert any(c["action"] == "finetune" for c in log["clusters"])
            assert strategy._finetuned

    def test_flips_disabled_still_trains(self, shift_env):
        spec, dataset = shift_env
        config = ShiftExConfig(enable_flips=False)
        strategy, _ctx = run_shiftex(spec, dataset, config=config, windows=2)
        assert strategy.mean_accuracy() > 1.0 / spec.num_classes
