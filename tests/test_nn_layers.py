"""Gradient checks and behaviour tests for every layer."""

import numpy as np
import pytest

from repro.nn.gradcheck import max_grad_error
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    MaxPool2d,
    ReLU,
    Standardize,
    Tanh,
)
from repro.nn.network import Sequential

SMOOTH_TOL = 1e-6
RELU_TOL = 2e-3  # finite differences are noisy near ReLU/MaxPool kinks


def check(model, x, y, tol):
    assert max_grad_error(model, x, y) < tol


class TestDense:
    def test_gradcheck(self, rng):
        model = Sequential([Dense(5, 4, rng), Tanh(), Dense(4, 3, rng)])
        check(model, rng.normal(size=(6, 5)), rng.integers(0, 3, 6), SMOOTH_TOL)

    def test_forward_shape(self, rng):
        layer = Dense(5, 7, rng)
        assert layer.forward(np.ones((3, 5))).shape == (3, 7)

    def test_rejects_wrong_input_dim(self, rng):
        layer = Dense(5, 7, rng)
        with pytest.raises(ValueError):
            layer.forward(np.ones((3, 6)))

    def test_rejects_nonpositive_dims(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 3, rng)

    def test_backward_requires_training_forward(self, rng):
        layer = Dense(3, 2, rng)
        layer.forward(np.ones((1, 3)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_he_init_scale(self, rng):
        layer = Dense(1000, 10, rng)
        std = layer.params[0].std()
        assert 0.7 * np.sqrt(2 / 1000) < std < 1.3 * np.sqrt(2 / 1000)


class TestConv2d:
    def test_gradcheck_smooth(self, rng):
        model = Sequential([
            Conv2d(1, 3, 3, rng, padding=1), Tanh(),
            GlobalAvgPool2d(), Dense(3, 2, rng),
        ])
        check(model, rng.normal(size=(2, 1, 6, 6)), rng.integers(0, 2, 2), SMOOTH_TOL)

    def test_gradcheck_stride(self, rng):
        model = Sequential([
            Conv2d(2, 3, 3, rng, stride=2, padding=1), Tanh(),
            Flatten(), Dense(3 * 3 * 3, 2, rng),
        ])
        check(model, rng.normal(size=(2, 2, 6, 6)), rng.integers(0, 2, 2), SMOOTH_TOL)

    def test_output_shape_padding(self, rng):
        layer = Conv2d(1, 4, 3, rng, padding=1)
        assert layer.forward(np.zeros((2, 1, 8, 8))).shape == (2, 4, 8, 8)

    def test_output_shape_no_padding(self, rng):
        layer = Conv2d(1, 4, 3, rng)
        assert layer.forward(np.zeros((2, 1, 8, 8))).shape == (2, 4, 6, 6)

    def test_rejects_wrong_channels(self, rng):
        layer = Conv2d(3, 4, 3, rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 8, 8)))

    def test_matches_manual_convolution(self, rng):
        layer = Conv2d(1, 1, 2, rng)
        x = rng.normal(size=(1, 1, 3, 3))
        out = layer.forward(x)
        w, b = layer.params
        expected = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                expected[i, j] = (x[0, 0, i:i + 2, j:j + 2] * w[0, 0]).sum() + b[0]
        assert np.allclose(out[0, 0], expected)


class TestPooling:
    def test_maxpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradcheck(self, rng):
        model = Sequential([
            Conv2d(1, 2, 3, rng, padding=1), Tanh(), MaxPool2d(2),
            Flatten(), Dense(2 * 3 * 3, 2, rng),
        ])
        check(model, rng.normal(size=(2, 1, 6, 6)), rng.integers(0, 2, 2), RELU_TOL)

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2d(3).forward(np.zeros((1, 1, 4, 4)))

    def test_maxpool_tie_gradient_goes_to_one_element(self):
        layer = MaxPool2d(2)
        x = np.ones((1, 1, 2, 2))
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 1, 1, 1)))
        assert grad.sum() == pytest.approx(1.0)
        assert (grad > 0).sum() == 1

    def test_gap_forward(self):
        x = np.arange(8, dtype=float).reshape(1, 2, 2, 2)
        out = GlobalAvgPool2d().forward(x)
        assert np.allclose(out, [[1.5, 5.5]])

    def test_gap_backward_distributes_evenly(self):
        layer = GlobalAvgPool2d()
        layer.forward(np.zeros((1, 1, 2, 2)), training=True)
        grad = layer.backward(np.array([[4.0]]))
        assert np.allclose(grad, 1.0)


class TestActivationsAndReshape:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])

    def test_relu_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]), training=True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_tanh_range(self, rng):
        out = Tanh().forward(rng.normal(size=(4, 4)) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_standardize_centers(self):
        layer = Standardize(shift=0.5, scale=2.0)
        out = layer.forward(np.array([[0.5, 1.0]]))
        assert np.allclose(out, [[0.0, 1.0]])

    def test_standardize_backward_scales(self):
        layer = Standardize(scale=2.0)
        grad = layer.backward(np.ones((1, 2)))
        assert np.allclose(grad, 2.0)


class TestDropout:
    def test_inference_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 4))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_some(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((100, 100))
        out = layer.forward(x, training=True)
        zero_fraction = np.mean(out == 0)
        assert 0.3 < zero_fraction < 0.7

    def test_inverted_scaling_preserves_mean(self, rng):
        layer = Dropout(0.3, rng)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_rejects_bad_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestBatchNorm:
    def test_training_normalizes(self, rng):
        layer = BatchNorm(4)
        x = rng.normal(3.0, 2.0, size=(64, 4))
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_gradcheck(self, rng):
        model = Sequential([Dense(3, 4, rng), BatchNorm(4), Tanh(), Dense(4, 2, rng)])
        x = rng.normal(size=(8, 3))
        y = rng.integers(0, 2, 8)
        # BatchNorm couples batch statistics; compare training-mode backprop
        # against numerical gradients of the inference path only loosely.
        model.zero_grads()
        from repro.nn.losses import softmax_cross_entropy
        logits = model.forward(x, training=True)
        _loss, grad = softmax_cross_entropy(logits, y)
        back = model.backward(grad)
        assert back.shape == x.shape
        assert all(np.isfinite(g).all() for g in model.grads)

    def test_running_stats_update(self, rng):
        layer = BatchNorm(2, momentum=0.5)
        x = rng.normal(5.0, 1.0, size=(32, 2))
        layer.forward(x, training=True)
        assert np.all(layer.running_mean > 1.0)

    def test_extra_state_roundtrip(self, rng):
        layer = BatchNorm(2)
        layer.forward(rng.normal(size=(8, 2)), training=True)
        state = layer.extra_state()
        other = BatchNorm(2)
        other.load_extra_state(state)
        assert np.allclose(other.running_mean, layer.running_mean)

    def test_rejects_wrong_width(self, rng):
        with pytest.raises(ValueError):
            BatchNorm(3).forward(np.zeros((2, 4)))
