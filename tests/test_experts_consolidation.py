"""Tests for expert consolidation."""

import numpy as np
import pytest

from repro.experts.consolidation import consolidate_experts
from repro.experts.registry import ExpertRegistry


def make_expert(registry, rng, params_scale=1.0, base=None, regime_offset=0.0,
                trained=True, samples=100):
    params = ([p.copy() for p in base] if base is not None
              else [params_scale * rng.normal(size=(6, 4)),
                    params_scale * rng.normal(size=(4,))])
    expert = registry.create(params, window=0,
                             embeddings=rng.normal(size=(30, 3)) + regime_offset,
                             rng=rng)
    if trained:
        expert.train_rounds = 3
        expert.samples_seen = samples
    return expert


class TestConsolidation:
    def test_merges_identical_trained_experts(self, rng):
        registry = ExpertRegistry()
        a = make_expert(registry, rng)
        b = make_expert(registry, rng, base=a.params)
        events = consolidate_experts(registry, tau=0.95, window=2, rng=rng)
        assert len(events) == 1
        assert len(registry) == 1
        assert events[0].merged_ids == (a.expert_id, b.expert_id)
        assert events[0].similarity > 0.99

    def test_skips_untrained_experts(self, rng):
        registry = ExpertRegistry()
        a = make_expert(registry, rng)
        make_expert(registry, rng, base=a.params, trained=False)
        events = consolidate_experts(registry, tau=0.95, window=2, rng=rng)
        assert not events
        assert len(registry) == 2

    def test_keeps_dissimilar_experts(self, rng):
        registry = ExpertRegistry()
        make_expert(registry, rng)
        make_expert(registry, rng)  # independent random params
        events = consolidate_experts(registry, tau=0.99, window=2, rng=rng)
        assert not events

    def test_memory_gate_blocks_different_regimes(self, rng):
        registry = ExpertRegistry()
        a = make_expert(registry, rng, regime_offset=0.0)
        make_expert(registry, rng, base=a.params, regime_offset=10.0)
        events = consolidate_experts(registry, tau=0.95, window=2, rng=rng,
                                     memory_epsilon=0.3, gamma=0.1)
        assert not events

    def test_memory_gate_allows_same_regime(self, rng):
        registry = ExpertRegistry()
        a = make_expert(registry, rng, regime_offset=0.0)
        make_expert(registry, rng, base=a.params, regime_offset=0.0)
        events = consolidate_experts(registry, tau=0.95, window=2, rng=rng,
                                     memory_epsilon=0.6, gamma=0.1)
        assert len(events) == 1

    def test_merged_params_weighted_by_samples(self, rng):
        registry = ExpertRegistry()
        a = make_expert(registry, rng, samples=300)
        b = registry.create([p + 0.01 for p in a.params], window=0,
                            embeddings=rng.normal(size=(10, 3)), rng=rng)
        b.train_rounds = 1
        b.samples_seen = 100
        consolidate_experts(registry, tau=0.9, window=1, rng=rng)
        merged = registry.all()[0]
        expected = 0.75 * a.params[0] + 0.25 * b.params[0]
        assert np.allclose(merged.params[0], expected)

    def test_assignments_remapped(self, rng):
        registry = ExpertRegistry()
        a = make_expert(registry, rng)
        b = make_expert(registry, rng, base=a.params)
        assignments = {0: a.expert_id, 1: b.expert_id, 2: a.expert_id}
        events = consolidate_experts(registry, tau=0.9, window=1, rng=rng,
                                     assignments=assignments)
        new_id = events[0].new_id
        assert all(v == new_id for v in assignments.values())

    def test_chain_merges_to_single_expert(self, rng):
        registry = ExpertRegistry()
        a = make_expert(registry, rng)
        make_expert(registry, rng, base=a.params)
        make_expert(registry, rng, base=a.params)
        events = consolidate_experts(registry, tau=0.9, window=1, rng=rng)
        assert len(events) == 2
        assert len(registry) == 1

    def test_merged_expert_lineage(self, rng):
        registry = ExpertRegistry()
        a = make_expert(registry, rng)
        b = make_expert(registry, rng, base=a.params)
        consolidate_experts(registry, tau=0.9, window=1, rng=rng)
        merged = registry.all()[0]
        assert set(merged.merged_from) == {a.expert_id, b.expert_id}
        assert registry.merged_total == 1

    def test_single_expert_untouched(self, rng):
        registry = ExpertRegistry()
        make_expert(registry, rng)
        assert consolidate_experts(registry, tau=0.0, window=1, rng=rng) == []
        assert len(registry) == 1

    def test_invalid_tau_rejected(self, rng):
        with pytest.raises(ValueError):
            consolidate_experts(ExpertRegistry(), tau=2.0, window=1, rng=rng)
