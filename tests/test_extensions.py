"""Tests for the extension modules: distillation, secure aggregation,
drift monitoring, residual nets, and serialization."""

import numpy as np
import pytest

from repro.detection.drift import DriftMonitor
from repro.experts import (
    DistillationConfig,
    ExpertRegistry,
    distill_expert_pool,
)
from repro.nn import build_model
from repro.nn.gradcheck import max_grad_error
from repro.nn.residual import ResidualBlock, build_resnet_mini
from repro.privacy import (
    IncompleteSubmissionError,
    SecureAggregationSession,
    pairwise_mask,
)
from repro.utils.rng import spawn_rng
from repro.utils.serialization import (
    load_expert_registry,
    load_params,
    save_expert_registry,
    save_params,
)


# --------------------------------------------------------------------- resnet

class TestResnetMini:
    def test_gradcheck(self, rng):
        model = build_resnet_mini((2, 8, 8), 3, rng, width=6, embed_dim=12)
        x = rng.random((3, 2, 8, 8))
        y = rng.integers(0, 3, 3)
        assert max_grad_error(model, x, y) < 2e-3

    def test_identity_block_shapes(self, rng):
        block = ResidualBlock(4, 4, rng)
        x = rng.normal(size=(2, 4, 6, 6))
        out = block.forward(x, training=True)
        assert out.shape == x.shape
        assert block.projection is None

    def test_projection_block_changes_channels(self, rng):
        block = ResidualBlock(3, 8, rng)
        out = block.forward(rng.normal(size=(2, 3, 6, 6)))
        assert out.shape == (2, 8, 6, 6)
        assert block.projection is not None

    def test_params_roundtrip_through_sequential(self, rng):
        model = build_resnet_mini((1, 8, 8), 4, rng, width=4, embed_dim=8)
        flat = model.get_flat_params()
        model.set_flat_params(flat * 0.5)
        assert np.allclose(model.get_flat_params(), flat * 0.5)

    def test_registered_in_zoo(self, rng):
        model = build_model("resnet_mini", (1, 8, 8), 3, rng, width=4,
                            embed_dim=8)
        feats = model.features(rng.random((2, 1, 8, 8)))
        assert feats.shape == (2, 8)

    def test_skip_connection_carries_signal(self, rng):
        """Zeroing the conv path must still propagate the input (identity)."""
        block = ResidualBlock(4, 4, rng)
        for layer in (block.conv1, block.conv2):
            for p in layer.params:
                p[...] = 0.0
        x = np.abs(rng.normal(size=(2, 4, 6, 6)))
        out = block.forward(x)
        assert np.allclose(out, x)  # relu(0 + x) = x for non-negative x

    def test_rejects_flat_input(self, rng):
        with pytest.raises(ValueError):
            build_resnet_mini((16,), 3, rng)


# --------------------------------------------------------------- distillation

class TestDistillation:
    def make_pool(self, rng):
        """Two experts with opposite biases on a 2-feature, 2-class task."""
        registry = ExpertRegistry()
        model = build_model("mlp", (4,), 3, spawn_rng(0, "teacher"),
                            hidden=(16,))
        # Expert A: strong class-0 bias; expert B: strong class-1 bias.
        for bias_class in (0, 1):
            params = model.get_params()
            params[-1][...] = 0.0
            params[-1][bias_class] = 5.0
            expert = registry.create(params, window=0)
            expert.train_rounds = 1
        return registry, model

    def test_student_matches_routed_teachers(self, rng):
        registry, scratch = self.make_pool(rng)
        student = build_model("mlp", (4,), 3, spawn_rng(1, "student"),
                              hidden=(8,))
        x = rng.normal(size=(60, 4))
        # Input-dependent routing so the routed teacher function is learnable.
        routing = (x[:, 0] > 0).astype(int)
        result = distill_expert_pool(
            registry, student, scratch, x, routing,
            DistillationConfig(epochs=40, lr=0.1), spawn_rng(2, "distill"),
        )
        assert result.num_experts == 2
        assert result.teacher_agreement > 0.9

    def test_hard_labels_can_be_mixed_in(self, rng):
        registry, scratch = self.make_pool(rng)
        student = build_model("mlp", (4,), 3, spawn_rng(3, "student"),
                              hidden=(8,))
        x = rng.normal(size=(40, 4))
        routing = np.array([0, 1] * 20)
        y = np.array([0, 1] * 20)
        result = distill_expert_pool(
            registry, student, scratch, x, routing,
            DistillationConfig(epochs=10, hard_label_weight=0.5),
            spawn_rng(4, "distill"), y_reference=y,
        )
        assert np.isfinite(result.mean_soft_loss)

    def test_rejects_unknown_routing(self, rng):
        registry, scratch = self.make_pool(rng)
        student = build_model("mlp", (4,), 3, rng, hidden=(8,))
        with pytest.raises(ValueError):
            distill_expert_pool(registry, student, scratch,
                                rng.normal(size=(4, 4)), np.array([0, 1, 2, 9]),
                                DistillationConfig(epochs=1), rng)

    def test_rejects_empty_pool(self, rng):
        student = build_model("mlp", (4,), 3, rng, hidden=(8,))
        with pytest.raises(ValueError):
            distill_expert_pool(ExpertRegistry(), student, student,
                                rng.normal(size=(4, 4)), np.zeros(4, dtype=int),
                                DistillationConfig(epochs=1), rng)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DistillationConfig(temperature=0.0)
        with pytest.raises(ValueError):
            DistillationConfig(hard_label_weight=1.5)


# -------------------------------------------------------- secure aggregation

class TestSecureAggregation:
    def updates(self, rng, n):
        return [[rng.normal(size=(3, 2)), rng.normal(size=(2,))]
                for _ in range(n)]

    def test_masks_cancel_in_aggregate(self, rng):
        cohort = [0, 1, 2, 3]
        updates = self.updates(rng, 4)
        session = SecureAggregationSession(cohort, [(3, 2), (2,)], shared_seed=7)
        for pid, update in zip(cohort, updates):
            session.submit(pid, update)
        aggregate = session.aggregate()
        expected = [np.mean([u[i] for u in updates], axis=0) for i in range(2)]
        for a, e in zip(aggregate, expected):
            assert np.allclose(a, e, atol=1e-9)

    def test_submissions_are_masked(self, rng):
        cohort = [0, 1]
        updates = self.updates(rng, 2)
        session = SecureAggregationSession(cohort, [(3, 2), (2,)])
        session.submit(0, updates[0])
        assert session.submission_is_masked(0, updates[0])

    def test_aggregate_refuses_incomplete(self, rng):
        session = SecureAggregationSession([0, 1], [(2,)])
        session.submit(0, [rng.normal(size=(2,))])
        assert session.missing == [1]
        with pytest.raises(IncompleteSubmissionError):
            session.aggregate()

    def test_pairwise_masks_are_antisymmetric_by_convention(self):
        sizes = [(2, 2)]
        m_ab = pairwise_mask(5, 1, 2, sizes)
        m_ba = pairwise_mask(5, 2, 1, sizes)
        # Same mask either way: the sign convention lives in mask_update.
        assert np.allclose(m_ab[0], m_ba[0])

    def test_double_submission_rejected(self, rng):
        session = SecureAggregationSession([0, 1], [(2,)])
        session.submit(0, [rng.normal(size=(2,))])
        with pytest.raises(ValueError):
            session.submit(0, [rng.normal(size=(2,))])

    def test_unknown_party_rejected(self, rng):
        session = SecureAggregationSession([0, 1], [(2,)])
        with pytest.raises(KeyError):
            session.mask_update(9, [rng.normal(size=(2,))])

    def test_shape_mismatch_rejected(self, rng):
        session = SecureAggregationSession([0, 1], [(2,)])
        with pytest.raises(ValueError):
            session.submit(0, [rng.normal(size=(3,))])

    def test_singleton_cohort_cannot_hide(self, rng):
        session = SecureAggregationSession([0], [(2,)])
        update = [rng.normal(size=(2,))]
        session.submit(0, update)
        assert not session.submission_is_masked(0, update)
        assert np.allclose(session.aggregate()[0], update[0])


class TestSecureAggregationPartialParticipation:
    """Invariants when some of the cohort never submits.

    This is the regime the async federation engine creates every round
    (dropouts, stragglers), and the precondition for the ROADMAP's
    bank-resident secure aggregation: the server must neither reveal a
    partial aggregate nor lose mask cancellation once the stragglers arrive.
    """

    SHAPES = [(3, 2), (2,)]

    def _session(self, cohort, seed=13):
        return SecureAggregationSession(cohort, self.SHAPES, shared_seed=seed)

    def _updates(self, rng, n):
        return [[rng.normal(size=s) for s in self.SHAPES] for _ in range(n)]

    def test_missing_tracks_submissions_in_cohort_order(self, rng):
        session = self._session([0, 1, 2, 3])
        updates = self._updates(rng, 4)
        assert session.missing == [0, 1, 2, 3]
        session.submit(2, updates[2])
        session.submit(0, updates[0])
        assert session.missing == [1, 3]
        session.submit(3, updates[3])
        assert session.missing == [1]

    def test_aggregate_refusal_names_missing_parties(self, rng):
        session = self._session([0, 1, 2])
        session.submit(0, self._updates(rng, 1)[0])
        with pytest.raises(IncompleteSubmissionError, match=r"\[1, 2\]"):
            session.aggregate()

    def test_partial_sum_carries_exact_mask_residue(self, rng):
        """With party m absent, the submitted sum differs from the raw sum
        by exactly the net masks shared with m — nothing else survives."""
        cohort = [0, 1, 2, 3]
        missing = 3
        updates = dict(zip(cohort, self._updates(rng, 4)))
        session = self._session(cohort)
        present = [p for p in cohort if p != missing]
        for pid in present:
            session.submit(pid, updates[pid])
        masked_sum = [np.zeros(s) for s in self.SHAPES]
        for pid in present:
            for t, m in zip(masked_sum, session._masked[pid]):
                t += m
        raw_sum = [sum(updates[pid][i] for pid in present)
                   for i in range(len(self.SHAPES))]
        residue = [np.zeros(s) for s in self.SHAPES]
        for pid in present:
            mask = pairwise_mask(session.shared_seed, pid, missing, self.SHAPES)
            sign = 1.0 if pid < missing else -1.0
            for t, m in zip(residue, mask):
                t += sign * m
        for got, raw, res in zip(masked_sum, raw_sum, residue):
            assert np.allclose(got, raw + res, atol=1e-9)
        # The residue is the privacy margin: it must not vanish.
        assert any(np.abs(r).max() > 1e-3 for r in residue)

    def test_masks_cancel_once_straggler_arrives(self, rng):
        cohort = [0, 1, 2, 3]
        updates = dict(zip(cohort, self._updates(rng, 4)))
        session = self._session(cohort)
        for pid in [0, 1, 2]:
            session.submit(pid, updates[pid])
        with pytest.raises(IncompleteSubmissionError):
            session.aggregate()
        session.submit(3, updates[3])  # the straggler reports late
        assert session.missing == []
        aggregate = session.aggregate()
        expected = [np.mean([updates[p][i] for p in cohort], axis=0)
                    for i in range(len(self.SHAPES))]
        for a, e in zip(aggregate, expected):
            assert np.allclose(a, e, atol=1e-9)

    def test_every_partial_submission_stays_masked(self, rng):
        cohort = [0, 1, 2]
        updates = dict(zip(cohort, self._updates(rng, 3)))
        session = self._session(cohort)
        for pid in [0, 2]:  # party 1 never submits
            session.submit(pid, updates[pid])
            assert session.submission_is_masked(pid, updates[pid])
        with pytest.raises(KeyError):
            session.submission_is_masked(1, updates[1])


# ------------------------------------------------------------- drift monitor

class TestDriftMonitor:
    def test_stable_scores_never_flag(self):
        monitor = DriftMonitor(baseline=0.2, ewma_threshold=0.4,
                               cusum_slack=0.05, cusum_threshold=1.0)
        rng = spawn_rng(0, "drift")
        for _ in range(30):
            verdict = monitor.observe(float(rng.uniform(0.15, 0.25)))
        assert not verdict.drift_detected

    def test_abrupt_shift_flags_via_ewma(self):
        monitor = DriftMonitor(baseline=0.2, ewma_threshold=0.4,
                               cusum_slack=0.05, cusum_threshold=5.0)
        monitor.observe(0.2)
        monitor.observe(0.9)
        verdict = monitor.observe(0.9)
        assert verdict.drift_detected and verdict.channel == "ewma"

    def test_gradual_drift_flags_via_cusum(self):
        """Each step is sub-threshold but the accumulation is caught."""
        monitor = DriftMonitor(baseline=0.2, ewma_threshold=10.0,
                               cusum_slack=0.02, cusum_threshold=0.5)
        detected_at = None
        for step in range(30):
            score = 0.2 + 0.015 * step  # slow ramp, each window looks benign
            verdict = monitor.observe(score)
            if verdict.drift_detected and detected_at is None:
                detected_at = step
        assert detected_at is not None
        assert detected_at > 3, "should take sustained evidence, not one window"

    def test_from_null_scores_calibration(self):
        rng = spawn_rng(1, "null")
        null = rng.normal(0.2, 0.02, size=200).clip(0.0)
        monitor = DriftMonitor.from_null_scores(null)
        for _ in range(20):
            verdict = monitor.observe(float(rng.normal(0.2, 0.02)))
        assert not verdict.drift_detected
        for _ in range(20):
            verdict = monitor.observe(0.35)
        assert verdict.drift_detected

    def test_reset_clears_state(self):
        monitor = DriftMonitor(baseline=0.1, cusum_threshold=0.5)
        monitor.observe(0.9)
        monitor.reset()
        assert monitor._cusum == 0.0
        verdict = monitor.observe(0.1)
        assert not verdict.drift_detected

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftMonitor(baseline=0.1, ewma_alpha=0.0)
        with pytest.raises(ValueError):
            DriftMonitor(baseline=0.1, cusum_threshold=0.0)
        monitor = DriftMonitor(baseline=0.1)
        with pytest.raises(ValueError):
            monitor.observe(float("nan"))
        with pytest.raises(ValueError):
            DriftMonitor.from_null_scores(np.array([0.1]))


# ------------------------------------------------------------- serialization

class TestSerialization:
    def test_params_roundtrip(self, tmp_path, rng):
        params = [rng.normal(size=(4, 3)), rng.normal(size=(3,))]
        path = tmp_path / "params.npz"
        save_params(path, params)
        restored = load_params(path)
        assert all(np.allclose(a, b) for a, b in zip(params, restored))

    def test_load_rejects_foreign_npz(self, tmp_path, rng):
        path = tmp_path / "other.npz"
        np.savez(path, foo=rng.normal(size=(2,)))
        with pytest.raises(ValueError):
            load_params(path)

    def test_registry_roundtrip(self, tmp_path, rng):
        registry = ExpertRegistry(memory_capacity=16, memory_eta=0.4)
        for regime in range(3):
            expert = registry.create(
                [rng.normal(size=(5, 2)), rng.normal(size=(2,))],
                window=regime,
                embeddings=rng.normal(size=(20, 4)) + regime,
                labels=rng.integers(0, 3, 20),
                rng=rng,
            )
            expert.train_rounds = regime + 1
            expert.samples_seen = 100 * (regime + 1)
        path = tmp_path / "registry.npz"
        save_expert_registry(path, registry)
        restored = load_expert_registry(path)
        assert restored.ids() == registry.ids()
        for eid in registry.ids():
            original, loaded = registry.get(eid), restored.get(eid)
            assert loaded.train_rounds == original.train_rounds
            assert loaded.samples_seen == original.samples_seen
            assert all(np.allclose(a, b)
                       for a, b in zip(original.params, loaded.params))
            assert np.allclose(original.memory.signature,
                               loaded.memory.signature)
            assert np.array_equal(original.memory.signature_labels,
                                  loaded.memory.signature_labels)

    def test_restored_registry_allocates_fresh_ids(self, tmp_path, rng):
        registry = ExpertRegistry()
        registry.create([rng.normal(size=(2,))], window=0)
        path = tmp_path / "registry.npz"
        save_expert_registry(path, registry)
        restored = load_expert_registry(path)
        new_expert = restored.create([rng.normal(size=(2,))], window=1)
        assert new_expert.expert_id == 1

    def test_run_result_roundtrip(self, tmp_path):
        from repro.harness.runner import StrategyRunResult
        from repro.metrics.windows import summarize_run
        from repro.utils.serialization import (
            load_run_result_dict,
            save_run_result,
        )
        series = [[10.0, 50.0], [40.0, 48.0]]
        result = StrategyRunResult(
            strategy_name="shiftex", dataset="unit", seed=0,
            window_series=series, summaries=summarize_run(series),
            state_log=[{}, {}], expert_history=[{0: 4}, {0: 2, 1: 2}],
            ledger_summary={"total_mb": 1.0}, profiler_summary={},
        )
        path = tmp_path / "run.json"
        save_run_result(path, result)
        loaded = load_run_result_dict(path)
        assert loaded["strategy"] == "shiftex"
        assert loaded["window_series"] == series
        assert loaded["summaries"][0]["accuracy_drop"] == pytest.approx(10.0)
