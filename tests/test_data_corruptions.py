"""Tests for the corruption library."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.corruptions import (
    CORRUPTION_GROUPS,
    CORRUPTIONS,
    apply_corruption,
    contrast,
    corruption_names,
    fog,
    gaussian_noise,
    identity,
    pixelate,
)
from repro.utils.rng import spawn_rng


@pytest.fixture(scope="module")
def batch():
    return spawn_rng(0, "corr").random((5, 3, 12, 12))


class TestAllCorruptions:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    @pytest.mark.parametrize("severity", [1, 3, 5])
    def test_shape_and_range_preserved(self, name, severity, batch, rng):
        out = apply_corruption(batch, name, severity, rng)
        assert out.shape == batch.shape
        assert out.min() >= 0.0 and out.max() <= 1.0

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_grayscale_batches_supported(self, name, rng):
        x = rng.random((3, 1, 8, 8))
        out = apply_corruption(x, name, 3, rng)
        assert out.shape == x.shape

    @pytest.mark.parametrize("name", sorted(set(CORRUPTIONS) - {"identity"}))
    def test_actually_changes_input(self, name, batch):
        out = apply_corruption(batch, name, 5, spawn_rng(1, name))
        assert not np.allclose(out, batch)

    def test_identity_is_noop(self, batch, rng):
        assert np.allclose(identity(batch, 3, rng), batch)

    def test_input_not_modified_in_place(self, batch, rng):
        original = batch.copy()
        apply_corruption(batch, "impulse_noise", 5, rng)
        assert np.allclose(batch, original)

    def test_unknown_name_rejected(self, batch, rng):
        with pytest.raises(KeyError):
            apply_corruption(batch, "earthquake", 3, rng)

    def test_bad_severity_rejected(self, batch, rng):
        with pytest.raises(ValueError):
            apply_corruption(batch, "fog", 0, rng)
        with pytest.raises(ValueError):
            apply_corruption(batch, "fog", 6, rng)

    def test_rejects_3d_input(self, rng):
        with pytest.raises(ValueError):
            apply_corruption(np.zeros((3, 8, 8)), "fog", 3, rng)


class TestSeverityMonotonicity:
    def test_gaussian_noise_grows_with_severity(self, batch):
        deltas = []
        for severity in (1, 3, 5):
            out = gaussian_noise(batch, severity, spawn_rng(2, severity))
            deltas.append(np.abs(out - batch).mean())
        assert deltas[0] < deltas[1] < deltas[2]

    def test_contrast_reduces_variance_with_severity(self, batch, rng):
        stds = [contrast(batch, s, rng).std() for s in (1, 3, 5)]
        assert stds[0] > stds[1] > stds[2]

    def test_fog_brightens(self, batch):
        out = fog(batch, 4, spawn_rng(3, "fog"))
        assert out.mean() > batch.mean()

    def test_pixelate_reduces_detail(self, batch, rng):
        out = pixelate(batch, 5, rng)
        # Neighbouring-pixel differences shrink after pixelation.
        detail = np.abs(np.diff(out, axis=3)).mean()
        original_detail = np.abs(np.diff(batch, axis=3)).mean()
        assert detail < original_detail


class TestGroups:
    def test_groups_cover_known_names(self):
        for group, names in CORRUPTION_GROUPS.items():
            for name in names:
                assert name in CORRUPTIONS, (group, name)

    def test_weather_group_matches_paper(self):
        assert set(CORRUPTION_GROUPS["weather"]) == {"fog", "rain", "snow", "frost"}

    def test_corruption_names_all(self):
        assert set(corruption_names()) == set(CORRUPTIONS)

    def test_corruption_names_by_group(self):
        assert corruption_names("blur") == CORRUPTION_GROUPS["blur"]

    def test_unknown_group_rejected(self):
        with pytest.raises(KeyError):
            corruption_names("acoustic")


class TestPropertyBased:
    @given(st.sampled_from(sorted(CORRUPTIONS)), st.integers(1, 5),
           st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_output_always_bounded(self, name, severity, seed):
        rng = spawn_rng(seed, "hyp")
        x = rng.random((2, 1, 8, 8))
        out = apply_corruption(x, name, severity, rng)
        assert out.shape == x.shape
        assert np.all(out >= 0.0) and np.all(out <= 1.0)
        assert np.isfinite(out).all()
