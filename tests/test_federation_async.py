"""Tests for the async federation engine and client-availability simulator."""

import dataclasses

import numpy as np
import pytest

from repro.data.federated import FederatedShiftDataset
from repro.experiments.plan import ExperimentPlan, load_plan, save_plan
from repro.experiments.registry import build_strategy
from repro.federation.availability import (
    AvailabilityConfig,
    AvailabilitySimulator,
    ReportFate,
)
from repro.federation.async_engine import (
    AsyncRoundBuffer,
    FederationConfig,
    FederationEngine,
    build_engine,
)
from repro.federation.rounds import run_fl_round
from repro.harness.profiles import RunSettings
from repro.harness.runner import run_strategy
from repro.utils.params import ParamSpec, flatten_params
from tests.conftest import make_context, make_run_settings, make_tiny_spec


class TestAvailabilityConfig:
    def test_defaults_inactive(self):
        assert not AvailabilityConfig().is_active

    @pytest.mark.parametrize("kwargs", [
        {"dropout_prob": 1.5},
        {"straggler_prob": -0.1},
        {"outage_fraction": 2.0},
        {"straggler_zipf_a": 1.0},
        {"max_delay_rounds": 0},
        {"outage_rounds": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AvailabilityConfig(**kwargs)

    def test_scenarios(self):
        assert AvailabilityConfig.scenario("dropout30").dropout_prob == 0.3
        assert AvailabilityConfig.scenario("flaky").is_active
        assert not AvailabilityConfig.scenario("none").is_active
        tweaked = AvailabilityConfig.scenario("dropout30", dropout_prob=0.5)
        assert tweaked.dropout_prob == 0.5
        with pytest.raises(KeyError):
            AvailabilityConfig.scenario("blackout")


class TestAvailabilitySimulator:
    def test_inactive_config_never_perturbs(self):
        sim = AvailabilitySimulator(AvailabilityConfig(), seed=0,
                                    num_parties=10)
        for tick in range(5):
            for fate in sim.cohort_fates(list(range(10)), tick):
                assert fate == ReportFate(fate.party_id, False, 0)

    def test_fates_are_deterministic(self):
        cfg = AvailabilityConfig(dropout_prob=0.3, straggler_prob=0.4,
                                 outage_prob=0.2)
        a = AvailabilitySimulator(cfg, seed=9, num_parties=12)
        b = AvailabilitySimulator(cfg, seed=9, num_parties=12)
        for tick in range(6):
            assert (a.cohort_fates(list(range(12)), tick)
                    == b.cohort_fates(list(range(12)), tick))

    def test_dropout_rate_matches_probability(self):
        sim = AvailabilitySimulator(AvailabilityConfig(dropout_prob=0.3),
                                    seed=1)
        fates = [sim.fate(pid, tick) for pid in range(40)
                 for tick in range(50)]
        rate = sum(f.dropped for f in fates) / len(fates)
        assert 0.25 < rate < 0.35

    def test_straggler_delays_bounded_and_heavy_tailed(self):
        cfg = AvailabilityConfig(straggler_prob=1.0, max_delay_rounds=4)
        sim = AvailabilitySimulator(cfg, seed=2)
        delays = [sim.fate(pid, 0).delay for pid in range(500)]
        assert all(1 <= d <= 4 for d in delays)
        assert delays.count(1) > delays.count(4)  # Zipf mass at short delays

    def test_outages_are_correlated_and_persist(self):
        cfg = AvailabilityConfig(outage_prob=1.0, outage_fraction=0.5,
                                 outage_rounds=2)
        sim = AvailabilitySimulator(cfg, seed=3, num_parties=10)
        down0 = sim.outage_parties(0)
        assert len(down0) == 5
        # An outage that starts at tick 0 still covers tick 1.
        assert down0 <= sim.outage_parties(1)
        for pid in down0:
            fate = sim.fate(pid, 0)
            assert fate.dropped and fate.in_outage

    def test_outage_needs_population(self):
        cfg = AvailabilityConfig(outage_prob=1.0)
        sim = AvailabilitySimulator(cfg, seed=0, num_parties=None)
        assert sim.outage_parties(0) == frozenset()


class TestFederationConfig:
    @pytest.mark.parametrize("kwargs", [
        {"mode": "lazy"},
        {"staleness_policy": "linear"},
        {"min_reports": 0},
        {"max_wait_rounds": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FederationConfig(**kwargs)

    def test_is_active(self):
        assert not FederationConfig().is_active
        assert FederationConfig(mode="async").is_active
        assert FederationConfig(
            availability=AvailabilityConfig(dropout_prob=0.1)).is_active

    def test_dict_round_trip(self):
        cfg = FederationConfig(
            mode="buffered", min_reports=3, max_wait_rounds=2,
            staleness_policy="exponential", staleness_gamma=0.8,
            availability=AvailabilityConfig(dropout_prob=0.2,
                                            straggler_prob=0.1))
        assert FederationConfig.from_dict(cfg.to_dict()) == cfg

    def test_build_engine_only_when_active(self):
        assert build_engine(FederationConfig(), seed=0) is None
        assert isinstance(build_engine(FederationConfig(mode="async"), seed=0),
                          FederationEngine)


class TestAsyncRoundBuffer:
    def test_rows_recycle_on_pop_and_flush(self):
        from repro.federation.async_engine import _PendingReport
        spec = ParamSpec(shapes=((2, 2), (3,)))
        buf = AsyncRoundBuffer(spec, capacity=2)
        reports = []
        for i in range(3):
            row = buf.bank.alloc()
            report = _PendingReport(row=row, party_id=i, dispatch_tick=0,
                                    arrival_tick=i, num_samples=4,
                                    mean_loss=1.0)
            buf.push(report)
            reports.append(report)
        assert buf.in_flight == 3 and buf.bank.n_rows == 3
        assert [r.party_id for r in buf.ready(1)] == [0, 1]
        assert buf.oldest_ready_age(1) == 1
        buf.pop(buf.ready(1))
        assert buf.in_flight == 1 and buf.bank.n_rows == 1
        assert buf.flush() == 1
        assert buf.in_flight == 0 and buf.bank.n_rows == 0


class _FixedFates:
    """Simulator stub: scripted fates per tick for precise trigger tests."""

    def __init__(self, script):
        self.script = script  # tick -> {party_id: (dropped, delay)}

    def cohort_fates(self, party_ids, tick):
        per_tick = self.script.get(tick, {})
        return [
            ReportFate(pid, *per_tick.get(pid, (False, 0)))
            for pid in party_ids
        ]


def _engine(mode, script=None, **cfg_kwargs) -> FederationEngine:
    engine = FederationEngine(FederationConfig(mode=mode, **cfg_kwargs),
                              seed=0, num_parties=8)
    if script is not None:
        engine.simulator = _FixedFates(script)
    return engine


class TestFederationEngine:
    def test_requires_advance_before_round(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        with pytest.raises(RuntimeError, match="advance"):
            run_fl_round(ctx.parties, [0, 1], params, ctx.round_config,
                         engine=_engine("async"))

    def test_sync_mode_excludes_dropped(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        engine = _engine("sync", script={0: {1: (True, 0)}})
        engine.advance()
        new_params, stats = run_fl_round(ctx.parties, [0, 1, 2], params,
                                         ctx.round_config, round_tag=(0, 0),
                                         engine=engine)
        assert stats.dropped == [1]
        assert stats.reported == [0, 2]
        assert stats.participants == [0, 1, 2]
        # Identical to a plain round over the surviving cohort.
        expected, _ = run_fl_round(ctx.parties, [0, 2], params,
                                   ctx.round_config, round_tag=(0, 0))
        assert np.array_equal(flatten_params(new_params),
                              flatten_params(expected))

    def test_sync_mode_all_dropped_skips_round(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        engine = _engine("sync", script={0: {0: (True, 0), 1: (True, 0)}})
        engine.advance()
        new_params, stats = run_fl_round(ctx.parties, [0, 1], params,
                                         ctx.round_config, engine=engine)
        assert not stats.aggregated
        assert new_params is params
        assert engine.counters["skipped_rounds"] == 1

    def test_buffered_waits_for_min_reports(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        # Parties 2 and 3 straggle by one round; min_reports=4 means round 0
        # buffers (only 2 ready) and round 1 fires with all four reports.
        engine = _engine("buffered", min_reports=4, max_wait_rounds=5,
                         script={0: {2: (False, 1), 3: (False, 1)}})
        engine.advance()
        p1, stats0 = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                  ctx.round_config, round_tag=(0, 0),
                                  engine=engine, stream="g")
        assert not stats0.aggregated and p1 is params
        assert engine.in_flight == 4
        engine.advance()
        p2, stats1 = run_fl_round(ctx.parties, [0, 1], p1,
                                  ctx.round_config, round_tag=(0, 1),
                                  engine=engine, stream="g")
        assert stats1.aggregated
        assert sorted(stats1.reported) == [0, 0, 1, 1, 2, 3]
        assert stats1.staleness[2] == 1 and stats1.staleness[0] == 0
        assert not np.array_equal(flatten_params(p2), flatten_params(params))

    def test_max_wait_fires_without_min_reports(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        engine = _engine("buffered", min_reports=10, max_wait_rounds=2)
        engine.advance()
        p1, s0 = run_fl_round(ctx.parties, [0, 1], params, ctx.round_config,
                              round_tag=(0, 0), engine=engine, stream="g")
        assert not s0.aggregated
        engine.advance()
        p2, s1 = run_fl_round(ctx.parties, [0, 1], p1, ctx.round_config,
                              round_tag=(0, 1), engine=engine, stream="g")
        assert not s1.aggregated  # oldest ready report is 1 round old
        engine.advance()
        p3, s2 = run_fl_round(ctx.parties, [0, 1], p2, ctx.round_config,
                              round_tag=(0, 2), engine=engine, stream="g")
        assert s2.aggregated  # 2 rounds old: max_wait fires
        assert len(s2.reported) == 6  # all three dispatches drain at once
        # Ages 2+2 (round 0) + 1+1 (round 1) + 0+0 (round 2).
        assert engine.counters["staleness_total"] == 6

    def test_staleness_decay_weights_late_reports(self, tiny_spec,
                                                  tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        engine = _engine("async", staleness_policy="exponential",
                         staleness_gamma=0.5,
                         script={0: {1: (False, 1)}})
        engine.advance()
        p1, s0 = run_fl_round(ctx.parties, [0, 1], params, ctx.round_config,
                              round_tag=(0, 0), engine=engine, stream="g")
        assert s0.reported == [0]  # party 1 still in flight
        engine.advance()
        p2, s1 = run_fl_round(ctx.parties, [2], p1, ctx.round_config,
                              round_tag=(0, 1), engine=engine, stream="g")
        assert sorted(s1.reported) == [1, 2]
        assert s1.staleness == {1: 1, 2: 0}
        assert engine.summary()["mean_staleness"] == pytest.approx(1 / 3)

    def test_streams_do_not_mix(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        engine = _engine("buffered", min_reports=3)
        engine.advance()
        _, sa = run_fl_round(ctx.parties, [0, 1], params, ctx.round_config,
                             engine=engine, stream="a")
        _, sb = run_fl_round(ctx.parties, [2, 3], params, ctx.round_config,
                             engine=engine, stream="b")
        # Each stream holds its own 2 reports; neither reaches min_reports=3.
        assert not sa.aggregated and not sb.aggregated
        assert engine.in_flight == 4
        assert len(engine._buffers) == 2

    def test_begin_window_flushes_in_flight(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        engine = _engine("buffered", min_reports=5)
        engine.advance()
        run_fl_round(ctx.parties, [0, 1], params, ctx.round_config,
                     engine=engine, stream="g")
        assert engine.in_flight == 2
        assert engine.begin_window(1) == 2
        assert engine.in_flight == 0
        assert engine.summary()["expired_reports"] == 2


class TestRunSettingsAndPlanThreading:
    def test_run_settings_default_is_pure_sync(self):
        assert not RunSettings().federation.is_active

    def test_extras_present_only_with_active_engine(self):
        spec = make_tiny_spec(name="unit_async_extras", num_parties=4,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=41)
        ds = FederatedShiftDataset(spec)
        base = make_run_settings(rounds_burn_in=2, rounds_per_window=1,
                                 participants=2, epochs=1)
        plain = run_strategy(build_strategy("fedavg"), spec, base, seed=0,
                             dataset=ds)
        assert "federation" not in plain.extras
        st = dataclasses.replace(base, federation=FederationConfig(
            mode="async",
            availability=AvailabilityConfig(dropout_prob=0.4)))
        perturbed = run_strategy(build_strategy("fedavg"), spec, st, seed=0,
                                 dataset=ds)
        fed = perturbed.extras["federation"]
        assert fed["mode"] == "async"
        assert fed["dispatched"] > 0

    def test_plan_serializes_federation(self, tmp_path):
        plan = ExperimentPlan.build(
            "cifar10_c_sim", ["fedavg"],
            federation=FederationConfig(
                mode="buffered", min_reports=2,
                availability=AvailabilityConfig.scenario("dropout30")))
        loaded = load_plan(save_plan(tmp_path / "plan.json", plan))
        assert loaded.federation == plan.federation
        _spec, settings = loaded.resolve()
        assert settings.federation == plan.federation

    def test_settings_override_round_trips_federation(self, tmp_path):
        settings = dataclasses.replace(
            make_run_settings(),
            federation=FederationConfig(
                mode="async",
                availability=AvailabilityConfig(straggler_prob=0.2)))
        plan = ExperimentPlan.build("cifar10_c_sim", ["fedavg"],
                                    settings_override=settings)
        loaded = load_plan(save_plan(tmp_path / "plan.json", plan))
        assert loaded.settings_override.federation == settings.federation
