"""Scenario DSL: documents, the compiler, drift schedules, and the CLI.

The contract under test is flag parity *by construction*: the scenario
compiler and the CLI flags share one knob-to-config mapping
(``federation_from_knobs`` / ``population_from_knobs``), so a scenario doc
using only flag-expressible blocks must compile to an
:class:`~repro.experiments.plan.ExperimentPlan` equal to the flag-built
one.  Run-level bitwise differentials live in ``test_scenario_fuzz.py``;
this file covers the plan-level and schedule-level semantics.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.data.drift import ARRIVALS, CohortDrift, validate_drift_plan
from repro.data.registry import build_shift_schedule, get_dataset_spec
from repro.experiments.plan import ExperimentPlan
from repro.federation.availability import (
    SCENARIOS,
    AvailabilityConfig,
    AvailabilitySimulator,
)
from repro.scenarios import (
    ScenarioDoc,
    ScenarioGenerator,
    compile_scenario,
    federation_from_knobs,
    lint_scenario,
    load_scenario,
    population_from_knobs,
    save_scenario,
)
from tests.conftest import make_tiny_spec

TINY_DOC = {
    "dataset": "fashion_mnist_sim",
    "strategies": ["fedavg"],
    "data": {"parties": 6, "train_per_window": 24, "test_per_window": 12},
    "rounds": {"burn_in": 2, "per_window": 1, "participants": 3},
}


def tiny_doc(**extra) -> dict:
    doc = {k: (dict(v) if isinstance(v, dict) else v)
           for k, v in TINY_DOC.items()}
    doc.update(extra)
    return doc


# --------------------------------------------------------------------- drift


class TestCohortDrift:
    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="arrival"):
            CohortDrift(arrival="linear")
        with pytest.raises(ValueError, match="corruption"):
            CohortDrift(corruption="hurricane")
        with pytest.raises(ValueError, match="severity"):
            CohortDrift(severity=6)
        with pytest.raises(ValueError, match="fraction"):
            CohortDrift(fraction=0.0)
        with pytest.raises(ValueError, match="start_window"):
            CohortDrift(start_window=0)
        with pytest.raises(ValueError, match="unknown drift keys"):
            CohortDrift.from_value({"arrival": "sudden", "ramp": 3})

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="sum"):
            validate_drift_plan((CohortDrift(fraction=0.6),
                                 CohortDrift(fraction=0.5)))
        with pytest.raises(ValueError, match="outside the run"):
            validate_drift_plan((CohortDrift(start_window=3),), num_windows=3)

    def test_sudden_regime(self):
        d = CohortDrift(arrival="sudden", corruption="fog", severity=4,
                        start_window=2)
        assert d.regime_at(1) == ("identity", 1)
        assert d.regime_at(2) == ("fog", 4)
        assert d.regime_at(9) == ("fog", 4)

    def test_gradual_ramps_severity(self):
        d = CohortDrift(arrival="gradual", corruption="frost", severity=5,
                        start_window=1, ramp_windows=3)
        levels = [d.regime_at(w)[1] for w in range(1, 5)]
        assert levels == [1, 3, 5, 5]

    def test_recurring_alternates_with_clean(self):
        d = CohortDrift(arrival="recurring", corruption="contrast",
                        severity=3, start_window=1, period=2)
        regimes = [d.regime_at(w)[0] for w in range(1, 7)]
        assert regimes == ["contrast", "contrast", "identity", "identity",
                           "contrast", "contrast"]

    def test_class_incremental_grows_label_set(self):
        d = CohortDrift(arrival="class_incremental", corruption="identity",
                        severity=1, start_window=1, classes_per_window=2)
        assert d.allowed_classes(0, 10) is None
        assert d.allowed_classes(1, 10) == 2
        assert d.allowed_classes(3, 10) == 6
        assert d.allowed_classes(9, 10) == 10  # saturates at num_classes

    def test_round_trips_through_dict(self):
        for arrival in ARRIVALS:
            d = CohortDrift(arrival=arrival, corruption="identity",
                            severity=1, fraction=0.3, max_phase_offset=1)
            assert CohortDrift.from_value(d.to_dict()) == d


class TestDriftSchedule:
    def test_registered_datasets_keep_legacy_schedule(self):
        # No registered spec declares drift, so the legacy builder runs and
        # historical schedules stay bit for bit.
        spec = get_dataset_spec("cifar10_c_sim")
        assert spec.drift == ()

    def test_spec_without_drift_is_unchanged(self):
        spec = make_tiny_spec()
        legacy = build_shift_schedule(spec)
        again = build_shift_schedule(dataclasses.replace(spec))
        for w in range(spec.num_windows):
            assert legacy.parties_shifted_at(w) == again.parties_shifted_at(w)
            for p in range(spec.num_parties):
                assert legacy.regime_of(w, p) == again.regime_of(w, p)

    def _drifted_spec(self, drift, num_windows=4, num_parties=8):
        base = make_tiny_spec(
            num_parties=num_parties, num_windows=num_windows,
            window_regimes=(("identity", 1),) * (num_windows - 1))
        return dataclasses.replace(base, drift=drift)

    def test_sudden_cohort_shifts_once(self):
        spec = self._drifted_spec(
            ({"arrival": "sudden", "corruption": "fog", "severity": 4,
              "fraction": 0.5, "start_window": 2},))
        schedule = build_shift_schedule(spec)
        assert schedule.parties_shifted_at(0) == set()
        assert schedule.parties_shifted_at(1) == set()
        shifted = schedule.parties_shifted_at(2)
        assert len(shifted) == 4  # round(0.5 * 8)
        assert schedule.parties_shifted_at(3) == set()  # regime is stable
        for p in shifted:
            assert schedule.regime_of(2, p).corruption == "fog"

    def test_gradual_cohort_shifts_at_every_ramp_step(self):
        spec = self._drifted_spec(
            ({"arrival": "gradual", "corruption": "frost", "severity": 5,
              "fraction": 0.5, "start_window": 1, "ramp_windows": 3},))
        schedule = build_shift_schedule(spec)
        cohort = schedule.parties_shifted_at(1)
        assert cohort
        # Severity moves 1 -> 3 -> 5, so the cohort re-shifts each window.
        assert schedule.parties_shifted_at(2) == cohort
        assert schedule.parties_shifted_at(3) == cohort
        party = next(iter(cohort))
        sevs = [schedule.regime_of(w, party).severity for w in (1, 2, 3)]
        assert sevs == [1, 3, 5]

    def test_recurring_regime_reuses_one_regime_id(self):
        spec = self._drifted_spec(
            ({"arrival": "recurring", "corruption": "contrast", "severity": 3,
              "fraction": 0.5, "start_window": 1, "period": 1},),
            num_windows=5)
        schedule = build_shift_schedule(spec)
        party = next(iter(schedule.parties_shifted_at(1)))
        on1 = schedule.regime_of(1, party)
        off = schedule.regime_of(2, party)
        on2 = schedule.regime_of(3, party)
        assert on1.corruption == "contrast" and off.corruption == "identity"
        assert on1.regime_id == on2.regime_id  # the expert-reuse hook
        # Every phase flip is a semantic shift.
        assert schedule.parties_shifted_at(2) == schedule.parties_shifted_at(1)

    def test_class_incremental_masks_and_restores_prior(self):
        spec = self._drifted_spec(
            ({"arrival": "class_incremental", "corruption": "identity",
              "severity": 1, "fraction": 0.5, "start_window": 1,
              "classes_per_window": 1},))
        schedule = build_shift_schedule(spec)
        party = next(iter(schedule.parties_shifted_at(1)))
        for w in (1, 2, 3):
            prior = schedule.prior_of(w, party)
            assert np.isclose(prior.sum(), 1.0)
            assert np.count_nonzero(prior) <= w  # w classes arrived so far

    def test_phase_offsets_desynchronize_members(self):
        spec = self._drifted_spec(
            ({"arrival": "sudden", "corruption": "fog", "severity": 4,
              "fraction": 1.0, "start_window": 1, "max_phase_offset": 2},),
            num_windows=5, num_parties=16)
        schedule = build_shift_schedule(spec)
        first_shift = {}
        for w in range(1, 5):
            for p in schedule.parties_shifted_at(w):
                first_shift.setdefault(p, w)
        # With 16 members and offsets in {0, 1, 2} the cohort splits across
        # at least two distinct arrival windows.
        assert len(set(first_shift.values())) >= 2
        assert set(first_shift.values()) <= {1, 2, 3}

    def test_drift_schedule_is_deterministic(self):
        drift = ({"arrival": "gradual", "corruption": "fog", "severity": 5,
                  "fraction": 0.4, "start_window": 1, "ramp_windows": 2,
                  "max_phase_offset": 1},)
        a = build_shift_schedule(self._drifted_spec(drift))
        b = build_shift_schedule(self._drifted_spec(drift))
        for w in range(4):
            assert a.parties_shifted_at(w) == b.parties_shifted_at(w)
            for p in range(8):
                assert a.regime_of(w, p) == b.regime_of(w, p)
                assert np.array_equal(a.prior_of(w, p), b.prior_of(w, p))


# ----------------------------------------------------------------- documents


class TestScenarioDoc:
    def test_rejects_unknown_keys_per_block(self):
        with pytest.raises(ValueError, match="top level"):
            ScenarioDoc.from_dict(tiny_doc(cadence="daily"))
        with pytest.raises(ValueError, match="'data'"):
            ScenarioDoc(dataset="fmow_sim", strategies=["fedavg"],
                        data={"clients": 5})
        with pytest.raises(ValueError, match="'availability'"):
            ScenarioDoc(dataset="fmow_sim", strategies=["fedavg"],
                        availability={"drop": 0.3})

    def test_requires_dataset_and_strategies(self):
        with pytest.raises(ValueError, match="dataset"):
            ScenarioDoc.from_dict({"strategies": ["fedavg"]})
        with pytest.raises(ValueError, match="strategy"):
            ScenarioDoc(dataset="fmow_sim", strategies=[])

    def test_num_windows_requires_drift(self):
        doc = tiny_doc()
        doc["data"]["num_windows"] = 4
        with pytest.raises(ValueError, match="num_windows"):
            ScenarioDoc.from_dict(doc)

    def test_single_drift_table_is_coerced(self):
        doc = ScenarioDoc.from_dict(tiny_doc(
            drift={"arrival": "sudden", "fraction": 0.5}))
        assert len(doc.drift) == 1
        assert doc.drift[0].arrival == "sudden"

    def test_json_round_trip(self, tmp_path):
        doc = ScenarioDoc.from_dict(tiny_doc(
            seeds=[0, 1], availability={"preset": "flaky"},
            drift=[{"arrival": "recurring", "corruption": "fog",
                    "severity": 3, "fraction": 0.4, "period": 2}]))
        path = save_scenario(tmp_path / "doc.json", doc)
        assert load_scenario(path).to_dict() == doc.to_dict()

    def test_toml_load(self, tmp_path):
        path = tmp_path / "doc.toml"
        path.write_text(
            'dataset = "fashion_mnist_sim"\n'
            'strategies = ["fedavg", "shiftex"]\n'
            'seeds = [0, 1]\n\n'
            '[availability]\n'
            'participation = "async"\n'
            'preset = "stragglers"\n\n'
            '[[drift]]\n'
            'arrival = "gradual"\n'
            'corruption = "frost"\n'
            'severity = 5\n'
            'fraction = 0.3\n'
            'ramp_windows = 2\n')
        doc = load_scenario(path)
        assert doc.seeds == (0, 1)
        assert doc.availability["preset"] == "stragglers"
        assert doc.drift[0].arrival == "gradual"

    def test_load_errors_name_the_file(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text("dataset = [unclosed")
        with pytest.raises(ValueError, match="bad.toml"):
            load_scenario(bad)
        with pytest.raises(FileNotFoundError):
            load_scenario(tmp_path / "nope.toml")


# ------------------------------------------------------------------ compiler


class TestFlagParity:
    """Scenario docs compile to plans equal to their flag-built twins."""

    def _equal_modulo_name(self, a: ExperimentPlan, b: ExperimentPlan):
        da, db = a.to_dict(), b.to_dict()
        da["name"] = db["name"] = ""
        assert da == db

    @pytest.mark.parametrize("preset",
                             [s for s in SCENARIOS if s != "none"])
    def test_presets_match_flag_built_plans(self, preset):
        federation, _ = federation_from_knobs(preset=preset)
        flag_plan = ExperimentPlan.build(
            "fashion_mnist_sim", ("fedavg",), federation=federation)
        scenario_plan = compile_scenario({
            "dataset": "fashion_mnist_sim", "strategies": ["fedavg"],
            "availability": {"preset": preset}})
        self._equal_modulo_name(flag_plan, scenario_plan)

    def test_full_flag_surface_matches(self):
        federation, _ = federation_from_knobs(
            participation="buffered", preset="flaky", dropout=0.2,
            straggler=0.1, outage=0.05, min_reports=3, max_wait=2,
            staleness_policy="polynomial")
        population = population_from_knobs(size=40, max_resident=10,
                                           skew="zipf", zipf_a=1.5, survey=8)
        flag_plan = ExperimentPlan.build(
            "fmow_sim", ("fedavg", "shiftex"), seeds=(0, 1), profile="ci",
            dtype="float32", shards=2, secure_aggregation=True,
            federation=federation, population=population, cohort_size=4)
        scenario_plan = compile_scenario({
            "dataset": "fmow_sim", "strategies": ["fedavg", "shiftex"],
            "seeds": [0, 1], "profile": "ci", "dtype": "float32",
            "shards": 2, "secure_aggregation": True,
            "population": {"size": 40, "max_resident": 10, "skew": "zipf",
                           "zipf_a": 1.5, "survey": 8, "cohort_size": 4},
            "availability": {"participation": "buffered", "preset": "flaky",
                             "dropout": 0.2, "straggler": 0.1,
                             "outage": 0.05, "min_reports": 3, "max_wait": 2,
                             "staleness_policy": "polynomial"}})
        self._equal_modulo_name(flag_plan, scenario_plan)

    def test_empty_blocks_defer_to_profile(self):
        plain = ExperimentPlan.build("fashion_mnist_sim", ("fedavg",))
        compiled = compile_scenario({"dataset": "fashion_mnist_sim",
                                     "strategies": ["fedavg"]})
        self._equal_modulo_name(plain, compiled)
        assert compiled.spec_override is None
        assert compiled.settings_override is None
        assert compiled.federation is None


class TestCompiler:
    def test_data_and_rounds_resize_the_profile(self):
        plan = compile_scenario(tiny_doc())
        spec, settings = plan.resolve()
        assert spec.num_parties == 6
        assert spec.train_per_window == 24
        assert settings.rounds_burn_in == 2
        assert settings.round_config.participants_per_round == 3

    def test_drift_reaches_the_resolved_spec(self):
        plan = compile_scenario(tiny_doc(
            data={**TINY_DOC["data"], "num_windows": 3},
            drift=[{"arrival": "sudden", "corruption": "fog", "severity": 4,
                    "fraction": 0.5}]))
        spec, _settings = plan.resolve()
        assert spec.num_windows == 3
        assert spec.drift[0].corruption == "fog"
        schedule = build_shift_schedule(spec)
        assert schedule.parties_shifted_at(1)

    def test_drift_start_checked_against_scenario_windows(self):
        with pytest.raises(ValueError, match="outside the run"):
            compile_scenario(tiny_doc(
                data={**TINY_DOC["data"], "num_windows": 3},
                drift=[{"arrival": "sudden", "start_window": 5}]))

    def test_plan_round_trips_with_drift(self):
        plan = compile_scenario(tiny_doc(
            data={**TINY_DOC["data"], "num_windows": 3},
            drift=[{"arrival": "recurring", "corruption": "contrast",
                    "severity": 3, "fraction": 0.4}]))
        rebuilt = ExperimentPlan.from_dict(json.loads(
            json.dumps(plan.to_dict())))
        assert rebuilt.to_dict() == plan.to_dict()
        assert rebuilt.resolve()[0].drift == plan.resolve()[0].drift

    def test_rejects_tiny_window_counts(self):
        with pytest.raises(ValueError, match="num_windows"):
            compile_scenario(tiny_doc(
                data={**TINY_DOC["data"], "num_windows": 1},
                drift=[{"arrival": "sudden"}]))

    def test_population_dependents_require_size(self):
        with pytest.raises(ValueError, match="population size"):
            compile_scenario(tiny_doc(population={"max_resident": 4}))

    def test_lint_flags_sync_buffering_knobs(self):
        warnings = lint_scenario(tiny_doc(
            availability={"min_reports": 3}))
        assert any("buffered/async" in w for w in warnings)

    def test_lint_flags_unenumerable_outage_population(self):
        warnings = lint_scenario(tiny_doc(
            population={"size": 5000},
            availability={"preset": "outages"}))
        assert any("cohort_fates" in w for w in warnings)
        assert not lint_scenario(tiny_doc(
            population={"size": 5000}))  # no outage knob -> no advisory


# ----------------------------------------------------------------- generator


class TestScenarioGenerator:
    def test_same_seed_same_documents(self):
        a = ScenarioGenerator(seed=7).corpus(5)
        b = ScenarioGenerator(seed=7).corpus(5)
        assert [d.to_dict() for d in a] == [d.to_dict() for d in b]

    def test_different_seeds_differ(self):
        a = [d.to_dict() for d in ScenarioGenerator(seed=0).corpus(4)]
        b = [d.to_dict() for d in ScenarioGenerator(seed=1).corpus(4)]
        assert a != b

    def test_samples_are_valid_and_compile(self):
        for doc in ScenarioGenerator(seed=11).corpus(6):
            plan = compile_scenario(doc)
            spec, settings = plan.resolve()
            assert 2 <= spec.num_windows
            assert settings.round_config.participants_per_round >= 1

    def test_samples_survive_json_round_trip(self, tmp_path):
        doc = ScenarioGenerator(seed=3).sample(1)
        path = save_scenario(tmp_path / "sampled.json", doc)
        assert load_scenario(path).to_dict() == doc.to_dict()


# -------------------------------------------------------------- availability


class TestOutageEnumerationBoundary:
    def _sim(self, parties: int) -> AvailabilitySimulator:
        return AvailabilitySimulator(
            AvailabilityConfig(outage_prob=0.5, outage_fraction=0.2,
                               outage_rounds=2),
            num_parties=parties, seed=0)

    def test_at_limit_enumerates(self):
        sim = self._sim(4096)
        assert sim.enumerates_outages
        sim.outage_parties(0)  # no raise

    def test_above_limit_raises_with_cohort_fates_guidance(self):
        sim = self._sim(4097)
        assert not sim.enumerates_outages
        with pytest.raises(ValueError, match="cohort_fates"):
            sim.outage_parties(0)
        with pytest.raises(ValueError, match="enumeration_limit 4096"):
            sim.outage_parties(0)

    def test_membership_queries_still_work_above_limit(self):
        sim = self._sim(4097)
        fates = sim.cohort_fates([0, 1, 2, 4096], tick=3)
        assert len(fates) == 4


# ------------------------------------------------------------------ CLI


class TestScenarioCli:
    def test_validate_ok(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(tiny_doc()))
        assert main(["scenarios", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "fashion_mnist_sim" in out

    def test_validate_rejects_bad_doc(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(tiny_doc(cadence="daily")))
        assert main(["scenarios", "validate", str(path)]) == 2
        assert "cadence" in capsys.readouterr().err

    def test_validate_prints_lint_warnings(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(tiny_doc(
            availability={"min_reports": 3})))
        assert main(["scenarios", "validate", str(path)]) == 0
        assert "warning" in capsys.readouterr().err

    def test_sample_prints_deterministic_doc(self, capsys):
        assert main(["scenarios", "sample", "--seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["scenarios", "sample", "--seed", "5"]) == 0
        assert capsys.readouterr().out == first
        docs = json.loads(first)  # one JSON array, pipeable for any --count
        assert docs and docs[0]["dataset"]

    def test_sample_writes_files(self, tmp_path, capsys):
        assert main(["scenarios", "sample", "--seed", "2", "--count", "2",
                     "--output-dir", str(tmp_path)]) == 0
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == 2
        for path in files:
            compile_scenario(load_scenario(path))

    def test_run_requires_exactly_one_input(self, tmp_path, capsys):
        assert main(["run"]) == 2
        assert "exactly one" in capsys.readouterr().err
        path = tmp_path / "s.json"
        path.write_text(json.dumps(tiny_doc()))
        assert main(["run", str(path), "--scenario-file", str(path)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_run_scenario_file_rejects_bad_doc(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"strategies": ["fedavg"]}))
        assert main(["run", "--scenario-file", str(path)]) == 2
        assert "dataset" in capsys.readouterr().err

    def test_run_scenario_file_executes(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(tiny_doc(name="cli-tiny")))
        assert main(["run", "--scenario-file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cli-tiny" in out and "fedavg" in out
