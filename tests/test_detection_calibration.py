"""Tests for bootstrap threshold calibration."""

import numpy as np
import pytest

from repro.detection.calibration import (
    ThresholdCalibrator,
    bootstrap_jsd_null,
    bootstrap_mmd_null,
    bootstrap_party_mmd_null,
    threshold_from_null,
)
from repro.detection.mmd import class_conditional_mmd
from repro.utils.rng import spawn_rng


def make_party_pools(rng, num_parties=6, n=40, d=4, class_gap=3.0):
    pools = []
    for _party in range(num_parties):
        labels = rng.integers(0, 3, n)
        embeddings = rng.normal(size=(n, d)) + class_gap * labels[:, None]
        pools.append((embeddings, labels))
    return pools


class TestThresholdFromNull:
    def test_is_quantile(self):
        scores = np.arange(100, dtype=float)
        assert threshold_from_null(scores, p_value=0.05) == pytest.approx(94.05)

    def test_rejects_bad_pvalue(self):
        with pytest.raises(ValueError):
            threshold_from_null(np.ones(10), p_value=0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            threshold_from_null(np.array([]))


class TestMmdNull:
    def test_null_scores_nonnegative(self, rng):
        pool = rng.normal(size=(80, 4))
        null = bootstrap_mmd_null(pool, 20, 50, rng)
        assert null.shape == (50,)
        assert np.all(null >= 0)

    def test_rejects_oversized_sample(self, rng):
        with pytest.raises(ValueError):
            bootstrap_mmd_null(rng.normal(size=(10, 3)), 8, 10, rng)

    def test_threshold_controls_false_positives(self, rng):
        """Fresh same-distribution splits exceed the 5% threshold rarely."""
        pool = rng.normal(size=(200, 4))
        null = bootstrap_mmd_null(pool, 40, 150, rng)
        threshold = threshold_from_null(null, 0.05)
        from repro.detection.mmd import mmd, median_heuristic_gamma
        gamma = median_heuristic_gamma(pool)
        false_positives = 0
        trials = 40
        for t in range(trials):
            r = spawn_rng(t, "fpr")
            a = r.normal(size=(40, 4))
            b = r.normal(size=(40, 4))
            if mmd(a, b, gamma) > threshold:
                false_positives += 1
        assert false_positives / trials < 0.25


class TestJsdNull:
    def test_shapes_and_range(self, rng):
        null = bootstrap_jsd_null(np.array([0.25, 0.25, 0.5]), 50, 80, rng)
        assert null.shape == (80,)
        assert np.all(null >= 0) and np.all(null <= np.log(2))

    def test_larger_samples_have_smaller_null(self, rng):
        prior = np.full(5, 0.2)
        small = bootstrap_jsd_null(prior, 20, 100, spawn_rng(0, "s"))
        large = bootstrap_jsd_null(prior, 500, 100, spawn_rng(0, "l"))
        assert large.mean() < small.mean()

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            bootstrap_jsd_null(np.array([0.5, 0.5]), 0, 10, rng)
        with pytest.raises(ValueError):
            bootstrap_jsd_null(np.array([0.5, 0.5]), 10, 0, rng)


class TestPartyMmdNull:
    def test_scores_shape(self, rng):
        pools = make_party_pools(rng)
        null = bootstrap_party_mmd_null(pools, 40, rng)
        assert null.shape == (40,)
        assert np.all(null >= 0)

    def test_rejects_empty_pools(self, rng):
        with pytest.raises(ValueError):
            bootstrap_party_mmd_null([], 10, rng)

    def test_rejects_misaligned_labels(self, rng):
        pools = [(rng.normal(size=(10, 3)), np.zeros(9, dtype=int))]
        with pytest.raises(ValueError):
            bootstrap_party_mmd_null(pools, 10, rng)


class TestCalibrator:
    def test_end_to_end_detection_separation(self):
        """Calibrated threshold separates no-shift from a real covariate shift."""
        rng = spawn_rng(0, "cal")
        pools = make_party_pools(rng, num_parties=8, n=40)
        priors = np.full((8, 3), 1 / 3)
        calibrator = ThresholdCalibrator(num_bootstrap=120, p_value=0.05)
        thresholds = calibrator.calibrate(pools, priors, window_sample_size=40,
                                          rng=rng, reuse_sample_size=32)
        assert thresholds.delta_cov > 0
        assert 0 < thresholds.delta_label < np.log(2)
        assert thresholds.epsilon_base > 0

        # A fresh draw from the same distribution scores under the threshold.
        emb, labels = pools[0]
        fresh = spawn_rng(1, "fresh")
        emb2 = fresh.normal(size=emb.shape) + 3.0 * labels[:, None]
        stable_score = class_conditional_mmd(emb, labels, emb2, labels,
                                             thresholds.gamma)
        # A shifted draw (covariates translated) scores above it.
        emb3 = emb2 + 4.0
        shift_score = class_conditional_mmd(emb, labels, emb3, labels,
                                            thresholds.gamma)
        assert stable_score < thresholds.delta_cov < shift_score

    def test_rejects_empty_pools(self, rng):
        calibrator = ThresholdCalibrator()
        with pytest.raises(ValueError):
            calibrator.calibrate([], np.full((1, 3), 1 / 3), 10, rng)

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            ThresholdCalibrator(num_bootstrap=0)
        with pytest.raises(ValueError):
            ThresholdCalibrator(p_value=1.5)
