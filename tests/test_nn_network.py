"""Tests for the Sequential container."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU
from repro.nn.network import Sequential


def make_net(rng):
    return Sequential([Dense(6, 5, rng), ReLU(), Dense(5, 3, rng)])


class TestForward:
    def test_logit_shape(self, rng):
        net = make_net(rng)
        assert net.forward(rng.normal(size=(4, 6))).shape == (4, 3)

    def test_predict_returns_argmax(self, rng):
        net = make_net(rng)
        x = rng.normal(size=(4, 6))
        preds = net.predict(x)
        assert np.array_equal(preds, net.forward(x).argmax(axis=1))

    def test_accuracy_range(self, rng):
        net = make_net(rng)
        x = rng.normal(size=(10, 6))
        y = rng.integers(0, 3, 10)
        assert 0.0 <= net.accuracy(x, y) <= 1.0

    def test_accuracy_empty_rejected(self, rng):
        net = make_net(rng)
        with pytest.raises(ValueError):
            net.accuracy(np.zeros((0, 6)), np.zeros(0, dtype=int))

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestFeatures:
    def test_features_are_penultimate(self, rng):
        net = make_net(rng)
        x = rng.normal(size=(4, 6))
        feats = net.features(x)
        assert feats.shape == (4, 5)
        # Applying the head manually reproduces the logits.
        logits = feats @ net.layers[-1].params[0] + net.layers[-1].params[1]
        assert np.allclose(logits, net.forward(x))

    def test_features_flatten_conv_output(self, rng):
        from repro.nn.layers import Conv2d, GlobalAvgPool2d
        net = Sequential([Conv2d(1, 4, 3, rng, padding=1), GlobalAvgPool2d(),
                          Dense(4, 2, rng)])
        feats = net.features(rng.normal(size=(3, 1, 6, 6)))
        assert feats.shape == (3, 4)

    def test_custom_feature_index(self, rng):
        net = Sequential([Dense(6, 5, rng), ReLU(), Dense(5, 3, rng)],
                         feature_index=1)
        feats = net.features(rng.normal(size=(2, 6)))
        assert feats.shape == (2, 5)

    def test_feature_index_out_of_range(self, rng):
        with pytest.raises(ValueError):
            Sequential([Dense(2, 2, rng)], feature_index=5)


class TestForwardWithFeatures:
    def test_matches_separate_calls(self, rng):
        net = make_net(rng)
        x = rng.normal(size=(4, 6))
        logits, feats = net.forward_with_features(x)
        assert np.allclose(logits, net.forward(x))
        assert np.allclose(feats, net.features(x))

    def test_custom_feature_index(self, rng):
        net = Sequential([Dense(6, 5, rng), ReLU(), Dense(5, 3, rng)],
                         feature_index=1)
        x = rng.normal(size=(2, 6))
        logits, feats = net.forward_with_features(x)
        assert feats.shape == (2, 5)
        assert logits.shape == (2, 3)

    def test_conv_features_flattened(self, rng):
        from repro.nn.layers import Conv2d, GlobalAvgPool2d
        net = Sequential([Conv2d(1, 4, 3, rng, padding=1), GlobalAvgPool2d(),
                          Dense(4, 2, rng)])
        _logits, feats = net.forward_with_features(rng.normal(size=(3, 1, 6, 6)))
        assert feats.shape == (3, 4)


class TestFlatStorage:
    def test_params_are_views_of_flat_vector(self, rng):
        net = make_net(rng)
        flat = net.flat_params
        assert flat.size == net.num_params
        flat[0] = 123.0
        assert net.params[0].ravel()[0] == 123.0
        net.params[0][0, 0] = 456.0
        assert flat[0] == 456.0

    def test_grads_are_views_of_flat_vector(self, rng):
        net = make_net(rng)
        from repro.nn.losses import softmax_cross_entropy
        logits = net.forward(rng.normal(size=(4, 6)), training=True)
        _, grad = softmax_cross_entropy(logits, rng.integers(0, 3, 4))
        net.backward(grad)
        assert np.abs(net.flat_grads).sum() > 0
        net.zero_grads()
        assert np.all(net.flat_grads == 0)

    def test_flatten_params_of_model_is_zero_copy(self, rng):
        from repro.utils.params import flatten_params
        net = make_net(rng)
        flat = flatten_params(net.params)
        assert np.shares_memory(flat, net.flat_params)

    def test_bind_to_external_vector(self, rng):
        from repro.utils.params import ParamBank
        net = make_net(rng)
        bank = ParamBank.from_param_sets([net.get_params()])
        x = rng.normal(size=(3, 6))
        before = net.forward(x)
        net.bind_to(bank.row(0))
        assert np.allclose(net.forward(x), before)
        # Mutating the bank row is visible through the model...
        bank.row(0)[:] = 0.0
        assert np.allclose(net.forward(x), net.forward(x * 0))
        # ...and training the model writes into the bank row.
        net.params[0][0, 0] = 5.0
        assert bank.row(0)[0] == 5.0

    def test_bind_to_rejects_wrong_size_or_dtype(self, rng):
        net = make_net(rng)
        with pytest.raises(ValueError):
            net.bind_to(np.zeros(net.num_params + 1))
        with pytest.raises(ValueError):
            net.bind_to(np.zeros(net.num_params, dtype=np.float32))

    def test_resnet_composite_blocks_are_bound(self, rng):
        from repro.nn.residual import build_resnet_mini
        net = build_resnet_mini((1, 4, 4), 3, rng)
        net.flat_params[:] = 0.25
        assert all(np.all(p == 0.25) for p in net.params)


class TestDtype:
    def test_default_is_float64(self, rng):
        net = make_net(rng)
        assert net.dtype == np.dtype(np.float64)
        assert net.forward(rng.normal(size=(2, 6))).dtype == np.float64

    def test_float32_model_runs_in_float32(self, rng):
        net = Sequential([Dense(6, 5, rng), ReLU(), Dense(5, 3, rng)],
                         dtype=np.float32)
        assert all(p.dtype == np.float32 for p in net.params)
        x = rng.normal(size=(4, 6))  # float64 input is cast on entry
        logits = net.forward(x, training=True)
        assert logits.dtype == np.float32
        from repro.nn.losses import softmax_cross_entropy
        _, grad = softmax_cross_entropy(logits, rng.integers(0, 3, 4))
        net.backward(grad)
        assert all(g.dtype == np.float32 for g in net.grads)

    def test_float32_matches_float64_closely(self, rng):
        net64 = make_net(rng)
        net32 = Sequential([Dense(6, 5, rng), ReLU(), Dense(5, 3, rng)],
                           dtype=np.float32)
        net32.set_params(net64.get_params())  # float64 -> float32 cast
        x = rng.normal(size=(8, 6))
        assert np.allclose(net32.forward(x), net64.forward(x), atol=1e-4)

    def test_builder_dtype_knob(self, rng):
        from repro.nn.models import build_model
        net = build_model("mlp", (8,), 3, rng, dtype="float32")
        assert net.dtype == np.dtype(np.float32)

    def test_train_local_respects_dtype(self, rng):
        from repro.nn.models import build_model
        from repro.nn.training import LocalTrainingConfig, train_local
        net = build_model("mlp", (4,), 3, rng, dtype="float32")
        x = rng.normal(size=(16, 4))
        y = rng.integers(0, 3, 16)
        result = train_local(net, x, y, LocalTrainingConfig(epochs=1,
                                                            batch_size=8), rng)
        assert np.isfinite(result.mean_loss)
        assert all(p.dtype == np.float32 for p in result.params)


class TestParams:
    def test_get_set_roundtrip(self, rng):
        net = make_net(rng)
        saved = net.get_params()
        x = rng.normal(size=(3, 6))
        before = net.forward(x)
        net.set_params([p * 0 for p in saved])
        assert not np.allclose(net.forward(x), before)
        net.set_params(saved)
        assert np.allclose(net.forward(x), before)

    def test_get_params_is_deep_copy(self, rng):
        net = make_net(rng)
        saved = net.get_params()
        saved[0][...] = 0
        assert not np.allclose(net.params[0], 0)

    def test_flat_roundtrip(self, rng):
        net = make_net(rng)
        flat = net.get_flat_params()
        assert flat.size == net.num_params
        net.set_flat_params(flat * 2)
        assert np.allclose(net.get_flat_params(), flat * 2)

    def test_set_params_shape_mismatch(self, rng):
        net = make_net(rng)
        bad = net.get_params()
        bad[0] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.set_params(bad)

    def test_set_params_length_mismatch(self, rng):
        net = make_net(rng)
        with pytest.raises(ValueError):
            net.set_params(net.get_params()[:-1])

    def test_zero_grads(self, rng):
        net = make_net(rng)
        from repro.nn.losses import softmax_cross_entropy
        logits = net.forward(rng.normal(size=(4, 6)), training=True)
        _, grad = softmax_cross_entropy(logits, rng.integers(0, 3, 4))
        net.backward(grad)
        assert any(np.abs(g).sum() > 0 for g in net.grads)
        net.zero_grads()
        assert all(np.all(g == 0) for g in net.grads)

    def test_describe_mentions_layers(self, rng):
        assert "Dense" in make_net(rng).describe()


class TestExtraState:
    def test_roundtrip_with_batchnorm(self, rng):
        from repro.nn.layers import BatchNorm
        net = Sequential([Dense(4, 3, rng), BatchNorm(3), Dense(3, 2, rng)])
        net.forward(rng.normal(size=(16, 4)), training=True)
        state = net.extra_state()
        other = Sequential([Dense(4, 3, rng), BatchNorm(3), Dense(3, 2, rng)])
        other.load_extra_state(state)
        assert np.allclose(other.layers[1].running_mean, net.layers[1].running_mean)

    def test_length_mismatch_rejected(self, rng):
        net = make_net(rng)
        with pytest.raises(ValueError):
            net.load_extra_state([{}])
