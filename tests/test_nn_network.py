"""Tests for the Sequential container."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.network import Sequential


def make_net(rng):
    return Sequential([Dense(6, 5, rng), ReLU(), Dense(5, 3, rng)])


class TestForward:
    def test_logit_shape(self, rng):
        net = make_net(rng)
        assert net.forward(rng.normal(size=(4, 6))).shape == (4, 3)

    def test_predict_returns_argmax(self, rng):
        net = make_net(rng)
        x = rng.normal(size=(4, 6))
        preds = net.predict(x)
        assert np.array_equal(preds, net.forward(x).argmax(axis=1))

    def test_accuracy_range(self, rng):
        net = make_net(rng)
        x = rng.normal(size=(10, 6))
        y = rng.integers(0, 3, 10)
        assert 0.0 <= net.accuracy(x, y) <= 1.0

    def test_accuracy_empty_rejected(self, rng):
        net = make_net(rng)
        with pytest.raises(ValueError):
            net.accuracy(np.zeros((0, 6)), np.zeros(0, dtype=int))

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestFeatures:
    def test_features_are_penultimate(self, rng):
        net = make_net(rng)
        x = rng.normal(size=(4, 6))
        feats = net.features(x)
        assert feats.shape == (4, 5)
        # Applying the head manually reproduces the logits.
        logits = feats @ net.layers[-1].params[0] + net.layers[-1].params[1]
        assert np.allclose(logits, net.forward(x))

    def test_features_flatten_conv_output(self, rng):
        from repro.nn.layers import Conv2d, GlobalAvgPool2d
        net = Sequential([Conv2d(1, 4, 3, rng, padding=1), GlobalAvgPool2d(),
                          Dense(4, 2, rng)])
        feats = net.features(rng.normal(size=(3, 1, 6, 6)))
        assert feats.shape == (3, 4)

    def test_custom_feature_index(self, rng):
        net = Sequential([Dense(6, 5, rng), ReLU(), Dense(5, 3, rng)],
                         feature_index=1)
        feats = net.features(rng.normal(size=(2, 6)))
        assert feats.shape == (2, 5)

    def test_feature_index_out_of_range(self, rng):
        with pytest.raises(ValueError):
            Sequential([Dense(2, 2, rng)], feature_index=5)


class TestParams:
    def test_get_set_roundtrip(self, rng):
        net = make_net(rng)
        saved = net.get_params()
        x = rng.normal(size=(3, 6))
        before = net.forward(x)
        net.set_params([p * 0 for p in saved])
        assert not np.allclose(net.forward(x), before)
        net.set_params(saved)
        assert np.allclose(net.forward(x), before)

    def test_get_params_is_deep_copy(self, rng):
        net = make_net(rng)
        saved = net.get_params()
        saved[0][...] = 0
        assert not np.allclose(net.params[0], 0)

    def test_flat_roundtrip(self, rng):
        net = make_net(rng)
        flat = net.get_flat_params()
        assert flat.size == net.num_params
        net.set_flat_params(flat * 2)
        assert np.allclose(net.get_flat_params(), flat * 2)

    def test_set_params_shape_mismatch(self, rng):
        net = make_net(rng)
        bad = net.get_params()
        bad[0] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.set_params(bad)

    def test_set_params_length_mismatch(self, rng):
        net = make_net(rng)
        with pytest.raises(ValueError):
            net.set_params(net.get_params()[:-1])

    def test_zero_grads(self, rng):
        net = make_net(rng)
        from repro.nn.losses import softmax_cross_entropy
        logits = net.forward(rng.normal(size=(4, 6)), training=True)
        _, grad = softmax_cross_entropy(logits, rng.integers(0, 3, 4))
        net.backward(grad)
        assert any(np.abs(g).sum() > 0 for g in net.grads)
        net.zero_grads()
        assert all(np.all(g == 0) for g in net.grads)

    def test_describe_mentions_layers(self, rng):
        assert "Dense" in make_net(rng).describe()


class TestExtraState:
    def test_roundtrip_with_batchnorm(self, rng):
        from repro.nn.layers import BatchNorm
        net = Sequential([Dense(4, 3, rng), BatchNorm(3), Dense(3, 2, rng)])
        net.forward(rng.normal(size=(16, 4)), training=True)
        state = net.extra_state()
        other = Sequential([Dense(4, 3, rng), BatchNorm(3), Dense(3, 2, rng)])
        other.load_extra_state(state)
        assert np.allclose(other.layers[1].running_mean, net.layers[1].running_mean)

    def test_length_mismatch_rejected(self, rng):
        net = make_net(rng)
        with pytest.raises(ValueError):
            net.load_extra_state([{}])
