"""Tests for the latent memory reservoir."""

import numpy as np
import pytest

from repro.experts.memory import LatentMemory
from repro.utils.rng import spawn_rng


class TestUpdate:
    def test_empty_until_first_update(self, rng):
        memory = LatentMemory(capacity=8)
        assert memory.is_empty
        with pytest.raises(RuntimeError):
            _ = memory.signature
        memory.update(rng.normal(size=(10, 3)), rng)
        assert not memory.is_empty

    def test_capacity_respected(self, rng):
        memory = LatentMemory(capacity=8)
        memory.update(rng.normal(size=(30, 3)), rng)
        assert memory.signature.shape == (8, 3)
        memory.update(rng.normal(size=(30, 3)), rng)
        assert memory.signature.shape == (8, 3)

    def test_grows_toward_capacity(self, rng):
        memory = LatentMemory(capacity=16)
        memory.update(rng.normal(size=(4, 3)), rng)
        assert memory.signature.shape[0] == 4
        memory.update(rng.normal(size=(20, 3)), rng)
        assert memory.signature.shape[0] == 16

    def test_eta_one_fully_replaces(self, rng):
        memory = LatentMemory(capacity=4, eta=1.0)
        memory.update(np.zeros((10, 2)), rng)
        memory.update(np.ones((10, 2)), rng)
        assert np.allclose(memory.signature, 1.0)

    def test_small_eta_retains_old_rows(self, rng):
        memory = LatentMemory(capacity=10, eta=0.2)
        memory.update(np.zeros((20, 2)), rng)
        memory.update(np.ones((20, 2)), rng)
        old_rows = np.sum(np.all(memory.signature == 0.0, axis=1))
        assert old_rows >= 6

    def test_centroid_ema(self, rng):
        memory = LatentMemory(capacity=8, eta=0.5)
        memory.update(np.zeros((10, 2)), rng)
        memory.update(np.ones((10, 2)), rng)
        assert np.allclose(memory.centroid, 0.5)

    def test_memory_decays_geometrically(self, rng):
        """Repeated updates from a new regime converge the centroid there."""
        memory = LatentMemory(capacity=8, eta=0.4)
        memory.update(np.zeros((10, 2)), rng)
        for _ in range(12):
            memory.update(np.ones((10, 2)), rng)
        assert np.allclose(memory.centroid, 1.0, atol=0.01)
        assert np.allclose(memory.signature, 1.0)

    def test_dim_mismatch_rejected(self, rng):
        memory = LatentMemory(capacity=4)
        memory.update(rng.normal(size=(5, 3)), rng)
        with pytest.raises(ValueError):
            memory.update(rng.normal(size=(5, 4)), rng)

    def test_updates_counter(self, rng):
        memory = LatentMemory(capacity=4)
        memory.update(rng.normal(size=(5, 3)), rng)
        memory.update(rng.normal(size=(5, 3)), rng)
        assert memory.updates == 2

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            LatentMemory(capacity=0)
        with pytest.raises(ValueError):
            LatentMemory(capacity=4, eta=0.0)


class TestMerge:
    def test_merged_mixes_rows(self):
        rng = spawn_rng(0, "merge")
        a = LatentMemory(capacity=10)
        b = LatentMemory(capacity=10)
        a.update(np.zeros((20, 2)), rng)
        b.update(np.ones((20, 2)), rng)
        merged = a.merged_with(b, self_weight=0.5, rng=rng)
        rows_a = np.sum(np.all(merged.signature == 0.0, axis=1))
        rows_b = np.sum(np.all(merged.signature == 1.0, axis=1))
        assert rows_a > 0 and rows_b > 0
        assert np.allclose(merged.centroid, 0.5)

    def test_merge_with_empty(self, rng):
        a = LatentMemory(capacity=6)
        b = LatentMemory(capacity=6)
        a.update(np.ones((8, 2)), rng)
        merged = a.merged_with(b, 0.7, rng)
        assert np.allclose(merged.signature, 1.0)
        both_empty = b.merged_with(LatentMemory(capacity=6), 0.5, rng)
        assert both_empty.is_empty

    def test_merge_weight_bounds(self, rng):
        a = LatentMemory(capacity=6)
        with pytest.raises(ValueError):
            a.merged_with(LatentMemory(capacity=6), 1.5, rng)

    def test_merge_weight_skews_rows(self):
        rng = spawn_rng(1, "skew")
        a = LatentMemory(capacity=20)
        b = LatentMemory(capacity=20)
        a.update(np.zeros((40, 2)), rng)
        b.update(np.ones((40, 2)), rng)
        merged = a.merged_with(b, self_weight=0.9, rng=rng)
        rows_a = np.sum(np.all(merged.signature == 0.0, axis=1))
        assert rows_a >= 15
