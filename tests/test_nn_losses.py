"""Tests for softmax cross-entropy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.losses import softmax_cross_entropy, softmax_probs


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax_probs(rng.normal(size=(5, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_invariant_to_constant_shift(self, rng):
        logits = rng.normal(size=(3, 4))
        assert np.allclose(softmax_probs(logits), softmax_probs(logits + 100.0))

    def test_numerically_stable_for_large_logits(self):
        probs = softmax_probs(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_loss_is_log_k(self):
        k = 5
        logits = np.zeros((3, k))
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(k))

    def test_gradient_rows_sum_to_zero(self, rng):
        logits = rng.normal(size=(4, 6))
        _, grad = softmax_cross_entropy(logits, rng.integers(0, 6, 4))
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_gradient_matches_finite_difference(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = rng.integers(0, 4, 3)
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                lp = logits.copy(); lp[i, j] += eps
                lm = logits.copy(); lm[i, j] -= eps
                num = (softmax_cross_entropy(lp, labels)[0]
                       - softmax_cross_entropy(lm, labels)[0]) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-6)

    def test_rejects_label_out_of_range(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 3]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0]))

    def test_rejects_1d_logits(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(3), np.array([0]))

    @given(hnp.arrays(np.float64, (4, 3), elements=st.floats(-20, 20)))
    @settings(max_examples=30, deadline=None)
    def test_loss_nonnegative(self, logits):
        labels = np.array([0, 1, 2, 0])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss >= 0.0
        assert np.isfinite(grad).all()
