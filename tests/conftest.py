"""Shared fixtures: tiny dataset specs and pre-trained mini federations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.federated import FederatedShiftDataset
from repro.data.registry import DatasetSpec
from repro.federation.party import Party
from repro.federation.rounds import RoundConfig
from repro.federation.strategy import StrategyContext
from repro.harness.profiles import RunSettings
from repro.nn.models import build_model
from repro.nn.training import LocalTrainingConfig
from repro.utils.rng import spawn_rng


def make_tiny_spec(name: str = "unit_tiny", num_parties: int = 8,
                   num_windows: int = 3, label_shift: bool = False,
                   window_regimes: tuple = (("fog", 4), ("fog", 4)),
                   num_classes: int = 4, train: int = 32, test: int = 16,
                   model_name: str = "mlp", seed: int = 101) -> DatasetSpec:
    """A deliberately small dataset spec for fast unit tests."""
    return DatasetSpec(
        name=name,
        paper_name="unit-test",
        num_classes=num_classes,
        image_size=8,
        channels=1,
        num_parties=num_parties,
        num_windows=num_windows,
        model_name=model_name,
        windowing="tumbling",
        window_regimes=window_regimes,
        label_shift=label_shift,
        dirichlet_alpha=3.0,
        train_per_window=train,
        test_per_window=test,
        domain_noise_scale=0.15,
        seed=seed,
    )


def make_run_settings(rounds_burn_in: int = 3, rounds_per_window: int = 2,
                      participants: int = 4, epochs: int = 2) -> RunSettings:
    return RunSettings(
        rounds_burn_in=rounds_burn_in,
        rounds_per_window=rounds_per_window,
        round_config=RoundConfig(
            participants_per_round=participants,
            local=LocalTrainingConfig(epochs=epochs, batch_size=8, lr=0.05,
                                      momentum=0.9),
        ),
    )


def make_context(spec: DatasetSpec, dataset: FederatedShiftDataset,
                 window: int = 0, seed: int = 0,
                 settings: RunSettings | None = None) -> StrategyContext:
    """Build parties holding the given window's data plus a strategy context."""
    settings = settings if settings is not None else make_run_settings()
    parties: dict[int, Party] = {}
    for pid in range(spec.num_parties):
        model = build_model(spec.model_name, spec.input_shape, spec.num_classes,
                            spawn_rng(seed, "party-model", pid))
        party = Party(pid, model, spec.num_classes, seed=seed)
        party.set_window_data(dataset.party_window(pid, window))
        parties[pid] = party

    def model_factory():
        return build_model(spec.model_name, spec.input_shape, spec.num_classes,
                           spawn_rng(seed, "global-model-init"))

    return StrategyContext(
        spec=spec,
        parties=parties,
        model_factory=model_factory,
        round_config=settings.round_config,
        seed=seed,
    )


@pytest.fixture(scope="session")
def tiny_spec() -> DatasetSpec:
    return make_tiny_spec()


@pytest.fixture(scope="session")
def tiny_dataset(tiny_spec) -> FederatedShiftDataset:
    return FederatedShiftDataset(tiny_spec)


@pytest.fixture()
def rng() -> np.random.Generator:
    return spawn_rng(0, "test")
