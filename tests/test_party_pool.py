"""Virtual-party residency tests: PartyPool must be invisible in the bits.

The contract under test (ISSUE 6): a pooled run with ``population ==
spec.num_parties`` and an unbounded pool reproduces the eager party-dict
path bit for bit — for every strategy — and bounding the pool (LRU
eviction, model recycling, lazy data rebinding) still cannot change a
single number, because every piece of party state is a pure function of
``(seed, labels...)`` RNG streams.  On top of that invariant sit the
population-scale mechanics: O(cohort) sampling and availability at
populations the eager path could never build, pin-aware eviction that
never corrupts an in-flight straggler, and deterministic eviction order.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.federated import FederatedShiftDataset
from repro.experiments.plan import ExperimentPlan
from repro.experiments.registry import build_strategy, strategy_names
from repro.federation.availability import (
    AvailabilityConfig,
    AvailabilitySimulator,
)
from repro.federation.party import Party
from repro.federation.pool import (
    PARTICIPATION_SKEWS,
    CohortSampler,
    PartyPool,
    PartySpec,
    PopulationConfig,
)
from repro.federation.strategy import StrategyContext
from repro.harness.profiles import RunSettings
from repro.utils.precision import PrecisionPlan
from repro.harness.runner import run_strategy
from repro.nn.models import build_model
from repro.utils.rng import spawn_rng
from repro.utils.serialization import run_result_to_dict
from tests.conftest import make_run_settings, make_tiny_spec


def _canonical(result, pooled: bool = False) -> str:
    """A run result as comparable JSON minus wall-clock profiler noise."""
    out = run_result_to_dict(result)
    out.pop("profiler", None)
    if pooled:
        out.get("extras", {}).pop("party_pool", None)
    return json.dumps(out, sort_keys=True)


def _pooled_settings(base: RunSettings, population,
                     max_resident: int | None = None) -> RunSettings:
    config = PopulationConfig.from_value(population)
    if max_resident is not None:
        config = dataclasses.replace(config, max_resident=max_resident)
    return dataclasses.replace(base, population=config)


class TestPopulationConfig:
    def test_from_value_coercions(self):
        assert PopulationConfig.from_value(None) is None
        assert PopulationConfig.from_value(8) == PopulationConfig(size=8)
        cfg = PopulationConfig.from_value(
            {"size": 100, "max_resident": 4, "skew": "zipf", "zipf_a": 1.5})
        assert (cfg.size, cfg.max_resident, cfg.skew, cfg.zipf_a) == \
            (100, 4, "zipf", 1.5)
        assert PopulationConfig.from_value(cfg) is cfg
        assert PopulationConfig.from_value(cfg.to_dict()) == cfg

    def test_validation(self):
        with pytest.raises(ValueError, match="size"):
            PopulationConfig(size=0)
        with pytest.raises(ValueError, match="max_resident"):
            PopulationConfig(size=8, max_resident=0)
        with pytest.raises(ValueError, match="skew"):
            PopulationConfig(size=8, skew="bimodal")
        with pytest.raises(ValueError, match="zipf_a"):
            PopulationConfig(size=8, zipf_a=0.0)
        with pytest.raises(ValueError, match="survey"):
            PopulationConfig(size=8, survey=0)
        with pytest.raises(TypeError):
            PopulationConfig.from_value("12")


class TestCohortSampler:
    def test_uniform_matches_eager_selection_bitwise(self):
        """The pooled uniform draw is the exact eager strategies' draw.

        Eager selection is ``rng.choice(sorted(parties), k, replace=False)``
        over the materialized id list; the pool draws ``choice(n, k)``
        directly.  numpy guarantees the same bits for both forms, which is
        the whole reason population == num_parties stays bitwise.
        """
        sampler = CohortSampler(24)
        for draw in range(5):
            rng_a = spawn_rng(7, "select", draw)
            rng_b = spawn_rng(7, "select", draw)
            pooled = sampler.sample(rng_a, 8)
            eager = [int(p) for p in
                     rng_b.choice(sorted(range(24)), size=8, replace=False)]
            assert pooled == eager

    def test_uniform_is_o_cohort_at_scale(self):
        sampler = CohortSampler(1_000_000)
        cohort = sampler.sample(spawn_rng(0, "big"), 64)
        assert len(cohort) == len(set(cohort)) == 64
        assert all(0 <= p < 1_000_000 for p in cohort)

    def test_zipf_is_deterministic_and_skewed(self):
        sampler = CohortSampler(100_000, skew="zipf", zipf_a=1.2)
        first = sampler.sample(spawn_rng(3, "zipf"), 64)
        second = sampler.sample(spawn_rng(3, "zipf"), 64)
        assert first == second
        assert len(set(first)) == 64
        # Zipf mass concentrates on low ranks: the head must dominate a
        # uniform draw's expected placement.
        assert np.median(first) < 100_000 / 4

    def test_zipf_dense_fallback_and_full_population(self):
        sampler = CohortSampler(10, skew="zipf")
        dense = sampler.sample(spawn_rng(1, "dense"), 6)  # 4*k >= population
        assert len(set(dense)) == 6
        assert sampler.sample(spawn_rng(1, "full"), 10) == list(range(10))
        assert sampler.sample(spawn_rng(1, "over"), 99) == list(range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            CohortSampler(0)
        with pytest.raises(ValueError):
            CohortSampler(8, skew="bimodal")
        with pytest.raises(ValueError):
            CohortSampler(8, zipf_a=-1.0)
        with pytest.raises(ValueError):
            CohortSampler(8).sample(spawn_rng(0, "x"), 0)


class TestPartyPoolResidency:
    def _pool(self, **kwargs) -> PartyPool:
        spec = make_tiny_spec(name="unit_pool", num_parties=4, num_windows=2,
                              window_regimes=(("fog", 4),), seed=31)
        return PartyPool(spec, FederatedShiftDataset(spec), seed=0, **kwargs)

    def test_mapping_protocol(self):
        pool = self._pool(population=10)
        assert len(pool) == 10
        assert list(pool) == list(range(10))
        assert 9 in pool and 10 not in pool and -1 not in pool
        assert sorted(pool) == list(range(10))
        with pytest.raises(KeyError):
            pool[10]

    def test_spec_for_wraps_shards(self):
        pool = self._pool(population=10, dtype="float32")
        assert pool.spec_for(7) == PartySpec(party_id=7, shard_id=3, seed=0,
                                             dtype="float32")
        with pytest.raises(KeyError):
            pool.spec_for(10)

    def test_materialize_binds_current_window_data(self):
        pool = self._pool(population=6)
        party = pool[5]
        assert isinstance(party, Party)
        assert party.data.window == 0
        pool.begin_window(1)
        # Residents' stale data is dropped; access rebinds lazily.
        assert pool[5].data.window == 1

    def test_lru_eviction_is_deterministic(self):
        logs = []
        for _ in range(2):
            pool = self._pool(population=8, max_resident=2)
            for pid in (0, 1, 2, 0, 3, 4):
                pool[pid]
            logs.append(list(pool.eviction_log))
        assert logs[0] == logs[1]
        # 0,1 resident -> 2 evicts 0 -> touching 0 evicts 1 -> 3 evicts 2 ...
        assert logs[0] == [0, 1, 2, 0]
        assert pool.resident_ids() == (3, 4)
        assert pool.counters["evictions"] == 4

    def test_model_free_list_recycles_replicas(self):
        pool = self._pool(population=8, max_resident=1)
        for pid in range(8):
            pool[pid]
        # One replica plus the transient overshoot during materialization.
        assert pool.counters["models_built"] <= 2
        assert pool.counters["materialized"] == 8

    def test_free_list_never_resurrects_mismatched_dtype(self):
        """A float32 run must not resurrect a float64 free-list model.

        A stale float64 replica on the free list (the shape a precision
        bug would take) is dropped on the next materialization, not lent
        out — every party the pool hands back stays at the pool dtype.
        """
        pool = self._pool(population=8, max_resident=1, dtype="float32")
        stale = build_model(pool.spec.model_name, pool.spec.input_shape,
                            pool.spec.num_classes, spawn_rng(9, "stale"),
                            dtype="float64")
        pool._free_models.append(stale)
        party = pool[0]
        assert party.dtype == np.dtype(np.float32)
        assert stale not in pool._free_models

    def test_dtype_survives_release_and_rematerialization(self):
        """Recycled replicas keep the pool dtype across evict/re-acquire."""
        pool = self._pool(population=8, max_resident=1, dtype="float32")
        for pid in (0, 1, 2, 0, 3, 0):
            assert pool[pid].dtype == np.dtype(np.float32)
        # Recycling actually happened (one replica serving everyone) —
        # the dtype above was preserved by reuse, not fresh builds.
        assert pool.counters["models_built"] <= 2
        pool.acquire(4)
        assert pool[4].dtype == np.dtype(np.float32)
        pool.release(4)
        pool[5]  # evicts 4; its model lands on the free list
        assert pool[4].dtype == np.dtype(np.float32)

    def test_pooled_float32_run_builds_no_float64_model(self):
        """End to end: a precision=float32 pooled run materializes only
        float32 replicas, across eviction churn."""
        spec = make_tiny_spec(name="unit_pool_f32", num_parties=6,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=33)
        settings = dataclasses.replace(
            _pooled_settings(make_run_settings(), 6, max_resident=2),
            precision=PrecisionPlan(params="float32"), dtype=None)
        ds = FederatedShiftDataset(spec)
        pool = PartyPool.from_config(spec, ds, settings.population, seed=0,
                                     dtype=settings.np_dtype)
        seen = set()
        for pid in (0, 1, 2, 3, 4, 5, 1, 0):
            seen.add(str(pool[pid].dtype))
        assert seen == {"float32"}
        assert pool.counters["evictions"] > 0

    def test_pinned_party_is_never_evicted(self):
        pool = self._pool(population=8, max_resident=2)
        pool.acquire(0)
        for pid in (1, 2, 3):
            pool[pid]
        assert 0 in pool.resident_ids()
        assert 0 in pool.pinned_ids()
        assert 0 not in pool.eviction_log
        pool.release(0)
        pool[4]
        assert 0 not in pool.resident_ids()  # evictable again after release

    def test_release_without_pin_raises(self):
        pool = self._pool(population=4)
        with pytest.raises(ValueError, match="not pinned"):
            pool.release(0)

    def test_all_pinned_overshoots_instead_of_corrupting(self):
        pool = self._pool(population=8, max_resident=1)
        pool.acquire(0)
        pool.acquire(1)
        assert set(pool.resident_ids()) == {0, 1}
        assert pool.eviction_log == []
        pool.release(1)
        pool.release(0)
        assert len(pool.resident_ids()) == 1

    def test_eviction_releases_party_data(self):
        pool = self._pool(population=4, max_resident=1)
        first = pool[0]
        pool[1]
        assert 0 in pool.eviction_log
        with pytest.raises(RuntimeError, match="released"):
            first.data

    def test_survey_ids_default_and_capped(self):
        assert self._pool(population=6).survey_ids() == tuple(range(6))
        capped = self._pool(population=1000, survey=16)
        ids = capped.survey_ids()
        assert len(ids) == 16 and ids == tuple(sorted(ids))
        assert capped.survey_ids() is ids  # cached
        # Same seed -> same survey subset.
        assert self._pool(population=1000, survey=16).survey_ids() == ids

    def test_summary_counters(self):
        pool = self._pool(population=8, max_resident=2)
        for pid in (0, 1, 0, 2):
            pool[pid]
        s = pool.summary()
        assert s["population"] == 8 and s["max_resident"] == 2
        assert s["materialized"] == 3 and s["resident_hits"] == 1
        assert s["evictions"] == 1 and s["peak_resident"] <= 3

    def test_from_config(self):
        spec = make_tiny_spec(name="unit_pool_cfg", num_parties=4,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=31)
        cfg = PopulationConfig(size=50, max_resident=3, skew="zipf",
                               zipf_a=1.4, survey=10)
        pool = PartyPool.from_config(spec, None, cfg, seed=5)
        assert pool.population == 50 and pool.max_resident == 3
        assert pool.sampler.skew == "zipf" and pool.sampler.zipf_a == 1.4
        assert pool.survey == 10 and pool.seed == 5


class TestVirtualPartyWindow:
    def test_delegates_inside_eager_range(self):
        spec = make_tiny_spec(name="unit_vwin", num_parties=4, num_windows=2,
                              window_regimes=(("fog", 4),), seed=41)
        ds = FederatedShiftDataset(spec)
        eager = ds.party_window(2, 0)
        virtual = ds.virtual_party_window(2, 0)
        assert virtual.party_id == eager.party_id
        np.testing.assert_array_equal(virtual.x_train, eager.x_train)
        np.testing.assert_array_equal(virtual.y_test, eager.y_test)

    def test_virtual_ids_follow_their_shards_schedule(self):
        spec = make_tiny_spec(name="unit_vwin2", num_parties=4, num_windows=2,
                              window_regimes=(("fog", 4),), seed=41)
        ds = FederatedShiftDataset(spec)
        a = ds.virtual_party_window(6, 1)   # shard 2
        b = ds.virtual_party_window(6, 1)
        assert a.party_id == 6 and a.window == 1
        np.testing.assert_array_equal(a.x_train, b.x_train)  # pure replay
        # Different virtual parties on the same shard still draw distinct data.
        other = ds.virtual_party_window(10, 1)  # also shard 2
        assert not np.array_equal(a.x_train, other.x_train)

    def test_validation(self):
        spec = make_tiny_spec(name="unit_vwin3", num_parties=4, num_windows=2,
                              window_regimes=(("fog", 4),), seed=41)
        ds = FederatedShiftDataset(spec)
        with pytest.raises(ValueError):
            ds.virtual_party_window(-1, 0)
        with pytest.raises(ValueError):
            ds.virtual_party_window(6, 99)


class TestPartyErrorPaths:
    def _party(self, population=None) -> Party:
        spec = make_tiny_spec(name="unit_party_err", num_parties=2,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=51)
        model = build_model(spec.model_name, spec.input_shape,
                            spec.num_classes, spawn_rng(0, "party-model", 0))
        return Party(0, model, spec.num_classes, seed=0,
                     population=population)

    def test_wrong_party_data_names_window_and_population(self):
        spec = make_tiny_spec(name="unit_party_err", num_parties=2,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=51)
        ds = FederatedShiftDataset(spec)
        party = self._party(population=1000)
        with pytest.raises(ValueError) as err:
            party.set_window_data(ds.party_window(1, 0))
        msg = str(err.value)
        assert "window 0" in msg and "party 1" in msg
        assert "party 0 (population 1000)" in msg

    def test_missing_data_error_mentions_release(self):
        spec = make_tiny_spec(name="unit_party_err", num_parties=2,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=51)
        ds = FederatedShiftDataset(spec)
        party = self._party()
        with pytest.raises(RuntimeError, match="no window data yet"):
            party.data
        party.set_window_data(ds.party_window(0, 1))
        party.release()
        with pytest.raises(RuntimeError,
                           match=r"window 1 data was released"):
            party.data


class TestAvailabilityAtScale:
    CFG = AvailabilityConfig(outage_prob=0.5, outage_fraction=0.3,
                             outage_rounds=2)

    def test_counter_draws_pin_enumeration_regime(self):
        """Small populations keep the exact historical enumeration bits."""
        sim = AvailabilitySimulator(self.CFG, seed=9, num_parties=40)
        assert sim.enumerates_outages
        for tick in range(6):
            members = sim.outage_parties(tick)
            for pid in range(40):
                assert sim.party_in_outage(pid, tick) == (pid in members)

    def test_large_population_is_o_cohort(self):
        sim = AvailabilitySimulator(self.CFG, seed=9, num_parties=1_000_000)
        assert not sim.enumerates_outages
        with pytest.raises(ValueError, match="party_in_outage"):
            sim.outage_parties(0)
        fates = sim.cohort_fates(list(range(0, 1_000_000, 20_000)), tick=3)
        assert len(fates) == 50
        # Same (party, tick) query always agrees with itself.
        again = sim.cohort_fates(list(range(0, 1_000_000, 20_000)), tick=3)
        assert fates == again

    def test_large_population_outage_rate_tracks_fraction(self):
        sim = AvailabilitySimulator(
            AvailabilityConfig(outage_prob=1.0, outage_fraction=0.3,
                               outage_rounds=1),
            seed=2, num_parties=100_000)
        hits = sum(sim.party_in_outage(pid, 0) for pid in range(2000))
        assert 0.2 < hits / 2000 < 0.4

    def test_enumeration_limit_boundary(self):
        at = AvailabilitySimulator(self.CFG, seed=1, num_parties=4096)
        over = AvailabilitySimulator(self.CFG, seed=1, num_parties=4097)
        assert at.enumerates_outages and not over.enumerates_outages


def _diff_spec():
    return make_tiny_spec(name="unit_pool_diff", num_parties=6,
                          num_windows=2, window_regimes=(("fog", 4),),
                          seed=17)


class TestPooledRunsAreBitwise:
    """population == num_parties with an unbounded pool == the eager path."""

    def test_fedavg_pooled_matches_eager(self):
        spec = _diff_spec()
        ds = FederatedShiftDataset(spec)
        base = make_run_settings()
        eager = run_strategy(build_strategy("fedavg"), spec, base, seed=0,
                             dataset=ds)
        pooled = run_strategy(build_strategy("fedavg"), spec,
                              _pooled_settings(base, spec.num_parties),
                              seed=0, dataset=ds)
        assert _canonical(pooled, pooled=True) == _canonical(eager)
        summary = pooled.extras["party_pool"]
        assert summary["evictions"] == 0
        assert summary["population"] == spec.num_parties

    def test_fedavg_bounded_pool_still_bitwise(self):
        """LRU eviction + model recycling must be invisible in the bits."""
        spec = _diff_spec()
        ds = FederatedShiftDataset(spec)
        base = make_run_settings()
        eager = run_strategy(build_strategy("fedavg"), spec, base, seed=0,
                             dataset=ds)
        pooled = run_strategy(build_strategy("fedavg"), spec,
                              _pooled_settings(base, spec.num_parties,
                                               max_resident=2),
                              seed=0, dataset=ds)
        assert _canonical(pooled, pooled=True) == _canonical(eager)
        summary = pooled.extras["party_pool"]
        assert summary["evictions"] > 0
        assert summary["models_built"] <= 3

    @pytest.mark.slow
    @pytest.mark.parametrize("method", sorted(strategy_names()))
    def test_every_strategy_pooled_matches_eager(self, method):
        spec = _diff_spec()
        ds = FederatedShiftDataset(spec)
        base = make_run_settings()
        eager = run_strategy(build_strategy(method), spec, base, seed=0,
                             dataset=ds)
        pooled = run_strategy(build_strategy(method), spec,
                              _pooled_settings(base, spec.num_parties),
                              seed=0, dataset=ds)
        assert _canonical(pooled, pooled=True) == _canonical(eager)

    @pytest.mark.slow
    @given(seed=st.integers(0, 2**16),
           max_resident=st.sampled_from([None, 2, 3, 6]))
    @settings(max_examples=8, deadline=None)
    def test_pool_bound_invariance_over_seeds(self, seed, max_resident):
        """Hypothesis sweep: no seed or bound can make the pool visible."""
        spec = _diff_spec()
        ds = FederatedShiftDataset(spec)
        base = make_run_settings(rounds_burn_in=2, rounds_per_window=1)
        eager = run_strategy(build_strategy("fedavg"), spec, base, seed=seed,
                             dataset=ds)
        pooled = run_strategy(build_strategy("fedavg"), spec,
                              _pooled_settings(base, spec.num_parties,
                                               max_resident=max_resident),
                              seed=seed, dataset=ds)
        assert _canonical(pooled, pooled=True) == _canonical(eager)


class TestPopulationScaleRuns:
    def test_population_beyond_eager_parties_runs_flat(self):
        spec = _diff_spec()
        ds = FederatedShiftDataset(spec)
        settings_ = _pooled_settings(make_run_settings(rounds_burn_in=2,
                                                       rounds_per_window=1),
                                     {"size": 5000, "max_resident": 8})
        result = run_strategy(build_strategy("fedavg"), spec, settings_,
                              seed=0, dataset=ds)
        summary = result.extras["party_pool"]
        assert summary["population"] == 5000
        assert summary["peak_resident"] <= 8 + settings_.round_config.participants_per_round
        assert summary["models_built"] <= summary["peak_resident"]
        assert len(result.window_series) == spec.num_windows

    def test_straggler_pinned_row_survives_party_eviction(self):
        """An async straggler's buffered report outlives its party's state.

        Bank rows belong to the AsyncRoundBuffer, not the pool: evicting a
        party between its dispatch and its late arrival must not perturb the
        aggregate the report finally joins.
        """
        from repro.federation.async_engine import FederationConfig

        spec = _diff_spec()
        ds = FederatedShiftDataset(spec)
        base = dataclasses.replace(
            make_run_settings(rounds_burn_in=3, rounds_per_window=2),
            federation=FederationConfig(
                mode="async",
                availability=AvailabilityConfig(straggler_prob=0.6)))
        eager = run_strategy(build_strategy("fedavg"), spec, base, seed=3,
                             dataset=ds)
        assert eager.extras["federation"]["delayed"] > 0
        pooled = run_strategy(build_strategy("fedavg"), spec,
                              _pooled_settings(base, spec.num_parties,
                                               max_resident=2),
                              seed=3, dataset=ds)
        assert _canonical(pooled, pooled=True) == _canonical(eager)
        assert pooled.extras["party_pool"]["evictions"] > 0


class TestStrategyContextPoolSurface:
    def test_sample_cohort_dict_path_matches_historic_draw(self):
        spec = _diff_spec()
        ds = FederatedShiftDataset(spec)
        from tests.conftest import make_context
        ctx = make_context(spec, ds)
        rng_a = spawn_rng(0, "select", "fedavg", 0, 0)
        rng_b = spawn_rng(0, "select", "fedavg", 0, 0)
        got = ctx.sample_cohort(rng_a)
        k = min(ctx.round_config.participants_per_round, len(ctx.parties))
        expected = [int(p) for p in
                    rng_b.choice(sorted(ctx.parties), size=k, replace=False)]
        assert got == expected

    def test_party_ids_uses_pool_survey(self):
        spec = make_tiny_spec(name="unit_ctx_pool", num_parties=4,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=61)
        pool = PartyPool(spec, FederatedShiftDataset(spec), population=200,
                         seed=0, survey=10)
        ctx = StrategyContext(spec=spec, parties=pool,
                              model_factory=lambda: None,
                              round_config=make_run_settings().round_config,
                              seed=0)
        assert ctx.party_ids == pool.survey_ids()
        assert len(ctx.party_ids) == 10
        assert ctx.population == 200


class TestPlanPopulationSerialization:
    def test_population_round_trips_through_plan_dict(self):
        plan = ExperimentPlan.build(
            "femnist_sim", ["fedavg"], seeds=[0], profile="ci",
            population={"size": 1000, "max_resident": 16, "skew": "zipf"},
            cohort_size=4)
        data = plan.to_dict()
        assert data["population"] == {"size": 1000, "max_resident": 16,
                                      "skew": "zipf", "zipf_a": 1.2,
                                      "survey": None}
        assert data["cohort_size"] == 4
        restored = ExperimentPlan.from_dict(data)
        assert restored.population == plan.population
        assert restored.cohort_size == 4
        _, settings_ = restored.resolve()
        assert settings_.population == plan.population
        assert settings_.round_config.participants_per_round == 4

    def test_resolve_without_population_is_unchanged(self):
        plan = ExperimentPlan.build("femnist_sim", ["fedavg"], seeds=[0],
                                    profile="ci")
        data = plan.to_dict()
        assert "population" not in data and "cohort_size" not in data
        _, settings_ = plan.resolve()
        assert settings_.population is None

    def test_cohort_size_validation(self):
        with pytest.raises(ValueError):
            ExperimentPlan.build("femnist_sim", ["fedavg"], seeds=[0],
                                 profile="ci", cohort_size=0)


assert set(PARTICIPATION_SKEWS) == {"uniform", "zipf"}
