"""Tests for per-party, per-window data materialization."""

import numpy as np
import pytest

from repro.data.federated import FederatedShiftDataset
from tests.conftest import make_tiny_spec


class TestPartyWindow:
    def test_shapes(self, tiny_spec, tiny_dataset):
        data = tiny_dataset.party_window(0, 0)
        assert data.x_train.shape == (tiny_spec.train_per_window,
                                      *tiny_spec.input_shape)
        assert data.y_train.shape == (tiny_spec.train_per_window,)
        assert data.x_test.shape[0] == tiny_spec.test_per_window

    def test_deterministic(self, tiny_spec):
        d1 = FederatedShiftDataset(tiny_spec).party_window(2, 1)
        d2 = FederatedShiftDataset(tiny_spec).party_window(2, 1)
        assert np.allclose(d1.x_train, d2.x_train)
        assert np.array_equal(d1.y_train, d2.y_train)

    def test_caching_returns_same_object(self, tiny_dataset):
        assert tiny_dataset.party_window(1, 0) is tiny_dataset.party_window(1, 0)

    def test_out_of_range_rejected(self, tiny_dataset, tiny_spec):
        with pytest.raises(ValueError):
            tiny_dataset.party_window(tiny_spec.num_parties, 0)
        with pytest.raises(ValueError):
            tiny_dataset.party_window(0, tiny_spec.num_windows)

    def test_regime_matches_schedule(self, tiny_dataset):
        schedule = tiny_dataset.schedule
        for party in range(4):
            data = tiny_dataset.party_window(party, 1)
            assert data.regime == schedule.regime_of(1, party)

    def test_label_histogram_normalized(self, tiny_dataset, tiny_spec):
        hist = tiny_dataset.party_window(0, 0).label_histogram(tiny_spec.num_classes)
        assert hist.shape == (tiny_spec.num_classes,)
        assert np.isclose(hist.sum(), 1.0)

    def test_windows_differ(self, tiny_dataset):
        d0 = tiny_dataset.party_window(0, 0)
        d1 = tiny_dataset.party_window(0, 1)
        assert not np.allclose(d0.x_train, d1.x_train)


class TestShiftEffect:
    def test_shifted_party_data_is_corrupted(self, tiny_spec):
        ds = FederatedShiftDataset(tiny_spec)
        shifted = sorted(ds.schedule.parties_shifted_at(1))[0]
        clean = ds.party_window(shifted, 0)
        foggy = ds.party_window(shifted, 1)
        # Fog brightens: mean intensity rises notably.
        assert foggy.x_test.mean() > clean.x_test.mean() + 0.05


class TestSlidingOverlap:
    def test_tumbling_has_no_overlap(self, tiny_spec):
        ds = FederatedShiftDataset(tiny_spec)
        assert ds.sliding_overlap == 0.0

    def test_sliding_blends_previous_regime(self):
        spec = make_tiny_spec(name="unit_sliding", seed=7)
        spec = spec.__class__(**{**spec.__dict__, "windowing": "sliding"})
        ds = FederatedShiftDataset(spec, sliding_overlap=0.5)
        shifted = sorted(ds.schedule.parties_shifted_at(1))[0]
        data = ds.party_window(shifted, 1)
        # Half the window (the overlap) comes from the previous clean regime:
        # its mean intensity is lower than the fog half.
        n = spec.train_per_window
        carry = n // 2
        old_part = data.x_train[:carry]
        new_part = data.x_train[carry:]
        assert old_part.mean() < new_part.mean()

    def test_invalid_overlap_rejected(self, tiny_spec):
        with pytest.raises(ValueError):
            FederatedShiftDataset(tiny_spec, sliding_overlap=1.0)


class TestReferenceAndEviction:
    def test_reference_data_is_uniform(self, tiny_dataset, tiny_spec):
        x, y = tiny_dataset.reference_data(n=200)
        assert x.shape[0] == 200
        counts = np.bincount(y, minlength=tiny_spec.num_classes)
        assert counts.min() > 0

    def test_evict_window_clears_cache(self, tiny_spec):
        ds = FederatedShiftDataset(tiny_spec)
        first = ds.party_window(0, 0)
        ds.evict_window(0)
        second = ds.party_window(0, 0)
        assert first is not second
        assert np.allclose(first.x_train, second.x_train)

    def test_schedule_spec_mismatch_rejected(self, tiny_spec):
        from repro.data.registry import build_shift_schedule
        other = make_tiny_spec(name="unit_other")
        schedule = build_shift_schedule(other)
        with pytest.raises(ValueError):
            FederatedShiftDataset(tiny_spec, schedule=schedule)
