"""Tests for dataset specs and shift schedules."""

import numpy as np
import pytest

from repro.data.registry import (
    DatasetSpec,
    build_shift_schedule,
    dataset_names,
    get_dataset_spec,
)
from tests.conftest import make_tiny_spec


class TestRegistry:
    def test_five_paper_datasets_registered(self):
        assert set(dataset_names()) == {
            "fmow_sim", "tiny_imagenet_c_sim", "cifar10_c_sim",
            "femnist_sim", "fashion_mnist_sim",
        }

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            get_dataset_spec("imagenet")

    def test_paper_party_counts(self):
        assert get_dataset_spec("fmow_sim").num_parties == 50
        for name in ("cifar10_c_sim", "femnist_sim", "fashion_mnist_sim",
                     "tiny_imagenet_c_sim"):
            assert get_dataset_spec(name).num_parties == 200

    def test_paper_window_counts(self):
        # Tables 1-2: 4 evaluation windows for FMoW/CIFAR, 5 for the rest
        # (plus the W0 burn-in window).
        assert get_dataset_spec("fmow_sim").num_windows == 5
        assert get_dataset_spec("cifar10_c_sim").num_windows == 5
        assert get_dataset_spec("tiny_imagenet_c_sim").num_windows == 6
        assert get_dataset_spec("femnist_sim").num_windows == 6
        assert get_dataset_spec("fashion_mnist_sim").num_windows == 6

    def test_windowing_matches_paper(self):
        assert get_dataset_spec("fmow_sim").windowing == "tumbling"
        assert get_dataset_spec("tiny_imagenet_c_sim").windowing == "tumbling"
        assert get_dataset_spec("cifar10_c_sim").windowing == "sliding"

    def test_label_shift_flags(self):
        assert get_dataset_spec("fmow_sim").label_shift
        assert get_dataset_spec("femnist_sim").label_shift
        assert not get_dataset_spec("cifar10_c_sim").label_shift

    def test_cifar_regime_recurs(self):
        regimes = get_dataset_spec("cifar10_c_sim").window_regimes
        assert len(set(regimes)) == 1

    def test_scaled_copy(self):
        spec = get_dataset_spec("fmow_sim").scaled(num_parties=10)
        assert spec.num_parties == 10
        assert get_dataset_spec("fmow_sim").num_parties == 50


class TestSpecValidation:
    def test_regime_count_must_match_windows(self):
        with pytest.raises(ValueError):
            make_tiny_spec(num_windows=4, window_regimes=(("fog", 3),))

    def test_unknown_corruption_rejected(self):
        with pytest.raises(ValueError):
            make_tiny_spec(window_regimes=(("tsunami", 3), ("fog", 3)))

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            make_tiny_spec(window_regimes=(("fog", 9), ("fog", 3)))

    def test_bad_windowing_rejected(self):
        with pytest.raises(ValueError):
            DatasetSpec(
                name="x", paper_name="x", num_classes=3, image_size=8,
                channels=1, num_parties=4, num_windows=2, model_name="mlp",
                windowing="hopping", window_regimes=(("fog", 3),),
            )


class TestSchedule:
    def test_window_zero_is_clean(self, tiny_spec):
        schedule = build_shift_schedule(tiny_spec)
        assert all(r.corruption == "identity" for r in schedule.regimes[0])
        assert schedule.parties_shifted_at(0) == set()

    def test_shift_fraction_respected(self, tiny_spec):
        schedule = build_shift_schedule(tiny_spec)
        expected = round(tiny_spec.shift_fraction * tiny_spec.num_parties)
        for window in range(1, tiny_spec.num_windows):
            assert len(schedule.parties_shifted_at(window)) == expected

    def test_shifted_parties_adopt_window_regime(self, tiny_spec):
        schedule = build_shift_schedule(tiny_spec)
        corruption, severity = tiny_spec.window_regimes[0]
        for party in schedule.parties_shifted_at(1):
            regime = schedule.regime_of(1, party)
            assert (regime.corruption, regime.severity) == (corruption, severity)

    def test_unshifted_parties_keep_regime(self, tiny_spec):
        schedule = build_shift_schedule(tiny_spec)
        for party in range(tiny_spec.num_parties):
            if party not in schedule.parties_shifted_at(1):
                assert schedule.regime_of(1, party).regime_id == \
                    schedule.regime_of(0, party).regime_id

    def test_recurring_regimes_share_id(self):
        spec = make_tiny_spec(num_windows=3, window_regimes=(("fog", 4), ("fog", 4)))
        schedule = build_shift_schedule(spec)
        ids = {r.regime_id for r in schedule.regimes[2] if r.corruption == "fog"}
        assert len(ids) == 1

    def test_distinct_regimes_get_distinct_ids(self):
        spec = make_tiny_spec(num_windows=3,
                              window_regimes=(("fog", 4), ("contrast", 4)))
        schedule = build_shift_schedule(spec)
        assert len(schedule.distinct_regimes_up_to(2)) == 3  # clean + 2

    def test_label_priors_stable_without_label_shift(self):
        spec = make_tiny_spec(label_shift=False)
        schedule = build_shift_schedule(spec)
        assert np.allclose(schedule.label_priors[0], schedule.label_priors[-1])

    def test_label_priors_move_with_label_shift(self):
        spec = make_tiny_spec(label_shift=True)
        schedule = build_shift_schedule(spec)
        moved = [
            party for party in schedule.parties_shifted_at(1)
            if not np.allclose(schedule.prior_of(0, party),
                               schedule.prior_of(1, party))
        ]
        assert moved

    def test_deterministic_per_seed(self, tiny_spec):
        s1 = build_shift_schedule(tiny_spec)
        s2 = build_shift_schedule(tiny_spec)
        assert s1.shifted_parties == s2.shifted_parties
