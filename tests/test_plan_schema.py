"""ExperimentPlan (de)serialization: lossless round-trips, schema drift.

The plan file format is public API (``docs/PLAN_SCHEMA.md``); these tests
pin it from three directions: a plan with *every* field set round-trips
losslessly through JSON, the TOML reader resolves to the same plan as the
equivalent JSON, and every key ``to_dict`` can emit is documented in the
schema reference (so a new field cannot ship undocumented).
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.data.registry import get_dataset_spec
from repro.experiments.plan import ExperimentPlan, load_plan, save_plan
from repro.federation.async_engine import FederationConfig
from repro.federation.availability import AvailabilityConfig
from repro.federation.pool import PopulationConfig
from repro.harness.profiles import RunSettings
from repro.federation.rounds import RoundConfig
from repro.nn.training import LocalTrainingConfig
from repro.utils.precision import PrecisionPlan

DOCS = Path(__file__).parent.parent / "docs"


def _full_plan() -> ExperimentPlan:
    """A plan exercising every serializable field at a non-default value."""
    federation = FederationConfig(
        mode="buffered", min_reports=4, max_wait_rounds=2,
        staleness_policy="polynomial", staleness_alpha=0.4,
        staleness_gamma=0.6,
        availability=AvailabilityConfig(
            dropout_prob=0.3, straggler_prob=0.2, straggler_zipf_a=2.5,
            max_delay_rounds=6, outage_prob=0.05, outage_fraction=0.4,
            outage_rounds=3))
    spec_override = dataclasses.replace(
        get_dataset_spec("fashion_mnist_sim"), num_parties=6,
        train_per_window=32, test_per_window=16,
        drift=({"arrival": "gradual", "corruption": "frost", "severity": 5,
                "fraction": 0.4, "start_window": 1, "ramp_windows": 2,
                "period": 1, "classes_per_window": 2,
                "max_phase_offset": 1},))
    settings_override = RunSettings(
        rounds_burn_in=4, rounds_per_window=3, eval_parties=4,
        precision=PrecisionPlan(params="float32",
                                detection_stats="float64"),
        shards=3, secure_aggregation=True,
        privacy="masking=on,threshold=majority",
        federation=FederationConfig(mode="async"),
        population=PopulationConfig(size=500, max_resident=8),
        round_config=RoundConfig(
            participants_per_round=5,
            local=LocalTrainingConfig(epochs=2, batch_size=16, lr=0.1,
                                      momentum=0.8, weight_decay=1e-4,
                                      prox_mu=0.01,
                                      max_batches_per_epoch=4)))
    return ExperimentPlan.build(
        "fashion_mnist_sim",
        {"fedavg": "fedavg",
         "prox-strong": {"method": "fedprox", "kwargs": {"prox_mu": 0.1}}},
        seeds=(0, 1, 2), profile="small", name="full-schema",
        dtype="float32",
        precision=PrecisionPlan(params="float32"),
        shards=2, shard_backend="remote",
        shard_hosts=("10.0.0.11:7700", "10.0.0.12:7700"),
        secure_aggregation=True,
        privacy="masking=on,threshold=3,sealed_scoring=on",
        federation=federation,
        population=PopulationConfig(size=1000, max_resident=16, skew="zipf",
                                    zipf_a=1.5, survey=64),
        cohort_size=6,
        spec_override=spec_override, settings_override=settings_override)


class TestLosslessRoundTrip:
    def test_dict_round_trip_all_fields(self):
        plan = _full_plan()
        assert ExperimentPlan.from_dict(plan.to_dict()) == plan

    def test_json_file_round_trip_all_fields(self, tmp_path):
        plan = _full_plan()
        path = save_plan(tmp_path / "plan.json", plan)
        loaded = load_plan(path)
        assert loaded == plan
        # ... and the serialized form itself is stable across a second trip.
        assert loaded.to_dict() == plan.to_dict()

    def test_new_fields_survive_the_trip(self, tmp_path):
        """The PR-4/PR-5 additions: shards and secure_aggregation next to
        dtype/federation."""
        plan = _full_plan()
        data = json.loads(save_plan(tmp_path / "p.json", plan).read_text())
        assert data["shards"] == 2
        assert data["dtype"] == "float32"
        assert data["precision"] == {"params": "float32",
                                     "detection_stats": "float64"}
        assert data["settings_override"]["precision"] == {
            "params": "float32", "detection_stats": "float64"}
        assert data["settings_override"]["dtype"] == "float32"
        assert data["secure_aggregation"] is True
        assert data["privacy"] == {"masking": True, "threshold": 3,
                                   "sealed_scoring": True, "mask_seed": None}
        assert data["federation"]["mode"] == "buffered"
        assert data["settings_override"]["shards"] == 3
        assert data["settings_override"]["secure_aggregation"] is True
        assert data["settings_override"]["privacy"] == {
            "masking": True, "threshold": "majority",
            "sealed_scoring": False, "mask_seed": None}
        loaded = load_plan(tmp_path / "p.json")
        assert loaded.shards == 2
        assert loaded.secure_aggregation is True
        assert loaded.settings_override.shards == 3
        assert data["shard_backend"] == "remote"
        assert data["shard_hosts"] == ["10.0.0.11:7700", "10.0.0.12:7700"]
        _spec, settings = loaded.resolve()
        assert settings.shards == 2  # plan-level knob wins over override
        assert settings.shard_backend == "remote"
        assert settings.shard_hosts == ("10.0.0.11:7700", "10.0.0.12:7700")
        assert settings.secure_aggregation is True
        # The plan-level privacy knob wins over the override's plan.
        assert settings.privacy.threshold == 3
        assert settings.privacy.sealed_scoring is True

    def test_defaults_stay_omitted(self):
        """Optional knobs absent from the file stay absent on re-save."""
        plan = ExperimentPlan.build("fashion_mnist_sim", ["fedavg"])
        data = plan.to_dict()
        for key in ("dtype", "precision", "federation", "shards",
                    "shard_backend", "shard_hosts",
                    "secure_aggregation", "privacy", "population",
                    "cohort_size", "spec_override", "settings_override"):
            assert key not in data
        assert ExperimentPlan.from_dict(data) == plan


class TestTomlReader:
    def test_toml_resolves_like_json(self, tmp_path):
        pytest.importorskip("tomllib")
        toml_text = """
name = "dropout-sweep"
dataset = "fashion_mnist_sim"
profile = "ci"
seeds = [0, 1]
dtype = "float32"
shards = 2

[strategies.fedavg]
method = "fedavg"

[strategies.prox-strong]
method = "fedprox"
kwargs = {prox_mu = 0.1}

[federation]
mode = "buffered"
min_reports = 4
max_wait_rounds = 2
staleness_policy = "polynomial"

[federation.availability]
dropout_prob = 0.3
straggler_prob = 0.2
"""
        path = tmp_path / "plan.toml"
        path.write_text(toml_text)
        plan = load_plan(path)
        expected = ExperimentPlan.build(
            "fashion_mnist_sim",
            {"fedavg": "fedavg",
             "prox-strong": {"method": "fedprox", "kwargs": {"prox_mu": 0.1}}},
            seeds=(0, 1), profile="ci", name="dropout-sweep",
            dtype="float32", shards=2,
            federation=FederationConfig(
                mode="buffered", min_reports=4, max_wait_rounds=2,
                staleness_policy="polynomial",
                availability=AvailabilityConfig(dropout_prob=0.3,
                                                straggler_prob=0.2)))
        assert plan == expected


class TestSchemaDocDrift:
    def test_every_emitted_key_is_documented(self):
        """docs/PLAN_SCHEMA.md must mention every key to_dict can emit."""
        doc = (DOCS / "PLAN_SCHEMA.md").read_text()
        data = _full_plan().to_dict()

        def keys_of(obj, prefix=""):
            out = set()
            if isinstance(obj, dict):
                for k, v in obj.items():
                    if prefix == "strategies.":
                        # strategy labels are user-chosen, not schema keys
                        out |= keys_of(v, "strategy-entry.")
                        continue
                    out.add(k)
                    out |= keys_of(v, f"{k}.")
            return out

        undocumented = {k for k in keys_of(data) if f"`{k}`" not in doc}
        assert not undocumented, (
            f"plan keys missing from docs/PLAN_SCHEMA.md: "
            f"{sorted(undocumented)}")
