"""The BENCH_*.json trajectory merger (``benchmarks/trajectory.py``)."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from trajectory import build_trajectory, format_table, main  # noqa: E402

ROOT = Path(__file__).parent.parent


def _write(path, data):
    path.write_text(json.dumps(data))


def test_merges_both_artifact_shapes(tmp_path):
    _write(tmp_path / "BENCH_param_plane.json", {
        "aggregation": {"kernel": "fedavg", "speedup": 3.2},
        "aggregation_sharded": {"process_speedup": None,
                                "skipped_reason": "cpu_count == 1"},
        "dtype": "float64", "note": "scalars are skipped",
    })
    _write(tmp_path / "BENCH_party_pool.json", {
        "throughput_1m": {"reports_per_s": 650.0, "population": 10},
        "memory_flatness": {"peak_ratio": 0.9, "ratio_limit": 1.25},
    })
    rows = build_trajectory(tmp_path)
    by_entry = {(r[0], r[1]): r for r in rows}
    assert by_entry[("param_plane", "aggregation")][2:4] == ("speedup", 3.2)
    assert by_entry[("party_pool", "throughput_1m")][2:4] == (
        "reports_per_s", 650.0)
    assert by_entry[("party_pool", "memory_flatness")][2:4] == (
        "peak_ratio", 0.9)
    # A null measurement stays a visible row carrying its reason.
    skipped = by_entry[("param_plane", "aggregation_sharded")]
    assert skipped[3] is None and "cpu_count == 1" in skipped[4]
    # Scalar top-level keys (dtype/note) never become rows.
    assert all(r[1] not in ("dtype", "note") for r in rows)


def test_table_renders_and_marks_skips(tmp_path):
    _write(tmp_path / "BENCH_x.json", {
        "fast": {"speedup": 2.0, "kernel": "k"},
        "skip": {"process_speedup": None, "skipped_reason": "one core"},
    })
    table = format_table(build_trajectory(tmp_path))
    assert "speedup" in table and "skipped" in table and "one core" in table
    assert format_table([]) == "no BENCH_*.json artifacts found"


def test_main_prints_committed_artifacts(capsys):
    assert main(["--root", str(ROOT)]) == 0
    out = capsys.readouterr().out
    assert "param_plane" in out and "party_pool" in out
