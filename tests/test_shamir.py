"""Shamir t-of-n secret sharing over GF(2^61 - 1): the recovery substrate.

Property suite (Hypothesis) for ``repro.privacy.shamir``:

* any ``t`` of the ``n`` shares reconstruct the secret exactly — including
  under arbitrary dropout patterns (random surviving subsets, any order);
* ``t - 1`` shares reveal nothing: reconstruction lands on the secret only
  with probability ``1/p`` (so a seeded random draw never does);
* share values depend on the split RNG, so two sessions never reuse share
  material for one secret;
* validation fails loudly: secrets outside the field, degenerate
  thresholds, duplicate or out-of-range share points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.privacy.shamir import PRIME, reconstruct_secret, split_secret

secrets = st.integers(min_value=0, max_value=PRIME - 1)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def t_of_n(draw):
    threshold = draw(st.integers(min_value=1, max_value=6))
    num_shares = draw(st.integers(min_value=threshold, max_value=9))
    return threshold, num_shares


class TestRoundTrip:
    @given(secret=secrets, tn=t_of_n(), seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_any_t_shares_reconstruct_the_secret(self, secret, tn, seed):
        threshold, num_shares = tn
        rng = np.random.default_rng(seed)
        shares = split_secret(secret, num_shares, threshold, rng)
        assert len(shares) == num_shares
        assert [x for x, _ in shares] == list(range(1, num_shares + 1))
        # Every contiguous window and a shuffled random subset — the
        # dropout pattern (who survives) must not matter, nor the order
        # the server happens to query holders in.
        for start in range(num_shares - threshold + 1):
            window = shares[start:start + threshold]
            assert reconstruct_secret(window) == secret
        survivors = list(rng.permutation(num_shares)[:threshold])
        subset = [shares[i] for i in survivors]
        assert reconstruct_secret(subset) == secret

    @given(secret=secrets, tn=t_of_n(), seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_extra_shares_beyond_threshold_agree(self, secret, tn, seed):
        """Interpolating through more than t points still hits the secret:
        the polynomial has degree t-1, so any superset is consistent."""
        threshold, num_shares = tn
        shares = split_secret(secret, num_shares, threshold,
                              np.random.default_rng(seed))
        assert reconstruct_secret(shares) == secret

    @given(secret=secrets, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_threshold_one_is_a_broadcast(self, secret, seed):
        shares = split_secret(secret, 4, 1, np.random.default_rng(seed))
        for share in shares:
            assert reconstruct_secret([share]) == secret
            assert share[1] == secret  # degree-0 polynomial: y == secret


class TestSecrecy:
    @given(secret=secrets, seed=seeds,
           threshold=st.integers(min_value=2, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_below_threshold_shares_miss_the_secret(self, secret, seed,
                                                    threshold):
        """t-1 shares determine a lower-degree polynomial whose value at 0
        matches the secret only with probability 1/p (~4e-19): any seeded
        counterexample would be a genuine break of the scheme."""
        rng = np.random.default_rng(seed)
        shares = split_secret(secret, threshold + 1, threshold, rng)
        assert reconstruct_secret(shares[:threshold - 1]) != secret

    @given(secret=secrets, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_shares_are_randomized_per_split(self, secret, seed):
        """Two splits of one secret share no y-values (beyond chance): the
        blinding coefficients come from the caller's RNG stream."""
        a = split_secret(secret, 5, 3, np.random.default_rng(seed))
        b = split_secret(secret, 5, 3, np.random.default_rng(seed + 1))
        assert a != b
        # Both still open to the same secret, of course.
        assert reconstruct_secret(a[:3]) == reconstruct_secret(b[2:]) == secret


class TestValidation:
    def test_secret_must_live_in_the_field(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="secret"):
            split_secret(-1, 3, 2, rng)
        with pytest.raises(ValueError, match="secret"):
            split_secret(PRIME, 3, 2, rng)

    def test_threshold_and_count_bounds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="threshold"):
            split_secret(5, 3, 0, rng)
        with pytest.raises(ValueError, match="threshold"):
            split_secret(5, 2, 3, rng)

    def test_reconstruct_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="share"):
            reconstruct_secret([])
        shares = split_secret(5, 3, 2, np.random.default_rng(1))
        with pytest.raises(ValueError, match="duplicate"):
            reconstruct_secret([shares[0], shares[0]])
        with pytest.raises(ValueError, match="share"):
            reconstruct_secret([(0, 5)])
