"""Bank-resident secure aggregation: sealing, failure modes, invariants.

Pins the PR's acceptance criteria from four directions:

* the flat mask plane is bitwise-compatible with the historical per-tensor
  draws, and bit-domain sealing round-trips exactly at both precisions;
* failure modes fail loudly: duplicate submissions, weight mismatches
  between the masked and unmasked paths, unsealing rows that were never
  sealed, and aggregating an outage-strickened cohort
  (``IncompleteSubmissionError``);
* a masked ``run_fl_round`` — sync, sharded, or engine-mediated — equals
  its unmasked twin bit for bit at float64 (and float32: sealing lives in
  the exact bit domain);
* no unmasked party update is ever resident in an ``AsyncRoundBuffer``:
  buffered rows differ from the raw updates while parked and unseal back
  to them exactly, and reports dropped at a window boundary are discarded
  still sealed.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.data.federated import FederatedShiftDataset
from repro.experiments.registry import build_strategy
from repro.federation.async_engine import FederationConfig, FederationEngine
from repro.federation.availability import (
    AvailabilityConfig,
    AvailabilitySimulator,
)
from repro.federation.rounds import run_fl_round
from repro.harness.runner import run_strategy
from repro.privacy.secure_aggregation import (
    IncompleteSubmissionError,
    SecureAggregationSession,
    mask_vector,
    pairwise_mask,
    seal_bits,
    self_seal_bits,
)
from repro.utils.params import ParamBank, ParamSpec, flatten_params
from repro.utils.rng import spawn_rng
from repro.utils.serialization import run_result_to_dict
from tests.conftest import make_context, make_run_settings, make_tiny_spec

SHAPES = [(3, 2), (2,)]


# ------------------------------------------------------------ the mask plane

class TestFlatMaskPlane:
    def test_pairwise_mask_matches_historical_per_tensor_draws(self):
        """One flat stream must reproduce the seed's per-shape draws."""
        sizes = [(3, 2), (2,), (4, 1, 2)]
        rng = spawn_rng(5, "pairwise-mask", 1, 2)
        legacy = [rng.normal(size=shape) for shape in sizes]
        flat = pairwise_mask(5, 1, 2, sizes)
        for new, old in zip(flat, legacy):
            assert np.array_equal(new, old)

    def test_mask_vector_symmetric_in_party_order(self):
        assert np.array_equal(mask_vector(3, 7, 2, 16), mask_vector(3, 2, 7, 16))
        assert np.array_equal(seal_bits(3, 7, 2, 16), seal_bits(3, 2, 7, 16))

    def test_context_namespaces_streams(self):
        base = mask_vector(3, 0, 1, 16)
        other = mask_vector(3, 0, 1, 16, context=("stream", "g", 4))
        assert not np.array_equal(base, other)

    def test_seal_bits_dtype_follows_precision(self):
        assert seal_bits(0, 0, 1, 4, dtype=np.float64).dtype == np.uint64
        assert seal_bits(0, 0, 1, 4, dtype=np.float32).dtype == np.uint32

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_seal_unseal_roundtrips_exactly(self, rng, dtype):
        spec = ParamSpec(((5,), (2, 3)))
        session = SecureAggregationSession([0, 1, 2], spec, shared_seed=9,
                                           dtype=dtype)
        bank = ParamBank(spec, dtype=dtype, capacity=3)
        row = bank.alloc(rng.normal(size=spec.total_size).astype(dtype))
        original = bank.row(row).copy()
        session.seal_row(0, bank.row(row))
        assert not np.array_equal(bank.row(row), original)
        session.unseal_row(0, bank.row(row))
        assert np.array_equal(bank.row(row), original)

    def test_sealed_row_pair_masks_cancel_in_the_modular_sum(self, rng):
        """The group-theoretic core: summed over the cohort, the pairwise
        components cancel exactly — what survives is the personal
        double-masking terms the recovery phase removes per row."""
        spec = ParamSpec(((6,),))
        session = SecureAggregationSession([0, 1, 2, 3], spec, shared_seed=4)
        total = np.zeros(6, dtype=np.uint64)
        for pid in session.cohort:
            total += session.net_seal_bits(pid)
            total -= self_seal_bits(4, pid, 6)
        assert not total.any()

    def test_singleton_cohort_row_is_still_sealed(self, rng):
        """Pairwise masks vanish in a one-party dispatch (every pair needs
        two parties), but the personal mask must still hide the row — a
        survivor of a heavy-dropout round may never sit plaintext in a
        buffer."""
        spec = ParamSpec(((8,),))
        session = SecureAggregationSession([3], spec, shared_seed=2)
        bank = ParamBank(spec, capacity=1)
        row = bank.alloc(rng.normal(size=8))
        original = bank.row(row).copy()
        session.seal_row(3, bank.row(row))
        assert not np.array_equal(bank.row(row), original)
        session.unseal_row(3, bank.row(row))
        assert np.array_equal(bank.row(row), original)


# ------------------------------------------------------------- failure modes

class TestFailureModes:
    def _updates(self, rng, n):
        return [[rng.normal(size=s) for s in SHAPES] for _ in range(n)]

    def test_duplicate_submit_rejected(self, rng):
        session = SecureAggregationSession([0, 1], SHAPES)
        session.submit(0, self._updates(rng, 1)[0])
        with pytest.raises(ValueError, match="already submitted"):
            session.submit(0, self._updates(rng, 1)[0])

    def test_duplicate_seal_rejected(self, rng):
        spec = ParamSpec(tuple(SHAPES))
        session = SecureAggregationSession([0, 1], spec)
        bank = ParamBank(spec, capacity=2)
        row = bank.alloc(rng.normal(size=spec.total_size))
        session.seal_row(0, bank.row(row))
        with pytest.raises(ValueError, match="already submitted"):
            session.seal_row(0, bank.row(row))
        # ... and mixing the facade in afterwards is a duplicate too.
        with pytest.raises(ValueError, match="already submitted"):
            session.submit(0, self._updates(rng, 1)[0])

    def test_weight_mismatch_between_masked_and_unmasked_paths(self, rng):
        """Masked means are uniform; silently diverging from the weighted
        FedAvg an unmasked run would compute must be refused instead."""
        session = SecureAggregationSession([0, 1], SHAPES)
        updates = self._updates(rng, 2)
        session.submit(0, updates[0], weight=1.0)
        session.submit(1, updates[1], weight=3.0)
        # The refusal names the offending parties and their weights, so the
        # misconfiguration is debuggable from the message alone.
        with pytest.raises(ValueError,
                           match=r"uniform weights.*party 0: 1.*party 1: 3"):
            session.aggregate()

    def test_unseal_requires_a_sealed_row(self, rng):
        spec = ParamSpec(tuple(SHAPES))
        session = SecureAggregationSession([0, 1], spec)
        bank = ParamBank(spec, capacity=2)
        row = bank.alloc(rng.normal(size=spec.total_size))
        with pytest.raises(KeyError, match="no sealed row"):
            session.unseal_row(0, bank.row(row))

    def test_combine_rows_weight_length_mismatch(self, rng):
        spec = ParamSpec(tuple(SHAPES))
        session = SecureAggregationSession([0, 1], spec)
        bank = ParamBank(spec, capacity=2)
        row = bank.alloc(rng.normal(size=spec.total_size))
        session.seal_row(0, bank.row(row))
        with pytest.raises(ValueError, match="does not match"):
            session.combine_rows(bank, [1.0, 2.0], [(0, row)])

    def test_combine_rows_rejects_bad_weights_before_unsealing(self, rng):
        """Weight validation must happen while the rows are still masked:
        a rejected aggregation may not leave plaintext in the bank."""
        spec = ParamSpec(tuple(SHAPES))
        session = SecureAggregationSession([0, 1], spec)
        bank = ParamBank(spec, capacity=2)
        row = bank.alloc(rng.normal(size=spec.total_size))
        session.seal_row(0, bank.row(row))
        sealed_bytes = bank.row(row).copy()
        with pytest.raises(ValueError, match="positive"):
            session.combine_rows(bank, [0.0], [(0, row)])
        assert session.is_sealed(0)
        assert np.array_equal(bank.row(row), sealed_bytes)

    def test_aggregate_refuses_sealed_federation_rows(self, rng):
        """The facade aggregate() must fail loudly, not with a KeyError,
        when the session's submissions are sealed bank rows."""
        spec = ParamSpec(tuple(SHAPES))
        session = SecureAggregationSession([0, 1], spec)
        bank = ParamBank(spec, capacity=2)
        for pid in (0, 1):
            session.seal_row(pid, bank.row(
                bank.alloc(rng.normal(size=spec.total_size))))
        assert session.missing == []
        with pytest.raises(ValueError, match="combine_rows"):
            session.aggregate()

    def test_seal_rejects_foreign_dtype_and_shape(self, rng):
        session = SecureAggregationSession([0, 1], ParamSpec(((4,),)),
                                           dtype=np.float64)
        with pytest.raises(ValueError, match="dtype"):
            session.seal_row(0, rng.normal(size=4).astype(np.float32))
        with pytest.raises(ValueError, match="size"):
            session.seal_row(0, rng.normal(size=5))

    def test_outage_stricken_cohort_cannot_aggregate(self, rng):
        """Under the ``outages`` preset a correlated slice of the cohort
        never submits, and the session must refuse to reveal the partial
        masked sum."""
        simulator = AvailabilitySimulator(
            AvailabilityConfig.scenario("outages"), seed=3, num_parties=8)
        cohort = list(range(8))
        outage_tick = next(
            t for t in range(200)
            if any(f.dropped for f in simulator.cohort_fates(cohort, t)))
        fates = simulator.cohort_fates(cohort, outage_tick)
        session = SecureAggregationSession(cohort, SHAPES, shared_seed=7)
        for fate in fates:
            if not fate.dropped:
                session.submit(fate.party_id,
                               [rng.normal(size=s) for s in SHAPES])
        assert session.missing  # the outage actually removed someone
        with pytest.raises(IncompleteSubmissionError):
            session.aggregate()


# ---------------------------------------------------- masked rounds, bitwise

def _fresh(spec, dataset):
    ctx = make_context(spec, dataset)
    return ctx, ctx.model_factory().get_params()


class TestMaskedRoundsBitwise:
    def test_sync_round_exact_at_float64(self, tiny_spec, tiny_dataset):
        ctx, params = _fresh(tiny_spec, tiny_dataset)
        plain, plain_stats = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                          ctx.round_config, round_tag=(0, 0))
        ctx, params = _fresh(tiny_spec, tiny_dataset)
        masked, masked_stats = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                            ctx.round_config, round_tag=(0, 0),
                                            secure=11)
        assert np.array_equal(flatten_params(plain), flatten_params(masked))
        assert plain_stats.reported == masked_stats.reported

    def test_sync_round_exact_at_float32(self, tiny_spec, tiny_dataset):
        ctx, params = _fresh(tiny_spec, tiny_dataset)
        plain, _ = run_fl_round(ctx.parties, [0, 1, 2], params,
                                ctx.round_config, dtype=np.float32)
        ctx, params = _fresh(tiny_spec, tiny_dataset)
        masked, _ = run_fl_round(ctx.parties, [0, 1, 2], params,
                                 ctx.round_config, dtype=np.float32, secure=11)
        assert all(p.dtype == np.float32 for p in masked)
        assert np.array_equal(flatten_params(plain), flatten_params(masked))

    def test_sharded_round_stays_sealed_and_exact(self, tiny_spec,
                                                  tiny_dataset):
        ctx, params = _fresh(tiny_spec, tiny_dataset)
        plain, _ = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                ctx.round_config, shards=2)
        ctx, params = _fresh(tiny_spec, tiny_dataset)
        masked, _ = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                 ctx.round_config, shards=2, secure=11)
        assert np.array_equal(flatten_params(plain), flatten_params(masked))

    @pytest.mark.parametrize("mode", ["sync", "buffered", "async"])
    def test_engine_round_exact(self, tiny_spec, tiny_dataset, mode):
        def one(secure):
            engine = FederationEngine(FederationConfig(mode=mode), seed=0,
                                      num_parties=8)
            ctx, params = _fresh(tiny_spec, tiny_dataset)
            engine.advance((0, 0))
            got, stats = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                      ctx.round_config, round_tag=(0, 0),
                                      engine=engine, stream="g",
                                      secure=secure)
            assert stats.aggregated
            return flatten_params(got)

        assert np.array_equal(one(None), one(11))


# ----------------------------------------------- buffer residency invariants

def _buffered_engine(secure_seed=None, **avail):
    """A buffered engine that keeps reports parked (trigger never met)."""
    return FederationEngine(
        FederationConfig(mode="buffered", min_reports=99, max_wait_rounds=99,
                         availability=AvailabilityConfig(**avail)),
        seed=0, num_parties=8)


class TestBufferResidency:
    def _park_reports(self, spec, dataset, secure):
        engine = _buffered_engine()
        ctx, params = _fresh(spec, dataset)
        engine.advance((0, 0))
        _, stats = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                ctx.round_config, round_tag=(0, 0),
                                engine=engine, stream="g", secure=secure)
        assert not stats.aggregated
        buf = engine._buffers["g"]
        return engine, buf

    def test_no_unmasked_row_resident_in_buffer(self, tiny_spec, tiny_dataset):
        """The acceptance invariant: while parked, every pending row is
        sealed — it differs from the raw trained update, and unsealing a
        copy restores that update exactly."""
        _, plain_buf = self._park_reports(tiny_spec, tiny_dataset, None)
        raw = {r.party_id: plain_buf.bank.row(r.row).copy()
               for r in plain_buf._pending}
        _, sealed_buf = self._park_reports(tiny_spec, tiny_dataset, 11)
        assert sealed_buf.in_flight == len(raw) > 0
        for report in sealed_buf._pending:
            resident = sealed_buf.bank.row(report.row)
            assert report.session is not None
            assert report.session.is_sealed(report.party_id)
            assert not np.array_equal(resident, raw[report.party_id])
            recovered = resident.copy()
            report.session.unseal_row(report.party_id, recovered)
            assert np.array_equal(recovered, raw[report.party_id])
            # Re-seal: the test must not mutate session state it borrowed.
            report.session.seal_row(report.party_id, np.zeros_like(recovered))

    def test_window_flush_drops_reports_still_sealed(self, tiny_spec,
                                                     tiny_dataset):
        """A report stranded at a window boundary is discarded masked: the
        flush never runs the recovery phase, so nothing unmasked (not even
        a residue) survives into the next window."""
        engine, buf = self._park_reports(tiny_spec, tiny_dataset, 11)
        reports = list(buf._pending)
        sealed_bytes = {r.party_id: buf.bank.row(r.row).copy()
                        for r in reports}
        expired = engine.begin_window(1)
        assert expired == len(reports)
        assert buf.in_flight == 0
        for report in reports:
            # Still sealed from the session's point of view: the mask
            # material for these rows was never reconstructed.
            assert report.session.is_sealed(report.party_id)
            assert not np.array_equal(sealed_bytes[report.party_id],
                                      np.zeros_like(
                                          sealed_bytes[report.party_id]))

    def test_aggregation_scrubs_rows_before_release(self, tiny_spec,
                                                    tiny_dataset):
        """The one exit that unseals must not leave plaintext in the freed
        slots."""
        engine = FederationEngine(FederationConfig(mode="async"), seed=0,
                                  num_parties=8)
        ctx, params = _fresh(tiny_spec, tiny_dataset)
        engine.advance((0, 0))
        _, stats = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                ctx.round_config, round_tag=(0, 0),
                                engine=engine, stream="g", secure=11)
        assert stats.aggregated
        buf = engine._buffers["g"]
        assert buf.in_flight == 0
        for slot in range(buf.bank.n_slots):
            assert not buf.bank._buf[slot].any()


# ------------------------------------------------------- full-run invariants

class TestMaskedRunsBitwise:
    def _spec_ds(self, seed):
        spec = make_tiny_spec(name=f"unit_secure_{seed}", num_parties=6,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=seed)
        return spec, FederatedShiftDataset(spec)

    def test_fedavg_masked_run_is_bitwise_identical(self):
        spec, ds = self._spec_ds(31)
        base = make_run_settings()
        plain = run_strategy(build_strategy("fedavg"), spec, base, seed=0,
                             dataset=ds)
        masked = run_strategy(
            build_strategy("fedavg"), spec,
            dataclasses.replace(base, secure_aggregation=True), seed=0,
            dataset=ds)
        assert run_result_to_dict(plain) == run_result_to_dict(masked)

    def test_masked_async_dropout_run_is_bitwise_identical(self):
        """Sealed buffers under dropout + stragglers: reports cross round
        boundaries (exercising bank growth with sealed rows resident) and
        some are flushed sealed — the run must still match its twin."""
        spec, ds = self._spec_ds(37)
        federation = FederationConfig(
            mode="buffered", min_reports=3, max_wait_rounds=2,
            staleness_policy="polynomial",
            availability=AvailabilityConfig(dropout_prob=0.2,
                                            straggler_prob=0.4))
        base = dataclasses.replace(make_run_settings(), federation=federation)
        plain = run_strategy(build_strategy("fedavg"), spec, base, seed=2,
                             dataset=ds)
        masked = run_strategy(
            build_strategy("fedavg"), spec,
            dataclasses.replace(base, secure_aggregation=True), seed=2,
            dataset=ds)
        assert run_result_to_dict(plain) == run_result_to_dict(masked)
        fed = plain.extras["federation"]
        assert fed["dropped"] > 0 and fed["delayed"] > 0

    def test_masked_float32_population_run_is_bitwise_identical(self):
        """The mixed precision plan under seal, at population scale.

        A ``params=float32`` pooled run (virtual parties, bounded
        residency, model recycling) seals rows in the uint32 bit domain;
        sealing must stay invisible in the bits exactly as the float64
        eager pins above, extending them to the PR's mixed plan.
        """
        from repro.federation.pool import PopulationConfig
        from repro.utils.precision import PrecisionPlan

        spec, ds = self._spec_ds(43)
        base = dataclasses.replace(
            make_run_settings(),
            precision=PrecisionPlan(params="float32"), dtype=None,
            population=PopulationConfig(size=spec.num_parties,
                                        max_resident=3))
        plain = run_strategy(build_strategy("fedavg"), spec, base, seed=0,
                             dataset=ds)
        masked = run_strategy(
            build_strategy("fedavg"), spec,
            dataclasses.replace(base, secure_aggregation=True,
                                precision=base.precision, dtype=None),
            seed=0, dataset=ds)
        assert run_result_to_dict(plain) == run_result_to_dict(masked)

    @pytest.mark.slow
    @pytest.mark.parametrize("method", ["fedavg", "fedprox", "oort",
                                        "fielding", "feddrift", "shiftex"])
    def test_every_strategy_masked_equals_unmasked(self, method):
        spec, ds = self._spec_ds(41)
        base = make_run_settings()
        plain = run_strategy(build_strategy(method), spec, base, seed=0,
                             dataset=ds)
        masked = run_strategy(
            build_strategy(method), spec,
            dataclasses.replace(base, secure_aggregation=True), seed=0,
            dataset=ds)
        first, second = run_result_to_dict(plain), run_result_to_dict(masked)
        # Wall-clock profiler timings are the one legitimately
        # non-deterministic section of a run result.
        first.pop("profiler")
        second.pop("profiler")
        assert first == second
