"""Tests for KL / Jensen-Shannon divergence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.detection.divergence import jsd, jsd_max, kl_divergence


def normalize(v):
    arr = np.asarray(v, dtype=float)
    return arr / arr.sum()


class TestKl:
    def test_self_divergence_zero(self):
        p = normalize([1, 2, 3])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_asymmetric(self):
        p = normalize([9, 1])
        q = normalize([1, 9])
        assert kl_divergence(p, q) == pytest.approx(kl_divergence(q, p))
        p2 = normalize([8, 1, 1])
        # Generic distributions are asymmetric.
        r2 = normalize([4, 4, 2])
        assert kl_divergence(p2, r2) != pytest.approx(kl_divergence(r2, p2))

    def test_disjoint_support_infinite(self):
        assert kl_divergence(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == float("inf")

    def test_zero_p_entries_contribute_nothing(self):
        p = np.array([0.0, 1.0])
        q = normalize([1, 1])
        assert np.isfinite(kl_divergence(p, q))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(normalize([1, 1]), normalize([1, 1, 1]))


class TestJsd:
    def test_identical_is_zero(self):
        p = normalize([1, 2, 3, 4])
        assert jsd(p, p) == pytest.approx(0.0)

    def test_disjoint_support_is_log2(self):
        assert jsd(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == \
            pytest.approx(np.log(2))

    def test_symmetric(self):
        p = normalize([5, 2, 1])
        q = normalize([1, 2, 5])
        assert jsd(p, q) == pytest.approx(jsd(q, p))

    def test_bounded(self):
        p = normalize([10, 1, 1])
        q = normalize([1, 1, 10])
        assert 0.0 <= jsd(p, q) <= jsd_max()

    def test_finite_for_partial_overlap(self):
        p = np.array([0.5, 0.5, 0.0])
        q = np.array([0.0, 0.5, 0.5])
        value = jsd(p, q)
        assert np.isfinite(value)
        assert 0 < value < np.log(2)

    def test_more_different_is_larger(self):
        base = normalize([4, 4, 4])
        near = normalize([5, 4, 3])
        far = normalize([10, 1, 1])
        assert jsd(base, near) < jsd(base, far)

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            jsd(np.array([0.5, 0.2]), np.array([0.5, 0.5]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            jsd(normalize([1, 1]), normalize([1, 1, 1]))

    @given(st.lists(st.floats(0.01, 10), min_size=2, max_size=8),
           st.lists(st.floats(0.01, 10), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_jsd_properties(self, raw_p, raw_q):
        n = min(len(raw_p), len(raw_q))
        p = normalize(raw_p[:n])
        q = normalize(raw_q[:n])
        value = jsd(p, q)
        assert 0.0 <= value <= np.log(2) + 1e-12
        assert value == pytest.approx(jsd(q, p), abs=1e-10)
