"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_2d,
    check_probability_vector,
    check_same_shape,
    normalize_histogram,
)


class TestCheck2d:
    def test_accepts_matrix(self):
        out = check_2d(np.ones((3, 2)))
        assert out.shape == (3, 2)

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            check_2d(np.ones(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_2d(np.ones((0, 4)))

    def test_casts_to_float(self):
        out = check_2d(np.ones((2, 2), dtype=int))
        assert out.dtype == np.float64


class TestCheckSameShape:
    def test_accepts_equal(self):
        check_same_shape(np.ones((2, 3)), np.zeros((2, 3)))

    def test_rejects_unequal(self):
        with pytest.raises(ValueError):
            check_same_shape(np.ones((2, 3)), np.zeros((3, 2)))


class TestProbabilityVector:
    def test_accepts_valid(self):
        out = check_probability_vector(np.array([0.5, 0.5]))
        assert out.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([1.5, -0.5]))

    def test_rejects_not_summing_to_one(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([0.5, 0.4]))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.ones((2, 2)) / 4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([]))


class TestNormalizeHistogram:
    def test_normalizes_counts(self):
        out = normalize_histogram(np.array([2.0, 2.0]))
        assert np.allclose(out, [0.5, 0.5])

    def test_all_zero_becomes_uniform(self):
        out = normalize_histogram(np.zeros(4))
        assert np.allclose(out, 0.25)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            normalize_histogram(np.array([1.0, -1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_histogram(np.array([]))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            normalize_histogram(np.ones((2, 2)))
