"""Tests for the FL core: parties, aggregation, rounds, accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.federation.accounting import CommunicationLedger, RuntimeProfiler
from repro.federation.aggregation import fedavg
from repro.federation.party import LocalUpdate, Party
from repro.federation.rounds import RoundConfig, run_fl_round
from repro.nn.models import build_model
from repro.nn.training import LocalTrainingConfig
from repro.utils.params import flatten_params
from repro.utils.rng import spawn_rng
from tests.conftest import make_context


class TestParty:
    def test_requires_window_data(self, tiny_spec, rng):
        model = build_model("mlp", tiny_spec.input_shape, tiny_spec.num_classes, rng)
        party = Party(3, model, tiny_spec.num_classes)
        assert not party.has_data
        with pytest.raises(RuntimeError):
            _ = party.data

    def test_rejects_foreign_window_data(self, tiny_spec, tiny_dataset, rng):
        model = build_model("mlp", tiny_spec.input_shape, tiny_spec.num_classes, rng)
        party = Party(3, model, tiny_spec.num_classes)
        with pytest.raises(ValueError):
            party.set_window_data(tiny_dataset.party_window(4, 0))

    def test_local_train_returns_update(self, tiny_spec, tiny_dataset, rng):
        model = build_model("mlp", tiny_spec.input_shape, tiny_spec.num_classes, rng)
        party = Party(0, model, tiny_spec.num_classes)
        party.set_window_data(tiny_dataset.party_window(0, 0))
        init = model.get_params()
        update = party.local_train(init, LocalTrainingConfig(epochs=1))
        assert update.party_id == 0
        assert update.num_samples == tiny_spec.train_per_window
        assert not np.allclose(flatten_params(update.params), flatten_params(init))

    def test_local_train_deterministic_per_round_tag(self, tiny_spec, tiny_dataset, rng):
        model = build_model("mlp", tiny_spec.input_shape, tiny_spec.num_classes,
                            spawn_rng(0, "m"))
        party = Party(0, model, tiny_spec.num_classes, seed=7)
        party.set_window_data(tiny_dataset.party_window(0, 0))
        init = model.get_params()
        u1 = party.local_train(init, LocalTrainingConfig(epochs=1), round_tag=5)
        u2 = party.local_train(init, LocalTrainingConfig(epochs=1), round_tag=5)
        assert np.allclose(flatten_params(u1.params), flatten_params(u2.params))

    def test_evaluate_splits(self, tiny_spec, tiny_dataset, rng):
        model = build_model("mlp", tiny_spec.input_shape, tiny_spec.num_classes, rng)
        party = Party(0, model, tiny_spec.num_classes)
        party.set_window_data(tiny_dataset.party_window(0, 0))
        params = model.get_params()
        for split in ("test", "train"):
            acc, loss = party.evaluate(params, split)
            assert 0.0 <= acc <= 1.0 and loss > 0
        with pytest.raises(ValueError):
            party.evaluate(params, "val")

    def test_embeddings_shape_and_subsample(self, tiny_spec, tiny_dataset, rng):
        model = build_model("mlp", tiny_spec.input_shape, tiny_spec.num_classes, rng)
        party = Party(0, model, tiny_spec.num_classes)
        party.set_window_data(tiny_dataset.party_window(0, 0))
        params = model.get_params()
        full = party.embeddings(params)
        assert full.shape[0] == tiny_spec.train_per_window
        sub, labels = party.embeddings_with_labels(params, max_samples=10)
        assert sub.shape[0] == 10 and labels.shape == (10,)

    def test_label_histogram(self, tiny_spec, tiny_dataset, rng):
        model = build_model("mlp", tiny_spec.input_shape, tiny_spec.num_classes, rng)
        party = Party(0, model, tiny_spec.num_classes)
        party.set_window_data(tiny_dataset.party_window(0, 0))
        hist = party.label_histogram()
        assert np.isclose(hist.sum(), 1.0)


class TestFedAvg:
    def make_update(self, pid, value, samples):
        return LocalUpdate(pid, [np.full((2, 2), value)], samples, 1.0)

    def test_weighted_by_samples(self):
        agg = fedavg([self.make_update(0, 0.0, 10), self.make_update(1, 1.0, 30)])
        assert np.allclose(agg[0], 0.75)

    def test_zero_sample_updates_ignored(self):
        agg = fedavg([self.make_update(0, 0.0, 0), self.make_update(1, 1.0, 10)])
        assert np.allclose(agg[0], 1.0)

    def test_all_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            fedavg([self.make_update(0, 1.0, 0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fedavg([])

    def test_shape_mismatch_names_party_and_shapes(self):
        updates = [
            self.make_update(3, 0.0, 10),
            LocalUpdate(9, [np.zeros((3, 1))], 10, 1.0),
        ]
        with pytest.raises(ValueError, match=r"party 9.*\(3, 1\)"):
            fedavg(updates)

    @given(st.lists(st.tuples(st.floats(-5, 5), st.integers(1, 50)),
                    min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_result_within_update_range(self, update_data):
        updates = [self.make_update(i, v, n) for i, (v, n) in enumerate(update_data)]
        agg = fedavg(updates)
        values = [v for v, _ in update_data]
        assert min(values) - 1e-9 <= agg[0][0, 0] <= max(values) + 1e-9


class TestRounds:
    def test_round_trains_and_aggregates(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        init = ctx.model_factory().get_params()
        new_params, stats = run_fl_round(ctx.parties, [0, 1, 2], init,
                                         ctx.round_config)
        assert stats.participants == [0, 1, 2]
        assert stats.total_samples == 3 * tiny_spec.train_per_window
        assert np.isfinite(stats.mean_train_loss)
        assert not np.allclose(flatten_params(new_params), flatten_params(init))

    def test_round_requires_participants(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        with pytest.raises(ValueError):
            run_fl_round(ctx.parties, [], ctx.model_factory().get_params(),
                         ctx.round_config)

    def test_round_rejects_unknown_party(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        with pytest.raises(KeyError):
            run_fl_round(ctx.parties, [99], ctx.model_factory().get_params(),
                         ctx.round_config)

    def test_round_config_validation(self):
        with pytest.raises(ValueError):
            RoundConfig(participants_per_round=0)


class TestAccounting:
    def test_ledger_totals(self):
        ledger = CommunicationLedger()
        ledger.record_model_download(1000, num_parties=3)
        ledger.record_model_upload(1000, num_parties=3)
        ledger.record_statistics_upload(32, 16, 10, num_parties=5)
        assert ledger.downlink_bytes == 1000 * 8 * 3
        assert ledger.uplink_bytes > 1000 * 8 * 3
        assert ledger.total_bytes == ledger.uplink_bytes + ledger.downlink_bytes
        summary = ledger.summary()
        assert summary["total_mb"] > 0

    def test_from_precision_sets_element_width(self):
        from repro.utils.precision import PrecisionPlan

        assert CommunicationLedger.from_precision(None).bytes_per_float == 8
        f32 = CommunicationLedger.from_precision(
            PrecisionPlan(params="float32"))
        assert f32.bytes_per_float == 4
        f32.record_model_download(1000, num_parties=3)
        assert f32.downlink_bytes == 1000 * 4 * 3  # not the hardcoded 8
        f64 = CommunicationLedger.from_precision(
            PrecisionPlan(params="float64"))
        f64.record_model_download(1000, num_parties=3)
        assert f64.downlink_bytes == 2 * f32.downlink_bytes

    def test_record_wire_is_verbatim_bytes(self):
        ledger = CommunicationLedger(bytes_per_float=4)
        ledger.record_wire("shard_service", 1500, 700)
        assert ledger.uplink_bytes == 1500 and ledger.downlink_bytes == 700
        summary = ledger.summary()
        assert summary["shard_service_mb"] == pytest.approx(2200 / 1e6)
        assert summary["uplink_bytes"] == 1500.0
        assert summary["bytes_per_float"] == 4.0

    def test_float32_run_reports_half_the_model_bytes(self):
        """Acceptance pin: a float32 run's ledger shows exactly half the
        model bytes of its float64 twin — no hardcoded 8-byte elements."""
        import dataclasses

        from repro.data.federated import FederatedShiftDataset
        from repro.experiments.registry import build_strategy
        from repro.harness.runner import run_strategy
        from repro.utils.precision import PrecisionPlan
        from tests.conftest import make_run_settings, make_tiny_spec

        spec = make_tiny_spec(name="unit_ledger_dtype", num_parties=6,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=53)
        ds = FederatedShiftDataset(spec)
        base = make_run_settings()
        s64 = dataclasses.replace(
            base, dtype=None, precision=PrecisionPlan(params="float64"))
        s32 = dataclasses.replace(
            base, dtype=None, precision=PrecisionPlan(params="float32"))
        run64 = run_strategy(build_strategy("fedavg"), spec, s64, seed=0,
                             dataset=ds).ledger_summary
        run32 = run_strategy(build_strategy("fedavg"), spec, s32, seed=0,
                             dataset=ds).ledger_summary
        assert run64["bytes_per_float"] == 8.0
        assert run32["bytes_per_float"] == 4.0
        assert run64["model_down_mb"] > 0
        assert run64["model_down_mb"] == 2 * run32["model_down_mb"]
        assert run64["model_up_mb"] == 2 * run32["model_up_mb"]
        assert run64["uplink_bytes"] == 2 * run32["uplink_bytes"]
        assert run64["downlink_bytes"] == 2 * run32["downlink_bytes"]

    def test_profiler_phases(self):
        profiler = RuntimeProfiler()
        with profiler.phase("detection"):
            sum(range(1000))
        profiler.add("clustering", 0.5)
        assert profiler.total_seconds("clustering") == pytest.approx(0.5)
        assert profiler.mean_ms("detection") > 0
        assert profiler.mean_ms("unknown") == 0.0
        summary = profiler.summary()
        assert set(summary) == {"detection", "clustering"}
