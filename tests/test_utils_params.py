"""Tests for parameter flattening / aggregation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.params import (
    ParamBank,
    ParamSpec,
    add_scaled,
    cosine_similarity_matrix,
    flatten_params,
    params_cosine_similarity,
    params_l2_distance,
    resolve_dtype,
    stack_params,
    unflatten_params,
    weighted_average,
    zeros_like_params,
)


def make_params(rng, shapes=((3, 4), (4,), (2, 2, 2))):
    return [rng.normal(size=s) for s in shapes]


class TestFlattenRoundtrip:
    def test_roundtrip_preserves_values(self, rng):
        params = make_params(rng)
        flat = flatten_params(params)
        restored = unflatten_params(flat, params)
        for a, b in zip(params, restored):
            assert np.allclose(a, b)

    def test_flat_length_is_total_size(self, rng):
        params = make_params(rng)
        assert flatten_params(params).size == sum(p.size for p in params)

    def test_empty_params(self):
        assert flatten_params([]).size == 0

    def test_spec_rejects_wrong_size_vector(self, rng):
        params = make_params(rng)
        spec = ParamSpec.of(params)
        with pytest.raises(ValueError):
            spec.unflatten(np.zeros(spec.total_size + 1))

    def test_unflatten_copies(self, rng):
        params = make_params(rng)
        flat = flatten_params(params)
        restored = unflatten_params(flat, params)
        restored[0][0, 0] = 999.0
        assert params[0][0, 0] != 999.0

    @given(st.lists(st.integers(1, 6), min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, sizes):
        rng = np.random.default_rng(0)
        params = [rng.normal(size=(s,)) for s in sizes]
        flat = flatten_params(params)
        restored = unflatten_params(flat, params)
        assert all(np.allclose(a, b) for a, b in zip(params, restored))


class TestWeightedAverage:
    def test_equal_weights_is_mean(self, rng):
        a, b = make_params(rng), make_params(rng)
        avg = weighted_average([a, b], [1.0, 1.0])
        for x, y, z in zip(a, b, avg):
            assert np.allclose((x + y) / 2, z)

    def test_weights_normalize(self, rng):
        a, b = make_params(rng), make_params(rng)
        avg1 = weighted_average([a, b], [1.0, 3.0])
        avg2 = weighted_average([a, b], [10.0, 30.0])
        for x, y in zip(avg1, avg2):
            assert np.allclose(x, y)

    def test_single_set_identity(self, rng):
        a = make_params(rng)
        avg = weighted_average([a], [5.0])
        for x, y in zip(a, avg):
            assert np.allclose(x, y)

    def test_zero_total_weight_rejected(self, rng):
        a = make_params(rng)
        with pytest.raises(ValueError):
            weighted_average([a, a], [0.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_average([], [])

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            weighted_average([make_params(rng)], [1.0, 2.0])

    @given(st.floats(0.01, 10), st.floats(0.01, 10))
    @settings(max_examples=25, deadline=None)
    def test_convex_combination_bounds(self, w1, w2):
        rng = np.random.default_rng(1)
        a = [rng.normal(size=(4,))]
        b = [rng.normal(size=(4,))]
        avg = weighted_average([a, b], [w1, w2])[0]
        lo = np.minimum(a[0], b[0]) - 1e-12
        hi = np.maximum(a[0], b[0]) + 1e-12
        assert np.all(avg >= lo) and np.all(avg <= hi)


class TestAddScaledAndZeros:
    def test_add_scaled_accumulates(self, rng):
        a = make_params(rng)
        acc = zeros_like_params(a)
        add_scaled(acc, a, 2.0)
        for x, y in zip(acc, a):
            assert np.allclose(x, 2.0 * y)

    def test_zeros_shapes(self, rng):
        a = make_params(rng)
        z = zeros_like_params(a)
        assert all(x.shape == y.shape for x, y in zip(a, z))
        assert all(np.all(x == 0) for x in z)

    def test_add_scaled_length_mismatch(self, rng):
        a = make_params(rng)
        with pytest.raises(ValueError):
            add_scaled(a, a[:-1], 1.0)


class TestZeroCopyPlane:
    def test_spec_view_aliases_vector(self, rng):
        params = make_params(rng)
        spec = ParamSpec.of(params)
        vector = flatten_params(params).copy()
        views = spec.view(vector)
        views[0][0, 0] = 123.0
        assert vector[0] == 123.0
        vector[-1] = -7.0
        assert views[-1].ravel()[-1] == -7.0

    def test_flatten_of_view_list_is_zero_copy(self, rng):
        params = make_params(rng)
        spec = ParamSpec.of(params)
        vector = flatten_params(params).copy()
        views = spec.view(vector)
        flat = flatten_params(views)
        assert flat is vector or flat.base is vector
        assert np.shares_memory(flat, vector)

    def test_flatten_of_plain_list_copies(self, rng):
        params = make_params(rng)
        flat = flatten_params(params)
        flat[0] = 999.0
        assert params[0].ravel()[0] != 999.0

    def test_stack_params_mismatch_names_offender(self, rng):
        good = make_params(rng)
        bad = make_params(rng, shapes=((3, 4), (5,), (2, 2, 2)))
        with pytest.raises(ValueError, match="party 7"):
            stack_params([good, bad], names=["party 3", "party 7"])

    def test_weighted_average_mismatch_reports_shapes(self, rng):
        good = make_params(rng)
        bad = make_params(rng, shapes=((2, 2),))
        with pytest.raises(ValueError, match=r"entry 1.*\(2, 2\)"):
            weighted_average([good, bad], [1.0, 1.0])

    def test_resolve_dtype_rejects_non_float(self):
        with pytest.raises(ValueError):
            resolve_dtype(np.int32)

    def test_resolve_dtype_rejects_unknown_name(self):
        # np.dtype raises TypeError here; the knob surfaces ValueError so
        # CLI error handling stays uniform (exit 2, one-line stderr).
        with pytest.raises(ValueError, match="bogus"):
            resolve_dtype("bogus")


class TestParamBank:
    def make_bank(self, rng, n=3, dtype=None):
        sets = [make_params(rng) for _ in range(n)]
        return ParamBank.from_param_sets(sets, dtype=dtype), sets

    def test_row_params_are_zero_copy_views(self, rng):
        bank, sets = self.make_bank(rng)
        views = bank.row_params(1)
        views[0][0, 0] = 42.0
        assert bank.row(1)[0] == 42.0
        assert bank.matrix()[1, 0] == 42.0

    def test_rows_roundtrip_values(self, rng):
        bank, sets = self.make_bank(rng)
        for i, params in enumerate(sets):
            for view, original in zip(bank.row_params(i), params):
                assert np.allclose(view, original)

    def test_weighted_combine_matches_weighted_average(self, rng):
        bank, sets = self.make_bank(rng)
        weights = [1.0, 2.0, 3.0]
        combined = bank.weighted_combine(weights)
        expected = weighted_average(sets, weights)
        assert np.allclose(combined, flatten_params(expected))

    def test_cosine_matrix_matches_pairwise(self, rng):
        bank, sets = self.make_bank(rng, n=4)
        sims = bank.cosine_matrix()
        for i in range(4):
            for j in range(4):
                assert sims[i, j] == pytest.approx(
                    params_cosine_similarity(sets[i], sets[j]), abs=1e-12)

    def test_cosine_matrix_zero_row_conventions(self):
        matrix = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 0.0]])
        sims = cosine_similarity_matrix(matrix)
        assert sims[0, 2] == 1.0  # zero vs zero
        assert sims[0, 1] == 0.0  # zero vs non-zero
        assert sims[1, 1] == pytest.approx(1.0)

    def test_float32_float64_roundtrip(self, rng):
        bank64, sets = self.make_bank(rng, dtype=np.float64)
        bank32 = bank64.astype(np.float32)
        assert bank32.dtype == np.dtype(np.float32)
        back = bank32.astype(np.float64)
        # float64 -> float32 -> float64 equals the float32 quantization...
        assert np.allclose(back.matrix(), bank64.matrix(), atol=1e-6)
        # ...and a float32-born bank round-trips through float64 exactly.
        again = back.astype(np.float32)
        assert np.array_equal(again.matrix(), bank32.matrix())

    def test_alloc_release_recycles_slots(self, rng):
        bank, _sets = self.make_bank(rng)
        row = bank.alloc()
        assert bank.refcount(row) == 1
        bank.release(row)
        assert bank.alloc() == row  # slot recycled
        with pytest.raises(KeyError):
            bank.row(99)

    def test_share_makes_copy_on_write(self, rng):
        bank, sets = self.make_bank(rng, n=1)
        clone_row = bank.share(0)
        assert clone_row == 0 and bank.is_shared(0)
        private = bank.ensure_private(0)
        assert private != 0
        assert not bank.is_shared(0)
        assert np.allclose(bank.row(private), bank.row(0))
        bank.row(private)[0] = 77.0
        assert bank.row(0)[0] != 77.0

    def test_growth_preserves_rows(self, rng):
        bank, sets = self.make_bank(rng)
        before = bank.matrix().copy()
        for _ in range(64):  # force several buffer relocations
            bank.alloc()
        assert np.allclose(bank.matrix()[:3], before)

    def test_matrix_contiguous_run_is_view(self, rng):
        bank, _sets = self.make_bank(rng)
        matrix = bank.matrix([0, 1, 2])
        assert np.shares_memory(matrix, bank.row(0))

    def test_bad_weights_rejected(self, rng):
        bank, _sets = self.make_bank(rng)
        with pytest.raises(ValueError):
            bank.weighted_combine([1.0, 2.0])
        with pytest.raises(ValueError):
            bank.weighted_combine([0.0, 0.0, 0.0])


class TestSimilarity:
    def test_cosine_self_is_one(self, rng):
        a = make_params(rng)
        assert params_cosine_similarity(a, a) == pytest.approx(1.0)

    def test_cosine_negation_is_minus_one(self, rng):
        a = make_params(rng)
        b = [-p for p in a]
        assert params_cosine_similarity(a, b) == pytest.approx(-1.0)

    def test_cosine_zero_vs_zero(self):
        z = [np.zeros(3)]
        assert params_cosine_similarity(z, z) == 1.0

    def test_cosine_zero_vs_nonzero(self, rng):
        z = [np.zeros(3)]
        a = [np.ones(3)]
        assert params_cosine_similarity(z, a) == 0.0

    def test_l2_distance_self_zero(self, rng):
        a = make_params(rng)
        assert params_l2_distance(a, a) == pytest.approx(0.0)

    def test_l2_distance_symmetric(self, rng):
        a, b = make_params(rng), make_params(rng)
        assert params_l2_distance(a, b) == pytest.approx(params_l2_distance(b, a))

    @given(st.floats(0.1, 5.0))
    @settings(max_examples=20, deadline=None)
    def test_cosine_scale_invariant(self, scale):
        rng = np.random.default_rng(2)
        a = [rng.normal(size=(6,))]
        b = [rng.normal(size=(6,))]
        s1 = params_cosine_similarity(a, b)
        s2 = params_cosine_similarity([scale * a[0]], b)
        assert s1 == pytest.approx(s2, abs=1e-9)
