"""Tests for parameter flattening / aggregation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.params import (
    ParamSpec,
    add_scaled,
    flatten_params,
    params_cosine_similarity,
    params_l2_distance,
    unflatten_params,
    weighted_average,
    zeros_like_params,
)


def make_params(rng, shapes=((3, 4), (4,), (2, 2, 2))):
    return [rng.normal(size=s) for s in shapes]


class TestFlattenRoundtrip:
    def test_roundtrip_preserves_values(self, rng):
        params = make_params(rng)
        flat = flatten_params(params)
        restored = unflatten_params(flat, params)
        for a, b in zip(params, restored):
            assert np.allclose(a, b)

    def test_flat_length_is_total_size(self, rng):
        params = make_params(rng)
        assert flatten_params(params).size == sum(p.size for p in params)

    def test_empty_params(self):
        assert flatten_params([]).size == 0

    def test_spec_rejects_wrong_size_vector(self, rng):
        params = make_params(rng)
        spec = ParamSpec.of(params)
        with pytest.raises(ValueError):
            spec.unflatten(np.zeros(spec.total_size + 1))

    def test_unflatten_copies(self, rng):
        params = make_params(rng)
        flat = flatten_params(params)
        restored = unflatten_params(flat, params)
        restored[0][0, 0] = 999.0
        assert params[0][0, 0] != 999.0

    @given(st.lists(st.integers(1, 6), min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, sizes):
        rng = np.random.default_rng(0)
        params = [rng.normal(size=(s,)) for s in sizes]
        flat = flatten_params(params)
        restored = unflatten_params(flat, params)
        assert all(np.allclose(a, b) for a, b in zip(params, restored))


class TestWeightedAverage:
    def test_equal_weights_is_mean(self, rng):
        a, b = make_params(rng), make_params(rng)
        avg = weighted_average([a, b], [1.0, 1.0])
        for x, y, z in zip(a, b, avg):
            assert np.allclose((x + y) / 2, z)

    def test_weights_normalize(self, rng):
        a, b = make_params(rng), make_params(rng)
        avg1 = weighted_average([a, b], [1.0, 3.0])
        avg2 = weighted_average([a, b], [10.0, 30.0])
        for x, y in zip(avg1, avg2):
            assert np.allclose(x, y)

    def test_single_set_identity(self, rng):
        a = make_params(rng)
        avg = weighted_average([a], [5.0])
        for x, y in zip(a, avg):
            assert np.allclose(x, y)

    def test_zero_total_weight_rejected(self, rng):
        a = make_params(rng)
        with pytest.raises(ValueError):
            weighted_average([a, a], [0.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_average([], [])

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            weighted_average([make_params(rng)], [1.0, 2.0])

    @given(st.floats(0.01, 10), st.floats(0.01, 10))
    @settings(max_examples=25, deadline=None)
    def test_convex_combination_bounds(self, w1, w2):
        rng = np.random.default_rng(1)
        a = [rng.normal(size=(4,))]
        b = [rng.normal(size=(4,))]
        avg = weighted_average([a, b], [w1, w2])[0]
        lo = np.minimum(a[0], b[0]) - 1e-12
        hi = np.maximum(a[0], b[0]) + 1e-12
        assert np.all(avg >= lo) and np.all(avg <= hi)


class TestAddScaledAndZeros:
    def test_add_scaled_accumulates(self, rng):
        a = make_params(rng)
        acc = zeros_like_params(a)
        add_scaled(acc, a, 2.0)
        for x, y in zip(acc, a):
            assert np.allclose(x, 2.0 * y)

    def test_zeros_shapes(self, rng):
        a = make_params(rng)
        z = zeros_like_params(a)
        assert all(x.shape == y.shape for x, y in zip(a, z))
        assert all(np.all(x == 0) for x in z)

    def test_add_scaled_length_mismatch(self, rng):
        a = make_params(rng)
        with pytest.raises(ValueError):
            add_scaled(a, a[:-1], 1.0)


class TestSimilarity:
    def test_cosine_self_is_one(self, rng):
        a = make_params(rng)
        assert params_cosine_similarity(a, a) == pytest.approx(1.0)

    def test_cosine_negation_is_minus_one(self, rng):
        a = make_params(rng)
        b = [-p for p in a]
        assert params_cosine_similarity(a, b) == pytest.approx(-1.0)

    def test_cosine_zero_vs_zero(self):
        z = [np.zeros(3)]
        assert params_cosine_similarity(z, z) == 1.0

    def test_cosine_zero_vs_nonzero(self, rng):
        z = [np.zeros(3)]
        a = [np.ones(3)]
        assert params_cosine_similarity(z, a) == 0.0

    def test_l2_distance_self_zero(self, rng):
        a = make_params(rng)
        assert params_l2_distance(a, a) == pytest.approx(0.0)

    def test_l2_distance_symmetric(self, rng):
        a, b = make_params(rng), make_params(rng)
        assert params_l2_distance(a, b) == pytest.approx(params_l2_distance(b, a))

    @given(st.floats(0.1, 5.0))
    @settings(max_examples=20, deadline=None)
    def test_cosine_scale_invariant(self, scale):
        rng = np.random.default_rng(2)
        a = [rng.normal(size=(6,))]
        b = [rng.normal(size=(6,))]
        s1 = params_cosine_similarity(a, b)
        s2 = params_cosine_similarity([scale * a[0]], b)
        assert s1 == pytest.approx(s2, abs=1e-9)
