"""Tests for MMD estimators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.detection.mmd import (
    class_conditional_mmd,
    linear_time_mmd2,
    median_heuristic_gamma,
    mmd,
    mmd2_biased,
    mmd2_unbiased,
    rbf_kernel,
)
from repro.utils.rng import spawn_rng


def two_samples(rng, shift=0.0, n=40, d=4):
    x = rng.normal(size=(n, d))
    y = rng.normal(loc=shift, size=(n, d))
    return x, y


class TestKernel:
    def test_diagonal_is_one(self, rng):
        x = rng.normal(size=(5, 3))
        k = rbf_kernel(x, x, gamma=0.5)
        assert np.allclose(np.diag(k), 1.0)

    def test_values_in_unit_interval(self, rng):
        x, y = two_samples(rng)
        k = rbf_kernel(x, y, gamma=1.0)
        assert np.all(k > 0) and np.all(k <= 1.0)

    def test_rejects_nonpositive_gamma(self, rng):
        x, y = two_samples(rng)
        with pytest.raises(ValueError):
            rbf_kernel(x, y, gamma=0.0)

    def test_median_heuristic_positive(self, rng):
        x, y = two_samples(rng)
        assert median_heuristic_gamma(x, y) > 0

    def test_median_heuristic_degenerate_points(self):
        x = np.ones((5, 2))
        assert median_heuristic_gamma(x) == 1.0


class TestMmdEstimators:
    def test_identical_samples_zero(self, rng):
        x, _ = two_samples(rng)
        assert mmd2_biased(x, x) < 1e-10
        assert mmd(x, x) < 1e-5

    def test_same_distribution_small(self, rng):
        x, y = two_samples(rng, shift=0.0, n=100)
        assert mmd(x, y) < 0.25

    def test_different_distribution_large(self, rng):
        x, y = two_samples(rng, shift=3.0, n=100)
        assert mmd(x, y) > 0.5

    def test_symmetry(self, rng):
        x, y = two_samples(rng, shift=1.0)
        gamma = median_heuristic_gamma(x, y)
        assert mmd2_biased(x, y, gamma) == pytest.approx(mmd2_biased(y, x, gamma))

    def test_biased_nonnegative(self, rng):
        x, y = two_samples(rng)
        assert mmd2_biased(x, y) >= 0.0

    def test_unbiased_close_to_biased_for_large_n(self, rng):
        x, y = two_samples(rng, shift=1.0, n=200)
        gamma = median_heuristic_gamma(x, y)
        assert mmd2_unbiased(x, y, gamma) == pytest.approx(
            mmd2_biased(x, y, gamma), abs=0.05)

    def test_unbiased_requires_two_samples(self, rng):
        with pytest.raises(ValueError):
            mmd2_unbiased(np.ones((1, 2)), np.ones((3, 2)))

    def test_monotone_in_shift(self, rng):
        scores = []
        for shift in (0.0, 1.0, 2.5):
            x, y = two_samples(spawn_rng(1, shift), shift=shift, n=150)
            scores.append(mmd(x, y, gamma=0.25))
        assert scores[0] < scores[1] < scores[2]

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            mmd(np.ones(5), np.ones(5))

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_self_mmd_zero_property(self, seed):
        x = spawn_rng(seed, "h").normal(size=(20, 3))
        assert mmd2_biased(x, x) < 1e-9


class TestLinearTimeMmd:
    def test_detects_shift(self, rng):
        x, y = two_samples(rng, shift=3.0, n=400)
        assert linear_time_mmd2(x, y) > 0.3

    def test_same_distribution_near_zero(self, rng):
        x, y = two_samples(rng, shift=0.0, n=400)
        assert abs(linear_time_mmd2(x, y)) < 0.15

    def test_requires_two_pairs(self, rng):
        with pytest.raises(ValueError):
            linear_time_mmd2(np.ones((1, 2)), np.ones((1, 2)))

    def test_truncates_to_common_even_length(self, rng):
        x = rng.normal(size=(11, 3))
        y = rng.normal(size=(7, 3))
        value = linear_time_mmd2(x, y, gamma=0.5)
        assert np.isfinite(value)


class TestClassConditionalMmd:
    def test_zero_for_identical_labelled_sets(self, rng):
        x = rng.normal(size=(30, 4))
        labels = rng.integers(0, 3, 30)
        assert class_conditional_mmd(x, labels, x, labels) < 1e-6

    def test_ignores_pure_label_composition_change(self, rng):
        """Same per-class distributions, different class mix -> small score."""
        d = 4
        def sample(counts, tag):
            r = spawn_rng(5, tag)
            xs, ys = [], []
            for c, n in enumerate(counts):
                xs.append(r.normal(loc=3.0 * c, size=(n, d)))
                ys.extend([c] * n)
            return np.vstack(xs), np.array(ys)
        x1, y1 = sample([30, 10], "a")
        x2, y2 = sample([10, 30], "b")
        gamma = 0.05
        unconditional = mmd(x1, x2, gamma)
        conditional = class_conditional_mmd(x1, y1, x2, y2, gamma)
        assert conditional < unconditional / 2

    def test_detects_per_class_covariate_shift(self, rng):
        x1 = rng.normal(size=(40, 4))
        y1 = rng.integers(0, 2, 40)
        x2 = x1 + 3.0
        score = class_conditional_mmd(x1, y1, x2, y1, gamma=0.25)
        assert score > 0.5

    def test_falls_back_without_common_classes(self, rng):
        x1 = rng.normal(size=(10, 3))
        x2 = rng.normal(size=(10, 3))
        score = class_conditional_mmd(x1, np.zeros(10, dtype=int),
                                      x2, np.ones(10, dtype=int), gamma=0.5)
        assert score == pytest.approx(mmd(x1, x2, gamma=0.5))

    def test_rejects_misaligned_labels(self, rng):
        x = rng.normal(size=(10, 3))
        with pytest.raises(ValueError):
            class_conditional_mmd(x, np.zeros(9, dtype=int), x,
                                  np.zeros(10, dtype=int))
