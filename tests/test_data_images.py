"""Tests for the synthetic image domain."""

import numpy as np
import pytest

from repro.data.images import ImageDomainSpec, SyntheticImageGenerator
from repro.utils.rng import spawn_rng


@pytest.fixture(scope="module")
def gen():
    return SyntheticImageGenerator(ImageDomainSpec(num_classes=5, image_size=10,
                                                   channels=1, seed=3))


class TestSpecValidation:
    def test_rejects_one_class(self):
        with pytest.raises(ValueError):
            ImageDomainSpec(num_classes=1)

    def test_rejects_tiny_image(self):
        with pytest.raises(ValueError):
            ImageDomainSpec(num_classes=3, image_size=2)

    def test_rejects_two_channels(self):
        with pytest.raises(ValueError):
            ImageDomainSpec(num_classes=3, channels=2)

    def test_input_shape(self):
        spec = ImageDomainSpec(num_classes=3, image_size=8, channels=3)
        assert spec.input_shape == (3, 8, 8)


class TestSampling:
    def test_sample_class_shape_and_range(self, gen, rng):
        x = gen.sample_class(0, 7, rng)
        assert x.shape == (7, 1, 10, 10)
        assert x.min() >= 0.0 and x.max() <= 1.0

    def test_sample_zero(self, gen, rng):
        assert gen.sample_class(0, 0, rng).shape == (0, 1, 10, 10)

    def test_sample_rejects_bad_class(self, gen, rng):
        with pytest.raises(ValueError):
            gen.sample_class(5, 3, rng)

    def test_sample_rejects_negative_n(self, gen, rng):
        with pytest.raises(ValueError):
            gen.sample_class(0, -1, rng)

    def test_sample_by_labels(self, gen, rng):
        labels = np.array([0, 2, 2, 4])
        x = gen.sample(labels, rng)
        assert x.shape == (4, 1, 10, 10)

    def test_sample_dataset_respects_prior(self, gen, rng):
        prior = np.array([1.0, 0, 0, 0, 0])
        x, y = gen.sample_dataset(prior, 50, rng)
        assert np.all(y == 0)

    def test_sample_dataset_rejects_bad_prior_shape(self, gen, rng):
        with pytest.raises(ValueError):
            gen.sample_dataset(np.array([0.5, 0.5]), 10, rng)


class TestDomainStructure:
    def test_templates_deterministic_per_seed(self):
        spec = ImageDomainSpec(num_classes=4, image_size=8, seed=9)
        g1 = SyntheticImageGenerator(spec)
        g2 = SyntheticImageGenerator(spec)
        assert np.allclose(g1.templates, g2.templates)

    def test_templates_differ_across_seeds(self):
        g1 = SyntheticImageGenerator(ImageDomainSpec(num_classes=4, seed=1))
        g2 = SyntheticImageGenerator(ImageDomainSpec(num_classes=4, seed=2))
        assert not np.allclose(g1.templates, g2.templates)

    def test_classes_are_separable_by_nearest_template(self, gen, rng):
        labels = rng.integers(0, 5, 200)
        x = gen.sample(labels, rng)
        d2 = ((x[:, None] - gen.templates[None]) ** 2).sum(axis=(2, 3, 4))
        accuracy = (d2.argmin(axis=1) == labels).mean()
        assert accuracy > 0.7

    def test_three_channel_domain(self, rng):
        gen3 = SyntheticImageGenerator(ImageDomainSpec(num_classes=3, image_size=8,
                                                       channels=3, seed=4))
        x = gen3.sample_class(1, 4, rng)
        assert x.shape == (4, 3, 8, 8)
        # Channels carry different gains, so they should not be identical.
        assert not np.allclose(x[:, 0], x[:, 1])

    def test_noise_scale_controls_variability(self, rng):
        quiet = SyntheticImageGenerator(ImageDomainSpec(num_classes=3, seed=5,
                                                        noise_scale=0.01,
                                                        max_translation=0))
        loud = SyntheticImageGenerator(ImageDomainSpec(num_classes=3, seed=5,
                                                       noise_scale=0.3,
                                                       max_translation=0))
        xq = quiet.sample_class(0, 30, spawn_rng(0, "q"))
        xl = loud.sample_class(0, 30, spawn_rng(0, "l"))
        assert xq.std(axis=0).mean() < xl.std(axis=0).mean()
