"""Mixed-precision threshold recalibration: tables, tool, acceptance pin.

Three layers of the PR's contract:

* the committed per-precision threshold tables are what runs actually
  load — ``ci``/``small`` resolve the float32 table, ``paper`` the
  float64 identity — and strategies resolve their gates through them;
* ``python -m repro.detection.recalibrate`` regenerates the committed
  tables exactly (the ``--check`` pin), is an identity at float64, and
  scales its margins with ``--margin-factor``;
* the acceptance pin: a ``params=float32`` ShiftEx run under the
  recalibrated table makes the *same detection decisions* — shifted
  counts, cluster actions, expert creations, merges — as the all-float64
  seed pipeline on the integration scenario.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import ShiftExConfig, ShiftExStrategy
from repro.data.federated import FederatedShiftDataset
from repro.detection.recalibrate import main, recalibrate
from repro.detection.thresholds import (
    BASE_THRESHOLDS,
    ThresholdTable,
    load_threshold_table,
    table_path,
)
from repro.harness.profiles import get_profile
from repro.harness.runner import run_strategy
from repro.utils.precision import PrecisionPlan
from tests.conftest import make_context, make_run_settings, make_tiny_spec

ROOT = Path(__file__).parent.parent


class TestCommittedTables:
    def test_float64_table_is_the_exact_identity(self):
        """The legacy plane loads its historical thresholds unchanged —
        zero margins, values bit-equal to the bases — preserving the
        bitwise float64 invariant."""
        table = load_threshold_table("float64")
        assert table is not None and table.precision == "float64"
        for key, base in BASE_THRESHOLDS.items():
            entry = table.thresholds[key]
            assert entry["value"] == base
            assert entry["margin"] == 0.0

    def test_float32_table_margins_are_tiny_and_permissive(self):
        table = load_threshold_table("float32")
        assert table is not None and table.precision == "float32"
        for key, base in BASE_THRESHOLDS.items():
            entry = table.thresholds[key]
            assert entry["margin"] >= 0.0
            # float32 rounding moves these statistics by ~1e-7..1e-4; the
            # 4x margin stays far below anything decision-relevant.
            assert abs(entry["value"] - base) <= 1e-4 * max(1.0, base)
            signed = entry["value"] - base
            assert signed <= 0 if entry["direction"] == "down" else signed >= 0

    def test_profiles_load_their_committed_table(self):
        for profile in ("ci", "small"):
            _spec, settings = get_profile(profile, "fashion_mnist_sim")
            assert settings.precision.params == "float32"
            assert settings.precision.detection_stats == "float64"
            table = load_threshold_table(settings.precision)
            assert table is not None and table.precision == "float32"
        _spec, settings = get_profile("paper", "fashion_mnist_sim")
        assert settings.precision == PrecisionPlan()
        assert load_threshold_table(settings.precision).precision == "float64"

    def test_missing_table_loads_as_none(self):
        assert load_threshold_table("float16") is None


class TestStrategyThresholdResolution:
    def _ctx(self, table):
        spec = make_tiny_spec(name="unit_thresh", num_parties=4)
        ctx = make_context(spec, FederatedShiftDataset(spec))
        ctx.thresholds = table
        return ctx

    def test_shiftex_resolves_gates_from_the_table(self):
        table = load_threshold_table("float32")
        strategy = ShiftExStrategy()
        strategy.setup(self._ctx(table))
        assert strategy._tau == table.value("shiftex.tau", -1)
        assert strategy._tau != BASE_THRESHOLDS["shiftex.tau"]
        assert strategy._epsilon_scale == table.value(
            "shiftex.epsilon_scale", -1)

    def test_explicit_config_bypasses_the_table(self):
        strategy = ShiftExStrategy(ShiftExConfig(tau=0.95, epsilon_scale=1.5))
        strategy.setup(self._ctx(load_threshold_table("float32")))
        assert strategy._tau == 0.95
        assert strategy._epsilon_scale == 1.5

    def test_no_table_falls_back_to_base_values(self):
        strategy = ShiftExStrategy()
        strategy.setup(self._ctx(None))
        assert strategy._tau == BASE_THRESHOLDS["shiftex.tau"]


class TestRecalibrateTool:
    def test_module_is_runnable(self):
        env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.detection.recalibrate", "--help"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0
        assert "--precision" in proc.stdout

    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_check_pins_the_committed_tables(self, capsys, precision):
        """Regenerating either committed table reproduces it (rtol 1e-6):
        the calibration workloads are fully seeded, so drift here means
        the margin rule or a detection statistic changed under us."""
        assert main(["--precision", precision, "--check"]) == 0
        assert "committed table matches" in capsys.readouterr().out

    def test_float64_recalibration_is_identity(self):
        table = recalibrate("float64", datasets=("fashion_mnist_sim",),
                            seeds=(0,))
        for key, base in BASE_THRESHOLDS.items():
            assert table.thresholds[key]["value"] == base

    def test_margin_factor_scales_the_margins(self):
        kwargs = {"datasets": ("fashion_mnist_sim",), "seeds": (0,)}
        single = recalibrate("float32", margin_factor=4.0, **kwargs)
        double = recalibrate("float32", margin_factor=8.0, **kwargs)
        scaled = [key for key in BASE_THRESHOLDS
                  if single.thresholds[key]["margin"] > 0]
        assert scaled, "float32 must measure a nonzero discrepancy somewhere"
        for key in scaled:
            assert double.thresholds[key]["margin"] == pytest.approx(
                2 * single.thresholds[key]["margin"])

    def test_out_writes_a_loadable_table(self, tmp_path, capsys):
        out = tmp_path / "custom.json"
        assert main(["--precision", "float32", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        table = ThresholdTable.from_dict(data)
        assert table.precision == "float32"
        assert set(table.thresholds) == set(BASE_THRESHOLDS)

    def test_bad_precision_is_a_usage_error(self, capsys):
        assert main(["--precision", "float13"]) == 2

    def test_committed_paths_are_the_loaded_paths(self):
        for precision in ("float64", "float32"):
            path = table_path(precision)
            assert path.exists(), f"committed table missing: {path}"
            assert json.loads(path.read_text())["precision"] == precision


class TestFloat32ReproducesSeedDecisions:
    """The acceptance pin: same detection decisions at float32."""

    @pytest.fixture(scope="class")
    def twin_runs(self):
        spec = make_tiny_spec(
            name="accept_f32", num_parties=10, num_windows=3,
            window_regimes=(("invert_polarity", 4), ("invert_polarity", 4)),
            train=32, test=16, seed=91)
        settings64 = make_run_settings(rounds_burn_in=5, rounds_per_window=4,
                                       participants=5, epochs=2)
        settings32 = dataclasses.replace(
            settings64, precision=PrecisionPlan(params="float32"), dtype=None)
        runs = {}
        for label, settings in (("float64", settings64),
                                ("float32", settings32)):
            strategy = ShiftExStrategy()
            result = run_strategy(strategy, spec, settings, seed=0,
                                  dataset=FederatedShiftDataset(spec))
            runs[label] = (strategy, result)
        return runs

    def test_float32_run_is_actually_float32(self, twin_runs):
        strategy, _ = twin_runs["float32"]
        assert strategy.registry.bank.dtype == np.dtype(np.float32)
        assert twin_runs["float64"][0].registry.bank.dtype == np.dtype(
            np.float64)

    def test_detection_decisions_match(self, twin_runs):
        """Shift counts, cluster actions and merges — the discrete
        decisions every threshold gates — are identical across planes."""

        def decisions(strategy):
            return [
                {"window": log["window"],
                 "num_shifted": log["num_shifted"],
                 "merges": log["merges"],
                 "actions": [(c["size"], c["action"], c["expert"])
                             for c in log["clusters"]]}
                for log in strategy.shift_log
            ]

        assert decisions(twin_runs["float32"][0]) == decisions(
            twin_runs["float64"][0])

    def test_expert_pool_evolution_matches(self, twin_runs):
        states = {label: strategy.describe_state()
                  for label, (strategy, _result) in twin_runs.items()}
        for key in ("num_models", "experts_created", "experts_merged"):
            assert states["float32"][key] == states["float64"][key]
        f32_history = twin_runs["float32"][1].expert_history
        f64_history = twin_runs["float64"][1].expert_history
        assert [sorted(h) for h in f32_history] == \
            [sorted(h) for h in f64_history]

    def test_a_shift_was_actually_detected(self, twin_runs):
        """Guard the pin against vacuous equality: the scenario must
        exercise detection, expert creation and a nontrivial pool."""
        strategy, _ = twin_runs["float32"]
        assert strategy.shift_log[0]["num_shifted"] > 0
        assert strategy.describe_state()["experts_created"] >= 1
