"""Shard service: wire protocol, topology files, loopback remote backend.

The remote backend's contract mirrors the process/serial one: for a fixed
``ShardPlan`` every backend computes identical per-shard partials with the
same numpy kernels and reduces them in ascending shard order, so
``serial == process == remote`` **bitwise**.  A lost connection must degrade
to the serial backend with a one-line warning instead of killing the run.
"""

import dataclasses
import json
import socket

import numpy as np
import pytest

from repro.detection.mmd import class_conditional_mmd_to_many, mmd_to_many
from repro.net import protocol
from repro.net.client import (
    RemoteBankSession,
    ShardServiceError,
    ShardServiceUnavailable,
    parse_address,
    run_kernel_tasks,
    wire_totals,
)
from repro.net.shard_service import start_in_thread
from repro.net.topology import HostSpec, ShardTopology, resolve_shard_hosts
from repro.utils.params import ParamBank, ShardedParamBank
from repro.utils.sharding import (
    ShardPlan,
    sharded_class_conditional_mmd_to_many,
    sharded_mmd_to_many,
)


@pytest.fixture(scope="module")
def service():
    handle = start_in_thread()
    yield handle
    handle.stop()


def _param_sets(rng, n, shapes=((5, 3), (3,))):
    return [[rng.normal(size=s) for s in shapes] for _ in range(n)]


def _remote_plan(service, shards=3):
    return ShardPlan(shards=shards, backend="remote",
                     hosts=(service.address,))


class TestProtocol:
    def test_tree_round_trip(self):
        arrays: list[np.ndarray] = []
        tree = {
            "name": "batch",
            "count": 3,
            "ratio": 0.5,
            "flag": True,
            "none": None,
            "ops": [
                {"op": "matvec", "rows": [0, 2],
                 "weights": np.arange(4.0, dtype=np.float32)},
                {"op": "gram", "x": np.eye(3)},
            ],
        }
        encoded = protocol.encode_tree(tree, arrays)
        assert len(arrays) == 2
        decoded = protocol.decode_tree(encoded, arrays)
        assert decoded["name"] == "batch" and decoded["count"] == 3
        assert decoded["none"] is None and decoded["flag"] is True
        np.testing.assert_array_equal(decoded["ops"][0]["weights"],
                                      np.arange(4.0, dtype=np.float32))
        assert decoded["ops"][0]["weights"].dtype == np.float32
        np.testing.assert_array_equal(decoded["ops"][1]["x"], np.eye(3))

    def test_numpy_scalars_become_python(self):
        arrays: list[np.ndarray] = []
        encoded = protocol.encode_tree({"n": np.int64(7),
                                        "f": np.float64(2.5)}, arrays)
        assert encoded == {"n": 7, "f": 2.5} and not arrays

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            protocol.encode_tree({"bad": {1, 2}}, [])

    def test_socket_framing_round_trip(self):
        a, b = socket.socketpair()
        try:
            payload = [np.arange(6.0).reshape(2, 3), np.zeros(0)]
            sent = protocol.send_message(a, {"cmd": "ping", "k": 1}, payload)
            header, arrays, received = protocol.recv_message(b)
            assert sent == received
            assert header["cmd"] == "ping" and header["k"] == 1
            np.testing.assert_array_equal(arrays[0], payload[0])
            assert arrays[1].shape == (0,)
        finally:
            a.close()
            b.close()

    def test_bad_magic_is_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"NOPE" + b"\x00" * 16)
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()


class TestTopology:
    def test_parse_address(self):
        assert parse_address("10.0.0.1:7700") == ("10.0.0.1", 7700)
        for bad in ("localhost", "host:", "host:abc"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_toml_file(self, tmp_path):
        path = tmp_path / "topology.toml"
        path.write_text(
            '[[hosts]]\naddress = "10.0.0.11:7700"\nrole = "shards"\n\n'
            '[[hosts]]\naddress = "10.0.0.12:7700"\n\n'
            '[[hosts]]\naddress = "10.0.0.10:7700"\nrole = "coordinator"\n')
        topo = ShardTopology.from_file(path)
        assert topo.shard_hosts() == ("10.0.0.11:7700", "10.0.0.12:7700")

    def test_json_file(self, tmp_path):
        path = tmp_path / "topology.json"
        path.write_text(json.dumps({"hosts": [
            "10.0.0.11:7700",
            {"address": "10.0.0.10:7700", "role": "coordinator"},
        ]}))
        assert ShardTopology.from_file(path).shard_hosts() == \
            ("10.0.0.11:7700",)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostSpec(address="not-an-address")
        with pytest.raises(ValueError):
            HostSpec(address="h:1", role="gpu")
        with pytest.raises(ValueError):  # coordinator-only topology
            ShardTopology(hosts=(HostSpec("h:1", role="coordinator"),))
        with pytest.raises(ValueError):
            ShardTopology.from_mapping({"hosts": []})

    def test_resolve_forms(self, tmp_path):
        assert resolve_shard_hosts(None) == ()
        assert resolve_shard_hosts("") == ()
        assert resolve_shard_hosts("a:1, b:2") == ("a:1", "b:2")
        assert resolve_shard_hosts(["a:1", "b:2"]) == ("a:1", "b:2")
        topo = ShardTopology(hosts=(HostSpec("a:1"),))
        assert resolve_shard_hosts(topo) == ("a:1",)
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"hosts": ["c:3"]}))
        assert resolve_shard_hosts(str(path)) == ("c:3",)

    def test_resolve_rejects_malformed_addresses(self):
        # A typo'd --shard-hosts must fail at resolve time, not surface
        # later as a confusing connection error (or ride along unused).
        with pytest.raises(ValueError, match="host:port"):
            resolve_shard_hosts("not-an-address")
        with pytest.raises(ValueError, match="host:port"):
            resolve_shard_hosts(["a:1", "b"])


class TestLoopbackService:
    def test_session_round_trip_and_wire_metering(self, service, rng):
        data = rng.normal(size=(4, 6))
        weights = rng.uniform(1.0, 2.0, size=3)
        sent0, received0 = wire_totals()
        session = RemoteBankSession((service.address,), shards=1, dim=6,
                                    dtype="float64", capacity=4)
        results = session.shard_batch(0, [
            {"op": "write_rows", "rows": [0, 1, 2, 3], "data": data},
            {"op": "matvec", "rows": [0, 2, 3], "weights": weights},
            {"op": "matvec", "rows": [], "weights": np.zeros(0)},
        ])
        np.testing.assert_array_equal(results[1],
                                      weights @ data[[0, 2, 3]])
        np.testing.assert_array_equal(results[2], np.zeros(6))
        session.free()
        sent1, received1 = wire_totals()
        assert sent1 > sent0 and received1 > received0

    def test_kernel_fanout_matches_local(self, service, rng):
        x = rng.normal(size=(20, 5))
        ys = [rng.normal(size=(8 + i, 5)) for i in range(4)]
        tasks = [(x, ys[:2], 0.3), (x, ys[2:], 0.3)]
        remote = run_kernel_tasks((service.address,), "mmd_chunk", tasks)
        local = [mmd_to_many(*t) for t in tasks]
        for got, want in zip(remote, local):
            np.testing.assert_array_equal(got, want)

    def test_command_error_keeps_connection(self, service):
        session = RemoteBankSession((service.address,), shards=1, dim=2,
                                    dtype="float64")
        with pytest.raises(ShardServiceError):
            session.shard_batch(0, [{"op": "kernel", "name": "no-such-kernel",
                                     "args": []}])
        # the connection survives a rejected command
        results = session.shard_batch(0, [
            {"op": "matvec", "rows": [], "weights": np.zeros(0)}])
        np.testing.assert_array_equal(results[0], np.zeros(2))
        session.free()

    def test_unreachable_host_is_unavailable(self):
        with pytest.raises(ShardServiceUnavailable):
            RemoteBankSession(("127.0.0.1:9",), shards=1, dim=2,
                              dtype="float64", timeout=0.5)
        with pytest.raises(ShardServiceUnavailable):
            run_kernel_tasks((), "mmd_chunk", [])


class TestRemoteBackendBitwise:
    """remote == serial == process, bit for bit, on every sharded kernel."""

    def test_weighted_combine_and_cosine(self, service, rng):
        sets = _param_sets(rng, 7)
        rows = list(range(7))
        weights = rng.uniform(0.5, 3.0, size=7)
        serial = ShardedParamBank.from_param_sets(
            sets, plan=ShardPlan(shards=3, backend="serial"))
        remote = ShardedParamBank.from_param_sets(
            sets, plan=_remote_plan(service))
        assert np.array_equal(remote.weighted_combine(weights, rows),
                              serial.weighted_combine(weights, rows))
        assert np.array_equal(remote.cosine_matrix(rows),
                              serial.cosine_matrix(rows))
        sub = [1, 4, 6]
        assert np.array_equal(
            remote.weighted_combine(weights[:3], sub),
            serial.weighted_combine(weights[:3], sub))
        serial.close()
        remote.close()

    def test_combine_many_batches_in_one_submission(self, service, rng):
        sets = _param_sets(rng, 6)
        serial = ShardedParamBank.from_param_sets(
            sets, plan=ShardPlan(shards=2, backend="serial"))
        remote = ShardedParamBank.from_param_sets(
            sets, plan=_remote_plan(service, shards=2))
        rows_sets = [list(range(6)), [0, 2, 4], [5, 1]]
        weight_sets = [rng.uniform(1, 4, size=len(r)) for r in rows_sets]
        want = serial.weighted_combine_many(
            weight_sets, [None, rows_sets[1], rows_sets[2]])
        got = remote.weighted_combine_many(
            weight_sets, [None, rows_sets[1], rows_sets[2]])
        for w, g in zip(want, got):
            assert np.array_equal(w, g)
        serial.close()
        remote.close()

    def test_writes_resync_the_mirror(self, service, rng):
        sets = _param_sets(rng, 4)
        bank = ShardedParamBank.from_param_sets(
            sets, plan=_remote_plan(service, shards=2))
        weights = np.ones(4)
        first = bank.weighted_combine(weights, [0, 1, 2, 3])
        views = bank.row_params(1)
        views[0][:] = 123.0  # dirty row 1 through a writeable view
        bank.write_row(2, sets[3])
        second = bank.weighted_combine(weights, [0, 1, 2, 3])
        serial = ShardedParamBank.from_param_sets(
            sets, plan=ShardPlan(shards=2, backend="serial"))
        serial_views = serial.row_params(1)
        serial_views[0][:] = 123.0
        serial.write_row(2, sets[3])
        assert not np.array_equal(first, second)
        assert np.array_equal(second,
                              serial.weighted_combine(weights, [0, 1, 2, 3]))
        bank.close()
        serial.close()

    def test_mmd_kernels_bitwise(self, service, rng):
        x = rng.normal(size=(24, 6))
        xl = rng.integers(0, 3, size=24)
        ys = [rng.normal(size=(10, 6)) + i for i in range(5)]
        yls = [rng.integers(0, 3, size=10) for _ in range(5)]
        serial_plan = ShardPlan(shards=2, backend="serial")
        remote_plan = _remote_plan(service, shards=2)
        assert np.array_equal(
            sharded_mmd_to_many(x, ys, 0.2, remote_plan),
            sharded_mmd_to_many(x, ys, 0.2, serial_plan))
        assert np.array_equal(
            sharded_class_conditional_mmd_to_many(x, xl, ys, yls, 0.2,
                                                  remote_plan),
            sharded_class_conditional_mmd_to_many(x, xl, ys, yls, 0.2,
                                                  serial_plan))

    def test_matches_unsharded_to_reassociation(self, service, rng):
        sets = _param_sets(rng, 8)
        plain = ParamBank.from_param_sets(sets)
        remote = ShardedParamBank.from_param_sets(
            sets, plan=_remote_plan(service))
        rows = list(range(8))
        weights = rng.uniform(0.5, 4.0, size=8)
        np.testing.assert_allclose(remote.weighted_combine(weights, rows),
                                   plain.weighted_combine(weights, rows),
                                   rtol=1e-12, atol=1e-14)
        remote.close()


class TestConnectionDropFallback:
    def test_drop_degrades_to_serial_with_one_warning(self, rng):
        from repro.utils import sharding

        handle = start_in_thread()
        sets = _param_sets(rng, 6)
        weights = rng.uniform(1.0, 3.0, size=6)
        rows = list(range(6))
        serial = ShardedParamBank.from_param_sets(
            sets, plan=ShardPlan(shards=2, backend="serial"))
        bank = ShardedParamBank.from_param_sets(
            sets, plan=ShardPlan(shards=2, backend="remote",
                                 hosts=(handle.address,)))
        try:
            before = bank.weighted_combine(weights, rows)
            assert np.array_equal(before,
                                  serial.weighted_combine(weights, rows))
            handle.stop()  # injected outage: every shard host goes away
            sharding._FALLBACK_WARNED.clear()
            with pytest.warns(RuntimeWarning, match="shard service"):
                after = bank.weighted_combine(weights, rows)
            assert np.array_equal(after, before)
            # dead session stays dead: later calls are serial, warning-free
            cos = bank.cosine_matrix(rows)
            assert np.array_equal(cos, serial.cosine_matrix(rows))
        finally:
            bank.close()
            serial.close()
            handle.stop()

    def test_kernel_outage_degrades_to_serial(self, rng):
        from repro.utils import sharding

        sharding._FALLBACK_WARNED.clear()
        x = rng.normal(size=(20, 5))
        ys = [rng.normal(size=(8, 5)) for _ in range(4)]
        plan = ShardPlan(shards=2, backend="remote",
                         hosts=("127.0.0.1:9",))  # nothing listens there
        with pytest.warns(RuntimeWarning, match="shard service"):
            got = sharded_mmd_to_many(x, ys, 0.3, plan)
        np.testing.assert_array_equal(
            got, sharded_mmd_to_many(
                x, ys, 0.3, ShardPlan(shards=2, backend="serial")))


class TestRunSettingsRemote:
    def test_shard_hosts_thread_through(self, tmp_path):
        from tests.conftest import make_run_settings

        base = make_run_settings()
        settings = dataclasses.replace(base, shards=2,
                                       shard_backend="remote",
                                       shard_hosts="h1:7700,h2:7700")
        assert settings.shard_hosts == ("h1:7700", "h2:7700")
        assert settings.shard_plan.hosts == ("h1:7700", "h2:7700")
        path = tmp_path / "topo.json"
        path.write_text(json.dumps({"hosts": ["h3:7700"]}))
        from_file = dataclasses.replace(base, shards=2,
                                        shard_backend="remote",
                                        shard_hosts=str(path))
        assert from_file.shard_plan.hosts == ("h3:7700",)
        with pytest.raises(ValueError):  # hosts without the remote backend
            dataclasses.replace(base, shards=2, shard_hosts="h1:7700")
