"""Tests for the TEE emulation (sealing, attestation, channel, overheads)."""

import numpy as np
import pytest

from repro.privacy import (
    AttestationError,
    SecureReportChannel,
    SoftwareEnclave,
    TeeOverheadModel,
    seal_for_enclave,
)
from repro.utils.rng import spawn_rng


@pytest.fixture()
def enclave():
    return SoftwareEnclave("test-enclave", seed=1)


class TestSealing:
    def test_roundtrip(self, enclave, rng):
        data = rng.normal(size=(6, 4))
        sealed = seal_for_enclave(data, enclave, rng)
        assert np.allclose(enclave.unseal(sealed), data)

    def test_ciphertext_hides_data(self, enclave, rng):
        data = rng.normal(size=(6, 4))
        sealed = seal_for_enclave(data, enclave, rng)
        assert sealed.ciphertext != data.tobytes()

    def test_wrong_enclave_cannot_unseal(self, enclave, rng):
        data = rng.normal(size=(3, 2))
        sealed = seal_for_enclave(data, enclave, rng)
        other = SoftwareEnclave("other-enclave", seed=1)
        with pytest.raises(AttestationError):
            other.unseal(sealed)

    def test_tampering_detected(self, enclave, rng):
        data = rng.normal(size=(3, 2))
        sealed = seal_for_enclave(data, enclave, rng)
        tampered = type(sealed)(
            enclave_id=sealed.enclave_id,
            nonce=sealed.nonce,
            ciphertext=b"\x00" + sealed.ciphertext[1:],
            shape=sealed.shape,
            dtype=sealed.dtype,
            mac=sealed.mac,
        )
        with pytest.raises(AttestationError):
            enclave.unseal(tampered)

    def test_integer_payloads(self, enclave, rng):
        data = np.arange(12, dtype=np.int64).reshape(3, 4)
        sealed = seal_for_enclave(data, enclave, rng)
        assert np.array_equal(enclave.unseal(sealed), data)


class TestAttestation:
    def test_report_measurement_consistent(self, enclave):
        report = enclave.attestation_report()
        expected = SoftwareEnclave.expected_measurement(
            report.enclave_id, report.computations
        )
        assert report.measurement == expected

    def test_measurement_changes_with_registered_code(self, enclave):
        before = enclave.attestation_report().measurement
        enclave.register("sum", lambda x: float(x.sum()))
        after = enclave.attestation_report().measurement
        assert before != after

    def test_duplicate_registration_rejected(self, enclave):
        enclave.register("f", lambda x: x)
        with pytest.raises(ValueError):
            enclave.register("f", lambda x: x)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            SoftwareEnclave("")


class TestExecution:
    def test_computation_over_sealed_inputs(self, enclave, rng):
        enclave.register("dot", lambda a, b: float((a * b).sum()))
        x = rng.normal(size=(5,))
        y = rng.normal(size=(5,))
        sx = seal_for_enclave(x, enclave, rng)
        sy = seal_for_enclave(y, enclave, rng)
        assert enclave.execute("dot", sx, sy) == pytest.approx(float(x @ y))
        assert enclave.executions == 1

    def test_unknown_computation_rejected(self, enclave, rng):
        sealed = seal_for_enclave(np.ones(2), enclave, rng)
        with pytest.raises(KeyError):
            enclave.execute("nope", sealed)


class TestSecureChannel:
    def test_first_submission_returns_none(self, rng):
        channel = SecureReportChannel(seed=2)
        embeddings = rng.normal(size=(20, 4))
        labels = rng.integers(0, 3, 20)
        assert channel.submit_profile(0, embeddings, labels, rng) is None

    def test_stable_resubmission_scores_low_and_shift_scores_high(self):
        channel = SecureReportChannel(seed=3)
        rng = spawn_rng(0, "chan")
        labels = rng.integers(0, 3, 30)
        base = rng.normal(size=(30, 4)) + 3.0 * labels[:, None]
        channel.submit_profile(0, base, labels, rng)
        fresh = rng.normal(size=(30, 4)) + 3.0 * labels[:, None]
        stable_score = channel.submit_profile(0, fresh, labels, rng, gamma=0.1)
        shifted = fresh + 5.0
        shift_score = channel.submit_profile(0, shifted, labels, rng, gamma=0.1)
        assert stable_score is not None and shift_score is not None
        assert shift_score > stable_score

    def test_centroid_computed_in_enclave(self, rng):
        channel = SecureReportChannel(seed=4)
        embeddings = rng.normal(size=(10, 3))
        channel.submit_profile(7, embeddings, np.zeros(10, dtype=int), rng)
        assert np.allclose(channel.profile_centroid(7), embeddings.mean(axis=0))

    def test_unknown_party_centroid_rejected(self):
        channel = SecureReportChannel(seed=5)
        with pytest.raises(KeyError):
            channel.profile_centroid(0)


class TestOverheadModel:
    def test_secure_compute_adds_tax(self):
        model = TeeOverheadModel(compute_overhead=0.05, transition_cost_ms=0.1)
        assert model.secure_compute_ms(100.0, num_calls=10) == \
            pytest.approx(105.0 + 1.0)

    def test_sealing_time_scales_with_bytes(self):
        model = TeeOverheadModel(sealing_bandwidth_mb_s=100.0)
        assert model.sealing_ms(1_000_000) == pytest.approx(10.0)

    def test_window_overhead_composition(self):
        model = TeeOverheadModel()
        total = model.window_overhead_ms(detection_ms=150.0, num_parties=20,
                                         payload_bytes_per_party=8192)
        assert total > 150.0 * model.compute_overhead

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TeeOverheadModel(compute_overhead=-0.1)
        with pytest.raises(ValueError):
            TeeOverheadModel(sealing_bandwidth_mb_s=0)
        with pytest.raises(ValueError):
            TeeOverheadModel().secure_compute_ms(-1.0)
