"""Docs and examples cannot rot: execute, parse, and link-check them.

Four layers of drift protection over README.md, ``docs/*.md``, and
``examples/*.py``:

* every example script runs green under its defaults (the ``ci`` profile);
* every fenced ``python`` block in the docs executes green (each document's
  blocks run as one script, in order, in a scratch directory and a clean
  subprocess so registry side effects cannot leak into the test session);
* every ``python -m repro ...`` command shown in a ``bash`` fence parses
  against the real CLI parser (flags, choices, and dataset names stay
  valid), and ``json``/``toml`` fences parse with the real parsers;
* every relative markdown link (and heading anchor) resolves.

The execution-heavy tests carry the ``docs`` marker: CI runs them in the
dedicated docs job, and `pytest -m "not slow and not docs"` skips them for
the quick tier-1 loop.  Annotate a fence with ``<!-- docs: no-run -->`` on
the line above to exempt it from execution (none currently need it).
"""

from __future__ import annotations

import json
import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))
NO_RUN = "<!-- docs: no-run -->"


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH", "")) \
        + env.get("PYTHONPATH", "")
    return env


def _fences(path: Path) -> list[tuple[str, int, str]]:
    """(language, first line number, body) for every fenced block."""
    blocks: list[tuple[str, int, str]] = []
    lines = path.read_text().splitlines()
    i = 0
    while i < len(lines):
        match = re.match(r"^```(\w+)\s*$", lines[i])
        if not match:
            i += 1
            continue
        lang, start = match.group(1), i + 1
        body: list[str] = []
        i += 1
        while i < len(lines) and not lines[i].startswith("```"):
            body.append(lines[i])
            i += 1
        i += 1  # closing fence
        preceding = next(
            (prev for prev in reversed(lines[:start - 1]) if prev.strip()), "")
        if NO_RUN not in preceding:
            blocks.append((lang, start + 1, "\n".join(body)))
    return blocks


def _doc_id(path: Path) -> str:
    return str(path.relative_to(ROOT))


@pytest.mark.docs
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_executes(script: Path, tmp_path):
    """Every example runs green under its documented defaults."""
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path, env=_subprocess_env(),
        capture_output=True, text=True, timeout=900,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-4000:]}")


@pytest.mark.docs
@pytest.mark.parametrize("doc", [d for d in DOC_FILES
                                 if any(lang == "python"
                                        for lang, _n, _b in _fences(d))],
                         ids=_doc_id)
def test_markdown_python_blocks_execute(doc: Path, tmp_path):
    """A document's python fences run as one script, in order."""
    pieces = []
    for lang, line, body in _fences(doc):
        if lang == "python":
            pieces.append(f"# --- {doc.name} line {line}\n{body}")
    script = tmp_path / f"{doc.stem}_snippets.py"
    script.write_text("\n\n".join(pieces) + "\n")
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path, env=_subprocess_env(),
        capture_output=True, text=True, timeout=900,
    )
    assert proc.returncode == 0, (
        f"python snippets in {_doc_id(doc)} failed (block boundaries are "
        f"marked with '# --- {doc.name} line N')\n--- stdout ---\n"
        f"{proc.stdout[-2000:]}\n--- stderr ---\n{proc.stderr[-4000:]}")


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_markdown_data_blocks_parse(doc: Path):
    """json/toml fences must parse with the real parsers."""
    for lang, line, body in _fences(doc):
        if lang == "json":
            try:
                json.loads(body)
            except json.JSONDecodeError as exc:
                pytest.fail(f"{_doc_id(doc)} line {line}: bad JSON: {exc}")
        elif lang == "toml":
            tomllib = pytest.importorskip("tomllib")
            try:
                tomllib.loads(body)
            except tomllib.TOMLDecodeError as exc:
                pytest.fail(f"{_doc_id(doc)} line {line}: bad TOML: {exc}")


def _cli_commands(doc: Path) -> list[tuple[int, list[str]]]:
    """Every `python -m repro ...` invocation in the doc's bash fences."""
    commands: list[tuple[int, list[str]]] = []
    for lang, line, body in _fences(doc):
        if lang != "bash":
            continue
        logical = ""
        for offset, raw in enumerate(body.splitlines()):
            stripped = (logical + " " + raw.strip()).strip() if logical \
                else raw.strip()
            if stripped.endswith("\\"):
                logical = stripped[:-1]
                continue
            logical = ""
            if not stripped or stripped.startswith("#"):
                continue
            tokens = shlex.split(stripped, comments=True)
            if not tokens:
                continue
            if tokens[:2] == ["python", "-m"] and tokens[2:3] == ["repro"]:
                commands.append((line + offset, tokens[3:]))
            elif tokens[0] == "python" and len(tokens) > 1 \
                    and tokens[1].endswith(".py"):
                assert (ROOT / tokens[1]).exists(), (
                    f"{_doc_id(doc)} line {line + offset}: "
                    f"script {tokens[1]} does not exist")
    return commands


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_cli_lines_parse(doc: Path):
    """Every documented CLI invocation must survive the argparse parser."""
    from repro.__main__ import build_parser

    parser = build_parser()
    for line, args in _cli_commands(doc):
        try:
            parser.parse_args(args)
        except SystemExit:
            pytest.fail(f"{_doc_id(doc)} line {line}: CLI line does not "
                        f"parse: python -m repro {' '.join(args)}")


def _slug(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    slug = re.sub(r"[^\w\- ]", "", heading.strip().lower())
    return slug.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    anchors = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
        elif not in_fence and line.startswith("#"):
            anchors.add(_slug(line.lstrip("#")))
    return anchors


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_relative_links_resolve(doc: Path):
    """Relative links point at real files; anchors at real headings."""
    text = doc.read_text()
    problems = []
    for target in re.findall(r"\[[^\]]*\]\(([^)\s]+)\)", text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        dest = doc if not path_part else (doc.parent / path_part).resolve()
        if not dest.exists():
            problems.append(f"{target}: file not found")
            continue
        if anchor and dest.suffix == ".md" and anchor not in _anchors(dest):
            problems.append(f"{target}: no heading for anchor '#{anchor}'")
    assert not problems, f"broken links in {_doc_id(doc)}: {problems}"
