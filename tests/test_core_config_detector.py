"""Tests for ShiftExConfig and the party-side detector (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import ShiftExConfig
from repro.core.detector import PartyLocalState, compute_party_report
from repro.data.corruptions import apply_corruption
from repro.federation.party import Party
from repro.nn.models import build_model
from repro.nn.training import LocalTrainingConfig, train_local
from repro.utils.rng import spawn_rng


class TestConfig:
    def test_defaults_valid(self):
        config = ShiftExConfig()
        assert config.delta_cov is None
        # None = resolve tau/epsilon_scale from the run precision's
        # committed threshold table; explicit values still validate below.
        assert config.tau is None
        assert config.epsilon_scale is None
        assert config.min_cluster_size >= 1
        explicit = ShiftExConfig(tau=0.95, epsilon_scale=1.5)
        assert explicit.tau == 0.95 and explicit.epsilon_scale == 1.5

    @pytest.mark.parametrize("kwargs", [
        {"p_value": 0.0},
        {"p_value": 1.0},
        {"num_bootstrap": 0},
        {"epsilon": -0.1},
        {"epsilon_scale": 0.0},
        {"tau": 1.5},
        {"k_max": 0},
        {"min_cluster_size": 0},
        {"embedding_samples": 1},
        {"finetune_epochs": -1},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ShiftExConfig(**kwargs)

    def test_explicit_thresholds_allowed(self):
        config = ShiftExConfig(delta_cov=0.3, delta_label=0.1)
        assert config.delta_cov == 0.3


class TestDetector:
    @pytest.fixture()
    def trained_party(self, tiny_spec, tiny_dataset):
        model = build_model(tiny_spec.model_name, tiny_spec.input_shape,
                            tiny_spec.num_classes, spawn_rng(0, "enc"))
        data = tiny_dataset.party_window(0, 0)
        train_local(model, data.x_train, data.y_train,
                    LocalTrainingConfig(epochs=6, lr=0.05, momentum=0.9),
                    spawn_rng(0, "t"))
        party = Party(0, model, tiny_spec.num_classes)
        party.set_window_data(data)
        return party, model.get_params()

    def test_first_window_deltas_zero(self, trained_party):
        party, encoder = trained_party
        report, state = compute_party_report(party, encoder, None)
        assert report.delta_cov == 0.0
        assert report.delta_label == 0.0
        assert isinstance(state, PartyLocalState)
        assert state.embeddings.shape[0] == state.labels.shape[0]

    def test_report_contents(self, trained_party, tiny_spec):
        party, encoder = trained_party
        report, _state = compute_party_report(party, encoder, None,
                                              max_samples=16)
        assert report.party_id == 0
        assert report.embeddings.shape[0] == 16
        assert report.label_histogram.shape == (tiny_spec.num_classes,)
        assert np.isclose(report.label_histogram.sum(), 1.0)
        assert report.centroid.shape == (report.embeddings.shape[1],)

    def test_stable_window_scores_below_shifted(self, trained_party, tiny_dataset):
        party, encoder = trained_party
        _report0, state0 = compute_party_report(party, encoder, None)

        # Fresh draw of the same distribution: small delta.
        stable = tiny_dataset.party_window(0, 0)
        fresh = type(stable)(
            party_id=0, window=1,
            x_train=stable.x_train[::-1].copy(), y_train=stable.y_train[::-1].copy(),
            x_test=stable.x_test, y_test=stable.y_test,
            regime=stable.regime, label_prior=stable.label_prior,
        )
        party.set_window_data(fresh)
        report_stable, _ = compute_party_report(party, encoder, state0, gamma=0.5)

        # Heavily corrupted draw: large delta.
        corrupted = type(stable)(
            party_id=0, window=1,
            x_train=apply_corruption(stable.x_train, "invert_polarity", 5,
                                     spawn_rng(1, "c")),
            y_train=stable.y_train,
            x_test=stable.x_test, y_test=stable.y_test,
            regime=stable.regime, label_prior=stable.label_prior,
        )
        party.set_window_data(corrupted)
        report_shift, _ = compute_party_report(party, encoder, state0, gamma=0.5)
        assert report_shift.delta_cov > report_stable.delta_cov

    def test_label_shift_raises_jsd(self, trained_party, tiny_dataset, tiny_spec):
        party, encoder = trained_party
        _r, state0 = compute_party_report(party, encoder, None)
        stable = tiny_dataset.party_window(0, 0)
        # Keep only one class: the label histogram collapses.
        mask = stable.y_train == stable.y_train[0]
        skewed = type(stable)(
            party_id=0, window=1,
            x_train=stable.x_train[mask], y_train=stable.y_train[mask],
            x_test=stable.x_test, y_test=stable.y_test,
            regime=stable.regime, label_prior=stable.label_prior,
        )
        party.set_window_data(skewed)
        report, _ = compute_party_report(party, encoder, state0)
        assert report.delta_label > 0.1
