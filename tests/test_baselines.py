"""Tests for the four comparison baselines (plus plain FedAvg)."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_NAMES,
    FedDriftStrategy,
    FedProxStrategy,
    FieldingStrategy,
    OortStrategy,
    build_baseline,
)
from repro.data.federated import FederatedShiftDataset
from repro.utils.params import flatten_params
from tests.conftest import make_context, make_tiny_spec


@pytest.fixture(scope="module")
def env():
    spec = make_tiny_spec(name="unit_baselines", num_parties=8, num_windows=3,
                          seed=31)
    dataset = FederatedShiftDataset(spec)
    return spec, dataset


def run_windows(strategy, spec, dataset, rounds=2, seed=0):
    ctx = make_context(spec, dataset, window=0, seed=seed)
    strategy.setup(ctx)
    for window in range(spec.num_windows):
        for pid, party in ctx.parties.items():
            party.set_window_data(dataset.party_window(pid, window))
        strategy.start_window(window)
        for r in range(rounds):
            strategy.run_round(window, r)
        strategy.end_window(window)
    return ctx


class TestRegistry:
    def test_build_all_names(self):
        for name in BASELINE_NAMES:
            strategy = build_baseline(name)
            assert strategy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_baseline("fedsgd")


class TestFedProx:
    def test_runs_and_serves_global_model(self, env):
        spec, dataset = env
        strategy = FedProxStrategy(prox_mu=0.05)
        run_windows(strategy, spec, dataset)
        p0 = flatten_params(strategy.params_for_party(0))
        p1 = flatten_params(strategy.params_for_party(5))
        assert np.allclose(p0, p1), "FedProx serves one global model"

    def test_training_changes_model(self, env):
        spec, dataset = env
        strategy = FedProxStrategy()
        ctx = make_context(spec, dataset, seed=1)
        strategy.setup(ctx)
        before = flatten_params(strategy.global_params)
        strategy.run_round(0, 0)
        assert not np.allclose(flatten_params(strategy.global_params), before)

    def test_rejects_negative_mu(self):
        with pytest.raises(ValueError):
            FedProxStrategy(prox_mu=-1.0)

    def test_mean_accuracy_reasonable_after_training(self, env):
        spec, dataset = env
        strategy = FedProxStrategy()
        run_windows(strategy, spec, dataset, rounds=4)
        assert strategy.mean_accuracy() > 1.5 / spec.num_classes


class TestOort:
    def test_utilities_updated_for_participants(self, env):
        spec, dataset = env
        strategy = OortStrategy()
        ctx = make_context(spec, dataset, seed=2)
        strategy.setup(ctx)
        strategy.run_round(0, 0)
        assert any(u > 0 for u in strategy._utilities.values())

    def test_selection_prefers_high_utility(self, env):
        spec, dataset = env
        strategy = OortStrategy(exploration_fraction=0.0)
        ctx = make_context(spec, dataset, seed=3)
        strategy.setup(ctx)
        strategy._utilities = {pid: float(pid) for pid in ctx.parties}
        selected = strategy._select(1, 0)
        k = ctx.round_config.participants_per_round
        expected = sorted(ctx.parties, reverse=True)[:k]
        assert sorted(selected) == sorted(expected)

    def test_exploration_prefers_unselected(self, env):
        spec, dataset = env
        strategy = OortStrategy(exploration_fraction=1.0)
        ctx = make_context(spec, dataset, seed=4)
        strategy.setup(ctx)
        strategy._times_selected = {pid: pid for pid in ctx.parties}
        selected = strategy._select(1, 0)
        assert 0 in selected  # the never-selected party is explored first

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            OortStrategy(exploration_fraction=1.5)

    def test_runs_all_windows(self, env):
        spec, dataset = env
        strategy = OortStrategy()
        run_windows(strategy, spec, dataset)
        assert strategy.describe_state()["num_models"] == 1


class TestFielding:
    def test_clusters_parties_by_labels(self, env):
        spec, dataset = env
        strategy = FieldingStrategy()
        ctx = make_context(spec, dataset, seed=5)
        strategy.setup(ctx)
        strategy.start_window(0)
        assert strategy._membership
        assert len(strategy._cluster_models) >= 1
        assert set(strategy._membership) == set(ctx.parties)

    def test_every_party_gets_a_model(self, env):
        spec, dataset = env
        strategy = FieldingStrategy()
        run_windows(strategy, spec, dataset)
        for pid in range(spec.num_parties):
            params = strategy.params_for_party(pid)
            assert params is not None

    def test_reclusters_on_label_movement(self):
        spec = make_tiny_spec(name="unit_fielding_shift", label_shift=True,
                              num_parties=8, seed=37)
        dataset = FederatedShiftDataset(spec)
        strategy = FieldingStrategy(recluster_jsd=0.05)
        ctx = make_context(spec, dataset, seed=6)
        strategy.setup(ctx)
        strategy.start_window(0)
        before = dict(strategy._membership)
        for pid, party in ctx.parties.items():
            party.set_window_data(dataset.party_window(pid, 1))
        strategy.start_window(1)
        # Label shift occurred for half the parties; clustering refreshed.
        assert strategy._membership.keys() == before.keys()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FieldingStrategy(recluster_jsd=-1)
        with pytest.raises(ValueError):
            FieldingStrategy(max_clusters=0)


class TestFedDrift:
    def test_starts_with_one_model(self, env):
        spec, dataset = env
        strategy = FedDriftStrategy()
        ctx = make_context(spec, dataset, seed=7)
        strategy.setup(ctx)
        assert strategy.describe_state()["num_models"] == 1

    def test_creates_model_on_drift(self):
        spec = make_tiny_spec(name="unit_feddrift", num_parties=8,
                              num_windows=2, window_regimes=(("invert_polarity", 5),),
                              seed=41)
        dataset = FederatedShiftDataset(spec)
        strategy = FedDriftStrategy(delta=0.25)
        ctx = make_context(spec, dataset, seed=8)
        strategy.setup(ctx)
        strategy.start_window(0)
        for r in range(4):
            strategy.run_round(0, r)
        strategy.end_window(0)
        for pid, party in ctx.parties.items():
            party.set_window_data(dataset.party_window(pid, 1))
        strategy.start_window(1)
        assert strategy.describe_state()["num_models"] >= 2

    def test_max_models_cap(self, env):
        spec, dataset = env
        strategy = FedDriftStrategy(delta=1e-6, max_models=2)
        run_windows(strategy, spec, dataset)
        assert strategy.describe_state()["num_models"] <= 2

    def test_merge_interchangeable_models(self, env):
        spec, dataset = env
        strategy = FedDriftStrategy(delta=100.0)  # everything interchangeable
        ctx = make_context(spec, dataset, seed=9)
        strategy.setup(ctx)
        strategy._models[1] = [p.copy() for p in strategy._models[0]]
        strategy._membership = {pid: pid % 2 for pid in ctx.parties}
        strategy._maybe_merge(1)
        assert len(strategy._models) == 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FedDriftStrategy(delta=0.0)
        with pytest.raises(ValueError):
            FedDriftStrategy(max_models=0)
