"""Tests for the facility-location assignment program (Equation 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experts.facility import (
    FacilityLocationProblem,
    solve_exact,
    solve_greedy,
)
from repro.utils.rng import spawn_rng


def small_problem(lam=0.2, mu=0.1, capacity=None):
    """3 parties, 1 existing expert + 1 candidate.

    Parties 0, 1 are close to the existing expert; party 2 is far from it and
    close to the candidate.
    """
    mmd_costs = np.array([
        [0.1, 0.9],
        [0.2, 0.8],
        [0.9, 0.1],
    ])
    hists = np.array([
        [0.5, 0.5],
        [0.5, 0.5],
        [0.5, 0.5],
    ])
    return FacilityLocationProblem(
        mmd_costs=mmd_costs, existing=(0,), candidates=(1,),
        party_histograms=hists, lam=lam, mu=mu, capacity=capacity,
    )


class TestProblemValidation:
    def test_columns_must_cover_experts(self):
        with pytest.raises(ValueError):
            FacilityLocationProblem(
                mmd_costs=np.zeros((2, 2)), existing=(0,), candidates=(),
                party_histograms=np.full((2, 2), 0.5),
            )

    def test_histograms_must_align(self):
        with pytest.raises(ValueError):
            FacilityLocationProblem(
                mmd_costs=np.zeros((2, 2)), existing=(0,), candidates=(1,),
                party_histograms=np.full((3, 2), 0.5),
            )

    def test_negative_lam_rejected(self):
        with pytest.raises(ValueError):
            small_problem(lam=-1.0)

    def test_infeasible_capacity_rejected(self):
        with pytest.raises(ValueError):
            small_problem(capacity=1)  # 2 experts * 1 < 3 parties


class TestObjective:
    def test_mismatch_term(self):
        problem = small_problem(lam=0.0, mu=0.0)
        value = problem.objective(np.array([0, 0, 1]))
        assert value == pytest.approx(0.1 + 0.2 + 0.1)

    def test_creation_cost_charged_when_candidate_used(self):
        problem = small_problem(lam=0.5, mu=0.0)
        without = problem.objective(np.array([0, 0, 0]))
        with_candidate = problem.objective(np.array([0, 0, 1]))
        assert with_candidate == pytest.approx(0.1 + 0.2 + 0.1 + 0.5)
        assert without == pytest.approx(0.1 + 0.2 + 0.9)

    def test_label_imbalance_term(self):
        mmd_costs = np.zeros((2, 2))
        hists = np.array([[1.0, 0.0], [0.0, 1.0]])
        problem = FacilityLocationProblem(
            mmd_costs=mmd_costs, existing=(0, 1), candidates=(),
            party_histograms=hists, lam=0.0, mu=1.0,
        )
        # Together: each expert's pooled histogram equals the global mean.
        together = problem.objective(np.array([0, 0]))
        # Apart: each expert is fully skewed vs the balanced global mean.
        apart = problem.objective(np.array([0, 1]))
        assert together < apart

    def test_capacity_violation_rejected(self):
        problem = small_problem(capacity=2)
        with pytest.raises(ValueError):
            problem.objective(np.array([0, 0, 0]))

    def test_bad_assignment_shape_rejected(self):
        problem = small_problem()
        with pytest.raises(ValueError):
            problem.objective(np.array([0, 0]))

    def test_unknown_expert_rejected(self):
        problem = small_problem()
        with pytest.raises(ValueError):
            problem.objective(np.array([0, 0, 5]))


class TestExactSolver:
    def test_opens_candidate_when_worth_it(self):
        problem = small_problem(lam=0.2)
        solution = solve_exact(problem)
        assert list(solution.assignment) == [0, 0, 1]
        assert 1 in solution.open_experts

    def test_avoids_candidate_when_too_expensive(self):
        problem = small_problem(lam=5.0)
        solution = solve_exact(problem)
        assert list(solution.assignment) == [0, 0, 0]

    def test_respects_capacity(self):
        problem = small_problem(lam=0.0, capacity=2)
        solution = solve_exact(problem)
        counts = np.bincount(solution.assignment, minlength=2)
        assert counts.max() <= 2

    def test_state_space_guard(self):
        rng = spawn_rng(0, "big")
        problem = FacilityLocationProblem(
            mmd_costs=rng.random((30, 4)), existing=(0,), candidates=(1, 2, 3),
            party_histograms=np.full((30, 3), 1 / 3),
        )
        with pytest.raises(ValueError):
            solve_exact(problem, max_states=1000)


class TestGreedySolver:
    def test_feasible_and_reasonable(self):
        problem = small_problem()
        solution = solve_greedy(problem)
        assert solution.assignment.shape == (3,)
        exact = solve_exact(problem)
        assert solution.objective <= exact.objective * 1.5 + 1e-9

    def test_matches_exact_on_obvious_instance(self):
        problem = small_problem(lam=0.1, mu=0.0)
        greedy = solve_greedy(problem)
        exact = solve_exact(problem)
        assert greedy.objective == pytest.approx(exact.objective)

    def test_respects_capacity(self):
        problem = small_problem(lam=0.0, capacity=2)
        solution = solve_greedy(problem)
        counts = np.bincount(solution.assignment, minlength=2)
        assert counts.max() <= 2

    @given(st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_greedy_near_exact_on_random_instances(self, seed):
        rng = spawn_rng(seed, "fac")
        n_parties = int(rng.integers(2, 5))
        n_experts = int(rng.integers(2, 4))
        hists = rng.dirichlet(np.ones(3), size=n_parties)
        problem = FacilityLocationProblem(
            mmd_costs=rng.random((n_parties, n_experts)),
            existing=(0,),
            candidates=tuple(range(1, n_experts)),
            party_histograms=hists,
            lam=float(rng.random() * 0.5),
            mu=float(rng.random() * 0.5),
        )
        greedy = solve_greedy(problem)
        exact = solve_exact(problem)
        # Greedy must be feasible and within 30% of optimal on tiny instances.
        assert greedy.objective <= exact.objective * 1.3 + 1e-9
        assert greedy.objective >= exact.objective - 1e-9
