"""Tests for profiles, the runner and comparison renderers."""

import numpy as np
import pytest

from repro.baselines import FedAvgStrategy
from repro.core import ShiftExStrategy
from repro.data.federated import FederatedShiftDataset
from repro.harness import (
    convergence_series,
    expert_distribution_table,
    get_profile,
    max_accuracy_table,
    profile_names,
    render_drop_time_max_table,
    run_comparison,
    run_strategy,
)
from repro.harness.comparison import (
    PAPER_METHODS,
    default_strategies,
    render_expert_distribution,
)
from tests.conftest import make_run_settings, make_tiny_spec


@pytest.fixture(scope="module")
def mini_env():
    spec = make_tiny_spec(name="unit_harness", num_parties=6, num_windows=2,
                          window_regimes=(("fog", 4),),
                          train=24, test=12, seed=83)
    return spec, FederatedShiftDataset(spec), make_run_settings(
        rounds_burn_in=2, rounds_per_window=2, participants=3, epochs=1)


class TestProfiles:
    def test_profile_names(self):
        assert set(profile_names()) == {"ci", "small", "paper"}

    def test_ci_profile_shrinks_parties(self):
        spec, settings = get_profile("ci", "cifar10_c_sim")
        assert spec.num_parties < 200
        assert settings.rounds_for_window(0) == settings.rounds_burn_in
        assert settings.rounds_for_window(1) == settings.rounds_per_window

    def test_paper_profile_keeps_party_counts(self):
        spec, settings = get_profile("paper", "fmow_sim")
        assert spec.num_parties == 50
        assert settings.eval_parties is None or settings.eval_parties <= 50

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            get_profile("gigantic", "fmow_sim")

    def test_settings_validation(self):
        from repro.harness.profiles import RunSettings
        with pytest.raises(ValueError):
            RunSettings(rounds_burn_in=0)
        with pytest.raises(ValueError):
            RunSettings(eval_parties=0)

    def test_scaled_rounds(self):
        settings = make_run_settings(rounds_burn_in=10, rounds_per_window=6)
        half = settings.scaled_rounds(0.5)
        assert half.rounds_burn_in == 5
        assert half.rounds_per_window == 3


class TestRunner:
    def test_run_produces_series_and_summaries(self, mini_env):
        spec, dataset, settings = mini_env
        result = run_strategy(FedAvgStrategy(), spec, settings, seed=0,
                              dataset=dataset)
        assert len(result.window_series) == spec.num_windows
        assert len(result.window_series[0]) == settings.rounds_burn_in + 1
        assert len(result.summaries) == spec.num_windows - 1
        assert all(0.0 <= a <= 100.0 for a in result.flat_series)
        assert result.ledger_summary["total_mb"] > 0

    def test_run_is_deterministic(self, mini_env):
        spec, dataset, settings = mini_env
        r1 = run_strategy(FedAvgStrategy(), spec, settings, seed=3, dataset=dataset)
        r2 = run_strategy(FedAvgStrategy(), spec, settings, seed=3,
                          dataset=FederatedShiftDataset(spec))
        assert np.allclose(r1.flat_series, r2.flat_series)

    def test_different_seeds_differ(self, mini_env):
        spec, dataset, settings = mini_env
        r1 = run_strategy(FedAvgStrategy(), spec, settings, seed=1,
                          dataset=FederatedShiftDataset(spec))
        r2 = run_strategy(FedAvgStrategy(), spec, settings, seed=2,
                          dataset=FederatedShiftDataset(spec))
        assert not np.allclose(r1.flat_series, r2.flat_series)

    def test_shiftex_records_expert_history(self, mini_env):
        spec, dataset, settings = mini_env
        result = run_strategy(ShiftExStrategy(), spec, settings, seed=0,
                              dataset=FederatedShiftDataset(spec))
        assert result.expert_history is not None
        assert len(result.expert_history) == spec.num_windows
        assert sum(result.expert_history[0].values()) == spec.num_parties


class TestComparison:
    def test_default_strategies_cover_paper_methods(self):
        factories = default_strategies()
        assert set(factories) == set(PAPER_METHODS)
        strategy = factories["shiftex"]()
        assert strategy.name == "shiftex"

    def test_comparison_and_renderers(self, mini_env):
        spec, _dataset, settings = mini_env
        strategies = default_strategies(("fedprox", "shiftex"))
        result = run_comparison(
            "cifar10_c_sim", strategies, profile="ci", seeds=(0,),
            settings_override=settings, spec_override=spec,
        )
        assert set(result.runs) == {"fedprox", "shiftex"}
        table = render_drop_time_max_table(result, title="unit")
        assert "fedprox" in table and "W1 Drop" in table

        curves = convergence_series(result)
        expected_len = (settings.rounds_burn_in + 1
                        + (spec.num_windows - 1) * (settings.rounds_per_window + 1))
        assert all(len(v) == expected_len for v in curves.values())

        table5 = max_accuracy_table(result)
        assert all(len(v) == spec.num_windows for v in table5.values())

        history = expert_distribution_table(result)
        rendered = render_expert_distribution(history)
        assert "expert" in rendered and "W0" in rendered

    def test_expert_table_rejects_nontracking_strategy(self, mini_env):
        spec, _dataset, settings = mini_env
        result = run_comparison(
            "cifar10_c_sim", default_strategies(("fedprox",)), profile="ci",
            seeds=(0,), settings_override=settings, spec_override=spec,
        )
        with pytest.raises(KeyError):
            expert_distribution_table(result, strategy="shiftex")
