"""Round-trip tests for run-result persistence (utils.serialization)."""

import pytest

from repro.baselines import FedAvgStrategy
from repro.core import ShiftExStrategy
from repro.utils.serialization import (
    dict_to_run_result,
    load_run_result,
    load_run_result_dict,
    run_result_to_dict,
    save_run_result,
)
from repro.harness import run_strategy
from tests.conftest import make_run_settings, make_tiny_spec


@pytest.fixture(scope="module")
def tiny_env():
    spec = make_tiny_spec(name="unit_serial", num_parties=6, num_windows=2,
                          window_regimes=(("fog", 4),),
                          train=24, test=12, seed=71)
    settings = make_run_settings(rounds_burn_in=2, rounds_per_window=2,
                                 participants=3, epochs=1)
    return spec, settings


class TestRunResultRoundTrip:
    def test_fedavg_round_trip(self, tiny_env, tmp_path):
        spec, settings = tiny_env
        result = run_strategy(FedAvgStrategy(), spec, settings, seed=0)
        result.extras["note"] = {"tag": "unit", "value": 1.5}
        path = save_run_result(tmp_path / "run.json", result)
        restored = load_run_result(path)

        assert restored.strategy_name == result.strategy_name
        assert restored.dataset == result.dataset
        assert restored.seed == result.seed
        assert restored.window_series == result.window_series
        assert restored.flat_series == result.flat_series
        assert restored.summaries == result.summaries
        assert restored.extras == result.extras
        assert restored.expert_history == result.expert_history
        assert restored.ledger_summary == result.ledger_summary
        assert restored.profiler_summary == result.profiler_summary

    def test_shiftex_expert_history_keys_round_trip(self, tiny_env, tmp_path):
        spec, settings = tiny_env
        result = run_strategy(ShiftExStrategy(), spec, settings, seed=0)
        path = save_run_result(tmp_path / "shiftex.json", result)
        restored = load_run_result(path)
        assert restored.expert_history == result.expert_history
        assert all(isinstance(k, int)
                   for dist in restored.expert_history for k in dist)

    def test_dict_round_trip_without_disk(self, tiny_env):
        spec, settings = tiny_env
        result = run_strategy(FedAvgStrategy(), spec, settings, seed=1)
        restored = dict_to_run_result(run_result_to_dict(result))
        assert restored.window_series == result.window_series
        assert restored.summaries == result.summaries

    def test_legacy_dict_loader_still_works(self, tiny_env, tmp_path):
        spec, settings = tiny_env
        result = run_strategy(FedAvgStrategy(), spec, settings, seed=2)
        path = save_run_result(tmp_path / "legacy.json", result)
        data = load_run_result_dict(path)
        assert data["strategy"] == "fedavg"
        assert data["seed"] == 2
        assert len(data["window_series"]) == spec.num_windows
