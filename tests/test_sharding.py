"""Sharded parameter plane: facade parity, kernel differentials, full runs.

Three layers of guarantees, mirroring the acceptance criteria of the
sharding work:

1. **`--shards 1` is bitwise.**  The default plan never constructs a
   sharded bank, so every strategy reproduces the single-process results
   byte for byte (fast check here; the full five-baselines+shiftex sweep is
   in the slow suite).
2. **`shards >= 2` is exact-sum-order equivalent.**  Per-shard partials are
   combined in ascending shard order, so sharded kernels match the
   unsharded ones to floating-point reassociation noise, and the
   ``process`` and ``serial`` backends match each other *bitwise*.
3. **API parity.**  ``ShardedParamBank`` honors the ``ParamBank`` row
   lifecycle (refcounts, copy-on-write splits, slot recycling) so every
   bank consumer works unchanged.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.data.federated import FederatedShiftDataset
from repro.experiments.registry import build_strategy
from repro.experts.consolidation import consolidate_experts
from repro.experts.matching import WindowMatchScorer, match_cluster_to_expert
from repro.experts.registry import ExpertRegistry
from repro.federation.async_engine import FederationConfig, FederationEngine
from repro.federation.rounds import run_fl_round
from repro.harness.runner import run_strategy
from repro.utils.params import (
    ParamBank,
    ShardedParamBank,
    flatten_params,
    make_param_bank,
)
from repro.utils.rng import spawn_rng
from repro.utils.sharding import (
    ShardPlan,
    resolve_shard_plan,
    shard_ranges,
    sharded_class_conditional_mmd_to_many,
    sharded_mmd_to_many,
)
from repro.utils.serialization import run_result_to_dict
from repro.detection.mmd import class_conditional_mmd_to_many, mmd_to_many
from tests.conftest import make_context, make_run_settings, make_tiny_spec

SERIAL2 = ShardPlan(shards=2, backend="serial")
SERIAL3 = ShardPlan(shards=3, backend="serial")


def _comparable(result) -> dict:
    """A run result as a dict minus wall-clock noise (profiler timings)."""
    out = run_result_to_dict(result)
    out.pop("profiler", None)
    return out


def _param_sets(rng, n, shapes=((5, 3), (3,))):
    return [[rng.normal(size=s) for s in shapes] for _ in range(n)]


class TestShardPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(shards=0)
        with pytest.raises(ValueError):
            ShardPlan(backend="threads")

    def test_remote_host_pairing(self):
        with pytest.raises(ValueError):  # remote needs hosts
            ShardPlan(shards=2, backend="remote")
        with pytest.raises(ValueError):  # hosts need remote
            ShardPlan(shards=2, backend="process", hosts=("h:1",))
        plan = ShardPlan(shards=2, backend="remote", hosts=["h:1", "h:2"])
        assert plan.hosts == ("h:1", "h:2")
        assert plan.resolved_backend() == "remote"

    def test_remote_serialization_round_trip(self):
        plan = ShardPlan(shards=3, backend="remote", hosts=("h:1",))
        data = plan.to_dict()
        assert data == {"shards": 3, "backend": "remote", "hosts": ["h:1"]}
        assert ShardPlan.from_dict(data) == plan
        # pre-remote plan dicts stay host-free so old files round-trip
        assert "hosts" not in SERIAL2.to_dict()

    def test_resolution(self):
        assert resolve_shard_plan(None) == ShardPlan()
        assert resolve_shard_plan(3) == ShardPlan(shards=3)
        assert resolve_shard_plan({"shards": 2, "backend": "serial"}) == SERIAL2
        assert resolve_shard_plan(SERIAL3) is SERIAL3
        assert not ShardPlan().is_active and SERIAL2.is_active
        assert ShardPlan().resolved_backend() == "serial"
        assert SERIAL2.resolved_backend() == "serial"
        assert ShardPlan(shards=2, backend="process").resolved_backend() == \
            "process"

    def test_serialization_round_trip(self):
        assert ShardPlan.from_dict(SERIAL3.to_dict()) == SERIAL3

    def test_shard_ranges(self):
        assert shard_ranges(7, 3) == [(0, 3), (3, 5), (5, 7)]
        assert shard_ranges(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]
        assert sum(b - a for a, b in shard_ranges(100, 7)) == 100

    def test_make_param_bank_gating(self, rng):
        sets = _param_sets(rng, 2)
        spec = ParamBank.from_param_sets(sets).spec
        assert type(make_param_bank(spec)) is ParamBank
        assert type(make_param_bank(spec, plan=1)) is ParamBank
        sharded = make_param_bank(spec, plan=SERIAL2)
        assert type(sharded) is ShardedParamBank
        sharded.close()


class TestShardedBankParity:
    """The facade honors the ParamBank row lifecycle op for op."""

    def test_kernels_match_unsharded(self, rng):
        sets = _param_sets(rng, 9)
        plain = ParamBank.from_param_sets(sets)
        sharded = ShardedParamBank.from_param_sets(sets, plan=SERIAL3)
        rows = list(range(9))
        weights = rng.uniform(0.5, 4.0, size=9)
        assert np.array_equal(plain.matrix(rows), sharded.matrix(rows))
        np.testing.assert_allclose(sharded.weighted_combine(weights, rows),
                                   plain.weighted_combine(weights, rows),
                                   rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(sharded.cosine_matrix(rows),
                                   plain.cosine_matrix(rows),
                                   rtol=1e-10, atol=1e-12)
        sharded.close()

    def test_row_lifecycle(self, rng):
        sets = _param_sets(rng, 4)
        bank = ShardedParamBank.from_param_sets(sets, plan=SERIAL2)
        assert bank.n_rows == 4 and bank.n_slots == 4
        # copy-on-write: share, then split on ensure_private
        row = bank.share(0)
        assert row == 0 and bank.is_shared(0) and bank.refcount(0) == 2
        split = bank.ensure_private(0)
        assert split != 0 and bank.refcount(0) == 1 and bank.refcount(split) == 1
        assert np.array_equal(bank.row(split), bank.row(0))
        bank.write_row(split, sets[1])
        assert np.array_equal(bank.row(split), bank.row(1))
        assert not np.array_equal(bank.row(split), bank.row(0))
        # release to zero recycles the slot
        bank.release(split)
        with pytest.raises(KeyError):
            bank.row(split)
        reused = bank.alloc(sets[2])
        assert reused == split  # freed gid comes back first
        # dead-row guards
        bank.release(reused)
        with pytest.raises(KeyError):
            bank.release(reused)
        bank.close()

    def test_row_views_alias_storage(self, rng):
        sets = _param_sets(rng, 3)
        bank = ShardedParamBank.from_param_sets(sets, plan=SERIAL2)
        views = bank.row_params(1)
        views[0][0, 0] = 123.0
        assert bank.row(1)[0] == 123.0
        ro = bank.row_params(1, writeable=False)
        with pytest.raises(ValueError):
            ro[0][0, 0] = 1.0
        bank.close()

    def test_growth_preserves_rows(self, rng):
        sets = _param_sets(rng, 2)
        bank = ShardedParamBank.from_param_sets(sets, plan=SERIAL2)
        before = bank.row(0).copy()
        rows = [bank.alloc(sets[i % 2]) for i in range(40)]  # force growth
        assert np.array_equal(bank.row(0), before)
        assert np.array_equal(bank.row(rows[-1]), bank.row(rows[-3]))
        assert bank.n_rows == 42
        bank.close()

    def test_astype_round_trip(self, rng):
        sets = _param_sets(rng, 5)
        bank = ShardedParamBank.from_param_sets(sets, plan=SERIAL2)
        bank.share(2)
        f32 = bank.astype(np.float32)
        assert f32.dtype == np.dtype(np.float32)
        assert f32.refcount(2) == 2
        back = f32.astype(np.float64)
        np.testing.assert_allclose(back.matrix(list(range(5))),
                                   bank.matrix(list(range(5))), rtol=1e-7)
        for b in (bank, f32, back):
            b.close()

    def test_weight_validation_matches_parambank(self, rng):
        sets = _param_sets(rng, 3)
        bank = ShardedParamBank.from_param_sets(sets, plan=SERIAL2)
        with pytest.raises(ValueError):
            bank.weighted_combine([1.0, 2.0], [0, 1, 2])
        with pytest.raises(ValueError):
            bank.weighted_combine([0.0, 0.0, 0.0], [0, 1, 2])
        bank.close()


class TestProcessBackend:
    """The worker pool reproduces the serial backend bitwise."""

    def test_combine_and_cosine_bitwise(self, rng):
        sets = _param_sets(rng, 6)
        weights = rng.uniform(1.0, 5.0, size=6)
        rows = list(range(6))
        serial = ShardedParamBank.from_param_sets(sets, plan=SERIAL2)
        process = ShardedParamBank.from_param_sets(
            sets, plan=ShardPlan(shards=2, backend="process"))
        assert np.array_equal(process.weighted_combine(weights, rows),
                              serial.weighted_combine(weights, rows))
        assert np.array_equal(process.cosine_matrix(rows),
                              serial.cosine_matrix(rows))
        serial.close()
        process.close()

    def test_mmd_fanout_bitwise(self, rng):
        x = rng.normal(size=(24, 6))
        xl = rng.integers(0, 3, size=24)
        ys = [rng.normal(size=(12, 6)) + i for i in range(5)]
        yls = [rng.integers(0, 3, size=12) for _ in range(5)]
        serial = sharded_mmd_to_many(x, ys, 0.2, SERIAL2)
        process = sharded_mmd_to_many(
            x, ys, 0.2, ShardPlan(shards=2, backend="process"))
        assert np.array_equal(serial, process)
        cc_serial = sharded_class_conditional_mmd_to_many(
            x, xl, ys, yls, 0.2, SERIAL2)
        cc_process = sharded_class_conditional_mmd_to_many(
            x, xl, ys, yls, 0.2, ShardPlan(shards=2, backend="process"))
        assert np.array_equal(cc_serial, cc_process)


def _double(x):
    return 2 * x


class TestPoolLifecycle:
    """Crash paths and executor hygiene for the shard worker pool."""

    def test_broken_pool_rebuilds_once_silently(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro.utils import sharding

        attempts = []

        def flaky_run(fn, task_args):
            attempts.append(1)
            if len(attempts) == 1:
                raise BrokenProcessPool("worker died")
            return [fn(*args) for args in task_args]

        shutdowns = []
        monkeypatch.setattr(sharding, "_run_in_pool", flaky_run)
        monkeypatch.setattr(sharding, "_shutdown_pool",
                            lambda: shutdowns.append(1))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a silent retry, not a warning
            out = sharding.submit_shard_tasks(
                _double, [(1,), (2,), (3,)], "process")
        assert out == [2, 4, 6]
        assert len(attempts) == 2 and len(shutdowns) == 1

    def test_always_broken_pool_degrades_serial_with_warning(self,
                                                             monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro.utils import sharding

        def broken_run(fn, task_args):
            raise BrokenProcessPool("worker died")

        shutdowns = []
        monkeypatch.setattr(sharding, "_run_in_pool", broken_run)
        monkeypatch.setattr(sharding, "_shutdown_pool",
                            lambda: shutdowns.append(1))
        with pytest.warns(RuntimeWarning, match="broke twice"):
            out = sharding.submit_shard_tasks(
                _double, [(1,), (2,), (3,)], "process")
        assert out == [2, 4, 6]
        assert len(shutdowns) == 2

    def test_atexit_registered_once_across_growth(self, monkeypatch):
        from repro.utils import sharding

        registered = []
        monkeypatch.setattr(sharding, "_EXECUTOR", None)
        monkeypatch.setattr(sharding, "_EXECUTOR_SIZE", 0)
        monkeypatch.setattr(sharding, "_ATEXIT_REGISTERED", False)
        monkeypatch.setattr(sharding.atexit, "register",
                            lambda fn: registered.append(fn))
        try:
            first = sharding._get_executor(1)
            grown = sharding._get_executor(2)  # growth recreates the pool
            assert grown is not first
            assert registered == [sharding._shutdown_pool]
            # the replaced pool was shut down, not leaked
            with pytest.raises(RuntimeError):
                first.submit(_double, 1)
        finally:
            sharding._shutdown_pool()  # drop the test-local executor


class TestBatchedSubmissions:
    """One submission per shard reproduces per-op dispatch bitwise."""

    def test_empty_selection_partial_is_zero(self):
        arr = np.arange(12.0).reshape(4, 3)
        from repro.utils.sharding import _matvec_partial

        out = _matvec_partial(arr, [], np.asarray([]))
        assert out.shape == (3,) and out.dtype == arr.dtype
        assert np.array_equal(out, np.zeros(3))

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_fewer_rows_than_shards(self, rng, backend):
        """n < shards leaves empty shards; the matvec must survive them."""
        sets = _param_sets(rng, 2)
        plain = ParamBank.from_param_sets(sets)
        bank = ShardedParamBank.from_param_sets(
            sets, plan=ShardPlan(shards=4, backend=backend))
        weights = rng.uniform(1.0, 2.0, size=2)
        np.testing.assert_allclose(bank.weighted_combine(weights, [0, 1]),
                                   plain.weighted_combine(weights, [0, 1]),
                                   rtol=1e-12, atol=1e-14)
        single = bank.weighted_combine([3.0], [1])
        np.testing.assert_allclose(single, plain.weighted_combine([3.0], [1]),
                                   rtol=1e-12, atol=1e-14)
        bank.close()

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_op_batches_match_per_op_dispatch(self, rng, backend):
        from repro.utils.sharding import (
            _task_matvec,
            submit_shard_op_batches,
            submit_shard_tasks,
        )

        sets = _param_sets(rng, 6)
        bank = ShardedParamBank.from_param_sets(sets, plan=SERIAL3)
        tokens = bank.shard_tokens()
        selections = [list(range(6)), [0, 3], [5, 2, 4]]
        prepared = [bank._prepare_combine(rng.uniform(1, 3, size=len(r)), r)
                    for r in selections]
        ops_by_shard = [[] for _ in tokens]
        for _, locals_by_shard, weights_by_shard in prepared:
            for s, (rows, w) in enumerate(zip(locals_by_shard,
                                              weights_by_shard)):
                ops_by_shard[s].append(("matvec", rows, w))
        batched = submit_shard_op_batches(tokens, ops_by_shard, backend)
        for s, ops in enumerate(ops_by_shard):
            per_op = submit_shard_tasks(
                _task_matvec, [(tokens[s], rows, w) for _, rows, w in ops],
                backend)
            for got, want in zip(batched[s], per_op):
                assert np.array_equal(got, want)
        bank.close()

    def test_combine_many_matches_sequential_combines(self, rng):
        sets = _param_sets(rng, 6)
        bank = ShardedParamBank.from_param_sets(sets, plan=SERIAL3)
        rows_sets = [list(range(6)), [0, 2, 4], None]
        weight_sets = [rng.uniform(1, 4, size=6 if r is None else len(r))
                       for r in rows_sets]
        many = bank.weighted_combine_many(weight_sets, rows_sets)
        for w, r, got in zip(weight_sets, rows_sets, many):
            assert np.array_equal(got, bank.weighted_combine(w, r))
        # ParamBank grows the same batched entry point
        plain = ParamBank.from_param_sets(sets)
        plain_many = plain.weighted_combine_many(weight_sets, rows_sets)
        for got, want in zip(plain_many,
                             (plain.weighted_combine(w, r)
                              for w, r in zip(weight_sets, rows_sets))):
            assert np.array_equal(got, want)
        bank.close()


class TestShardedScoring:
    def test_sharded_mmd_matches_serial(self, rng):
        x = rng.normal(size=(30, 5))
        ys = [rng.normal(size=(10 + i, 5)) for i in range(5)]
        np.testing.assert_allclose(sharded_mmd_to_many(x, ys, 0.3, SERIAL3),
                                   mmd_to_many(x, ys, 0.3),
                                   rtol=1e-9, atol=1e-12)

    def test_sharded_ccmmd_matches_serial(self, rng):
        x = rng.normal(size=(30, 5))
        xl = rng.integers(0, 4, size=30)
        ys = [rng.normal(size=(12, 5)) for _ in range(5)]
        yls = [rng.integers(0, 4, size=12) for _ in range(5)]
        np.testing.assert_allclose(
            sharded_class_conditional_mmd_to_many(x, xl, ys, yls, 0.3, SERIAL3),
            class_conditional_mmd_to_many(x, xl, ys, yls, 0.3),
            rtol=1e-9, atol=1e-12)

    def test_match_cluster_sharded_agrees(self, rng):
        registry = ExpertRegistry(memory_capacity=16)
        for i in range(4):
            registry.create(_param_sets(rng, 1)[0], window=0,
                            embeddings=rng.normal(size=(20, 6)) + 3 * i,
                            rng=rng)
        cluster = rng.normal(size=(25, 6)) + 3
        plain = match_cluster_to_expert(cluster, registry, epsilon=5.0,
                                        gamma=0.2)
        sharded = match_cluster_to_expert(cluster, registry, epsilon=5.0,
                                          gamma=0.2, shards=SERIAL2)
        assert sharded.expert_id == plain.expert_id
        assert sharded.matched == plain.matched
        np.testing.assert_allclose(
            [sharded.scores[k] for k in sorted(sharded.scores)],
            [plain.scores[k] for k in sorted(plain.scores)],
            rtol=1e-9, atol=1e-12)

    def test_window_scorer_tracks_registry_mutation(self, rng):
        """Batch scores stay valid as earlier clusters mutate the pool."""
        registry = ExpertRegistry(memory_capacity=16)
        for i in range(3):
            registry.create(_param_sets(rng, 1)[0], window=0,
                            embeddings=rng.normal(size=(24, 6)) + 4 * i,
                            labels=rng.integers(0, 3, size=24), rng=rng)
        clusters = [rng.normal(size=(20, 6)) + 4 * i for i in (0, 1, 5)]
        labels = [rng.integers(0, 3, size=20) for _ in clusters]
        scorer = WindowMatchScorer(registry, clusters, labels, gamma=0.2,
                                   shards=SERIAL2)
        for i in range(len(clusters)):
            batch = scorer.match(i, epsilon=1.0)
            fresh = match_cluster_to_expert(clusters[i], registry, epsilon=1.0,
                                            gamma=0.2, cluster_labels=labels[i])
            assert batch.matched == fresh.matched
            assert batch.expert_id == fresh.expert_id
            np.testing.assert_allclose(
                [batch.scores[k] for k in sorted(batch.scores)],
                [fresh.scores[k] for k in sorted(fresh.scores)],
                rtol=1e-9, atol=1e-12)
            # Mimic the server: a match refreshes the expert's memory, a
            # miss creates a new expert — later clusters must see both.
            if batch.matched:
                expert = registry.get(batch.expert_id)
                expert.memory.update(clusters[i], rng, labels=labels[i])
            else:
                registry.create(_param_sets(rng, 1)[0], window=1,
                                embeddings=clusters[i], labels=labels[i],
                                rng=rng)


class TestShardedRegistry:
    def test_pool_ops_match_unsharded(self, rng):
        sets = _param_sets(rng, 5)
        plain = ExpertRegistry()
        sharded = ExpertRegistry(shard_plan=SERIAL2)
        for registry in (plain, sharded):
            for s in sets:
                e = registry.create([p.copy() for p in s], window=0)
                e.train_rounds = 1
        assert type(sharded.bank) is ShardedParamBank
        np.testing.assert_allclose(sharded.param_matrix(),
                                   plain.param_matrix(), rtol=0, atol=0)
        np.testing.assert_allclose(sharded.cosine_matrix(),
                                   plain.cosine_matrix(),
                                   rtol=1e-10, atol=1e-12)

    def test_clone_and_consolidation_on_sharded_bank(self, rng):
        registry = ExpertRegistry(memory_capacity=8, shard_plan=SERIAL2)
        base = _param_sets(rng, 1)[0]
        e0 = registry.create(base, window=0,
                             embeddings=rng.normal(size=(12, 4)), rng=rng)
        e1 = registry.clone(e0.expert_id, window=1,
                            embeddings=rng.normal(size=(12, 4)), rng=rng)
        assert e1.is_cow_shared and e0.is_cow_shared
        e1.set_params([p + 1e-9 for p in e0.params])  # near-duplicate split
        assert not e0.is_cow_shared
        e0.train_rounds = e1.train_rounds = 1
        events = consolidate_experts(registry, tau=0.9, window=2,
                                     rng=spawn_rng(0, "merge"),
                                     shards=SERIAL2)
        assert len(events) == 1 and len(registry) == 1


class TestShardedRounds:
    def test_round_matches_unsharded(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        plain, plain_stats = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                          ctx.round_config, round_tag=(0, 0))
        sharded, sharded_stats = run_fl_round(
            ctx.parties, [0, 1, 2, 3], params, ctx.round_config,
            round_tag=(0, 0), shards=SERIAL2)
        np.testing.assert_allclose(flatten_params(sharded),
                                   flatten_params(plain),
                                   rtol=1e-12, atol=1e-14)
        assert sharded_stats == plain_stats

    def test_buffered_engine_with_sharded_banks(self, tiny_spec, tiny_dataset):
        ctx = make_context(tiny_spec, tiny_dataset)
        params = ctx.model_factory().get_params()
        plain, _ = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                ctx.round_config, round_tag=(0, 0))
        engine = FederationEngine(FederationConfig(mode="buffered"),
                                  seed=0, num_parties=8, shard_plan=SERIAL2)
        engine.advance((0, 0))
        got, stats = run_fl_round(ctx.parties, [0, 1, 2, 3], params,
                                  ctx.round_config, round_tag=(0, 0),
                                  engine=engine, stream="g")
        assert stats.aggregated
        assert type(engine._buffers["g"].bank) is ShardedParamBank
        np.testing.assert_allclose(flatten_params(got), flatten_params(plain),
                                   rtol=1e-12, atol=1e-14)


class TestShardedRuns:
    def test_fedavg_shards1_bitwise_and_shards2_close(self):
        spec = make_tiny_spec(name="unit_shard_fast", num_parties=6,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=31)
        ds = FederatedShiftDataset(spec)
        base = make_run_settings()
        reference = run_strategy(build_strategy("fedavg"), spec, base, seed=0,
                                 dataset=ds)
        explicit = run_strategy(build_strategy("fedavg"), spec,
                                dataclasses.replace(base, shards=1), seed=0,
                                dataset=ds)
        assert _comparable(explicit) == _comparable(reference)
        sharded = run_strategy(build_strategy("fedavg"), spec,
                               dataclasses.replace(base, shards=2), seed=0,
                               dataset=ds)
        for ref_w, got_w in zip(reference.window_series,
                                sharded.window_series):
            for ref_a, got_a in zip(ref_w, got_w):
                assert abs(ref_a - got_a) < 1.0  # accuracy percent

    @pytest.mark.slow
    @pytest.mark.parametrize("method", ["fedavg", "fedprox", "oort",
                                        "fielding", "feddrift", "shiftex"])
    def test_all_strategies_shards1_bitwise(self, method):
        """--shards 1 (the default) reproduces every strategy bitwise."""
        spec = make_tiny_spec(name="unit_shard_bitwise", num_parties=6,
                              num_windows=2, window_regimes=(("fog", 4),),
                              seed=37)
        ds = FederatedShiftDataset(spec)
        base = make_run_settings()
        reference = run_strategy(build_strategy(method), spec, base, seed=0,
                                 dataset=ds)
        explicit = run_strategy(build_strategy(method), spec,
                                dataclasses.replace(base, shards=1), seed=0,
                                dataset=ds)
        assert _comparable(explicit) == _comparable(reference)

    @pytest.mark.slow
    def test_shiftex_sharded_run_structurally_sound(self):
        """A sharded ShiftEx run completes with a sane expert pool."""
        spec = make_tiny_spec(name="unit_shard_shiftex", num_parties=6,
                              num_windows=3, seed=41)
        ds = FederatedShiftDataset(spec)
        settings = dataclasses.replace(make_run_settings(), shards=2)
        result = run_strategy(build_strategy("shiftex"), spec, settings,
                              seed=0, dataset=ds)
        assert len(result.window_series) == 3
        assert result.state_log[-1]["num_models"] >= 1
        assert all(np.isfinite(a) for w in result.window_series for a in w)
