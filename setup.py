from setuptools import find_packages, setup

setup(
    name="shiftex-repro",
    version="1.1.0",
    description=("Reproduction of 'Shift Happens: Mixture of Experts based "
                 "Continual Adaptation in Federated Learning' (Middleware "
                 "2025) with a composable experiment API"),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "hypothesis"]},
    entry_points={"console_scripts": ["repro=repro.__main__:main"]},
)
