"""Streaming ingestion + label-shift detection on a party device.

The paper's parties run a stream engine (Kafka/Flink) that windows incoming
records before local training (Sections 1, 3.2, 4).  This example shows that
client-side pipeline in isolation:

1. a record stream whose label distribution changes mid-stream (a disease-
   prevalence change in the paper's healthcare example);
2. tumbling-window segmentation via the stream engine;
3. per-window label histograms and the JSD statistic of Algorithm 1;
4. the calibrated threshold separating sampling noise from the true shift.

Usage::

    python examples/streaming_label_shift.py
"""

from __future__ import annotations

import numpy as np

from repro.data.images import ImageDomainSpec, SyntheticImageGenerator
from repro.detection import bootstrap_jsd_null, jsd, threshold_from_null
from repro.streaming import ArrayStreamSource, StreamEngine, TumblingWindowAssigner
from repro.utils.rng import spawn_rng


def main() -> None:
    num_classes = 6
    samples_per_window = 120
    spec = ImageDomainSpec(num_classes=num_classes, image_size=8, channels=1,
                           seed=5)
    generator = SyntheticImageGenerator(spec)
    rng = spawn_rng(0, "stream")

    # Windows 0-2 follow a stable prior; windows 3-5 shift prevalence hard
    # toward the last classes (label shift: P(Y) moves, P(X|Y) fixed).
    stable_prior = np.array([0.30, 0.25, 0.20, 0.15, 0.05, 0.05])
    shifted_prior = np.array([0.05, 0.05, 0.10, 0.20, 0.30, 0.30])
    segments = []
    for window in range(6):
        prior = stable_prior if window < 3 else shifted_prior
        segments.append(generator.sample_dataset(prior, samples_per_window, rng))

    source = ArrayStreamSource(segments, segment_duration=60.0, jitter=0.5,
                               rng=rng)
    engine = StreamEngine(TumblingWindowAssigner(size=60.0))
    for record in source:
        engine.ingest(record)
    batches = engine.advance_watermark(source.total_duration)
    print(f"ingested {engine.records_ingested} records "
          f"into {len(batches)} tumbling windows of 60s")

    # Calibrate delta_label from the first window, as the bootstrap phase does.
    null = bootstrap_jsd_null(batches[0].label_histogram(num_classes),
                              samples_per_window, 300, spawn_rng(1, "null"))
    delta_label = threshold_from_null(null, p_value=0.05)
    print(f"calibrated delta_label = {delta_label:.4f} "
          f"(95th percentile of the no-shift JSD null)\n")

    print("window | top classes               | JSD vs prev | shift?")
    previous = None
    for batch in batches:
        histogram = batch.label_histogram(num_classes)
        top = np.argsort(histogram)[::-1][:2]
        top_text = ", ".join(f"class {c} ({histogram[c]:.2f})" for c in top)
        if previous is None:
            print(f"  W{batch.window_id}   | {top_text:26s} |     -      |   -")
        else:
            score = jsd(histogram, previous)
            flag = "SHIFT" if score > delta_label else "stable"
            print(f"  W{batch.window_id}   | {top_text:26s} |   {score:.4f}   "
                  f"| {flag}")
        previous = histogram

    print("\nWindows 1-2 stay under the threshold (sampling noise only);")
    print("window 3 crosses it the moment prevalence changes — that is the")
    print("signal a party transmits to the ShiftEx aggregator (Algorithm 1).")


if __name__ == "__main__":
    main()
