"""FedAvg over a 100,000-party population in flat memory.

The paper's experiments federate 50-200 parties; production cross-device
deployments see populations thousands of times larger, with heavily skewed
participation (a few devices check in constantly, most almost never).  This
example runs the same simulator at that scale: a
:class:`~repro.federation.pool.PartyPool` makes every party a seeded spec —
materialized only while it trains, evicted once its report is buffered — so
100k virtual parties cost no more memory than the few dozen resident ones.
Cohorts are drawn from a Zipf participation skew and rounds run under the
``flaky`` availability preset (dropouts + stragglers + correlated outages).

Usage::

    python examples/population_scale.py [--population N] [--cohort K]
        [--max-resident M] [--zipf-a A] [--seed N]
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentPlan
from repro.federation.async_engine import FederationConfig
from repro.federation.availability import AvailabilityConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="femnist_sim")
    parser.add_argument("--population", type=int, default=100_000)
    parser.add_argument("--cohort", type=int, default=8)
    parser.add_argument("--max-resident", type=int, default=32)
    parser.add_argument("--zipf-a", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    federation = FederationConfig(
        mode="async",
        staleness_policy="polynomial",
        availability=AvailabilityConfig.scenario("flaky"),
    )
    plan = ExperimentPlan.build(
        args.dataset, ["fedavg"], seeds=(args.seed,), profile="ci",
        federation=federation,
        population={"size": args.population,
                    "max_resident": args.max_resident,
                    "skew": "zipf", "zipf_a": args.zipf_a},
        cohort_size=args.cohort,
    )
    print(f"Running fedavg on {args.dataset}: population "
          f"{args.population:,}, zipf(a={args.zipf_a}) cohorts of "
          f"{args.cohort}, flaky availability ...")
    result = plan.run()
    run = result.runs["fedavg"][0]

    print("\nMax accuracy (%) per window:")
    for window, series in enumerate(run.window_series):
        print(f"  W{window}: {max(series):5.1f}")

    pool = run.extras["party_pool"]
    print(f"\nResidency (population {pool['population']:,}):")
    print(f"  peak resident parties  {pool['peak_resident']:6d}  "
          f"(bound {pool['max_resident']})")
    print(f"  materializations       {pool['materialized']:6d}")
    print(f"  model replicas built   {pool['models_built']:6d}  "
          f"(recycled through the free list)")
    print(f"  evictions              {pool['evictions']:6d}")

    fed = run.extras["federation"]
    print(f"\nFederation: dispatched={fed['dispatched']} "
          f"dropped={fed['dropped']} delayed={fed['delayed']} "
          f"mean_staleness={fed['mean_staleness']:.2f}")
    print("\nThe same run from the CLI:")
    print(f"  python -m repro compare {args.dataset} --methods fedavg "
          f"--participation async --scenario flaky "
          f"--population {args.population} --cohort-size {args.cohort} "
          f"--max-resident {args.max_resident} --participation-skew zipf")


if __name__ == "__main__":
    main()
