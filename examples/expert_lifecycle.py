"""The expert lifecycle, step by step — with a TEE-protected variant.

Walks through the aggregator-side machinery of Algorithm 2 on synthetic
embeddings, without any training, so each mechanism is visible in isolation:

1. registry bootstrap and latent-memory seeding;
2. a new covariate regime arriving -> no memory match -> expert creation;
3. the same regime recurring -> memory match -> expert *reuse*;
4. two near-duplicate experts -> cosine + regime-gated *consolidation*;
5. the facility-location view (Equation 2): exact vs greedy assignment;
6. the same detection flow with embeddings sealed into the software enclave
   (Section 5.3).

Usage::

    python examples/expert_lifecycle.py
"""

from __future__ import annotations

import numpy as np

from repro.detection import mmd
from repro.experts import (
    ExpertRegistry,
    FacilityLocationProblem,
    consolidate_experts,
    match_cluster_to_expert,
    solve_exact,
    solve_greedy,
)
from repro.privacy import SecureReportChannel
from repro.utils.rng import spawn_rng


def regime_embeddings(rng, offset: float, n: int = 80, d: int = 16) -> np.ndarray:
    return rng.normal(size=(n, d)) + offset


def main() -> None:
    rng = spawn_rng(0, "lifecycle")
    epsilon, gamma = 0.35, 0.05

    print("1. bootstrap: registry opens with one expert, memory seeded on the")
    print("   clean regime")
    registry = ExpertRegistry(memory_capacity=48)
    params = [rng.normal(size=(20, 8)), rng.normal(size=(8,))]
    clean = registry.create(params, window=0,
                            embeddings=regime_embeddings(rng, 0.0), rng=rng)
    clean.train_rounds, clean.samples_seen = 5, 400
    print(f"   experts: {registry.ids()}\n")

    print("2. window 1: a foggy regime arrives (embeddings translated)")
    fog_cluster = regime_embeddings(rng, 4.0)
    match = match_cluster_to_expert(fog_cluster, registry, epsilon, gamma)
    print(f"   best MMD to existing memories: {match.score:.3f} "
          f"(epsilon={epsilon}) -> matched={match.matched}")
    fog = registry.create(params, window=1, embeddings=fog_cluster, rng=rng)
    fog.train_rounds, fog.samples_seen = 3, 240
    print(f"   created expert {fog.expert_id}; experts: {registry.ids()}\n")

    print("3. window 2: the SAME foggy regime recurs")
    fog_again = regime_embeddings(spawn_rng(1, "recur"), 4.0)
    match = match_cluster_to_expert(fog_again, registry, epsilon, gamma)
    print(f"   best MMD: {match.score:.3f} against expert {match.expert_id} "
          f"-> reuse={match.matched} (no new expert, no retraining from scratch)\n")

    print("4. consolidation: a near-duplicate of the fog expert appears")
    duplicate = registry.create([p + 0.01 * rng.normal(size=p.shape)
                                 for p in fog.params],
                                window=2, embeddings=fog_again, rng=rng)
    duplicate.train_rounds, duplicate.samples_seen = 1, 80
    assignments = {0: clean.expert_id, 1: fog.expert_id, 2: duplicate.expert_id}
    events = consolidate_experts(registry, tau=0.98, window=2, rng=rng,
                                 assignments=assignments,
                                 memory_epsilon=epsilon, gamma=gamma)
    for event in events:
        print(f"   merged experts {event.merged_ids} -> {event.new_id} "
              f"(cosine {event.similarity:.4f}); party 2 now follows "
              f"expert {assignments[2]}")
    print(f"   experts after consolidation: {registry.ids()}\n")

    print("5. Equation 2: facility-location assignment (exact vs greedy)")
    live = registry.ids()
    memories = {eid: registry.get(eid).memory.signature for eid in live}
    parties = {
        "stable-a": regime_embeddings(spawn_rng(2, "pa"), 0.0, n=40),
        "stable-b": regime_embeddings(spawn_rng(3, "pb"), 0.0, n=40),
        "foggy-c": regime_embeddings(spawn_rng(4, "pc"), 4.0, n=40),
        "new-regime-d": regime_embeddings(spawn_rng(5, "pd"), -5.0, n=40),
    }
    columns = live + ["candidate-new"]
    costs = np.zeros((len(parties), len(columns)))
    for i, (name, embeddings) in enumerate(parties.items()):
        for j, eid in enumerate(live):
            costs[i, j] = mmd(embeddings, memories[eid], gamma)
        # The candidate column models an expert specialized for the *new*
        # regime: near-zero mismatch for the new-regime party, high for the
        # parties whose regimes it would not serve.
        costs[i, -1] = 0.05 if name == "new-regime-d" else 0.8
    problem = FacilityLocationProblem(
        mmd_costs=costs,
        existing=tuple(range(len(live))),
        candidates=(len(columns) - 1,),
        party_histograms=np.full((len(parties), 4), 0.25),
        lam=0.3, mu=0.1,
    )
    exact = solve_exact(problem)
    greedy = solve_greedy(problem)
    names = list(parties)
    print(f"   exact : obj={exact.objective:.3f}  "
          + ", ".join(f"{names[i]}->col{k}" for i, k in enumerate(exact.assignment)))
    print(f"   greedy: obj={greedy.objective:.3f}  "
          + ", ".join(f"{names[i]}->col{k}" for i, k in enumerate(greedy.assignment)))
    print("   (the new-regime party opens the candidate column: that is the")
    print("   lambda trade-off the modular pipeline approximates)\n")

    print("6. TEE mode: the same detection with sealed embeddings (5.3)")
    channel = SecureReportChannel(seed=7)
    labels = spawn_rng(6, "y").integers(0, 4, 80)
    base = regime_embeddings(spawn_rng(7, "tee"), 0.0)
    channel.submit_profile(0, base, labels, rng)
    stable_score = channel.submit_profile(
        0, regime_embeddings(spawn_rng(8, "tee2"), 0.0), labels, rng, gamma=gamma)
    shift_score = channel.submit_profile(
        0, regime_embeddings(spawn_rng(9, "tee3"), 4.0), labels, rng, gamma=gamma)
    print(f"   in-enclave delta_cov, stable window: {stable_score:.3f}")
    print(f"   in-enclave delta_cov, shifted window: {shift_score:.3f}")
    print("   the aggregator process never saw a raw embedding.")


if __name__ == "__main__":
    main()
