"""Register a custom strategy and run it from a saved experiment plan.

Demonstrates the composable experiment API end to end:

1. ``@register_strategy`` adds a user-defined method next to the paper's
   five baselines and ShiftEx — no library edits needed;
2. an :class:`ExperimentPlan` declares the dataset x strategies x seeds grid
   (with per-strategy kwargs) and serializes to JSON;
3. the saved plan runs through ``SerialExecutor`` or the process-parallel
   ``ParallelExecutor`` — equivalently via ``python -m repro run plan.json``.

Usage::

    python examples/custom_strategy_plan.py [--jobs N]
"""

from __future__ import annotations

import argparse
import tempfile
from dataclasses import replace
from pathlib import Path

from repro.baselines.fedavg import FedAvgStrategy
from repro.experiments import (
    ExperimentPlan,
    ParallelExecutor,
    ProgressLogger,
    SerialExecutor,
    load_plan,
    register_strategy,
    save_plan,
)
from repro.harness import render_drop_time_max_table


@register_strategy("fedavg-finetune", overwrite=True)
class FedAvgFineTuneStrategy(FedAvgStrategy):
    """FedAvg whose parties take extra local epochs after a shift window."""

    name = "fedavg-finetune"

    def __init__(self, extra_epochs: int = 1) -> None:
        super().__init__()
        self.extra_epochs = extra_epochs

    def _local_config(self):
        base = super()._local_config()
        if self._in_shift_window:
            return replace(base, epochs=base.epochs + self.extra_epochs)
        return base

    def start_window(self, window: int) -> None:
        self._in_shift_window = window > 0
        super().start_window(window)

    def setup(self, ctx) -> None:
        self._in_shift_window = False
        super().setup(ctx)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cifar10_c_sim")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    plan = ExperimentPlan.build(
        args.dataset,
        {
            "fedavg": "fedavg",
            "fedavg-ft2": {"method": "fedavg-finetune",
                           "kwargs": {"extra_epochs": 2}},
        },
        seeds=(0, 1),
        profile="ci",
        name="custom-strategy-demo",
    )

    plan_path = Path(tempfile.gettempdir()) / "custom_strategy_demo.json"
    save_plan(plan_path, plan)
    print(f"plan saved to {plan_path} "
          f"(also runnable via: python -m repro run {plan_path} --jobs {args.jobs})")

    executor = ParallelExecutor(args.jobs) if args.jobs > 1 else SerialExecutor()
    result = load_plan(plan_path).run(executor=executor,
                                      callbacks=(ProgressLogger(),))
    print()
    print(render_drop_time_max_table(
        result, title=f"{args.dataset}: FedAvg vs shift-aware fine-tuning"))


if __name__ == "__main__":
    main()
