"""FedAvg vs ShiftEx under 30% client dropout with asynchronous rounds.

The paper evaluates drift adaptation with a fully synchronous cohort; this
example reruns its central comparison in the regime real deployments live
in — every round 30% of dispatched reports are lost and a fraction of the
rest arrive rounds late — using the buffered/async federation engine.  Both
strategies run twice: once fully synchronous, once under the availability
scenario, so the table shows what partial participation costs each method.

Usage::

    python examples/async_dropout_comparison.py [--dataset NAME] [--seed N]
        [--mode buffered|async] [--dropout P] [--straggler P]
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentPlan
from repro.federation.async_engine import FederationConfig
from repro.federation.availability import AvailabilityConfig
from repro.harness import render_drop_time_max_table

METHODS = ["fedavg", "shiftex"]


def run_plan(dataset: str, seed: int,
             federation: FederationConfig | None):
    plan = ExperimentPlan.build(dataset, METHODS, seeds=(seed,),
                                profile="ci", federation=federation)
    return plan.run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="fashion_mnist_sim")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mode", default="async",
                        choices=("buffered", "async"))
    parser.add_argument("--dropout", type=float, default=0.3)
    parser.add_argument("--straggler", type=float, default=0.2)
    args = parser.parse_args()

    federation = FederationConfig(
        mode=args.mode,
        staleness_policy="polynomial",
        availability=AvailabilityConfig(dropout_prob=args.dropout,
                                        straggler_prob=args.straggler),
    )

    print(f"Running {METHODS} on {args.dataset} synchronously ...")
    sync_result = run_plan(args.dataset, args.seed, federation=None)
    print(f"... and under {args.mode} rounds with "
          f"{args.dropout:.0%} dropout / {args.straggler:.0%} stragglers ...")
    drop_result = run_plan(args.dataset, args.seed, federation=federation)

    print()
    print(render_drop_time_max_table(
        sync_result, title=f"{args.dataset}: synchronous full cohort"))
    print()
    print(render_drop_time_max_table(
        drop_result,
        title=f"{args.dataset}: {args.mode}, {args.dropout:.0%} dropout"))

    print("\nFederation engine counters:")
    for name, runs in drop_result.runs.items():
        fed = runs[0].extras["federation"]
        print(f"  {name:8s} dispatched={fed['dispatched']:4d} "
              f"dropped={fed['dropped']:4d} delayed={fed['delayed']:4d} "
              f"aggregations={fed['aggregations']:4d} "
              f"mean_staleness={fed['mean_staleness']:.2f}")


if __name__ == "__main__":
    main()
