"""Satellite land-use monitoring under weather shift (the paper's Figure 1).

The paper motivates ShiftEx with satellite imagery whose appearance changes
with weather: a clear-weather model collapses on fog/rain/snow/frost while
per-condition experts recover most of the accuracy.  This example rebuilds
that motivation end to end on the synthetic satellite domain and then shows
the federated version: a full ShiftEx run on the simulated FMoW dataset,
where regional weather regimes arrive window by window.

Usage::

    python examples/weather_shift_satellites.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ShiftExStrategy
from repro.data import CORRUPTION_GROUPS, apply_corruption
from repro.data.images import ImageDomainSpec, SyntheticImageGenerator
from repro.harness.comparison import render_expert_distribution
from repro.harness.profiles import get_profile
from repro.harness.runner import run_strategy
from repro.nn import LocalTrainingConfig, build_model, evaluate, train_local
from repro.utils.rng import spawn_rng


def centralized_motivation() -> None:
    """Part 1 — Figure 1: clear-trained model vs weather experts."""
    print("=" * 72)
    print("Part 1: why one global model is not enough (Figure 1)")
    print("=" * 72)
    spec = ImageDomainSpec(num_classes=10, image_size=12, channels=3,
                           noise_scale=0.22, seed=11)
    generator = SyntheticImageGenerator(spec)
    prior = np.full(10, 0.1)
    rng = spawn_rng(0, "motivation")
    x_train, y_train = generator.sample_dataset(prior, 800, rng)
    x_test, y_test = generator.sample_dataset(prior, 300, rng)

    config = LocalTrainingConfig(epochs=14, lr=0.02, batch_size=32, momentum=0.9)
    clear_model = build_model("lenet_mini", spec.input_shape, 10,
                              spawn_rng(1, "clear"))
    train_local(clear_model, x_train, y_train, config, spawn_rng(2, "clear"))
    clear_acc, _ = evaluate(clear_model, x_test, y_test)
    print(f"\nclear-trained model on clear imagery: {100 * clear_acc:.1f}%")
    print(f"{'condition':9s} | clear-trained | condition expert")
    for condition in CORRUPTION_GROUPS["weather"]:
        x_shift = apply_corruption(x_test, condition, 3, spawn_rng(3, condition))
        shifted_acc, _ = evaluate(clear_model, x_shift, y_test)
        expert = build_model("lenet_mini", spec.input_shape, 10,
                             spawn_rng(4, condition))
        x_shift_train = apply_corruption(x_train, condition, 3,
                                         spawn_rng(5, condition))
        train_local(expert, x_shift_train, y_train, config,
                    spawn_rng(6, condition))
        expert_acc, _ = evaluate(expert, x_shift, y_test)
        print(f"{condition:9s} | {100 * shifted_acc:12.1f}% "
              f"| {100 * expert_acc:15.1f}%")


def federated_shiftex() -> None:
    """Part 2 — the federated fix: ShiftEx on the simulated FMoW dataset."""
    print()
    print("=" * 72)
    print("Part 2: ShiftEx adapting a satellite federation (simulated FMoW)")
    print("=" * 72)
    spec, settings = get_profile("ci", "fmow_sim")
    strategy = ShiftExStrategy()
    result = run_strategy(strategy, spec, settings, seed=0)

    print(f"\n{spec.num_parties} parties, {spec.num_windows} windows "
          f"(W0 burn-in + {spec.num_windows - 1} weather regimes)")
    for summary in result.summaries:
        print(f"  W{summary.window}: drop {summary.accuracy_drop:5.1f} pts, "
              f"recovery {summary.recovery_label():>3s} rounds, "
              f"max {summary.max_accuracy:5.1f}%")
    print("\nExpert dynamics (parties per expert per window):")
    print(render_expert_distribution(result.expert_history))
    print(f"\nCommunication: {result.ledger_summary['total_mb']:.2f} MB total, "
          f"of which shift statistics "
          f"{result.ledger_summary.get('shift_stats_up_mb', 0.0):.3f} MB")


if __name__ == "__main__":
    centralized_motivation()
    federated_shiftex()
