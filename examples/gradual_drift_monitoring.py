"""Gradual drift: when every window looks fine but the system is degrading.

Section 2.1 of the paper distinguishes abrupt *shift* (caught by the
per-window threshold test) from gradual *drift* — "a sequence of small
shifts that accumulate", which "often requires sustained monitoring".  This
example shows exactly that failure mode and the sustained-monitoring fix:

1. a party's imagery degrades by a tiny severity ramp each window (fog
   rolling in over a season, never a big jump);
2. the thresholded *consecutive-window* detector (delta_cov) stays silent —
   each step is sub-threshold, which is precisely how drift evades it;
3. the :class:`~repro.detection.drift.DriftMonitor` watches the party's
   distance to its *bootstrap reference* profile instead; its channels
   accumulate the sustained excess and raise the flag after a few windows,
   while the clean control party never triggers.

Usage::

    python examples/gradual_drift_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.data.images import ImageDomainSpec, SyntheticImageGenerator
from repro.detection import (
    DriftMonitor,
    bootstrap_party_mmd_null,
    class_conditional_mmd,
    median_heuristic_gamma,
    threshold_from_null,
)
from repro.nn import LocalTrainingConfig, build_model, train_local
from repro.utils.rng import spawn_rng


def drifting_fog(x: np.ndarray, window: int, rng: np.random.Generator) -> np.ndarray:
    """A slow fog ramp: blend a little more haze in every window."""
    t = min(0.06 * window, 0.6)  # +6% haze per window, far below severity 1
    if t <= 0:
        return x
    haze = 0.7 + 0.3 * rng.random(x.shape)
    return np.clip((1 - t) * x + t * haze, 0.0, 1.0)


def main() -> None:
    num_classes, n = 6, 60
    spec = ImageDomainSpec(num_classes=num_classes, image_size=12, channels=1,
                           noise_scale=0.15, seed=21)
    generator = SyntheticImageGenerator(spec)
    prior = np.full(num_classes, 1 / num_classes)
    rng = spawn_rng(0, "drift-example")

    # Train the frozen encoder on clean data (the bootstrap phase).
    x_boot, y_boot = generator.sample_dataset(prior, 600, rng)
    encoder = build_model("lenet_mini", spec.input_shape, num_classes,
                          spawn_rng(1, "enc"), embed_dim=24)
    train_local(encoder, x_boot, y_boot,
                LocalTrainingConfig(epochs=12, lr=0.02, batch_size=32,
                                    momentum=0.9), spawn_rng(2, "enc"))

    # Calibrate the per-window threshold and the drift monitor from the SAME
    # no-shift null (Section 5's bootstrap calibration).
    pools = []
    for k in range(6):
        xs, ys = generator.sample_dataset(prior, n, spawn_rng(3, "pool", k))
        pools.append((encoder.features(xs), ys))
    gamma = median_heuristic_gamma(np.vstack([e for e, _ in pools]))
    null = bootstrap_party_mmd_null(pools, 150, spawn_rng(4, "null"), gamma)
    delta_cov = threshold_from_null(null, p_value=0.02)
    monitor = DriftMonitor.from_null_scores(null)
    control = DriftMonitor.from_null_scores(null)
    print(f"calibrated per-window threshold delta_cov = {delta_cov:.3f}")
    print(f"drift monitor: ewma>{monitor.ewma_threshold:.3f} "
          f"or cusum>{monitor.cusum_threshold:.3f}\n")

    print("window | step-score | >delta? | ref-score | cusum  | drift-flag | "
          "ref-score(control)")
    prev_drift = None
    reference = None  # the party's bootstrap profile (W0)
    reference_ctrl = None
    flagged_at = None
    for window in range(12):
        # Drifting party: fog ramps up a tiny step per window.
        xd, yd = generator.sample_dataset(prior, n, spawn_rng(5, "d", window))
        xd = drifting_fog(xd, window, spawn_rng(6, "fog", window))
        cur_drift = (encoder.features(xd), yd)
        # Control party: clean forever.
        xc, yc = generator.sample_dataset(prior, n, spawn_rng(7, "c", window))
        cur_ctrl = (encoder.features(xc), yc)

        if reference is None:
            reference, reference_ctrl = cur_drift, cur_ctrl
        else:
            # The per-window (consecutive) statistic drift evades:
            step_score = class_conditional_mmd(*cur_drift, *prev_drift, gamma)
            # The sustained-monitoring statistic: distance to bootstrap.
            ref_score = class_conditional_mmd(*cur_drift, *reference, gamma)
            ref_ctrl = class_conditional_mmd(*cur_ctrl, *reference_ctrl, gamma)
            verdict = monitor.observe(ref_score)
            control.observe(ref_ctrl)
            over = "SHIFT" if step_score > delta_cov else "  -  "
            flag = f"DRIFT({verdict.channel})" if verdict.drift_detected else "-"
            if verdict.drift_detected and flagged_at is None:
                flagged_at = window
            print(f"  W{window:<4d}|   {step_score:.3f}    |  {over}  "
                  f"|   {ref_score:.3f}   | {verdict.cusum:6.3f} "
                  f"| {flag:12s} | {ref_ctrl:.3f}")
        prev_drift = cur_drift

    control_flags = sum(v.drift_detected for v in control.history)
    print("\nthe consecutive-window detector never crossed delta_cov "
          "(every step is sub-threshold);")
    print(f"the CUSUM channel flagged sustained drift at window {flagged_at} "
          f"while the clean control raised {control_flags} flags.")
    print("In ShiftEx, this flag would route the party into the shifted set "
          "for clustering and expert reassignment before the accumulation "
          "becomes disruptive (Section 2.1).")


if __name__ == "__main__":
    main()
