"""Quickstart: ShiftEx vs FedProx on a shifted federation in ~1 minute.

Runs the simulated CIFAR-10-C scenario (a weather corruption arrives at
window 1 and recurs) at miniature scale, printing the per-window
Drop/Time/Max table the paper reports and ShiftEx's expert dynamics.

Usage::

    python examples/quickstart.py [--profile ci|small] [--seed N] [--jobs N]
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentPlan, ParallelExecutor, SerialExecutor
from repro.harness import render_drop_time_max_table
from repro.harness.comparison import (
    expert_distribution_table,
    render_expert_distribution,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="ci", choices=("ci", "small", "paper"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dataset", default="cifar10_c_sim")
    parser.add_argument("--jobs", type=int, default=1,
                        help="processes for the strategy grid")
    args = parser.parse_args()

    print(f"Running ShiftEx vs FedProx on {args.dataset} "
          f"(profile={args.profile}, seed={args.seed}) ...")
    plan = ExperimentPlan.build(args.dataset, ["fedprox", "shiftex"],
                                seeds=(args.seed,), profile=args.profile)
    executor = ParallelExecutor(args.jobs) if args.jobs > 1 else SerialExecutor()
    result = plan.run(executor=executor)

    print()
    print(render_drop_time_max_table(
        result, title=f"{args.dataset}: Drop / Recovery Time / Max per window"))

    print("\nShiftEx expert dynamics (parties per expert per window):")
    print(render_expert_distribution(expert_distribution_table(result)))

    shiftex_run = result.runs["shiftex"][0]
    state = shiftex_run.state_log[-1]
    print(f"\nCalibrated thresholds: delta_cov={state['delta_cov']:.3f}, "
          f"delta_label={state['delta_label']:.3f}, epsilon={state['epsilon']:.3f}")
    print(f"Experts created: {state['experts_created']}, "
          f"merged: {state['experts_merged']}, "
          f"live: {state['num_models']}")
    print("\nDetection/assignment latency (mean ms per window):")
    for phase, stats in shiftex_run.profiler_summary.items():
        print(f"  {phase:18s} {stats['mean_ms']:8.2f} ms x{int(stats['count'])}")


if __name__ == "__main__":
    main()
