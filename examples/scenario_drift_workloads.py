"""Scenario files: declarative drift-diverse workloads, compiled to plans.

The flag surface (``--scenario``, ``--dropout``, ``--population``, ...)
covers *availability*; the scenario DSL also makes the drift itself part
of the spec: which cohort shifts, how its shift arrives (sudden jump,
gradual severity ramp, recurring regime, class-incremental labels), and
how desynchronized its members are.  This example:

1. declares a two-cohort drift scenario as a plain dict (the in-memory
   twin of a TOML file — see docs/SCENARIOS.md);
2. compiles it to an :class:`~repro.experiments.ExperimentPlan` and shows
   the ground-truth shift schedule the data plane will realize;
3. runs it and reads the federation counters;
4. samples documents from the seeded fuzz generator — the same corpus CI
   fuzzes in the ``scenario-fuzz`` job.

Usage::

    python examples/scenario_drift_workloads.py
"""

from __future__ import annotations

from repro.data.registry import build_shift_schedule
from repro.scenarios import ScenarioGenerator, compile_scenario, lint_scenario

SCENARIO = {
    "name": "drift-study",
    "dataset": "fashion_mnist_sim",
    "strategies": ["fedavg"],
    "data": {"parties": 8, "train_per_window": 24, "test_per_window": 12,
             "num_windows": 4},
    "rounds": {"burn_in": 2, "per_window": 1, "participants": 4},
    "availability": {"participation": "async", "straggler": 0.4,
                     "dropout": 0.1},
    "drift": [
        # Cohort A: fog severity ramps 1 -> 5 over two windows.
        {"arrival": "gradual", "corruption": "fog", "severity": 5,
         "fraction": 0.4, "start_window": 1, "ramp_windows": 2},
        # Cohort B: contrast comes and goes every window, one window late
        # for some members (phase offsets desynchronize the cohort).
        {"arrival": "recurring", "corruption": "contrast", "severity": 3,
         "fraction": 0.3, "start_window": 1, "period": 1,
         "max_phase_offset": 1},
    ],
}


def main() -> None:
    for warning in lint_scenario(SCENARIO):
        print(f"lint: {warning}")

    plan = compile_scenario(SCENARIO)
    spec, _settings = plan.resolve()
    print(f"compiled '{plan.name}' -> {spec.num_parties} parties, "
          f"{spec.num_windows} windows, {len(spec.drift)} drift cohorts")

    schedule = build_shift_schedule(spec)
    for window in range(spec.num_windows):
        shifted = sorted(schedule.parties_shifted_at(window))
        regimes = {f"{schedule.regime_of(window, p).corruption}"
                   f"@{schedule.regime_of(window, p).severity}"
                   for p in shifted}
        print(f"  W{window}: shifted={shifted or '-'} "
              f"regimes={sorted(regimes) or '-'}")

    result = compile_scenario(SCENARIO).run()
    run = result.runs["fedavg"][0]
    fed = run.extras["federation"]
    print(f"ran {len(run.window_series)} windows; counters: "
          f"dispatched={fed['dispatched']} dropped={fed['dropped']} "
          f"aggregated={fed['aggregated_reports']} "
          f"expired={fed['expired_reports']} "
          f"in_flight_at_end={fed['in_flight_at_end']}")
    conserved = (fed["dispatched"] - fed["dropped"]
                 == fed["aggregated_reports"] + fed["expired_reports"]
                 + fed["in_flight_at_end"])
    print(f"report conservation holds: {conserved}")

    print("\nseeded fuzz corpus (what CI's scenario-fuzz job explores):")
    generator = ScenarioGenerator(seed=0)
    for index in range(3):
        doc = generator.sample(index)
        print(f"  {doc.name}: {doc.dataset}, "
              f"{len(doc.drift)} drift cohort(s), "
              f"availability={sorted(doc.availability) or 'profile'}")


if __name__ == "__main__":
    main()
