"""Table 1 (top) + Figures 3a / 5a / 7a: the FMoW experiment.

Regenerates the paper's FMoW block — Accuracy Drop, Recovery Time and Max
Accuracy for windows W1-W4 across the five methods — plus the convergence
curve (Fig. 3a), per-window max accuracy (Fig. 5a), and ShiftEx's expert
distribution dynamics (Fig. 7a) on the simulated FMoW dataset (natural
covariate + label shift, tumbling windows).
"""

from benchmarks.conftest import (
    assert_paper_shape,
    full_dataset_artifact,
    run_dataset_comparison,
    write_artifact,
)
from repro.harness.comparison import expert_distribution_table


def test_bench_table1_fmow(benchmark):
    result = benchmark.pedantic(
        lambda: run_dataset_comparison("fmow_sim"), rounds=1, iterations=1)

    artifact = full_dataset_artifact(
        result,
        table_label="Table 1 (top): FMoW — Drop / Time / Max per window",
        convergence_label="Figure 3a: FMoW convergence",
        max_label="Figure 5a: FMoW max accuracy per window",
        expert_label="Figure 7a: FMoW expert distribution",
    )
    write_artifact("table1_fmow", artifact)
    print("\n" + artifact)

    # Shape checks mirroring the paper's FMoW findings:
    # ShiftEx leads the single-global-model baselines on post-shift max
    # accuracy in most windows, and its expert pool grows to several experts.
    assert_paper_shape(result, min_windows_shiftex_leads=2, margin=1.0)
    history = expert_distribution_table(result)
    live_final = {e for e, n in history[-1].items() if n > 0}
    assert len(live_final) >= 2, "FMoW should end with multiple live experts"
