"""Ablation benches for the design choices DESIGN.md calls out.

Not in the paper's tables, but each isolates one mechanism the paper argues
for:

* latent memory (Section 5.2.2) — disabling reuse must create at least as
  many experts (every recurring regime respawns a specialist);
* consolidation (Section 5.2.5) — disabling the merge step can only keep the
  pool the same size or larger;
* FLIPS (Sections 4.1/5.2.3) — label-aware selection yields cohorts with
  flatter pooled label distributions than uniform sampling;
* threshold sensitivity (Section 5) — an over-tight delta_cov detects
  (almost) everything, an over-loose one detects (almost) nothing, and the
  calibrated value sits between;
* facility-location solvers (Section 5.1) — the greedy approximation stays
  close to the exact optimum on small instances.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_artifact
from repro.core import ShiftExConfig, ShiftExStrategy
from repro.data.federated import FederatedShiftDataset
from repro.data.registry import DatasetSpec
from repro.experts.facility import (
    FacilityLocationProblem,
    solve_exact,
    solve_greedy,
)
from repro.federation.rounds import RoundConfig
from repro.harness.profiles import RunSettings
from repro.harness.runner import run_strategy
from repro.nn.training import LocalTrainingConfig
from repro.utils.rng import spawn_rng


def ablation_spec() -> DatasetSpec:
    return DatasetSpec(
        name="ablation_recurring",
        paper_name="ablation",
        num_classes=6,
        image_size=8,
        channels=1,
        num_parties=12,
        num_windows=4,
        model_name="mlp",
        windowing="tumbling",
        window_regimes=(("invert_polarity", 4), ("invert_polarity", 4),
                        ("invert_polarity", 4)),
        dirichlet_alpha=3.0,
        train_per_window=36,
        test_per_window=18,
        domain_noise_scale=0.15,
        seed=111,
    )


def ablation_settings() -> RunSettings:
    return RunSettings(
        rounds_burn_in=5,
        rounds_per_window=3,
        round_config=RoundConfig(
            participants_per_round=6,
            local=LocalTrainingConfig(epochs=2, batch_size=8, lr=0.05,
                                      momentum=0.9),
        ),
    )


def run_config(config: ShiftExConfig, seed: int = 0):
    spec = ablation_spec()
    strategy = ShiftExStrategy(config)
    result = run_strategy(strategy, spec, ablation_settings(), seed=seed,
                          dataset=FederatedShiftDataset(spec))
    return strategy, result


def test_bench_ablation_latent_memory(benchmark):
    def run_both():
        base, _ = run_config(ShiftExConfig())
        ablated, _ = run_config(ShiftExConfig(enable_latent_memory=False,
                                              enable_consolidation=False))
        return base, ablated

    base, ablated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    created_with = base.registry.created_total
    created_without = ablated.registry.created_total
    artifact = (
        "Ablation: latent memory (recurring regime x3)\n"
        f"  experts created with reuse:    {created_with}\n"
        f"  experts created without reuse: {created_without}\n"
    )
    write_artifact("ablation_latent_memory", artifact)
    print("\n" + artifact)
    assert created_without >= created_with


def test_bench_ablation_consolidation(benchmark):
    def run_both():
        with_merge, _ = run_config(ShiftExConfig(enable_latent_memory=False,
                                                 tau=0.98))
        without_merge, _ = run_config(ShiftExConfig(enable_latent_memory=False,
                                                    enable_consolidation=False))
        return with_merge, without_merge

    with_merge, without_merge = benchmark.pedantic(run_both, rounds=1,
                                                   iterations=1)
    artifact = (
        "Ablation: expert consolidation (reuse disabled to force duplicates)\n"
        f"  live experts with consolidation:    {len(with_merge.registry)}"
        f" (merged {with_merge.registry.merged_total})\n"
        f"  live experts without consolidation: {len(without_merge.registry)}\n"
    )
    write_artifact("ablation_consolidation", artifact)
    print("\n" + artifact)
    assert len(with_merge.registry) <= len(without_merge.registry)


def test_bench_ablation_flips_balance(benchmark):
    """FLIPS cohorts pool to flatter label distributions than uniform picks."""
    from repro.flips import FlipsSelector, label_balance_score

    num_parties, num_classes = 30, 6
    histograms = {}
    for pid in range(num_parties):
        hist = np.zeros(num_classes)
        hist[pid % num_classes] = 0.8
        hist += 0.2 / num_classes
        histograms[pid] = hist / hist.sum()

    def compare():
        selector = FlipsSelector().fit(histograms, spawn_rng(1, "fit"))
        flips_scores, uniform_scores = [], []
        for trial in range(30):
            chosen = selector.select(6, spawn_rng(trial, "flips"))
            flips_scores.append(
                label_balance_score([histograms[p] for p in chosen]))
            uniform = spawn_rng(trial, "uni").choice(num_parties, size=6,
                                                     replace=False)
            uniform_scores.append(
                label_balance_score([histograms[p] for p in uniform]))
        return float(np.mean(flips_scores)), float(np.mean(uniform_scores))

    flips_mean, uniform_mean = benchmark(compare)
    artifact = (
        "Ablation: FLIPS vs uniform participant selection\n"
        f"  mean cohort label-imbalance (JSD to uniform), FLIPS:   {flips_mean:.4f}\n"
        f"  mean cohort label-imbalance (JSD to uniform), uniform: {uniform_mean:.4f}\n"
    )
    write_artifact("ablation_flips", artifact)
    print("\n" + artifact)
    assert flips_mean <= uniform_mean


def test_bench_ablation_threshold_sensitivity(benchmark):
    def run_three():
        tight, _ = run_config(ShiftExConfig(delta_cov=1e-4))
        calibrated, _ = run_config(ShiftExConfig())
        loose, _ = run_config(ShiftExConfig(delta_cov=10.0,
                                            enable_label_detection=False))
        return tight, calibrated, loose

    tight, calibrated, loose = benchmark.pedantic(run_three, rounds=1,
                                                  iterations=1)

    def detected(strategy):
        return sum(log["num_shifted"] for log in strategy.shift_log)

    artifact = (
        "Ablation: delta_cov sensitivity (total shifted-party detections)\n"
        f"  delta_cov=1e-4 (over-tight):  {detected(tight)}\n"
        f"  delta_cov=calibrated:         {detected(calibrated)}\n"
        f"  delta_cov=10.0 (over-loose):  {detected(loose)}\n"
    )
    write_artifact("ablation_thresholds", artifact)
    print("\n" + artifact)
    assert detected(tight) >= detected(calibrated) >= detected(loose)
    assert detected(loose) == 0


def test_bench_ablation_facility_solvers(benchmark):
    """Greedy vs exact Equation 2 on a batch of random small instances."""
    def compare():
        gaps = []
        for seed in range(12):
            rng = spawn_rng(seed, "fac-bench")
            n_parties = int(rng.integers(3, 6))
            n_experts = int(rng.integers(2, 4))
            problem = FacilityLocationProblem(
                mmd_costs=rng.random((n_parties, n_experts)),
                existing=(0,),
                candidates=tuple(range(1, n_experts)),
                party_histograms=rng.dirichlet(np.ones(4), size=n_parties),
                lam=float(rng.random() * 0.4),
                mu=float(rng.random() * 0.4),
            )
            greedy = solve_greedy(problem)
            exact = solve_exact(problem)
            gaps.append(greedy.objective / max(exact.objective, 1e-9))
        return gaps

    gaps = benchmark.pedantic(compare, rounds=1, iterations=1)
    artifact = (
        "Ablation: facility-location greedy vs exact (Equation 2)\n"
        f"  instances: {len(gaps)}\n"
        f"  mean objective ratio (greedy/exact): {np.mean(gaps):.4f}\n"
        f"  worst objective ratio:               {max(gaps):.4f}\n"
    )
    write_artifact("ablation_facility", artifact)
    print("\n" + artifact)
    assert max(gaps) < 1.3
    assert min(gaps) >= 1.0 - 1e-9
