"""Microbenchmarks for the contiguous parameter plane (``BENCH_param_plane``).

Times the three hot kernels the :class:`~repro.utils.params.ParamBank`
refactor vectorized, each against a faithful reimplementation of the
pre-refactor list-based code path:

* **aggregation** — FedAvg over a cohort of updates: per-parameter Python
  accumulation (``zeros_like`` + ``add_scaled``) vs one weighted ``w @ M``
  matvec over the update bank (what ``run_fl_round`` executes today).
* **consolidation** — the pairwise expert cosine-similarity matrix:
  per-pair flatten + dot vs one normalized matmul over the stacked pool.
* **matching** — scoring one covariate cluster against every expert memory:
  per-expert MMD loop vs the batched estimator sharing the cluster-side
  kernel blocks.
* **secure_masking** — one secure-aggregation cycle over a cohort (mask
  every update, aggregate the masked sum): the legacy per-tensor list path
  (per-tensor Gaussian masks and a Python list-sum, cancellation only to
  float rounding) vs the bank-resident path (bit-domain seals on bank rows
  and the ``weighted_combine`` kernel, cancellation exact).

Each kernel is also checked for numerical agreement with its baseline, so
the speedup never comes from computing something different.  Results land in
``BENCH_param_plane.json`` at the repo root (the committed perf anchor,
uploaded as a CI artifact) to track the trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.detection.mmd import mmd, mmd_many_to_many, mmd_to_many
from repro.privacy.secure_aggregation import SecureAggregationSession
from repro.utils.params import (
    ParamBank,
    ParamSpec,
    ShardedParamBank,
    add_scaled,
    cosine_similarity_matrix,
    flatten_params,
    params_cosine_similarity,
    zeros_like_params,
)
from repro.utils.rng import spawn_rng
from repro.utils.sharding import ShardPlan, sharded_mmd_to_many

ROOT_ARTIFACT = Path(__file__).parent.parent / "BENCH_param_plane.json"

# A resnet_mini-flavoured tensor list: many mixed-size arrays, ~40k params.
_SHAPES: list[tuple[int, ...]] = []
for _c_in, _c_out in [(3, 16), (16, 16), (16, 16), (16, 32), (32, 32), (32, 32)]:
    _SHAPES += [(_c_out, _c_in, 3, 3), (_c_out,)]
_SHAPES += [(64, 96), (96,), (96, 48), (48,), (48, 10), (10,)]

N_UPDATES = 48     # cohort size for the aggregation kernel
N_EXPERTS = 16     # pool size for consolidation/matching
SIG_ROWS = 64      # latent-memory signature rows per expert
CLUSTER_ROWS = 256  # covariate-cluster rows scored against the pool
EMBED_DIM = 48
GAMMA = 0.05

SECURE_COHORT = 8  # parties per secure-aggregation session (7 pairs each)

# Sharded-bench sizes: the `small` profile's pool shapes.  Matching scores
# clusters subsampled to the latent-memory capacity (64 rows) against every
# expert memory; a shift window produces several such clusters at once.
N_SHARDS = 4
MATCH_ROWS = 64      # = ShiftExConfig.memory_capacity, the live row count
N_CLUSTERS = 8       # covariate clusters in one shift window
CPU_COUNT = os.cpu_count() or 1


def _make_param_sets(rng: np.random.Generator, n: int) -> list:
    return [[rng.normal(size=s) for s in _SHAPES] for _ in range(n)]


def _best_of(fn, repeats: int = 9) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _legacy_weighted_average(param_sets, weights):
    """The pre-refactor FedAvg: Python accumulation over parameter lists."""
    total = float(sum(weights))
    out = zeros_like_params(param_sets[0])
    for params, weight in zip(param_sets, weights):
        add_scaled(out, params, weight / total)
    return out


def _legacy_cosine_matrix(param_sets):
    """The pre-refactor consolidation scan: flatten + dot per pair."""
    k = len(param_sets)
    out = np.eye(k)
    for i in range(k):
        for j in range(i + 1, k):
            out[i, j] = out[j, i] = params_cosine_similarity(
                param_sets[i], param_sets[j])
    return out


def _legacy_matching_scores(cluster, signatures, gamma):
    """The pre-refactor matching loop: one MMD call per expert memory."""
    return np.array([mmd(cluster, sig, gamma) for sig in signatures])


def _bench_aggregation(rng: np.random.Generator) -> dict:
    param_sets = _make_param_sets(rng, N_UPDATES)
    weights = [float(rng.integers(1, 50)) for _ in range(N_UPDATES)]
    spec = ParamSpec.of(param_sets[0])
    # Updates live in a round bank, exactly as run_fl_round collects them.
    bank = ParamBank.from_param_sets(param_sets)
    rows = list(range(N_UPDATES))

    legacy = flatten_params(_legacy_weighted_average(param_sets, weights))
    vectorized = bank.weighted_combine(weights, rows)
    np.testing.assert_allclose(vectorized, legacy, rtol=1e-10, atol=1e-12)

    baseline_s = _best_of(lambda: _legacy_weighted_average(param_sets, weights))
    vectorized_s = _best_of(lambda: bank.weighted_combine(weights, rows))
    return {
        "kernel": "fedavg over stacked cohort updates",
        "n_updates": N_UPDATES,
        "dim": spec.total_size,
        "baseline_s": baseline_s,
        "vectorized_s": vectorized_s,
        "speedup": baseline_s / vectorized_s,
    }


def _bench_consolidation(rng: np.random.Generator) -> dict:
    param_sets = _make_param_sets(rng, N_EXPERTS)
    bank = ParamBank.from_param_sets(param_sets)

    legacy = _legacy_cosine_matrix(param_sets)
    vectorized = cosine_similarity_matrix(bank.matrix())
    np.testing.assert_allclose(vectorized, legacy, rtol=1e-10, atol=1e-12)

    baseline_s = _best_of(lambda: _legacy_cosine_matrix(param_sets))
    vectorized_s = _best_of(lambda: cosine_similarity_matrix(bank.matrix()))
    return {
        "kernel": "pairwise expert cosine-similarity matrix",
        "n_experts": N_EXPERTS,
        "dim": bank.dim,
        "baseline_s": baseline_s,
        "vectorized_s": vectorized_s,
        "speedup": baseline_s / vectorized_s,
    }


def _bench_matching(rng: np.random.Generator) -> dict:
    cluster = rng.normal(size=(CLUSTER_ROWS, EMBED_DIM))
    signatures = [rng.normal(size=(SIG_ROWS, EMBED_DIM)) + i
                  for i in range(N_EXPERTS)]

    legacy = _legacy_matching_scores(cluster, signatures, GAMMA)
    vectorized = mmd_to_many(cluster, signatures, GAMMA)
    np.testing.assert_allclose(vectorized, legacy, rtol=1e-9, atol=1e-12)

    baseline_s = _best_of(lambda: _legacy_matching_scores(cluster, signatures,
                                                          GAMMA))
    vectorized_s = _best_of(lambda: mmd_to_many(cluster, signatures, GAMMA))
    return {
        "kernel": "cluster-to-expert MMD scoring",
        "n_experts": N_EXPERTS,
        "cluster_rows": CLUSTER_ROWS,
        "signature_rows": SIG_ROWS,
        "embed_dim": EMBED_DIM,
        "baseline_s": baseline_s,
        "vectorized_s": vectorized_s,
        "speedup": baseline_s / vectorized_s,
    }


def _legacy_mask_update(shared_seed, party_id, cohort, update):
    """The pre-rewrite party-side masking: per-tensor draws, per-tensor adds.

    Reimplements the historical ``SecureAggregationSession.mask_update``:
    for every pair, one RNG draw per tensor shape and one in-place add per
    tensor.  The mask *values* are identical to the flat path's (generators
    fill arrays sequentially), so the comparison times pure layout overhead.
    """
    from repro.utils.rng import spawn_rng

    masked = [p.copy() for p in update]
    for other in cohort:
        if other == party_id:
            continue
        low, high = sorted((party_id, other))
        rng = spawn_rng(shared_seed, "pairwise-mask", low, high)
        mask = [rng.normal(size=p.shape) for p in update]
        sign = 1.0 if party_id < other else -1.0
        for m_dst, m_src in zip(masked, mask):
            m_dst += sign * m_src
    return masked


def _legacy_masked_cycle(shared_seed, cohort, updates):
    """The pre-rewrite masked round: per-tensor masks, list-based sum."""
    masked = [_legacy_mask_update(shared_seed, pid, cohort, update)
              for pid, update in zip(cohort, updates)]
    total = zeros_like_params(updates[0])
    for m in masked:
        for t, q in zip(total, m):
            t += q
    return [t / len(cohort) for t in total]


def _bench_secure_masking(rng: np.random.Generator) -> dict:
    """One full mask-and-aggregate cycle over a cohort, both paths.

    The legacy path masks per tensor and cancels masks only in the float
    sum; the bank path seals rows in the exact bit domain and aggregates
    with ``weighted_combine``, so its agreement check is *bit equality*
    with the unmasked mean — the speedup and the exactness come from the
    same rewrite.
    """
    updates = _make_param_sets(rng, SECURE_COHORT)
    cohort = list(range(SECURE_COHORT))
    spec = ParamSpec.of(updates[0])
    bank = ParamBank.from_param_sets(updates)
    rows = list(range(SECURE_COHORT))
    source = bank.matrix(rows).copy()
    ones = np.ones(SECURE_COHORT)
    plain = bank.weighted_combine(ones, rows)

    def sealed_cycle():
        for i, row in enumerate(rows):
            bank.row(row)[...] = source[i]
        session = SecureAggregationSession(cohort, spec, shared_seed=5)
        for pid, row in zip(cohort, rows):
            session.seal_row(pid, bank.row(row))
        return session.combine_rows(bank, ones, list(zip(cohort, rows)))

    legacy = flatten_params(_legacy_masked_cycle(5, cohort, updates))
    np.testing.assert_allclose(legacy, plain, rtol=1e-8, atol=1e-10)
    np.testing.assert_array_equal(sealed_cycle(), plain)

    baseline_s = _best_of(lambda: _legacy_masked_cycle(5, cohort, updates))
    vectorized_s = _best_of(sealed_cycle)
    return {
        "kernel": "masked cohort aggregation: per-tensor lists vs sealed rows",
        "cohort": SECURE_COHORT,
        "n_tensors": len(_SHAPES),
        "dim": spec.total_size,
        "baseline_s": baseline_s,
        "vectorized_s": vectorized_s,
        "speedup": baseline_s / vectorized_s,
        "exact_cancellation": True,
    }


def _bench_aggregation_sharded(rng: np.random.Generator) -> dict:
    """Unsharded matvec vs per-shard partials (serial and process backends).

    The process backend can only win with real cores to fan out to; the
    entry records ``cpu_count`` so a 1-core CI box's numbers read correctly.
    """
    param_sets = _make_param_sets(rng, N_UPDATES)
    weights = [float(rng.integers(1, 50)) for _ in range(N_UPDATES)]
    rows = list(range(N_UPDATES))
    plain = ParamBank.from_param_sets(param_sets)
    serial = ShardedParamBank.from_param_sets(
        param_sets, plan=ShardPlan(shards=N_SHARDS, backend="serial"))
    process = ShardedParamBank.from_param_sets(
        param_sets, plan=ShardPlan(shards=N_SHARDS, backend="process"))

    expected = plain.weighted_combine(weights, rows)
    for bank in (serial, process):
        np.testing.assert_allclose(bank.weighted_combine(weights, rows),
                                   expected, rtol=1e-10, atol=1e-12)

    unsharded_s = _best_of(lambda: plain.weighted_combine(weights, rows))
    serial_s = _best_of(lambda: serial.weighted_combine(weights, rows))
    process_s = _best_of(lambda: process.weighted_combine(weights, rows))
    serial.close()
    process.close()
    return {
        "kernel": "fedavg matvec: unsharded vs per-shard partials",
        "n_updates": N_UPDATES,
        "dim": plain.dim,
        "shards": N_SHARDS,
        "cpu_count": CPU_COUNT,
        "unsharded_s": unsharded_s,
        "serial_shards_s": serial_s,
        "process_shards_s": process_s,
        "process_speedup": unsharded_s / process_s,
    }


def _bench_matching_sharded(rng: np.random.Generator) -> dict:
    """Per-expert score fan-out: one call vs sharded chunks of the pool."""
    cluster = rng.normal(size=(MATCH_ROWS, EMBED_DIM))
    signatures = [rng.normal(size=(SIG_ROWS, EMBED_DIM)) + i
                  for i in range(N_EXPERTS)]
    serial_plan = ShardPlan(shards=N_SHARDS, backend="serial")
    process_plan = ShardPlan(shards=N_SHARDS, backend="process")

    expected = mmd_to_many(cluster, signatures, GAMMA)
    np.testing.assert_allclose(
        sharded_mmd_to_many(cluster, signatures, GAMMA, serial_plan),
        expected, rtol=1e-9, atol=1e-12)

    unsharded_s = _best_of(lambda: mmd_to_many(cluster, signatures, GAMMA))
    serial_s = _best_of(
        lambda: sharded_mmd_to_many(cluster, signatures, GAMMA, serial_plan))
    process_s = _best_of(
        lambda: sharded_mmd_to_many(cluster, signatures, GAMMA, process_plan))
    return {
        "kernel": "cluster-to-expert MMD: one call vs sharded expert chunks",
        "n_experts": N_EXPERTS,
        "cluster_rows": MATCH_ROWS,
        "shards": N_SHARDS,
        "cpu_count": CPU_COUNT,
        "unsharded_s": unsharded_s,
        "serial_shards_s": serial_s,
        "process_shards_s": process_s,
        "process_speedup": unsharded_s / process_s,
    }


def _bench_matching_multicluster(rng: np.random.Generator) -> dict:
    """One Gram evaluation per window vs one per cluster.

    The per-cluster loop recomputes every expert memory's self-kernel mean
    once per cluster; ``mmd_many_to_many`` computes it once per window and
    batches all cross blocks into one stacked evaluation.  This is a pure
    algorithmic win — it holds on any core count.
    """
    clusters = [rng.normal(size=(MATCH_ROWS, EMBED_DIM)) + 0.5 * i
                for i in range(N_CLUSTERS)]
    signatures = [rng.normal(size=(SIG_ROWS, EMBED_DIM)) + i
                  for i in range(N_EXPERTS)]

    def per_cluster():
        return np.stack([mmd_to_many(c, signatures, GAMMA) for c in clusters])

    batched = mmd_many_to_many(clusters, signatures, GAMMA)
    np.testing.assert_allclose(batched, per_cluster(), rtol=1e-9, atol=1e-12)

    per_cluster_s = _best_of(per_cluster)
    batched_s = _best_of(lambda: mmd_many_to_many(clusters, signatures, GAMMA))
    return {
        "kernel": "window matching: per-cluster Gram loop vs one batched Gram",
        "n_clusters": N_CLUSTERS,
        "n_experts": N_EXPERTS,
        "cluster_rows": MATCH_ROWS,
        "signature_rows": SIG_ROWS,
        "embed_dim": EMBED_DIM,
        "baseline_s": per_cluster_s,
        "vectorized_s": batched_s,
        "speedup": per_cluster_s / batched_s,
    }


@pytest.fixture(scope="module")
def bench_results() -> dict:
    rng = spawn_rng(0, "bench-param-plane")
    return {
        "aggregation": _bench_aggregation(rng),
        "consolidation": _bench_consolidation(rng),
        "matching": _bench_matching(rng),
        "secure_masking": _bench_secure_masking(rng),
        "aggregation_sharded": _bench_aggregation_sharded(rng),
        "matching_sharded": _bench_matching_sharded(rng),
        "matching_multicluster": _bench_matching_multicluster(rng),
    }


def test_bench_param_plane(bench_results, results_dir):
    payload = dict(bench_results)
    payload["dtype"] = "float64"
    payload["cpu_count"] = CPU_COUNT
    payload["note"] = ("best-of-9 wall times; baselines reimplement the "
                       "pre-ParamBank list-based code paths; *_sharded "
                       "entries time the ShardPlan fan-out against the "
                       "unsharded kernels")
    text = json.dumps(payload, indent=2) + "\n"
    ROOT_ARTIFACT.write_text(text)

    for name, entry in bench_results.items():
        if "baseline_s" not in entry:
            continue
        assert entry["baseline_s"] > 0 and entry["vectorized_s"] > 0
        # Correctness is asserted inside each kernel bench; here we only
        # require the vectorized path to not regress behind the legacy one
        # (generous bound — CI machines are noisy; the JSON records the
        # actual multiple, >=3x on unloaded hardware).
        assert entry["speedup"] > 1.0, (
            f"{name}: vectorized path slower than legacy "
            f"({entry['speedup']:.2f}x)"
        )


def test_bench_multicluster_batching_wins(bench_results):
    """One Gram per window must clearly beat one Gram per cluster.

    The analytic expectation at these sizes is ~1.7x (the per-cluster loop
    recomputes every memory self-kernel N_CLUSTERS times); 1.2x leaves CI
    noise headroom while still catching a regression to per-cluster work.
    """
    entry = bench_results["matching_multicluster"]
    assert entry["speedup"] > 1.2, (
        f"batched window matching not faster ({entry['speedup']:.2f}x)")


def test_bench_sharded_timings_recorded(bench_results):
    """The sharded entries land real, positive timings in the JSON.

    No wall-clock *win* is asserted for the process backend: at these
    kernel sizes (sub-millisecond matvecs) the per-task IPC round trip
    dominates on any core count — which is exactly why ``backend="auto"``
    only fans out above ``PROCESS_MIN_BYTES`` of per-op work.  The JSON
    records the honest multiple either way so the trajectory (and any
    future crossover on bigger pools) stays visible.
    """
    for name in ("aggregation_sharded", "matching_sharded"):
        entry = bench_results[name]
        for key in ("unsharded_s", "serial_shards_s", "process_shards_s"):
            assert entry[key] > 0, f"{name}.{key} not measured"
        assert entry["cpu_count"] == CPU_COUNT


def test_zero_copy_aggregation_path(rng_bench=None):
    """The update bank aggregates without copying any update vector."""
    rng = spawn_rng(1, "bench-param-plane-zero-copy")
    param_sets = _make_param_sets(rng, 4)
    bank = ParamBank.from_param_sets(param_sets)
    matrix = bank.matrix(list(range(4)))
    assert np.shares_memory(matrix, bank.row(0))
    # flatten_params of a bank row's views is the row itself.
    row_views = bank.row_params(2)
    assert np.shares_memory(flatten_params(row_views), bank.row(2))
