"""Microbenchmarks for the contiguous parameter plane (``BENCH_param_plane``).

Times the three hot kernels the :class:`~repro.utils.params.ParamBank`
refactor vectorized, each against a faithful reimplementation of the
pre-refactor list-based code path:

* **aggregation** — FedAvg over a cohort of updates: per-parameter Python
  accumulation (``zeros_like`` + ``add_scaled``) vs one weighted ``w @ M``
  matvec over the update bank (what ``run_fl_round`` executes today).
* **consolidation** — the pairwise expert cosine-similarity matrix:
  per-pair flatten + dot vs one normalized matmul over the stacked pool.
* **matching** — scoring one covariate cluster against every expert memory:
  per-expert MMD loop vs the batched estimator sharing the cluster-side
  kernel blocks.
* **secure_masking** — one secure-aggregation cycle over a cohort (mask
  every update, aggregate the masked sum): the legacy per-tensor list path
  (per-tensor Gaussian masks and a Python list-sum, cancellation only to
  float rounding) vs the bank-resident path (bit-domain seals on bank rows
  and the ``weighted_combine`` kernel, cancellation exact).

The ``*_precision`` entries time the *same vectorized kernel* at float32 vs
float64 — the mixed-precision plane's headline numbers: parameter-plane
kernels (aggregation matvec, consolidation cosine, MMD matching, the
uint32-seal secure cycle) are memory-bandwidth-bound and run ~1.5–5x faster
at float32 on one core.

Each kernel is also checked for numerical agreement with its baseline, so
the speedup never comes from computing something different.  Results land in
``BENCH_param_plane.json`` at the repo root (the committed perf anchor,
uploaded as a CI artifact) to track the trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.detection.mmd import mmd, mmd_many_to_many, mmd_to_many
from repro.federation.accounting import CommunicationLedger
from repro.privacy.secure_aggregation import SecureAggregationSession
from repro.utils.params import (
    ParamBank,
    ParamSpec,
    ShardedParamBank,
    add_scaled,
    cosine_similarity_matrix,
    flatten_params,
    params_cosine_similarity,
    zeros_like_params,
)
from repro.utils.rng import spawn_rng
from repro.utils.sharding import ShardPlan, sharded_mmd_to_many

ROOT_ARTIFACT = Path(__file__).parent.parent / "BENCH_param_plane.json"

# A resnet_mini-flavoured tensor list: many mixed-size arrays, ~40k params.
_SHAPES: list[tuple[int, ...]] = []
for _c_in, _c_out in [(3, 16), (16, 16), (16, 16), (16, 32), (32, 32), (32, 32)]:
    _SHAPES += [(_c_out, _c_in, 3, 3), (_c_out,)]
_SHAPES += [(64, 96), (96,), (96, 48), (48,), (48, 10), (10,)]

N_UPDATES = 48     # cohort size for the aggregation kernel
N_EXPERTS = 16     # pool size for consolidation/matching
SIG_ROWS = 64      # latent-memory signature rows per expert
CLUSTER_ROWS = 256  # covariate-cluster rows scored against the pool
EMBED_DIM = 48
GAMMA = 0.05

SECURE_COHORT = 8  # parties per secure-aggregation session (7 pairs each)

# Sharded-bench sizes: the `small` profile's pool shapes.  Matching scores
# clusters subsampled to the latent-memory capacity (64 rows) against every
# expert memory; a shift window produces several such clusters at once.
N_SHARDS = 4
MATCH_ROWS = 64      # = ShiftExConfig.memory_capacity, the live row count
N_CLUSTERS = 8       # covariate clusters in one shift window
CPU_COUNT = os.cpu_count() or 1


def _make_param_sets(rng: np.random.Generator, n: int) -> list:
    return [[rng.normal(size=s) for s in _SHAPES] for _ in range(n)]


def _best_of(fn, repeats: int = 9) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _legacy_weighted_average(param_sets, weights):
    """The pre-refactor FedAvg: Python accumulation over parameter lists."""
    total = float(sum(weights))
    out = zeros_like_params(param_sets[0])
    for params, weight in zip(param_sets, weights):
        add_scaled(out, params, weight / total)
    return out


def _legacy_cosine_matrix(param_sets):
    """The pre-refactor consolidation scan: flatten + dot per pair."""
    k = len(param_sets)
    out = np.eye(k)
    for i in range(k):
        for j in range(i + 1, k):
            out[i, j] = out[j, i] = params_cosine_similarity(
                param_sets[i], param_sets[j])
    return out


def _legacy_matching_scores(cluster, signatures, gamma):
    """The pre-refactor matching loop: one MMD call per expert memory."""
    return np.array([mmd(cluster, sig, gamma) for sig in signatures])


def _bench_aggregation(rng: np.random.Generator) -> dict:
    param_sets = _make_param_sets(rng, N_UPDATES)
    weights = [float(rng.integers(1, 50)) for _ in range(N_UPDATES)]
    spec = ParamSpec.of(param_sets[0])
    # Updates live in a round bank, exactly as run_fl_round collects them.
    bank = ParamBank.from_param_sets(param_sets)
    rows = list(range(N_UPDATES))

    legacy = flatten_params(_legacy_weighted_average(param_sets, weights))
    vectorized = bank.weighted_combine(weights, rows)
    np.testing.assert_allclose(vectorized, legacy, rtol=1e-10, atol=1e-12)

    baseline_s = _best_of(lambda: _legacy_weighted_average(param_sets, weights))
    vectorized_s = _best_of(lambda: bank.weighted_combine(weights, rows))
    return {
        "kernel": "fedavg over stacked cohort updates",
        "n_updates": N_UPDATES,
        "dim": spec.total_size,
        "baseline_s": baseline_s,
        "vectorized_s": vectorized_s,
        "speedup": baseline_s / vectorized_s,
    }


def _bench_consolidation(rng: np.random.Generator) -> dict:
    param_sets = _make_param_sets(rng, N_EXPERTS)
    bank = ParamBank.from_param_sets(param_sets)

    legacy = _legacy_cosine_matrix(param_sets)
    vectorized = cosine_similarity_matrix(bank.matrix())
    np.testing.assert_allclose(vectorized, legacy, rtol=1e-10, atol=1e-12)

    baseline_s = _best_of(lambda: _legacy_cosine_matrix(param_sets))
    vectorized_s = _best_of(lambda: cosine_similarity_matrix(bank.matrix()))
    return {
        "kernel": "pairwise expert cosine-similarity matrix",
        "n_experts": N_EXPERTS,
        "dim": bank.dim,
        "baseline_s": baseline_s,
        "vectorized_s": vectorized_s,
        "speedup": baseline_s / vectorized_s,
    }


def _bench_matching(rng: np.random.Generator) -> dict:
    cluster = rng.normal(size=(CLUSTER_ROWS, EMBED_DIM))
    signatures = [rng.normal(size=(SIG_ROWS, EMBED_DIM)) + i
                  for i in range(N_EXPERTS)]

    legacy = _legacy_matching_scores(cluster, signatures, GAMMA)
    vectorized = mmd_to_many(cluster, signatures, GAMMA)
    np.testing.assert_allclose(vectorized, legacy, rtol=1e-9, atol=1e-12)

    baseline_s = _best_of(lambda: _legacy_matching_scores(cluster, signatures,
                                                          GAMMA))
    vectorized_s = _best_of(lambda: mmd_to_many(cluster, signatures, GAMMA))
    return {
        "kernel": "cluster-to-expert MMD scoring",
        "n_experts": N_EXPERTS,
        "cluster_rows": CLUSTER_ROWS,
        "signature_rows": SIG_ROWS,
        "embed_dim": EMBED_DIM,
        "baseline_s": baseline_s,
        "vectorized_s": vectorized_s,
        "speedup": baseline_s / vectorized_s,
    }


def _legacy_mask_update(shared_seed, party_id, cohort, update):
    """The pre-rewrite party-side masking: per-tensor draws, per-tensor adds.

    Reimplements the historical ``SecureAggregationSession.mask_update``:
    for every pair, one RNG draw per tensor shape and one in-place add per
    tensor.  The mask *values* are identical to the flat path's (generators
    fill arrays sequentially), so the comparison times pure layout overhead.
    """
    from repro.utils.rng import spawn_rng

    masked = [p.copy() for p in update]
    for other in cohort:
        if other == party_id:
            continue
        low, high = sorted((party_id, other))
        rng = spawn_rng(shared_seed, "pairwise-mask", low, high)
        mask = [rng.normal(size=p.shape) for p in update]
        sign = 1.0 if party_id < other else -1.0
        for m_dst, m_src in zip(masked, mask):
            m_dst += sign * m_src
    return masked


def _legacy_masked_cycle(shared_seed, cohort, updates):
    """The pre-rewrite masked round: per-tensor masks, list-based sum."""
    masked = [_legacy_mask_update(shared_seed, pid, cohort, update)
              for pid, update in zip(cohort, updates)]
    total = zeros_like_params(updates[0])
    for m in masked:
        for t, q in zip(total, m):
            t += q
    return [t / len(cohort) for t in total]


def _bench_secure_masking(rng: np.random.Generator) -> dict:
    """One full mask-and-aggregate cycle over a cohort, both paths.

    The legacy path masks per tensor and cancels masks only in the float
    sum; the bank path seals rows in the exact bit domain and aggregates
    with ``weighted_combine``, so its agreement check is *bit equality*
    with the unmasked mean — the speedup and the exactness come from the
    same rewrite.
    """
    updates = _make_param_sets(rng, SECURE_COHORT)
    cohort = list(range(SECURE_COHORT))
    spec = ParamSpec.of(updates[0])
    bank = ParamBank.from_param_sets(updates)
    rows = list(range(SECURE_COHORT))
    source = bank.matrix(rows).copy()
    ones = np.ones(SECURE_COHORT)
    plain = bank.weighted_combine(ones, rows)

    def sealed_cycle():
        for i, row in enumerate(rows):
            bank.row(row)[...] = source[i]
        session = SecureAggregationSession(cohort, spec, shared_seed=5)
        for pid, row in zip(cohort, rows):
            session.seal_row(pid, bank.row(row))
        return session.combine_rows(bank, ones, list(zip(cohort, rows)))

    threshold = SECURE_COHORT // 2 + 1

    def threshold_cycle(ledger=None):
        for i, row in enumerate(rows):
            bank.row(row)[...] = source[i]
        session = SecureAggregationSession(cohort, spec, shared_seed=5,
                                           threshold=threshold, ledger=ledger)
        for pid, row in zip(cohort, rows):
            session.seal_row(pid, bank.row(row))
        return session.combine_rows(bank, ones, list(zip(cohort, rows)))

    legacy = flatten_params(_legacy_masked_cycle(5, cohort, updates))
    np.testing.assert_allclose(legacy, plain, rtol=1e-8, atol=1e-10)
    np.testing.assert_array_equal(sealed_cycle(), plain)
    # Real Shamir reconstruction recovers the same masks the shortcut
    # derives: the full-survival threshold cycle is bit-identical too.
    ledger = CommunicationLedger()
    np.testing.assert_array_equal(threshold_cycle(ledger), plain)
    # Distribution meters sent == received; recovery is received-only.
    share_setup_bytes = ledger.uplink_bytes
    share_recovery_bytes = ledger.downlink_bytes - ledger.uplink_bytes

    baseline_s = _best_of(lambda: _legacy_masked_cycle(5, cohort, updates))
    vectorized_s = _best_of(sealed_cycle)
    threshold_s = _best_of(threshold_cycle)
    return {
        "kernel": "masked cohort aggregation: per-tensor lists vs sealed rows",
        "cohort": SECURE_COHORT,
        "n_tensors": len(_SHAPES),
        "dim": spec.total_size,
        "baseline_s": baseline_s,
        "vectorized_s": vectorized_s,
        "speedup": baseline_s / vectorized_s,
        "exact_cancellation": True,
        # Shamir t-of-n dropout recovery: share traffic for one cohort's
        # session (distribution round) plus one full-survival recovery.
        "threshold": threshold,
        "threshold_s": threshold_s,
        "share_setup_bytes": share_setup_bytes,
        "share_recovery_bytes": share_recovery_bytes,
    }


def _process_speedup(unsharded_s: float, process_s: float) -> dict:
    """The process-backend multiple — or an honest skip on one core.

    On ``cpu_count == 1`` boxes the process fan-out cannot win by
    construction (there is nothing to fan out *to*); publishing the
    measured 0.1–0.4x there reads as a regression, so the JSON records
    ``null`` with the reason while the raw timings stay above.
    """
    if CPU_COUNT > 1:
        return {"process_speedup": unsharded_s / process_s}
    return {
        "process_speedup": None,
        "skipped_reason": ("cpu_count == 1: no cores to fan out to; raw "
                           "timings recorded, multiple not meaningful"),
    }


def _cast_param_sets(param_sets, dtype):
    return [[p.astype(dtype) for p in ps] for ps in param_sets]


def _precision_entry(kernel: str, f64_s: float, f32_s: float,
                     **extra) -> dict:
    return {
        "kernel": kernel,
        "float64_s": f64_s,
        "float32_s": f32_s,
        "speedup": f64_s / f32_s,
        **extra,
    }


def _bench_aggregation_precision(rng: np.random.Generator) -> dict:
    """The FedAvg matvec at float32 vs float64 — same kernel, half the bytes."""
    param_sets = _make_param_sets(rng, N_UPDATES)
    weights = [float(rng.integers(1, 50)) for _ in range(N_UPDATES)]
    rows = list(range(N_UPDATES))
    bank64 = ParamBank.from_param_sets(param_sets)
    bank32 = ParamBank.from_param_sets(
        _cast_param_sets(param_sets, np.float32))

    out64 = bank64.weighted_combine(weights, rows)
    out32 = bank32.weighted_combine(weights, rows)
    assert out32.dtype == np.float32
    np.testing.assert_allclose(out32, out64, rtol=2e-4, atol=1e-5)

    f64_s = _best_of(lambda: bank64.weighted_combine(weights, rows))
    f32_s = _best_of(lambda: bank32.weighted_combine(weights, rows))
    return _precision_entry("fedavg matvec: float64 vs float32 bank",
                            f64_s, f32_s,
                            n_updates=N_UPDATES, dim=bank64.dim)


def _bench_consolidation_precision(rng: np.random.Generator) -> dict:
    """The full cosine kernel (norms + normalize + Gram) at both dtypes."""
    param_sets = _make_param_sets(rng, N_EXPERTS)
    bank64 = ParamBank.from_param_sets(param_sets)
    bank32 = ParamBank.from_param_sets(
        _cast_param_sets(param_sets, np.float32))

    sims64 = cosine_similarity_matrix(bank64.matrix())
    sims32 = cosine_similarity_matrix(bank32.matrix())
    np.testing.assert_allclose(sims32, sims64, rtol=1e-4, atol=1e-5)

    f64_s = _best_of(lambda: cosine_similarity_matrix(bank64.matrix()))
    f32_s = _best_of(lambda: cosine_similarity_matrix(bank32.matrix()))
    return _precision_entry(
        "pairwise expert cosine matrix: float64 vs float32",
        f64_s, f32_s, n_experts=N_EXPERTS, dim=bank64.dim)


def _bench_matching_precision(rng: np.random.Generator) -> dict:
    """Cluster-to-expert MMD scoring at both dtypes."""
    cluster64 = rng.normal(size=(CLUSTER_ROWS, EMBED_DIM))
    signatures64 = [rng.normal(size=(SIG_ROWS, EMBED_DIM)) + i
                    for i in range(N_EXPERTS)]
    cluster32 = cluster64.astype(np.float32)
    signatures32 = [s.astype(np.float32) for s in signatures64]

    scores64 = mmd_to_many(cluster64, signatures64, GAMMA)
    scores32 = mmd_to_many(cluster32, signatures32, GAMMA)
    np.testing.assert_allclose(scores32, scores64, rtol=1e-3, atol=1e-4)

    f64_s = _best_of(lambda: mmd_to_many(cluster64, signatures64, GAMMA))
    f32_s = _best_of(lambda: mmd_to_many(cluster32, signatures32, GAMMA))
    return _precision_entry(
        "cluster-to-expert MMD scoring: float64 vs float32",
        f64_s, f32_s, n_experts=N_EXPERTS, cluster_rows=CLUSTER_ROWS,
        signature_rows=SIG_ROWS, embed_dim=EMBED_DIM)


def _bench_secure_masking_precision(rng: np.random.Generator) -> dict:
    """The sealed mask-and-aggregate cycle at both dtypes.

    float32 rows seal in a uint32 bit domain (half the seal words of the
    float64/uint64 path) and the combine matvec moves half the bytes; the
    cancellation stays exact in both domains.
    """
    updates64 = _make_param_sets(rng, SECURE_COHORT)
    cohort = list(range(SECURE_COHORT))
    planes = {}
    for dtype in (np.float64, np.float32):
        updates = _cast_param_sets(updates64, dtype)
        spec = ParamSpec.of(updates[0])
        bank = ParamBank.from_param_sets(updates)
        rows = list(range(SECURE_COHORT))
        source = bank.matrix(rows).copy()
        ones = np.ones(SECURE_COHORT)
        plain = bank.weighted_combine(ones, rows)

        def sealed_cycle(bank=bank, spec=spec, rows=rows, source=source,
                         ones=ones, dtype=dtype):
            for i, row in enumerate(rows):
                bank.row(row)[...] = source[i]
            session = SecureAggregationSession(cohort, spec, shared_seed=5,
                                               dtype=dtype)
            for pid, row in zip(cohort, rows):
                session.seal_row(pid, bank.row(row))
            return session.combine_rows(bank, ones, list(zip(cohort, rows)))

        np.testing.assert_array_equal(sealed_cycle(), plain)
        planes[np.dtype(dtype).name] = _best_of(sealed_cycle)
    return _precision_entry(
        "sealed cohort aggregation: uint64 vs uint32 seal domain",
        planes["float64"], planes["float32"],
        cohort=SECURE_COHORT, n_tensors=len(_SHAPES),
        exact_cancellation=True)


def _bench_aggregation_sharded(rng: np.random.Generator) -> dict:
    """Unsharded matvec vs per-shard partials (serial and process backends).

    The process backend can only win with real cores to fan out to; the
    entry records ``cpu_count`` so a 1-core CI box's numbers read correctly.
    """
    param_sets = _make_param_sets(rng, N_UPDATES)
    weights = [float(rng.integers(1, 50)) for _ in range(N_UPDATES)]
    rows = list(range(N_UPDATES))
    plain = ParamBank.from_param_sets(param_sets)
    serial = ShardedParamBank.from_param_sets(
        param_sets, plan=ShardPlan(shards=N_SHARDS, backend="serial"))
    process = ShardedParamBank.from_param_sets(
        param_sets, plan=ShardPlan(shards=N_SHARDS, backend="process"))

    expected = plain.weighted_combine(weights, rows)
    for bank in (serial, process):
        np.testing.assert_allclose(bank.weighted_combine(weights, rows),
                                   expected, rtol=1e-10, atol=1e-12)

    unsharded_s = _best_of(lambda: plain.weighted_combine(weights, rows))
    serial_s = _best_of(lambda: serial.weighted_combine(weights, rows))
    process_s = _best_of(lambda: process.weighted_combine(weights, rows))
    serial.close()
    process.close()
    entry = {
        "kernel": "fedavg matvec: unsharded vs per-shard partials",
        "n_updates": N_UPDATES,
        "dim": plain.dim,
        "shards": N_SHARDS,
        "cpu_count": CPU_COUNT,
        "unsharded_s": unsharded_s,
        "serial_shards_s": serial_s,
        "process_shards_s": process_s,
    }
    entry.update(_process_speedup(unsharded_s, process_s))
    return entry


def _bench_matching_sharded(rng: np.random.Generator) -> dict:
    """Per-expert score fan-out: one call vs sharded chunks of the pool."""
    cluster = rng.normal(size=(MATCH_ROWS, EMBED_DIM))
    signatures = [rng.normal(size=(SIG_ROWS, EMBED_DIM)) + i
                  for i in range(N_EXPERTS)]
    serial_plan = ShardPlan(shards=N_SHARDS, backend="serial")
    process_plan = ShardPlan(shards=N_SHARDS, backend="process")

    expected = mmd_to_many(cluster, signatures, GAMMA)
    np.testing.assert_allclose(
        sharded_mmd_to_many(cluster, signatures, GAMMA, serial_plan),
        expected, rtol=1e-9, atol=1e-12)

    unsharded_s = _best_of(lambda: mmd_to_many(cluster, signatures, GAMMA))
    serial_s = _best_of(
        lambda: sharded_mmd_to_many(cluster, signatures, GAMMA, serial_plan))
    process_s = _best_of(
        lambda: sharded_mmd_to_many(cluster, signatures, GAMMA, process_plan))
    entry = {
        "kernel": "cluster-to-expert MMD: one call vs sharded expert chunks",
        "n_experts": N_EXPERTS,
        "cluster_rows": MATCH_ROWS,
        "shards": N_SHARDS,
        "cpu_count": CPU_COUNT,
        "unsharded_s": unsharded_s,
        "serial_shards_s": serial_s,
        "process_shards_s": process_s,
    }
    entry.update(_process_speedup(unsharded_s, process_s))
    return entry


def _bench_matching_multicluster(rng: np.random.Generator) -> dict:
    """One Gram evaluation per window vs one per cluster.

    The per-cluster loop recomputes every expert memory's self-kernel mean
    once per cluster; ``mmd_many_to_many`` computes it once per window and
    batches all cross blocks into one stacked evaluation.  This is a pure
    algorithmic win — it holds on any core count.
    """
    clusters = [rng.normal(size=(MATCH_ROWS, EMBED_DIM)) + 0.5 * i
                for i in range(N_CLUSTERS)]
    signatures = [rng.normal(size=(SIG_ROWS, EMBED_DIM)) + i
                  for i in range(N_EXPERTS)]

    def per_cluster():
        return np.stack([mmd_to_many(c, signatures, GAMMA) for c in clusters])

    batched = mmd_many_to_many(clusters, signatures, GAMMA)
    np.testing.assert_allclose(batched, per_cluster(), rtol=1e-9, atol=1e-12)

    per_cluster_s = _best_of(per_cluster)
    batched_s = _best_of(lambda: mmd_many_to_many(clusters, signatures, GAMMA))
    return {
        "kernel": "window matching: per-cluster Gram loop vs one batched Gram",
        "n_clusters": N_CLUSTERS,
        "n_experts": N_EXPERTS,
        "cluster_rows": MATCH_ROWS,
        "signature_rows": SIG_ROWS,
        "embed_dim": EMBED_DIM,
        "baseline_s": per_cluster_s,
        "vectorized_s": batched_s,
        "speedup": per_cluster_s / batched_s,
    }


@pytest.fixture(scope="module")
def bench_results() -> dict:
    rng = spawn_rng(0, "bench-param-plane")
    return {
        "aggregation": _bench_aggregation(rng),
        "consolidation": _bench_consolidation(rng),
        "matching": _bench_matching(rng),
        "secure_masking": _bench_secure_masking(rng),
        "aggregation_sharded": _bench_aggregation_sharded(rng),
        "matching_sharded": _bench_matching_sharded(rng),
        "matching_multicluster": _bench_matching_multicluster(rng),
        "aggregation_precision": _bench_aggregation_precision(rng),
        "consolidation_precision": _bench_consolidation_precision(rng),
        "matching_precision": _bench_matching_precision(rng),
        "secure_masking_precision": _bench_secure_masking_precision(rng),
    }


def test_bench_param_plane(bench_results, results_dir):
    payload = dict(bench_results)
    payload["dtype"] = "float64"
    payload["cpu_count"] = CPU_COUNT
    payload["note"] = ("best-of-9 wall times; baselines reimplement the "
                       "pre-ParamBank list-based code paths; *_sharded "
                       "entries time the ShardPlan fan-out against the "
                       "unsharded kernels; *_precision entries time the "
                       "same vectorized kernel at float32 vs float64")
    text = json.dumps(payload, indent=2) + "\n"
    ROOT_ARTIFACT.write_text(text)

    for name, entry in bench_results.items():
        if "baseline_s" not in entry:
            continue
        assert entry["baseline_s"] > 0 and entry["vectorized_s"] > 0
        # Correctness is asserted inside each kernel bench; here we only
        # require the vectorized path to not regress behind the legacy one
        # (generous bound — CI machines are noisy; the JSON records the
        # actual multiple, >=3x on unloaded hardware).
        assert entry["speedup"] > 1.0, (
            f"{name}: vectorized path slower than legacy "
            f"({entry['speedup']:.2f}x)"
        )


def test_bench_multicluster_batching_wins(bench_results):
    """One Gram per window must clearly beat one Gram per cluster.

    The analytic expectation at these sizes is ~1.7x (the per-cluster loop
    recomputes every memory self-kernel N_CLUSTERS times); 1.2x leaves CI
    noise headroom while still catching a regression to per-cluster work.
    """
    entry = bench_results["matching_multicluster"]
    assert entry["speedup"] > 1.2, (
        f"batched window matching not faster ({entry['speedup']:.2f}x)")


def test_bench_precision_speedups(bench_results):
    """float32 must clearly beat float64 on the bandwidth-bound kernels.

    The headline gate: the aggregation matvec and the consolidation cosine
    kernel (norms + normalize + Gram over the ~40k-dim pool) are memory-
    bandwidth-bound, so halving the bytes must show up as >=1.5x even on
    one core (measured ~1.8x and ~1.5-1.6x here).  Matching and secure
    masking are recorded and must at least not regress; their
    compute/bandwidth mix is core-count-dependent, so their wins only
    widen on the >=2-core runners the CI ``bench-precision`` step uses.
    """
    for name in ("aggregation_precision", "consolidation_precision"):
        entry = bench_results[name]
        assert entry["speedup"] >= 1.5, (
            f"{name}: float32 not >=1.5x over float64 "
            f"({entry['speedup']:.2f}x)")
    for name in ("matching_precision", "secure_masking_precision"):
        entry = bench_results[name]
        # Measured ~1.05x/~1.2x on this box: real but small, so gate only
        # against a regression (with timing-jitter headroom), not a win.
        assert entry["speedup"] > 0.9, (
            f"{name}: float32 regressed vs float64 ({entry['speedup']:.2f}x)")


def test_bench_sharded_timings_recorded(bench_results):
    """The sharded entries land real, positive timings in the JSON.

    No wall-clock *win* is asserted for the process backend: at these
    kernel sizes (sub-millisecond matvecs) the per-task IPC round trip
    dominates on any core count — which is exactly why ``backend="auto"``
    only fans out above ``PROCESS_MIN_BYTES`` of per-op work.  The JSON
    records the honest multiple either way so the trajectory (and any
    future crossover on bigger pools) stays visible.
    """
    for name in ("aggregation_sharded", "matching_sharded"):
        entry = bench_results[name]
        for key in ("unsharded_s", "serial_shards_s", "process_shards_s"):
            assert entry[key] > 0, f"{name}.{key} not measured"
        assert entry["cpu_count"] == CPU_COUNT
        if CPU_COUNT == 1:
            # One core: the multiple is meaningless, so the JSON must say
            # why instead of publishing a 0.1-0.4x "regression".
            assert entry["process_speedup"] is None
            assert "skipped_reason" in entry
        else:
            assert entry["process_speedup"] > 0


def test_zero_copy_aggregation_path(rng_bench=None):
    """The update bank aggregates without copying any update vector."""
    rng = spawn_rng(1, "bench-param-plane-zero-copy")
    param_sets = _make_param_sets(rng, 4)
    bank = ParamBank.from_param_sets(param_sets)
    matrix = bank.matrix(list(range(4)))
    assert np.shares_memory(matrix, bank.row(0))
    # flatten_params of a bank row's views is the row itself.
    row_views = bank.row_params(2)
    assert np.shares_memory(flatten_params(row_views), bank.row(2))
