"""Table 2 (bottom) + Figures 4b / 6b / 8b: the Fashion-MNIST experiment.

Repeating transform shifts (rotation recurs three times) with label shift on
sliding windows — the paper's cyclical "jump, re-consolidate, redistribute"
pattern (Fig. 8b), which exercises both fresh specialization and expert
reuse.
"""

from benchmarks.conftest import (
    assert_paper_shape,
    full_dataset_artifact,
    run_dataset_comparison,
    write_artifact,
)
from repro.harness.comparison import expert_distribution_table


def test_bench_table2_fashionmnist(benchmark):
    result = benchmark.pedantic(
        lambda: run_dataset_comparison("fashion_mnist_sim"), rounds=1, iterations=1)

    artifact = full_dataset_artifact(
        result,
        table_label="Table 2 (bottom): Fashion-MNIST — Drop / Time / Max per window",
        convergence_label="Figure 4b: Fashion-MNIST convergence",
        max_label="Figure 6b: Fashion-MNIST max accuracy per window",
        expert_label="Figure 8b: Fashion-MNIST expert distribution",
    )
    write_artifact("table2_fashionmnist", artifact)
    print("\n" + artifact)

    assert_paper_shape(result, min_windows_shiftex_leads=2, margin=1.5)

    # Reuse shape: the recurring rotation regime maps back onto an existing
    # expert at least once across the run.
    shiftex_run = result.runs["shiftex"][0]
    strategy_logs = shiftex_run.state_log
    assert strategy_logs[-1]["num_models"] >= 1
    history = expert_distribution_table(result)
    experts_ever = {e for dist in history for e, n in dist.items() if n > 0}
    created = shiftex_run.state_log[-1]["experts_created"]
    assert created <= len(history), "reuse should bound expert creation"
    assert len(experts_ever) >= 2
