"""Merge every committed ``BENCH_*.json`` into one trajectory table.

    python benchmarks/trajectory.py [--root DIR]

Each benchmark PR leaves a ``BENCH_<name>.json`` artifact at the repo
root.  Their entry shapes differ — the param-plane file holds flat
kernel entries with a ``speedup`` (or ``process_speedup``, possibly
``null`` with a ``skipped_reason`` on 1-core boxes), the party-pool file
holds a ``throughput_1m``/``memory_flatness`` pair — so this module
normalizes all of them into ``(artifact, entry, metric, value, note)``
rows and prints a single aligned table: the performance trajectory of
the repo at a glance.  CI prints it on every run; adding a new
``BENCH_*.json`` shape only needs a new metric key below if it invents
one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Preferred headline metric per entry, first match wins.
_METRIC_KEYS = ("speedup", "process_speedup", "reports_per_s", "peak_ratio")
# Context keys worth carrying into the note column when present.
_NOTE_KEYS = ("kernel", "scenario", "shards", "cohort", "population",
              "cpu_count", "ratio_limit", "exact_cancellation")


def _rows_for_entry(artifact: str, name: str, entry: dict) -> list[tuple]:
    for key in _METRIC_KEYS:
        if key not in entry:
            continue
        value = entry[key]
        if value is None:
            note = entry.get("skipped_reason", "skipped")
            return [(artifact, name, key, None, note)]
        note = "; ".join(f"{k}={entry[k]}" for k in _NOTE_KEYS if k in entry)
        return [(artifact, name, key, float(value), note)]
    return []


def build_trajectory(root: Path) -> list[tuple]:
    """``(artifact, entry, metric, value, note)`` rows, file then entry order.

    ``value`` is ``None`` for recorded-but-skipped measurements (the note
    carries the reason) — skipping must stay visible, not vanish.
    """
    rows = []
    for path in sorted(root.glob("BENCH_*.json")):
        artifact = path.stem.removeprefix("BENCH_")
        data = json.loads(path.read_text())
        for name, entry in data.items():
            if isinstance(entry, dict):
                rows.extend(_rows_for_entry(artifact, name, entry))
    return rows


def format_table(rows: list[tuple]) -> str:
    if not rows:
        return "no BENCH_*.json artifacts found"
    headers = ("artifact", "entry", "metric", "value", "note")
    cells = [headers]
    for artifact, name, metric, value, note in rows:
        shown = "skipped" if value is None else f"{value:.3g}"
        cells.append((artifact, name, metric, shown, note))
    widths = [max(len(row[i]) for row in cells) for i in range(4)]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(row[j].ljust(widths[j]) for j in range(4))
                     + ("  " + row[4] if row[4] else "").rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/trajectory.py",
        description="print the merged BENCH_*.json trajectory table")
    parser.add_argument("--root", default=Path(__file__).parent.parent,
                        type=Path, help="directory holding BENCH_*.json "
                        "(default: the repo root)")
    args = parser.parse_args(argv)
    try:
        print(format_table(build_trajectory(args.root)))
    except BrokenPipeError:  # e.g. `... | head` closed the pipe early
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
