"""Table 1 (bottom) + Figures 3c / 5c / 7c: the CIFAR-10-C experiment.

Weather corruption (fog) recurring across sliding windows.  The paper's
qualitative findings at this scale: ShiftEx reaches the highest post-shift
max accuracy, and — because the regime *recurs* — its expert pool stays
compact at two experts (Fig. 7c), with parties gradually consolidating onto
the weather expert.
"""

from benchmarks.conftest import (
    assert_paper_shape,
    full_dataset_artifact,
    run_dataset_comparison,
    write_artifact,
)
from repro.harness.comparison import expert_distribution_table


def test_bench_table1_cifar10c(benchmark):
    result = benchmark.pedantic(
        lambda: run_dataset_comparison("cifar10_c_sim"), rounds=1, iterations=1)

    artifact = full_dataset_artifact(
        result,
        table_label="Table 1 (bottom): CIFAR-10-C — Drop / Time / Max per window",
        convergence_label="Figure 3c: CIFAR-10-C convergence",
        max_label="Figure 5c: CIFAR-10-C max accuracy per window",
        expert_label="Figure 7c: CIFAR-10-C expert distribution",
    )
    write_artifact("table1_cifar10c", artifact)
    print("\n" + artifact)

    assert_paper_shape(result, min_windows_shiftex_leads=2, margin=1.0)

    # Fig. 7c shape: a compact two-expert configuration with parties
    # migrating toward the weather expert over windows.
    history = expert_distribution_table(result)
    live_final = {e for e, n in history[-1].items() if n > 0}
    assert len(live_final) <= 3, "recurring regime must not proliferate experts"
    if len(history) >= 3 and len(live_final) >= 2:
        weather_expert = max(history[-1], key=history[-1].get)
        share_mid = history[2].get(weather_expert, 0)
        share_end = history[-1].get(weather_expert, 0)
        assert share_end >= share_mid, "parties consolidate onto the weather expert"
