"""Table 2 (top) + Figures 3b / 5b / 7b: the Tiny-ImageNet-C experiment.

A fresh corruption family arrives every tumbling window (contrast, blur,
fog, pixelate, frost).  The paper's shape: baselines plateau while ShiftEx
keeps absorbing new regimes; the expert pool grows across windows (Fig. 7b).
"""

from benchmarks.conftest import (
    assert_paper_shape,
    full_dataset_artifact,
    run_dataset_comparison,
    write_artifact,
)
from repro.harness.comparison import expert_distribution_table


def test_bench_table2_tinyimagenetc(benchmark):
    result = benchmark.pedantic(
        lambda: run_dataset_comparison("tiny_imagenet_c_sim"),
        rounds=1, iterations=1)

    artifact = full_dataset_artifact(
        result,
        table_label="Table 2 (top): Tiny-ImageNet-C — Drop / Time / Max per window",
        convergence_label="Figure 3b: Tiny-ImageNet-C convergence",
        max_label="Figure 5b: Tiny-ImageNet-C max accuracy per window",
        expert_label="Figure 7b: Tiny-ImageNet-C expert distribution",
    )
    write_artifact("table2_tinyimagenetc", artifact)
    print("\n" + artifact)

    assert_paper_shape(result, min_windows_shiftex_leads=2, margin=1.5)

    # Fig. 7b shape: the pool expands beyond the bootstrap expert as new
    # corruption regimes arrive.
    history = expert_distribution_table(result)
    experts_seen = {e for dist in history for e, n in dist.items() if n > 0}
    assert len(experts_seen) >= 3, "multiple regimes should spawn multiple experts"
