"""Figures 7-8 consolidated: expert-assignment dynamics across all datasets.

The per-dataset table benches already emit each dataset's expert
distribution; this bench runs ShiftEx alone across all five simulated
datasets and collates the Figures 7a-7c / 8a-8b series side by side,
asserting the qualitative dynamics the paper describes for each dataset.
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import (
    BENCH_PRECISION,
    BENCH_PROFILE,
    BENCH_SEEDS,
    write_artifact,
)
from repro.core import ShiftExStrategy
from repro.harness.comparison import render_expert_distribution
from repro.harness.profiles import get_profile
from repro.harness.runner import run_strategy
from repro.utils.precision import PrecisionPlan

DATASETS = ("fmow_sim", "tiny_imagenet_c_sim", "cifar10_c_sim",
            "femnist_sim", "fashion_mnist_sim")
FIGURE_LABEL = {
    "fmow_sim": "Figure 7a",
    "tiny_imagenet_c_sim": "Figure 7b",
    "cifar10_c_sim": "Figure 7c",
    "femnist_sim": "Figure 8a",
    "fashion_mnist_sim": "Figure 8b",
}


def run_all():
    histories = {}
    for dataset in DATASETS:
        spec, settings = get_profile(BENCH_PROFILE, dataset)
        # Paper-reproduction artifacts pin the paper's precision plane
        # (see benchmarks/conftest.py), whatever the profile default.
        settings = dataclasses.replace(
            settings, precision=PrecisionPlan.from_value(BENCH_PRECISION),
            dtype=None)
        result = run_strategy(ShiftExStrategy(), spec, settings,
                              seed=BENCH_SEEDS[0])
        histories[dataset] = result.expert_history
    return histories


def test_bench_expert_dynamics(benchmark):
    histories = benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for dataset, history in histories.items():
        sections.append(f"{FIGURE_LABEL[dataset]} ({dataset}):")
        sections.append(render_expert_distribution(history))
        sections.append("")
    artifact = "\n".join(sections)
    write_artifact("figures7_8_expert_dynamics", artifact)
    print("\n" + artifact)

    for dataset, history in histories.items():
        # W0: everything on the single bootstrap expert.
        w0_live = [e for e, n in history[0].items() if n > 0]
        assert len(w0_live) == 1, f"{dataset}: W0 must use one expert"
        # Later: specialization appears.
        ever_live = {e for dist in history for e, n in dist.items() if n > 0}
        assert len(ever_live) >= 2, f"{dataset}: shifts must spawn experts"

    # CIFAR-10-C's recurring regime keeps the pool compact relative to
    # Tiny-ImageNet-C's five distinct corruption families.
    cifar_experts = {e for dist in histories["cifar10_c_sim"] for e, n in dist.items()
                     if n > 0}
    tiny_experts = {e for dist in histories["tiny_imagenet_c_sim"]
                    for e, n in dist.items() if n > 0}
    assert len(cifar_experts) <= len(tiny_experts)
