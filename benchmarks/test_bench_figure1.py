"""Figure 1: the motivation experiment.

The paper's Figure 1 shows a clear-trained model collapsing on weather-
shifted imagery (75.8% -> 26-36%) while weather-specific expert models
recover most of the lost accuracy (67-77%).  This bench regenerates both
rows on the synthetic satellite domain: train one model on clear data,
evaluate on each weather corruption; then train one specialist per weather
condition and evaluate it on its own condition.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_artifact
from repro.data import CORRUPTION_GROUPS, apply_corruption
from repro.data.images import ImageDomainSpec, SyntheticImageGenerator
from repro.nn import LocalTrainingConfig, build_model, evaluate, train_local
from repro.utils.rng import spawn_rng

SEVERITY = 3
TRAIN_N = 900
TEST_N = 300


def _train_model(x, y, spec, tag):
    model = build_model("lenet_mini", spec.input_shape, spec.num_classes,
                        spawn_rng(0, "fig1-model", tag))
    train_local(model, x, y,
                LocalTrainingConfig(epochs=16, lr=0.02, batch_size=32,
                                    momentum=0.9),
                spawn_rng(0, "fig1-train", tag))
    return model


def figure1_rows() -> tuple[dict[str, float], dict[str, float], float]:
    spec = ImageDomainSpec(num_classes=10, image_size=12, channels=3,
                           noise_scale=0.22, seed=11)
    generator = SyntheticImageGenerator(spec)
    prior = np.full(spec.num_classes, 1.0 / spec.num_classes)
    rng = spawn_rng(0, "fig1-data")
    x_train, y_train = generator.sample_dataset(prior, TRAIN_N, rng)
    x_test, y_test = generator.sample_dataset(prior, TEST_N, rng)

    clear_model = _train_model(x_train, y_train, spec, "clear")
    clear_acc, _ = evaluate(clear_model, x_test, y_test)

    clear_on_weather: dict[str, float] = {}
    specialist_on_weather: dict[str, float] = {}
    for condition in CORRUPTION_GROUPS["weather"]:
        x_shift_train = apply_corruption(x_train, condition, SEVERITY,
                                         spawn_rng(1, condition))
        x_shift_test = apply_corruption(x_test, condition, SEVERITY,
                                        spawn_rng(2, condition))
        acc, _ = evaluate(clear_model, x_shift_test, y_test)
        clear_on_weather[condition] = 100.0 * acc
        specialist = _train_model(x_shift_train, y_train, spec, condition)
        acc_s, _ = evaluate(specialist, x_shift_test, y_test)
        specialist_on_weather[condition] = 100.0 * acc_s
    return clear_on_weather, specialist_on_weather, 100.0 * clear_acc


def test_bench_figure1_motivation(benchmark):
    clear_row, specialist_row, clear_acc = benchmark.pedantic(
        figure1_rows, rounds=1, iterations=1)

    conditions = list(clear_row)
    lines = [
        "Figure 1: weather-induced covariate shift (synthetic satellite domain)",
        f"  clear-trained model on clear test: {clear_acc:.2f}%",
        "  condition | clear-trained model | weather-specific expert",
    ]
    for condition in conditions:
        lines.append(f"  {condition:9s} | {clear_row[condition]:19.2f} "
                     f"| {specialist_row[condition]:23.2f}")
    artifact = "\n".join(lines)
    write_artifact("figure1_motivation", artifact)
    print("\n" + artifact)

    # Paper shape: every weather condition hurts the clear model, and the
    # specialist recovers a large share of the gap on every condition.
    for condition in conditions:
        assert clear_row[condition] < clear_acc - 5.0, condition
        assert specialist_row[condition] > clear_row[condition] + 5.0, condition
    mean_drop = clear_acc - np.mean(list(clear_row.values()))
    mean_recovery = np.mean(list(specialist_row.values())) - \
        np.mean(list(clear_row.values()))
    assert mean_drop > 10.0
    assert mean_recovery > 10.0
