"""Population-scale residency benchmark (``BENCH_party_pool.json``).

The :class:`~repro.federation.pool.PartyPool` subsystem claims the simulator
now scales to million-party populations in flat memory: a party is a seeded
spec until dispatch, lives only while pinned for its training call, and is
evicted once its report is safely in the
:class:`~repro.federation.async_engine.AsyncRoundBuffer`.  This bench
measures both halves of that claim:

* **throughput** — real federated rounds at a 1,000,000-party population
  under the ``flaky`` availability scenario (dropouts + stragglers +
  counter-based outages): cohorts sampled O(cohort) from the population,
  every report trained on materialized-on-demand party state and pushed
  through the async buffer.  Reports/sec is the dispatch rate the buffer
  actually sustained.
* **memory flatness** — tracemalloc peaks for an identical workload at
  10k vs 100k populations with the same residency bound.  A 10x population
  must cost (nearly) nothing: the CI gate asserts the ratio stays within
  1.25x, which is what "O(resident), not O(population)" means in bytes.

Results land in ``BENCH_party_pool.json`` at the repo root (committed perf
anchor, printed and uploaded by the CI bench job alongside
``BENCH_param_plane.json``).
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.data.federated import FederatedShiftDataset
from repro.federation.async_engine import FederationConfig, FederationEngine
from repro.federation.availability import AvailabilityConfig
from repro.federation.pool import PartyPool
from repro.federation.rounds import RoundConfig, run_fl_round
from repro.nn.models import build_model
from repro.nn.training import LocalTrainingConfig
from repro.utils.rng import spawn_rng
from tests.conftest import make_tiny_spec

ROOT_ARTIFACT = Path(__file__).parent.parent / "BENCH_party_pool.json"

MILLION = 1_000_000
COHORT = 64
ROUNDS = 10
MAX_RESIDENT = 128

FLAT_SMALL = 10_000
FLAT_LARGE = 100_000
FLAT_RATIO_LIMIT = 1.25
FLAT_COHORT = 16
FLAT_ROUNDS = 5
FLAT_MAX_RESIDENT = 32


def _bench_spec():
    """A tiny mlp dataset spec: the bench times residency, not training."""
    return make_tiny_spec(name="bench_party_pool", num_parties=8,
                          num_windows=2, window_regimes=(("fog", 4),),
                          train=32, test=16, seed=77)


def _round_config(cohort: int) -> RoundConfig:
    return RoundConfig(
        participants_per_round=cohort,
        local=LocalTrainingConfig(epochs=1, batch_size=16, lr=0.05,
                                  momentum=0.9))


def _drive_rounds(population: int, cohort: int, rounds: int,
                  max_resident: int, seed: int = 0) -> dict:
    """Run ``rounds`` async federated rounds over a pooled population.

    Returns wall time plus the pool and engine summaries — every report
    travels party -> bank row -> AsyncRoundBuffer -> staleness-weighted
    aggregate, exactly the pipeline a pooled run uses.
    """
    spec = _bench_spec()
    ds = FederatedShiftDataset(spec)
    pool = PartyPool(spec, ds, population=population, seed=seed,
                     max_resident=max_resident)
    engine = FederationEngine(
        FederationConfig(mode="async",
                         availability=AvailabilityConfig.scenario("flaky")),
        seed=seed, num_parties=population)
    config = _round_config(cohort)
    params = build_model(spec.model_name, spec.input_shape, spec.num_classes,
                         spawn_rng(seed, "bench-global")).get_params()

    pool.begin_window(0)
    select_rng = spawn_rng(seed, "bench-select")
    start = time.perf_counter()
    for round_index in range(rounds):
        engine.advance((0, round_index))
        cohort_ids = pool.sampler.sample(select_rng, cohort)
        params, _stats = run_fl_round(pool, cohort_ids, params, config,
                                      round_tag=(0, round_index),
                                      engine=engine, stream="bench")
    elapsed = time.perf_counter() - start
    return {
        "elapsed_s": elapsed,
        "pool": pool.summary(),
        "engine": engine.summary(),
    }


def _traced_peak(population: int) -> int:
    """tracemalloc peak (bytes) for the fixed flat-memory workload."""
    tracemalloc.start()
    try:
        _drive_rounds(population, FLAT_COHORT, FLAT_ROUNDS,
                      FLAT_MAX_RESIDENT)
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


@pytest.fixture(scope="module")
def bench_results() -> dict:
    million = _drive_rounds(MILLION, COHORT, ROUNDS, MAX_RESIDENT)
    dispatched = million["engine"]["dispatched"]
    throughput = {
        "population": MILLION,
        "cohort": COHORT,
        "rounds": ROUNDS,
        "max_resident": MAX_RESIDENT,
        "scenario": "flaky",
        "elapsed_s": million["elapsed_s"],
        "dispatched_reports": dispatched,
        "reports_per_s": dispatched / million["elapsed_s"],
        "aggregations": million["engine"]["aggregations"],
        "dropped": million["engine"]["dropped"],
        "delayed": million["engine"]["delayed"],
        "pool": million["pool"],
    }

    peak_small = _traced_peak(FLAT_SMALL)
    peak_large = _traced_peak(FLAT_LARGE)
    memory = {
        "population_small": FLAT_SMALL,
        "population_large": FLAT_LARGE,
        "cohort": FLAT_COHORT,
        "rounds": FLAT_ROUNDS,
        "max_resident": FLAT_MAX_RESIDENT,
        "peak_small_bytes": peak_small,
        "peak_large_bytes": peak_large,
        "peak_ratio": peak_large / peak_small,
        "ratio_limit": FLAT_RATIO_LIMIT,
    }
    return {"throughput_1m": throughput, "memory_flatness": memory}


def test_bench_party_pool(bench_results):
    payload = dict(bench_results)
    payload["note"] = (
        "async federated rounds over a PartyPool: cohorts sampled O(cohort) "
        "from the population, parties materialized on dispatch and evicted "
        "after their report lands in the AsyncRoundBuffer; memory_flatness "
        "is the tracemalloc peak of an identical workload at 10k vs 100k "
        "populations (flat = O(resident), not O(population))")
    ROOT_ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    entry = bench_results["throughput_1m"]
    assert entry["dispatched_reports"] == COHORT * ROUNDS
    assert entry["reports_per_s"] > 0
    assert entry["aggregations"] > 0  # the buffer actually drained
    # Residency never tracked the population: the LRU bound (plus the
    # transient pin overshoot of one in-flight cohort) is the ceiling.
    assert entry["pool"]["peak_resident"] <= MAX_RESIDENT + COHORT


def test_bench_memory_is_flat(bench_results):
    """10x the population must not move the peak beyond the CI gate."""
    entry = bench_results["memory_flatness"]
    assert entry["peak_small_bytes"] > 0
    assert entry["peak_ratio"] <= FLAT_RATIO_LIMIT, (
        f"peak memory grew {entry['peak_ratio']:.3f}x from "
        f"{FLAT_SMALL} to {FLAT_LARGE} parties "
        f"(limit {FLAT_RATIO_LIMIT}x) — residency is leaking population "
        "state")


def test_bench_pool_summary_consistency(bench_results):
    """The counters must describe a pool that recycled, not accumulated."""
    pool = bench_results["throughput_1m"]["pool"]
    assert pool["population"] == MILLION
    assert pool["materialized"] >= pool["models_built"]
    assert pool["models_built"] <= MAX_RESIDENT + COHORT
    assert pool["resident"] <= MAX_RESIDENT
