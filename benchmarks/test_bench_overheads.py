"""Section 7 "ShiftEx Overheads": detection / clustering / assignment latency
and the aggregator memory model.

The paper reports (ResNet-50 scale): MMD drift detection 154±17 ms,
clustering 200 parties ~1389 ms, expert assignment ~0.15 ms, aggregator
memory ~714 MB.  At simulator scale the absolute numbers shrink with the
embedding dimension, but the *ordering* (clustering > detection >>
assignment) and the memory accounting formula are reproduced here with real
pytest-benchmark timings.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_artifact
from repro.clustering.selection import select_num_clusters
from repro.detection.mmd import median_heuristic_gamma, mmd
from repro.experts.matching import match_cluster_to_expert
from repro.experts.registry import ExpertRegistry
from repro.privacy import SHARE_BYTES, TeeOverheadModel, sealed_payload_bytes
from repro.utils.precision import PrecisionPlan
from repro.utils.rng import spawn_rng

NUM_PARTIES = 200
EMBED_DIM = 48
WINDOW_ROWS = 48


def _party_embeddings(rng, shift=0.0):
    return rng.normal(size=(WINDOW_ROWS, EMBED_DIM)) + shift


def test_bench_mmd_detection_latency(benchmark):
    """Per-party MMD drift check (the paper's 154 ms line item)."""
    rng = spawn_rng(0, "ovh-mmd")
    current = _party_embeddings(rng)
    previous = _party_embeddings(rng)
    gamma = median_heuristic_gamma(current, previous)
    result = benchmark(lambda: mmd(current, previous, gamma))
    assert result >= 0.0


def test_bench_clustering_latency(benchmark):
    """K-means + Davies-Bouldin over 200 party centroids (the ~1.4 s line)."""
    rng = spawn_rng(0, "ovh-cluster")
    centroids = np.vstack([
        rng.normal(size=(NUM_PARTIES // 2, EMBED_DIM)),
        rng.normal(size=(NUM_PARTIES // 2, EMBED_DIM)) + 4.0,
    ])
    k, _result, _scores = benchmark(
        lambda: select_num_clusters(centroids, spawn_rng(1, "k"), k_max=6))
    assert k >= 2


def test_bench_expert_assignment_latency(benchmark):
    """Latent-memory matching of one cluster against a 6-expert registry."""
    rng = spawn_rng(0, "ovh-assign")
    registry = ExpertRegistry(memory_capacity=64)
    params = [rng.normal(size=(32, 16))]
    for regime in range(6):
        registry.create(params, window=0,
                        embeddings=rng.normal(size=(96, EMBED_DIM)) + 3.0 * regime,
                        rng=rng)
    cluster = rng.normal(size=(128, EMBED_DIM)) + 6.0
    result = benchmark(
        lambda: match_cluster_to_expert(cluster, registry, epsilon=0.5,
                                        gamma=0.05, max_rows=64,
                                        rng=spawn_rng(2, "m")))
    assert result.expert_id is not None or not result.matched


def test_bench_memory_model_and_tee_projection(benchmark):
    """Aggregator memory model (Section 5.4) + TEE overhead projection (5.3)."""
    rng = spawn_rng(0, "ovh-mem")
    registry = ExpertRegistry(memory_capacity=64)
    params = [rng.normal(size=(512, 64)), rng.normal(size=(64,))]
    for regime in range(5):
        registry.create(params, window=0,
                        embeddings=rng.normal(size=(96, EMBED_DIM)),
                        rng=rng)

    footprint = benchmark(
        lambda: registry.memory_footprint(EMBED_DIM, NUM_PARTIES))

    tee = TeeOverheadModel()
    detection_ms = 5.0
    # Element width follows the parameter precision (satellite of the
    # mixed-precision plane): float32 privacy overheads are exactly half.
    payload = sealed_payload_bytes(WINDOW_ROWS * EMBED_DIM)
    payload_f32 = sealed_payload_bytes(WINDOW_ROWS * EMBED_DIM,
                                       PrecisionPlan(params="float32"))
    secure_extra = tee.window_overhead_ms(detection_ms, NUM_PARTIES, payload)
    secure_extra_f32 = tee.window_overhead_ms(detection_ms, NUM_PARTIES,
                                              payload_f32)
    # Shamir t-of-n dropout recovery (majority threshold): each party's
    # secret bundle is 1 self word + (n-1) pairwise words, each split into
    # n 16-byte shares at session setup; one recovery pulls t shares/word.
    threshold = NUM_PARTIES // 2 + 1
    words = NUM_PARTIES * NUM_PARTIES  # n parties x (1 self + n-1 pair)
    share_setup_bytes = words * (NUM_PARTIES - 1) * SHARE_BYTES
    recovery_bytes = NUM_PARTIES * threshold * SHARE_BYTES  # one party's bundle

    lines = [
        "Section 7 overheads (simulator scale; paper scale in parentheses)",
        f"  parties={NUM_PARTIES}, embed_dim={EMBED_DIM} (paper: d=2048)",
        f"  expert centroid bytes: {footprint['centroid_bytes']:.0f}"
        "  (paper: ~40 KB)",
        f"  party->expert mapping bytes: {footprint['mapping_bytes']:.0f}"
        "  (paper: ~0.8 KB)",
        f"  expert parameters bytes: {footprint['param_bytes']:.0f}"
        "  (paper: ~600 MB for 6 ResNet-50s)",
        f"  total aggregator bytes: {footprint['total_bytes']:.0f}"
        "  (paper: ~714 MB)",
        f"  projected TEE extra latency per detection window: {secure_extra:.2f} ms"
        "  (paper: ~5% compute overhead)",
        f"  projected TEE extra latency at float32: {secure_extra_f32:.2f} ms"
        "  (sealing bytes halve with the parameter plane)",
        f"  secure-agg share setup (t={threshold} of n={NUM_PARTIES}):"
        f" {share_setup_bytes / 1e6:.2f} MB per round cohort",
        f"  secure-agg mask recovery: {recovery_bytes / 1e3:.2f} KB"
        " per dropped party",
    ]
    artifact = "\n".join(lines)
    write_artifact("overheads", artifact)
    print("\n" + artifact)

    assert footprint["num_experts"] == 5
    assert footprint["mapping_bytes"] == NUM_PARTIES * 8
    assert secure_extra > 0
    # float32 halves exactly the sealing term, which dominates here.
    assert payload_f32 * 2 == payload
    assert share_setup_bytes > 0 and recovery_bytes > 0
