"""Microbenchmarks for shard dispatch (``BENCH_shard_service``).

The shard-dispatch fix in one picture: a federated round touches each shard
many times (one aggregation matvec per stream buffer plus Gram blocks for
matching/consolidation), and the old path paid one worker-pool round trip
*per op*.  Batched round submissions ship all of one shard's ops in a single
submission, so the IPC cost per round is O(shards), not O(ops x shards).

* **round_dispatch** — a round's worth of shard ops (stream matvecs + a
  consolidation Gram block) dispatched per-op vs batched, both on the
  process backend.  The CI gate requires batched >= 1.3x on >= 2-core
  runners; on one core the measured multiple is still recorded but the
  gate is report-only (``skipped_reason``), the PR-7 convention.
* **backend_equivalence** — serial == process == remote, *bitwise*, on the
  aggregation matvec, the consolidation cosine matrix, and the matching
  MMD kernel (remote runs against a loopback ``repro.net.shard_service``).
* **remote_loopback** — record-only: one batched remote round over the
  loopback service, with the wire bytes it moved (the same counters the
  run ledger meters under ``shard_service``).

Results land in ``BENCH_shard_service.json`` at the repo root (committed
perf anchor, merged into the trajectory table by ``trajectory.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.detection.mmd import mmd_to_many
from repro.net.client import wire_totals
from repro.net.shard_service import start_in_thread
from repro.utils.params import ParamBank, ShardedParamBank
from repro.utils.rng import spawn_rng
from repro.utils.sharding import (
    ShardPlan,
    shard_ranges,
    sharded_mmd_to_many,
    submit_shard_op_batches,
)

ROOT_ARTIFACT = Path(__file__).parent.parent / "BENCH_shard_service.json"

# The param-plane bench's resnet_mini-flavoured tensor list (~40k params).
_SHAPES: list[tuple[int, ...]] = []
for _c_in, _c_out in [(3, 16), (16, 16), (16, 16), (16, 32), (32, 32), (32, 32)]:
    _SHAPES += [(_c_out, _c_in, 3, 3), (_c_out,)]
_SHAPES += [(64, 96), (96,), (96, 48), (48,), (48, 10), (10,)]

N_UPDATES = 48      # cohort rows resident in the round bank
N_SHARDS = 4
ROUND_MATVECS = 8   # stream-buffer aggregations landing in one round
GRAM_ROWS = 12      # expert rows in the consolidation Gram block
EMBED_DIM = 48
SIG_ROWS = 64
GAMMA = 0.05
CPU_COUNT = os.cpu_count() or 1
GATE_MIN_SPEEDUP = 1.3


def _make_param_sets(rng: np.random.Generator, n: int) -> list:
    return [[rng.normal(size=s) for s in _SHAPES] for _ in range(n)]


def _best_of(fn, repeats: int = 9) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _round_ops(bank: ShardedParamBank, rng: np.random.Generator):
    """One round's shard ops: stream matvecs plus a consolidation Gram block.

    Returns ``(per_op_lists, batched_by_shard)`` describing the *same* ops
    two ways: one ``ops_by_shard`` list per op (old dispatch: one pool
    round trip each) and a single ``ops_by_shard`` holding everything
    (batched dispatch: one round trip per round).
    """
    shards = len(bank.shard_tokens())
    per_op_lists: list[list[list[tuple]]] = []
    for _ in range(ROUND_MATVECS):
        rows = sorted(rng.choice(N_UPDATES, size=N_UPDATES // 2,
                                 replace=False).tolist())
        weights = rng.uniform(1.0, 50.0, size=len(rows))
        _, locals_by_shard, weights_by_shard = bank._prepare_combine(
            weights, rows)
        per_op_lists.append(
            [[("matvec", locals_by_shard[s], weights_by_shard[s])]
             for s in range(shards)])
    entries = bank._selections(list(range(GRAM_ROWS)))
    positions_by_shard = [list(range(a, b))
                          for a, b in shard_ranges(GRAM_ROWS, shards)]
    per_op_lists.append([[("gram", entries, p)] if p else []
                         for p in positions_by_shard])
    batched: list[list[tuple]] = [[] for _ in range(shards)]
    for ops_by_shard in per_op_lists:
        for s, ops in enumerate(ops_by_shard):
            batched[s].extend(ops)
    return per_op_lists, batched


def _bench_round_dispatch(rng: np.random.Generator) -> dict:
    bank = ShardedParamBank.from_param_sets(
        _make_param_sets(rng, N_UPDATES),
        plan=ShardPlan(shards=N_SHARDS, backend="process"))
    per_op_lists, batched_ops = _round_ops(bank, rng)
    tokens = bank.shard_tokens()

    def per_op():
        return [submit_shard_op_batches(tokens, ops_by_shard, "process")
                for ops_by_shard in per_op_lists]

    def batched():
        return submit_shard_op_batches(tokens, batched_ops, "process")

    # Batching must not change a single bit of any result.
    flat_per_op: list[list] = [[] for _ in range(N_SHARDS)]
    for results_by_shard in per_op():
        for s, results in enumerate(results_by_shard):
            flat_per_op[s].extend(results)
    for s, (got, want) in enumerate(zip(batched(), flat_per_op)):
        assert len(got) == len(want), f"shard {s}: op count mismatch"
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    per_op_s = _best_of(per_op)
    batched_s = _best_of(batched)
    bank.close()
    entry = {
        "kernel": ("one round of shard ops: per-op pool submissions vs one "
                   "batched submission per shard"),
        "n_ops": ROUND_MATVECS + 1,
        "shards": N_SHARDS,
        "n_updates": N_UPDATES,
        "cpu_count": CPU_COUNT,
        "per_op_s": per_op_s,
        "batched_s": batched_s,
        "speedup": per_op_s / batched_s,
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "gate_enforced": CPU_COUNT >= 2,
    }
    if CPU_COUNT < 2:
        entry["skipped_reason"] = (
            "cpu_count == 1: the >=1.3x gate applies to >=2-core runners; "
            "the measured multiple above is recorded but not enforced")
    return entry


def _bench_backend_equivalence(rng: np.random.Generator,
                               address: str) -> dict:
    sets = _make_param_sets(rng, GRAM_ROWS)
    rows = list(range(GRAM_ROWS))
    weights = rng.uniform(1.0, 50.0, size=GRAM_ROWS)
    cluster = rng.normal(size=(SIG_ROWS, EMBED_DIM))
    signatures = [rng.normal(size=(SIG_ROWS, EMBED_DIM)) + i
                  for i in range(8)]

    plans = {
        "serial": ShardPlan(shards=N_SHARDS, backend="serial"),
        "process": ShardPlan(shards=N_SHARDS, backend="process"),
        "remote": ShardPlan(shards=N_SHARDS, backend="remote",
                            hosts=(address,)),
    }
    combines, cosines, mmds = {}, {}, {}
    for name, plan in plans.items():
        bank = ShardedParamBank.from_param_sets(sets, plan=plan)
        combines[name] = bank.weighted_combine(weights, rows)
        cosines[name] = bank.cosine_matrix(rows)
        mmds[name] = sharded_mmd_to_many(cluster, signatures, GAMMA, plan)
        bank.close()
    for name in ("process", "remote"):
        assert np.array_equal(combines[name], combines["serial"]), name
        assert np.array_equal(cosines[name], cosines["serial"]), name
        assert np.array_equal(mmds[name], mmds["serial"]), name
    # ... and the sharded kernels agree with the unsharded ones to
    # reassociation tolerance.
    plain = ParamBank.from_param_sets(sets)
    np.testing.assert_allclose(combines["serial"],
                               plain.weighted_combine(weights, rows),
                               rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(mmds["serial"],
                               mmd_to_many(cluster, signatures, GAMMA),
                               rtol=1e-9, atol=1e-12)
    return {
        "kernels": ["aggregation matvec", "consolidation cosine matrix",
                    "matching MMD"],
        "backends": sorted(plans),
        "shards": N_SHARDS,
        "bitwise_equal": True,
    }


def _bench_remote_loopback(rng: np.random.Generator, address: str) -> dict:
    bank = ShardedParamBank.from_param_sets(
        _make_param_sets(rng, N_UPDATES),
        plan=ShardPlan(shards=N_SHARDS, backend="remote", hosts=(address,)))
    selections = []
    for _ in range(ROUND_MATVECS):
        rows = sorted(rng.choice(N_UPDATES, size=N_UPDATES // 2,
                                 replace=False).tolist())
        selections.append((rng.uniform(1.0, 50.0, size=len(rows)),
                           rows))
    weight_sets = [w for w, _ in selections]
    rows_sets = [r for _, r in selections]
    bank.weighted_combine_many(weight_sets, rows_sets)  # sync + warm-up
    sent0, received0 = wire_totals()
    round_s = _best_of(
        lambda: bank.weighted_combine_many(weight_sets, rows_sets),
        repeats=5)
    sent1, received1 = wire_totals()
    bank.close()
    return {
        "kernel": ("one batched remote round over a loopback shard service "
                   "(record-only: loopback TCP, not a perf claim)"),
        "n_ops": ROUND_MATVECS,
        "shards": N_SHARDS,
        "round_s": round_s,
        "wire_sent_bytes": sent1 - sent0,
        "wire_received_bytes": received1 - received0,
    }


@pytest.fixture(scope="module")
def bench_results() -> dict:
    rng = spawn_rng(0, "bench-shard-service")
    handle = start_in_thread()
    try:
        return {
            "round_dispatch": _bench_round_dispatch(rng),
            "backend_equivalence": _bench_backend_equivalence(
                rng, handle.address),
            "remote_loopback": _bench_remote_loopback(rng, handle.address),
        }
    finally:
        handle.stop()


def test_bench_shard_service(bench_results, results_dir):
    payload = dict(bench_results)
    payload["cpu_count"] = CPU_COUNT
    payload["note"] = ("best-of-9 wall times; round_dispatch times the same "
                       "shard ops submitted per-op vs batched on the process "
                       "backend; backend_equivalence pins serial == process "
                       "== remote bitwise; remote_loopback is record-only")
    ROOT_ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    entry = bench_results["round_dispatch"]
    assert entry["per_op_s"] > 0 and entry["batched_s"] > 0
    assert bench_results["backend_equivalence"]["bitwise_equal"] is True
    assert bench_results["remote_loopback"]["wire_sent_bytes"] > 0


def test_bench_batched_dispatch_gate(bench_results):
    """Batched round submissions must clearly beat per-op dispatch.

    The gate (>= 1.3x) only binds on >= 2-core runners — the CI
    ``bench-shard-service`` job — where the per-op path's submission waves
    serialize against worker wakeups.  On one core the JSON records the
    measured multiple with a ``skipped_reason`` instead (PR-7 convention);
    even there batching usually wins (fewer IPC round trips), but noisy
    single-core schedulers make a hard gate flaky.
    """
    entry = bench_results["round_dispatch"]
    if CPU_COUNT < 2:
        assert "skipped_reason" in entry and not entry["gate_enforced"]
        return
    assert entry["speedup"] >= GATE_MIN_SPEEDUP, (
        f"batched dispatch only {entry['speedup']:.2f}x over per-op "
        f"(gate {GATE_MIN_SPEEDUP}x)")
