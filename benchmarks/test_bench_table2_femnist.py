"""Table 2 (middle) + Figures 4a / 6a / 8a: the FEMNIST experiment.

Cyclic transform shifts (rotation recurs) combined with Dirichlet label
shift on sliding windows.  The paper's shape: ShiftEx handles the drift with
expert reuse across windows rather than full resets.
"""

from benchmarks.conftest import (
    assert_paper_shape,
    full_dataset_artifact,
    run_dataset_comparison,
    write_artifact,
)


def test_bench_table2_femnist(benchmark):
    result = benchmark.pedantic(
        lambda: run_dataset_comparison("femnist_sim"), rounds=1, iterations=1)

    artifact = full_dataset_artifact(
        result,
        table_label="Table 2 (middle): FEMNIST — Drop / Time / Max per window",
        convergence_label="Figure 4a: FEMNIST convergence",
        max_label="Figure 6a: FEMNIST max accuracy per window",
        expert_label="Figure 8a: FEMNIST expert distribution",
    )
    write_artifact("table2_femnist", artifact)
    print("\n" + artifact)

    assert_paper_shape(result, min_windows_shiftex_leads=2, margin=1.5)

    # Fig. 8a shape: experts are reused over time (the number of experts ever
    # created stays below one-per-window thanks to latent-memory reuse).
    shiftex_run = result.runs["shiftex"][0]
    created = shiftex_run.state_log[-1]["experts_created"]
    windows = len(shiftex_run.window_series)
    assert created <= windows, "latent memory should bound expert creation"
