"""Shared benchmark helpers: run comparisons once, persist artifacts.

Each bench module regenerates one of the paper's tables/figures at simulator
scale (`ci` profile by default; set ``REPRO_BENCH_PROFILE=small|paper`` for
larger runs) and writes the rendered rows/series to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference them.

The paper's trajectories are defined on the full-precision pipeline, so
these comparisons pin ``float64`` regardless of the profile's precision
default (`ci`/`small` now run float32 parameters); set
``REPRO_BENCH_PRECISION=float32`` to regenerate the mixed-plane
trajectory instead.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import run_comparison
from repro.harness.comparison import (
    ComparisonResult,
    convergence_series,
    default_strategies,
    expert_distribution_table,
    max_accuracy_table,
    render_drop_time_max_table,
    render_expert_distribution,
)

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "ci")
BENCH_SEEDS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_SEEDS", "0").split(",")
)
BENCH_PRECISION = os.environ.get("REPRO_BENCH_PRECISION", "float64")


def write_artifact(name: str, content: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content)
    return path


def run_dataset_comparison(dataset: str,
                           methods: tuple[str, ...] | None = None,
                           ) -> ComparisonResult:
    strategies = default_strategies() if methods is None else default_strategies(methods)
    return run_comparison(dataset, strategies, profile=BENCH_PROFILE,
                          seeds=BENCH_SEEDS, precision=BENCH_PRECISION)


def render_figure_series(result: ComparisonResult, figure_label: str) -> str:
    """Text rendering of a convergence-curve figure (Figures 3-4)."""
    curves = convergence_series(result)
    lines = [f"{figure_label}: test accuracy (%) per evaluation point "
             f"(entry + per round, windows concatenated)"]
    for name, series in curves.items():
        formatted = " ".join(f"{v:5.1f}" for v in series)
        lines.append(f"  {name:10s} {formatted}")
    return "\n".join(lines)


def render_max_accuracy_figure(result: ComparisonResult, figure_label: str) -> str:
    """Text rendering of a max-accuracy-per-window figure (Figures 5-6)."""
    table = max_accuracy_table(result)
    n_windows = result.num_windows()
    header = " | ".join(f"W{w}" for w in range(n_windows))
    lines = [f"{figure_label}: max accuracy (%) per window (mean±std)",
             f"  {'method':10s} | {header}"]
    for name, cells in table.items():
        row = " | ".join(f"{m:.2f}±{s:.2f}" for m, s in cells)
        lines.append(f"  {name:10s} | {row}")
    return "\n".join(lines)


def render_expert_figure(result: ComparisonResult, figure_label: str) -> str:
    """Text rendering of an expert-distribution figure (Figures 7-8)."""
    history = expert_distribution_table(result)
    return f"{figure_label}: parties per expert per window\n" + \
        render_expert_distribution(history)


def full_dataset_artifact(result: ComparisonResult, table_label: str,
                          convergence_label: str, max_label: str,
                          expert_label: str) -> str:
    parts = [
        render_drop_time_max_table(result, title=table_label),
        "",
        render_figure_series(result, convergence_label),
        "",
        render_max_accuracy_figure(result, max_label),
        "",
        render_expert_figure(result, expert_label),
        "",
        f"profile={result.profile} seeds={result.seeds}",
    ]
    return "\n".join(parts)


def assert_paper_shape(result: ComparisonResult, min_windows_shiftex_leads: int = 1,
                       margin: float = 0.0) -> None:
    """ShiftEx should lead (or tie) the single-global-model baselines on max
    accuracy in at least ``min_windows_shiftex_leads`` evaluation windows."""
    table = max_accuracy_table(result)
    shiftex = [m for m, _s in table["shiftex"]][1:]  # skip burn-in
    single_model = [name for name in ("fedprox", "oort") if name in table]
    leads = 0
    for w, value in enumerate(shiftex):
        others = [table[name][w + 1][0] for name in single_model]
        if others and value >= max(others) - margin:
            leads += 1
    assert leads >= min_windows_shiftex_leads, (
        f"ShiftEx led in only {leads} windows; expected >= {min_windows_shiftex_leads}"
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
