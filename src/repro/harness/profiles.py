"""Scale profiles: the paper's configuration vs fast simulator settings."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.registry import DatasetSpec, get_dataset_spec
from repro.federation.async_engine import FederationConfig
from repro.federation.pool import PopulationConfig
from repro.federation.rounds import RoundConfig
from repro.nn.training import LocalTrainingConfig
from repro.privacy.plan import PrivacyPlan
from repro.utils.params import resolve_dtype
from repro.utils.precision import PrecisionPlan
from repro.utils.sharding import ShardPlan

_PROFILE_NAMES = ("ci", "small", "paper")


@dataclass
class RunSettings:
    """How many rounds/participants a run uses and how it evaluates.

    ``precision`` is the run's :class:`~repro.utils.precision.PrecisionPlan`:
    ``params`` names the model parameter/transport/aggregation dtype,
    ``detection_stats`` the dtype of the float64 detection island every
    party embedding is cast to at the Algorithm-1 reporting boundary.
    ``params="float32"`` halves memory and roughly doubles BLAS throughput;
    the ``ci``/``small`` profiles default to it because the recalibrated
    float32 threshold table (see :mod:`repro.detection.recalibrate`)
    reproduces the seed's detection decisions.  Direct construction
    defaults to all-float64 — the bitwise legacy plane.

    ``dtype`` survives as a shorthand alias for ``precision``:
    ``dtype="float32"`` means ``PrecisionPlan(params="float32")`` with
    detection statistics still float64.  Setting both to conflicting
    values is an error; after construction ``dtype`` always mirrors
    ``precision.params``.

    ``federation`` selects the participation regime: synchronous full-cohort
    rounds (the default, engine-less fast path) or ``buffered``/``async``
    staleness-weighted aggregation under a simulated availability scenario
    (see :class:`~repro.federation.async_engine.FederationConfig`).

    ``shards`` splits every parameter bank the run builds (round banks,
    async stream buffers, the expert pool) across that many shared-memory
    shards so aggregation and expert-similarity scoring fan out over
    processes (see :mod:`repro.utils.sharding`).  The default ``1`` keeps
    every bank in-process and reproduces single-process results bitwise.
    ``shard_backend`` picks who executes per-shard work: ``auto`` (the
    default) uses the worker pool only for operations big enough to beat
    the IPC round trip, ``process``/``serial`` force one side, and
    ``remote`` sends each shard's batched round ops to a
    ``repro.net.shard_service`` daemon.  ``shard_hosts`` names those
    daemons — a ``host:port`` tuple/list, a comma-separated string, or a
    path to a TOML/JSON topology file (see :mod:`repro.net.topology`) —
    and is required (only) by the remote backend.

    ``population`` (a :class:`~repro.federation.pool.PopulationConfig`, an
    int size, or a mapping) switches the run to *virtual parties*: instead
    of eagerly building ``spec.num_parties`` live parties, a
    :class:`~repro.federation.pool.PartyPool` of ``population.size`` seeded
    specs materializes parties on dispatch and evicts them after their
    reports (bounded LRU), so populations of 10^5–10^6 clients run in flat
    memory.  ``population.size == spec.num_parties`` with an unbounded pool
    reproduces the eager path bitwise; the default ``None`` never builds a
    pool.

    ``privacy`` is the run's :class:`~repro.privacy.plan.PrivacyPlan`:
    ``masking`` turns every federated round into a pairwise
    secure-aggregation session (see
    :mod:`repro.privacy.secure_aggregation`) — party updates are sealed in
    their bank rows from training until their aggregation fires, so no
    unmasked individual update is ever resident server-side, including
    inside async stream buffers.  Sealing is exact (bit-domain), so a
    masked run reproduces its unmasked twin bit for bit.  ``threshold``
    adds Shamir t-of-n dropout recovery on top; ``sealed_scoring``
    sign-seals expert scoring; ``mask_seed`` overrides the mask root.

    ``secure_aggregation`` survives as the legacy boolean alias for
    ``privacy.masking``: ``secure_aggregation=True`` means
    ``PrivacyPlan(masking=True)`` and upgrades an off plan (one-way — the
    ``False`` default is indistinguishable from unset and never downgrades
    an explicit plan; declared contradictions error at the
    :class:`~repro.experiments.plan.ExperimentPlan` level).  After
    construction ``secure_aggregation`` always mirrors ``privacy.masking``.
    """

    rounds_burn_in: int = 6
    rounds_per_window: int = 6
    round_config: RoundConfig = field(default_factory=RoundConfig)
    eval_parties: int | None = None  # None = evaluate every party
    dtype: str | None = None  # alias for precision.params; None = unset
    precision: PrecisionPlan | None = None
    federation: FederationConfig = field(default_factory=FederationConfig)
    shards: int = 1
    shard_backend: str = "auto"
    shard_hosts: tuple[str, ...] = ()
    secure_aggregation: bool = False
    privacy: PrivacyPlan | None = None
    population: PopulationConfig | None = None

    def __post_init__(self) -> None:
        if self.rounds_burn_in <= 0 or self.rounds_per_window <= 0:
            raise ValueError("round counts must be positive")
        if self.eval_parties is not None and self.eval_parties <= 0:
            raise ValueError("eval_parties must be positive when given")
        from repro.net.topology import resolve_shard_hosts

        self.shard_hosts = resolve_shard_hosts(self.shard_hosts)
        self.shard_plan  # validates shards >= 1, backend name, host pairing
        plan = PrecisionPlan.from_value(self.precision)
        if self.dtype is not None:
            alias = str(resolve_dtype(self.dtype))
            if self.precision is None:
                plan = PrecisionPlan.from_value(alias)
            elif alias != plan.params:
                raise ValueError(
                    f"dtype={alias!r} conflicts with precision "
                    f"params={plan.params!r}; set one (dtype is the "
                    f"shorthand alias for precision.params)")
        self.precision = plan
        self.dtype = plan.params
        # The legacy bool upgrades masking one-way: ``secure_aggregation=
        # True`` means masking on (possibly via dataclasses.replace over an
        # already-resolved settings, whose privacy field is a stale sibling),
        # and ``False`` — the default, indistinguishable from unset — never
        # downgrades an explicit plan.  Declared contradictions are caught
        # at the ExperimentPlan level, where None means unset.
        privacy = PrivacyPlan.from_value(self.privacy)
        if self.secure_aggregation and not privacy.masking:
            privacy = privacy.with_masking()
        self.privacy = privacy
        self.secure_aggregation = privacy.masking
        if not isinstance(self.federation, FederationConfig):
            self.federation = FederationConfig.from_dict(self.federation)
        self.population = PopulationConfig.from_value(self.population)

    @property
    def np_dtype(self) -> np.dtype:
        return self.precision.np_params

    @property
    def shard_plan(self) -> ShardPlan:
        return ShardPlan(shards=self.shards, backend=self.shard_backend,
                         hosts=self.shard_hosts)

    def rounds_for_window(self, window: int) -> int:
        return self.rounds_burn_in if window == 0 else self.rounds_per_window

    def scaled_rounds(self, factor: float) -> "RunSettings":
        return replace(
            self,
            rounds_burn_in=max(1, int(round(self.rounds_burn_in * factor))),
            rounds_per_window=max(1, int(round(self.rounds_per_window * factor))),
        )


def profile_names() -> tuple[str, ...]:
    return _PROFILE_NAMES


def _local(epochs: int = 3, lr: float = 0.05) -> LocalTrainingConfig:
    return LocalTrainingConfig(epochs=epochs, batch_size=8, lr=lr, momentum=0.9)


def get_profile(profile: str, dataset: str) -> tuple[DatasetSpec, RunSettings]:
    """Resolve (scaled dataset spec, run settings) for a profile.

    * ``ci``    — seconds-scale: few parties, short windows.  The default for
      tests and benches.
    * ``small`` — minutes-scale: more parties/rounds, sharper separation
      between methods.
    * ``paper`` — the paper's party counts (50/200) with laptop-sized rounds.

    ``ci`` and ``small`` run the float32 parameter plane (detection
    statistics stay float64 and thresholds come from the recalibrated
    float32 table); ``paper`` keeps the all-float64 legacy plane.
    """
    spec = get_dataset_spec(dataset)
    if profile == "ci":
        parties = 16 if spec.num_parties <= 50 else 24
        spec = spec.scaled(num_parties=parties, train_per_window=48,
                           test_per_window=24)
        settings = RunSettings(
            rounds_burn_in=10,
            rounds_per_window=6,
            round_config=RoundConfig(participants_per_round=8,
                                     local=_local(epochs=3)),
            eval_parties=None,
            precision=PrecisionPlan(params="float32"),
        )
    elif profile == "small":
        parties = 24 if spec.num_parties <= 50 else 48
        spec = spec.scaled(num_parties=parties, train_per_window=48,
                           test_per_window=24)
        settings = RunSettings(
            rounds_burn_in=10,
            rounds_per_window=8,
            round_config=RoundConfig(participants_per_round=10, local=_local()),
            eval_parties=None,
            precision=PrecisionPlan(params="float32"),
        )
    elif profile == "paper":
        settings = RunSettings(
            rounds_burn_in=15,
            rounds_per_window=12,
            round_config=RoundConfig(participants_per_round=20, local=_local()),
            eval_parties=48 if spec.num_parties > 48 else None,
        )
    else:
        raise KeyError(f"unknown profile '{profile}'; available: {_PROFILE_NAMES}")
    return spec, settings
