"""Multi-strategy, multi-seed comparisons and paper-style renderers.

The grid execution itself lives in :mod:`repro.experiments`; this module
keeps the paper-facing surface: :data:`PAPER_METHODS` (table row order),
:func:`run_comparison` as a thin shim over :class:`ExperimentPlan`, and the
renderers for Tables 1-2 / Figures 3-8.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.experiments.registry import build_strategy, strategy_names
from repro.experiments.results import ComparisonResult
from repro.federation.strategy import ContinualStrategy

StrategyFactory = Callable[[], ContinualStrategy]

# Display order used by the paper's tables.
PAPER_METHODS = ("fedprox", "fielding", "oort", "shiftex", "feddrift")

__all__ = [
    "PAPER_METHODS",
    "ComparisonResult",
    "StrategyFactory",
    "default_strategies",
    "run_comparison",
    "render_drop_time_max_table",
    "convergence_series",
    "max_accuracy_table",
    "expert_distribution_table",
    "render_expert_distribution",
]


def default_strategies(methods: tuple[str, ...] = PAPER_METHODS,
                       ) -> dict[str, StrategyFactory]:
    """Factories for registered methods (default: the paper's five)."""
    available = set(strategy_names())
    unknown = [name for name in methods if name not in available]
    if unknown:
        raise KeyError(f"unknown strategies {unknown}; "
                       f"available: {sorted(available)}")
    return {name: (lambda n=name: build_strategy(n)) for name in methods}


def run_comparison(dataset: str,
                   strategies: dict[str, StrategyFactory] | None = None,
                   profile: str = "ci",
                   seeds: tuple[int, ...] = (0,),
                   settings_override=None,
                   spec_override=None,
                   precision=None) -> ComparisonResult:
    """Run every strategy over every seed on one dataset (serially).

    Back-compat shim: builds an :class:`ExperimentPlan` and runs it with the
    default :class:`SerialExecutor`.  New code should construct a plan
    directly — that unlocks parallel execution and plan files.

    ``precision`` overrides the profile's precision plan (a dtype string,
    spec string, or :class:`~repro.utils.precision.PrecisionPlan`) — the
    paper-reproduction benchmarks pin ``float64`` here so their artifacts
    track the paper's full-precision pipeline regardless of profile
    defaults.
    """
    # Imported here, not at module top: experiments.plan itself imports the
    # harness package while it initializes.
    from repro.experiments.plan import ExperimentPlan, StrategySpec
    if strategies is None:
        specs = [StrategySpec(label=n, method=n) for n in PAPER_METHODS]
    else:
        specs = [StrategySpec(label=name, factory=factory)
                 for name, factory in strategies.items()]
    plan = ExperimentPlan(dataset=dataset, strategies=tuple(specs),
                          seeds=tuple(seeds), profile=profile,
                          precision=precision,
                          spec_override=spec_override,
                          settings_override=settings_override)
    return plan.run()


# ---------------------------------------------------------------------- renderers

def render_drop_time_max_table(result: ComparisonResult, title: str = "") -> str:
    """Render a Table 1/2-style block: rows = methods, cells = Drop/Time/Max."""
    n_windows = result.num_windows() - 1  # exclude burn-in
    header_cells = "".join(
        f"| W{w} Drop | W{w} Time | W{w} Max " for w in range(1, n_windows + 1)
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(f"| Tech. {header_cells}|")
    lines.append("|" + "---|" * (1 + 3 * n_windows))
    for name, aggregates in result.aggregates.items():
        cells = []
        for agg in aggregates:
            drop = f"{agg.drop_mean:.2f}±{agg.drop_std:.2f}"
            time = agg.recovery_label()
            top = f"{agg.max_mean:.2f}±{agg.max_std:.2f}"
            cells.extend([drop, time, top])
        lines.append("| " + name + " | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def convergence_series(result: ComparisonResult) -> dict[str, list[float]]:
    """Mean (over seeds) concatenated accuracy traces — Figures 3-4 series."""
    out: dict[str, list[float]] = {}
    for name, runs in result.runs.items():
        traces = np.array([run.flat_series for run in runs])
        out[name] = [float(v) for v in traces.mean(axis=0)]
    return out


def max_accuracy_table(result: ComparisonResult) -> dict[str, list[tuple[float, float]]]:
    """(mean, std) max accuracy per window per strategy — Figures 5-6 series."""
    out: dict[str, list[tuple[float, float]]] = {}
    for name, runs in result.runs.items():
        per_window = np.array([run.max_accuracy_per_window for run in runs])
        means = per_window.mean(axis=0)
        stds = per_window.std(axis=0, ddof=1) if len(runs) > 1 else np.zeros_like(means)
        out[name] = [(float(m), float(s)) for m, s in zip(means, stds)]
    return out


def expert_distribution_table(result: ComparisonResult,
                              strategy: str = "shiftex",
                              seed_index: int = 0) -> list[dict[int, int]]:
    """Per-window expert -> party-count maps (Figures 7-8) for one run.

    A comparison holds one run per seed; ``seed_index`` selects which run's
    expert history to return (default: the first seed, matching the paper's
    single-seed expert-dynamics figures).
    """
    runs = result.runs.get(strategy)
    if not runs:
        raise KeyError(f"no runs recorded for strategy '{strategy}'")
    if not 0 <= seed_index < len(runs):
        raise IndexError(
            f"seed_index {seed_index} out of range for {len(runs)} run(s) "
            f"of strategy '{strategy}'")
    history = runs[seed_index].expert_history
    if history is None:
        raise ValueError(f"strategy '{strategy}' does not track expert assignments")
    return history


def render_expert_distribution(history: list[dict[int, int]]) -> str:
    """ASCII rendering of the Figures 7-8 stacked-assignment chart."""
    expert_ids = sorted({eid for dist in history for eid in dist})
    lines = ["window | " + " | ".join(f"expert {e}" for e in expert_ids)]
    lines.append("-------|" + "|".join(["---------"] * len(expert_ids)))
    for window, dist in enumerate(history):
        cells = [str(dist.get(e, 0)) for e in expert_ids]
        lines.append(f"  W{window}   | " + " | ".join(cells))
    return "\n".join(lines)
