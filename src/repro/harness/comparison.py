"""Multi-strategy, multi-seed comparisons and paper-style renderers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines import build_baseline
from repro.core import ShiftExStrategy
from repro.federation.strategy import ContinualStrategy
from repro.harness.profiles import get_profile
from repro.harness.runner import StrategyRunResult, run_strategy
from repro.metrics.aggregate import MetricAggregate, aggregate_summaries

StrategyFactory = Callable[[], ContinualStrategy]

# Display order used by the paper's tables.
PAPER_METHODS = ("fedprox", "fielding", "oort", "shiftex", "feddrift")


def default_strategies(methods: tuple[str, ...] = PAPER_METHODS,
                       ) -> dict[str, StrategyFactory]:
    """Factories for the paper's five compared techniques."""
    factories: dict[str, StrategyFactory] = {}
    for name in methods:
        if name == "shiftex":
            factories[name] = ShiftExStrategy
        else:
            factories[name] = (lambda n=name: build_baseline(n))
    return factories


@dataclass
class ComparisonResult:
    """All runs of one dataset comparison plus per-strategy aggregates."""

    dataset: str
    profile: str
    seeds: tuple[int, ...]
    runs: dict[str, list[StrategyRunResult]] = field(default_factory=dict)
    aggregates: dict[str, list[MetricAggregate]] = field(default_factory=dict)

    @property
    def strategy_names(self) -> list[str]:
        return list(self.runs)

    def num_windows(self) -> int:
        first = next(iter(self.runs.values()))[0]
        return len(first.window_series)


def run_comparison(dataset: str,
                   strategies: dict[str, StrategyFactory] | None = None,
                   profile: str = "ci",
                   seeds: tuple[int, ...] = (0,),
                   settings_override=None,
                   spec_override=None) -> ComparisonResult:
    """Run every strategy over every seed on one dataset."""
    if strategies is None:
        strategies = default_strategies()
    spec, settings = get_profile(profile, dataset)
    if spec_override is not None:
        spec = spec_override
    if settings_override is not None:
        settings = settings_override
    result = ComparisonResult(dataset=dataset, profile=profile, seeds=tuple(seeds))
    for name, factory in strategies.items():
        runs = []
        for seed in seeds:
            strategy = factory()
            runs.append(run_strategy(strategy, spec, settings, seed=seed))
        result.runs[name] = runs
        result.aggregates[name] = aggregate_summaries([r.summaries for r in runs])
    return result


# ---------------------------------------------------------------------- renderers

def render_drop_time_max_table(result: ComparisonResult, title: str = "") -> str:
    """Render a Table 1/2-style block: rows = methods, cells = Drop/Time/Max."""
    n_windows = result.num_windows() - 1  # exclude burn-in
    header_cells = "".join(
        f"| W{w} Drop | W{w} Time | W{w} Max " for w in range(1, n_windows + 1)
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(f"| Tech. {header_cells}|")
    lines.append("|" + "---|" * (1 + 3 * n_windows))
    for name, aggregates in result.aggregates.items():
        cells = []
        for agg in aggregates:
            drop = f"{agg.drop_mean:.2f}±{agg.drop_std:.2f}"
            time = agg.recovery_label()
            top = f"{agg.max_mean:.2f}±{agg.max_std:.2f}"
            cells.extend([drop, time, top])
        lines.append("| " + name + " | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def convergence_series(result: ComparisonResult) -> dict[str, list[float]]:
    """Mean (over seeds) concatenated accuracy traces — Figures 3-4 series."""
    out: dict[str, list[float]] = {}
    for name, runs in result.runs.items():
        traces = np.array([run.flat_series for run in runs])
        out[name] = [float(v) for v in traces.mean(axis=0)]
    return out


def max_accuracy_table(result: ComparisonResult) -> dict[str, list[tuple[float, float]]]:
    """(mean, std) max accuracy per window per strategy — Figures 5-6 series."""
    out: dict[str, list[tuple[float, float]]] = {}
    for name, runs in result.runs.items():
        per_window = np.array([run.max_accuracy_per_window for run in runs])
        means = per_window.mean(axis=0)
        stds = per_window.std(axis=0, ddof=1) if len(runs) > 1 else np.zeros_like(means)
        out[name] = [(float(m), float(s)) for m, s in zip(means, stds)]
    return out


def expert_distribution_table(result: ComparisonResult,
                              strategy: str = "shiftex") -> list[dict[int, int]]:
    """Per-window expert -> party-count maps (Figures 7-8), first seed."""
    runs = result.runs.get(strategy)
    if not runs:
        raise KeyError(f"no runs recorded for strategy '{strategy}'")
    history = runs[0].expert_history
    if history is None:
        raise ValueError(f"strategy '{strategy}' does not track expert assignments")
    return history


def render_expert_distribution(history: list[dict[int, int]]) -> str:
    """ASCII rendering of the Figures 7-8 stacked-assignment chart."""
    expert_ids = sorted({eid for dist in history for eid in dist})
    lines = ["window | " + " | ".join(f"expert {e}" for e in expert_ids)]
    lines.append("-------|" + "|".join(["---------"] * len(expert_ids)))
    for window, dist in enumerate(history):
        cells = [str(dist.get(e, 0)) for e in expert_ids]
        lines.append(f"  W{window}   | " + " | ".join(cells))
    return "\n".join(lines)
