"""Experiment harness: scenarios, runners, tables and figure series.

Maps the paper's evaluation (Section 6/7) onto the simulator:

* :mod:`~repro.harness.profiles` — scale profiles (``ci`` for fast runs,
  ``paper`` for full party counts);
* :mod:`~repro.harness.runner` — drives one strategy through the window/round
  life cycle and records accuracy series;
* :mod:`~repro.harness.comparison` — multi-strategy, multi-seed comparisons
  plus renderers for Tables 1-2 and the series behind Figures 3-8.

Grid composition (strategy registry, experiment plans, parallel executors,
run-event callbacks) lives in :mod:`repro.experiments`; this package keeps
the single-run driver and the paper-facing renderers.
"""

from repro.harness.profiles import RunSettings, get_profile, profile_names
from repro.harness.runner import StrategyRunResult, run_strategy
from repro.harness.comparison import (
    ComparisonResult,
    default_strategies,
    run_comparison,
    render_drop_time_max_table,
    render_expert_distribution,
    convergence_series,
    max_accuracy_table,
    expert_distribution_table,
)

__all__ = [
    "RunSettings",
    "get_profile",
    "profile_names",
    "StrategyRunResult",
    "run_strategy",
    "ComparisonResult",
    "default_strategies",
    "run_comparison",
    "render_drop_time_max_table",
    "render_expert_distribution",
    "convergence_series",
    "max_accuracy_table",
    "expert_distribution_table",
]
