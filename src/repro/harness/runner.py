"""Drive one strategy through the continual-FL life cycle.

Cross-cutting behavior (progress output, checkpoints, early stop) hooks in
through :class:`~repro.experiments.events.RunCallback` objects passed as
``callbacks`` — the runner fires ``on_run_start`` / ``on_round_end`` /
``on_window_end`` / ``on_run_end`` and honors stop requests by truncating
the remaining windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.federated import FederatedShiftDataset
from repro.data.registry import DatasetSpec
from repro.detection.thresholds import load_threshold_table
from repro.experiments.events import RunCallback, RunInfo, first_stop_reason
from repro.federation.accounting import CommunicationLedger
from repro.federation.async_engine import build_engine
from repro.federation.party import Party
from repro.federation.pool import PartyPool
from repro.federation.strategy import ContinualStrategy, StrategyContext
from repro.net.client import wire_totals
from repro.harness.profiles import RunSettings
from repro.metrics.windows import WindowSummary, summarize_run
from repro.nn.models import build_model
from repro.privacy.sealed_scoring import ScoreSeal
from repro.utils.rng import spawn_rng


@dataclass
class StrategyRunResult:
    """Everything one run produces: series, summaries, state, overheads."""

    strategy_name: str
    dataset: str
    seed: int
    window_series: list[list[float]]  # accuracy (%) per window: entry + per round
    summaries: list[WindowSummary]
    state_log: list[dict]  # describe_state() at each window end
    expert_history: list[dict[int, int]] | None  # ShiftEx expert distributions
    ledger_summary: dict[str, float]
    profiler_summary: dict[str, dict[str, float]]
    extras: dict = field(default_factory=dict)

    @property
    def flat_series(self) -> list[float]:
        """Concatenated accuracy trace across windows (Figures 3-4)."""
        return [a for series in self.window_series for a in series]

    @property
    def max_accuracy_per_window(self) -> list[float]:
        return [max(series) for series in self.window_series]


def _build_parties(spec: DatasetSpec, seed: int, dtype=None) -> dict[int, Party]:
    parties: dict[int, Party] = {}
    for pid in range(spec.num_parties):
        model = build_model(spec.model_name, spec.input_shape, spec.num_classes,
                            spawn_rng(seed, "party-model", pid), dtype=dtype)
        parties[pid] = Party(pid, model, spec.num_classes, seed=seed)
    return parties


def run_strategy(strategy: ContinualStrategy, spec: DatasetSpec,
                 settings: RunSettings, seed: int = 0,
                 dataset: FederatedShiftDataset | None = None,
                 callbacks: Sequence[RunCallback] = (),
                 ) -> StrategyRunResult:
    """Run one strategy over every window of a dataset spec.

    Per window: feed parties their new data, let the strategy react
    (``start_window``), evaluate the post-shift entry accuracy, train for the
    window's rounds evaluating after each, then close the window.  Returns
    accuracy in percent.

    ``callbacks`` observe the run (see :mod:`repro.experiments.events`); a
    stop request ends the run after the window in which it was raised, with
    ``extras["stopped_early"]`` recording the truncation.
    """
    ds = dataset if dataset is not None else FederatedShiftDataset(spec)
    dtype = settings.np_dtype
    # ``settings.population`` switches the run to virtual parties: a
    # PartyPool materializes each party on dispatch and evicts it after its
    # report, so populations far beyond the eager dict's reach stay flat in
    # memory.  population.size == spec.num_parties with an unbounded pool
    # reproduces the eager path bitwise (tests/test_party_pool.py pins it).
    pool = None
    if settings.population is not None:
        pool = PartyPool.from_config(spec, ds, settings.population,
                                     seed=seed, dtype=dtype)
        parties = pool
    else:
        parties = _build_parties(spec, seed, dtype=dtype)
    num_parties = pool.population if pool is not None else spec.num_parties

    def model_factory():
        return build_model(spec.model_name, spec.input_shape, spec.num_classes,
                           spawn_rng(seed, "global-model-init"), dtype=dtype)

    # None unless the run's federation config changes behavior — the default
    # stays on the engine-less synchronous path byte for byte.
    shard_plan = settings.shard_plan
    engine = build_engine(settings.federation, seed=seed,
                          num_parties=num_parties,
                          shard_plan=shard_plan)
    # Snapshot shard-service wire counters so this run's delta (and only
    # its delta) lands in the ledger under the shard_service category.
    wire_sent0, wire_received0 = wire_totals()
    # The privacy plan's mask root defaults to the run seed (mask streams
    # are label-namespaced, so they never collide with model/data draws);
    # ``mask_seed`` pins it independently of the data/model seed.
    privacy = settings.privacy
    mask_root = privacy.mask_root(seed) if privacy is not None else seed
    ctx = StrategyContext(
        spec=spec,
        parties=parties,
        model_factory=model_factory,
        round_config=settings.round_config,
        seed=seed,
        federation=engine,
        shard_plan=shard_plan,
        # Byte accounting follows the run's parameter dtype: a float32
        # plane moves half the bytes of its float64 twin, exactly.
        ledger=CommunicationLedger.from_precision(settings.precision),
        secure_aggregation=mask_root if settings.secure_aggregation else None,
        privacy=privacy,
        score_seal=(ScoreSeal(seed=mask_root)
                    if privacy is not None and privacy.sealed_scoring
                    else None),
        precision=settings.precision,
        # The committed threshold table for this parameter precision; the
        # float64 table repeats the historical values, so loading it leaves
        # the legacy plane bit-for-bit unchanged.
        thresholds=load_threshold_table(settings.precision),
    )
    strategy.setup(ctx)

    eval_count = settings.eval_parties
    if (eval_count is None and pool is not None
            and pool.population > spec.num_parties):
        # "Evaluate everyone" is O(population); at scale default to a seeded
        # subset instead (the eager-equivalence regime is untouched).
        eval_count = min(64, pool.population)
    if eval_count is not None and eval_count < num_parties:
        eval_rng = spawn_rng(seed, "eval-subset")
        eval_ids = sorted(int(p) for p in eval_rng.choice(
            num_parties, size=eval_count, replace=False))
    else:
        eval_ids = sorted(parties)

    def mean_accuracy_pct() -> float:
        accs = [parties[pid].evaluate(strategy.params_for_party(pid))[0]
                for pid in eval_ids]
        return 100.0 * float(np.mean(accs))

    window_series: list[list[float]] = []
    state_log: list[dict] = []
    expert_history: list[dict[int, int]] | None = None

    info = RunInfo(
        strategy_name=strategy.name,
        dataset=spec.name,
        seed=seed,
        num_windows=spec.num_windows,
        rounds_burn_in=settings.rounds_burn_in,
        rounds_per_window=settings.rounds_per_window,
    )
    for cb in callbacks:
        # A shared callback instance must not carry a stop request from a
        # previous run into this one.
        clear = getattr(cb, "clear_stop", None)
        if callable(clear):
            clear()
        cb.on_run_start(info)

    stop_reason: str | None = None
    for window in range(spec.num_windows):
        if pool is not None:
            pool.begin_window(window)
        else:
            for pid in range(spec.num_parties):
                parties[pid].set_window_data(ds.party_window(pid, window))
        if engine is not None:
            engine.begin_window(window)
        strategy.start_window(window)
        series = [mean_accuracy_pct()]
        for round_index in range(settings.rounds_for_window(window)):
            if engine is not None:
                engine.advance((window, round_index))
            strategy.run_round(window, round_index)
            accuracy = mean_accuracy_pct()
            series.append(accuracy)
            for cb in callbacks:
                cb.on_round_end(info, window, round_index, accuracy)
            stop_reason = first_stop_reason(callbacks)
            if stop_reason is not None:
                break
        strategy.end_window(window)
        window_series.append(series)
        state = strategy.describe_state()
        state_log.append(state)
        if hasattr(strategy, "expert_distribution"):
            if expert_history is None:
                expert_history = []
            expert_history.append(dict(strategy.expert_distribution()))
        for cb in callbacks:
            cb.on_window_end(info, window, list(series), state)
        ds.evict_window(window)
        if stop_reason is None:
            stop_reason = first_stop_reason(callbacks)
        if stop_reason is not None:
            break

    wire_sent1, wire_received1 = wire_totals()
    if wire_sent1 > wire_sent0 or wire_received1 > wire_received0:
        ctx.ledger.record_wire("shard_service", wire_sent1 - wire_sent0,
                               wire_received1 - wire_received0)
    result = StrategyRunResult(
        strategy_name=strategy.name,
        dataset=spec.name,
        seed=seed,
        window_series=window_series,
        # A stop during the burn-in window leaves nothing to summarize.
        summaries=(summarize_run(window_series)
                   if len(window_series) >= 2 else []),
        state_log=state_log,
        expert_history=expert_history,
        ledger_summary=ctx.ledger.summary(),
        profiler_summary=ctx.profiler.summary(),
    )
    if engine is not None:
        result.extras["federation"] = engine.summary()
    if pool is not None:
        result.extras["party_pool"] = pool.summary()
    if stop_reason is not None:
        result.extras.update(
            stopped_early=True,
            stop_reason=stop_reason,
            completed_windows=len(window_series),
        )
    for cb in callbacks:
        cb.on_run_end(info, result)
    return result
