"""Small validation helpers shared across subsystems."""

from __future__ import annotations

import numpy as np


def check_2d(x: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``x`` as a 2-D float array, raising a clear error otherwise."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n_samples, n_features); got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one sample")
    return arr


def check_same_shape(a: np.ndarray, b: np.ndarray, name: str = "arrays") -> None:
    if np.shape(a) != np.shape(b):
        raise ValueError(f"{name} must have matching shapes; got {np.shape(a)} vs {np.shape(b)}")


def check_probability_vector(p: np.ndarray, name: str = "distribution") -> np.ndarray:
    """Validate a discrete probability vector (non-negative, sums to ~1)."""
    arr = np.asarray(p, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D; got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(arr < -1e-12):
        raise ValueError(f"{name} has negative entries")
    total = float(arr.sum())
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"{name} must sum to 1; sums to {total}")
    return np.clip(arr, 0.0, None)


def normalize_histogram(counts: np.ndarray) -> np.ndarray:
    """Turn a count vector into a probability vector (uniform if all zero)."""
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"histogram must be 1-D; got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("histogram must be non-empty")
    if np.any(arr < 0):
        raise ValueError("histogram counts must be non-negative")
    total = arr.sum()
    if total == 0:
        return np.full(arr.size, 1.0 / arr.size)
    return arr / total


def doc_first_line(obj, fallback: str = "") -> str:
    """First line of an object's docstring, or ``fallback`` when absent."""
    import inspect
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0] if doc else fallback
