"""Shared utilities: seeded RNG streams, parameter vector packing, validation.

Everything in :mod:`repro` is deterministic given a seed.  The helpers here
centralize how randomness is derived (:func:`spawn_rng`), how model parameter
lists are flattened to vectors and back (:class:`ParamSpec`), and small
validation utilities used across subsystems.
"""

from repro.utils.rng import seed_sequence, spawn_rng
from repro.utils.params import (
    ParamBank,
    ParamSpec,
    ShardedParamBank,
    cosine_similarity_matrix,
    flatten_params,
    make_param_bank,
    resolve_dtype,
    stack_params,
    unflatten_params,
    zeros_like_params,
    add_scaled,
    weighted_average,
    params_cosine_similarity,
    params_l2_distance,
)
from repro.utils.sharding import ShardPlan, resolve_shard_plan, shard_ranges
from repro.utils.validation import (
    check_probability_vector,
    check_2d,
    check_same_shape,
    normalize_histogram,
)
from repro.utils.serialization import (
    save_params,
    load_params,
    save_expert_registry,
    load_expert_registry,
    save_run_result,
    load_run_result_dict,
)

__all__ = [
    "seed_sequence",
    "spawn_rng",
    "ParamBank",
    "ParamSpec",
    "cosine_similarity_matrix",
    "resolve_dtype",
    "stack_params",
    "flatten_params",
    "unflatten_params",
    "zeros_like_params",
    "add_scaled",
    "weighted_average",
    "params_cosine_similarity",
    "params_l2_distance",
    "check_probability_vector",
    "check_2d",
    "check_same_shape",
    "normalize_histogram",
    "save_params",
    "load_params",
    "save_expert_registry",
    "load_expert_registry",
    "save_run_result",
    "load_run_result_dict",
]
