"""Model-parameter vector utilities.

Federated aggregation, FedProx proximal terms, expert consolidation and
cosine-similarity merging all operate on *flattened* parameter vectors.
:class:`ParamSpec` records the shapes of a model's parameter list so vectors
round-trip losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

Params = list[np.ndarray]


@dataclass(frozen=True)
class ParamSpec:
    """Shapes and sizes of a parameter list, for flatten/unflatten."""

    shapes: tuple[tuple[int, ...], ...]

    @classmethod
    def of(cls, params: Params) -> "ParamSpec":
        return cls(shapes=tuple(tuple(p.shape) for p in params))

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(int(np.prod(s)) if s else 1 for s in self.shapes)

    @property
    def total_size(self) -> int:
        return int(sum(self.sizes))

    def unflatten(self, vector: np.ndarray) -> Params:
        if vector.ndim != 1 or vector.size != self.total_size:
            raise ValueError(
                f"vector of size {vector.size} does not match spec "
                f"with total size {self.total_size}"
            )
        params: Params = []
        offset = 0
        for shape, size in zip(self.shapes, self.sizes):
            params.append(vector[offset:offset + size].reshape(shape).copy())
            offset += size
        return params


def flatten_params(params: Params) -> np.ndarray:
    """Concatenate a parameter list into one float64 vector."""
    if not params:
        return np.zeros(0)
    return np.concatenate([np.asarray(p, dtype=np.float64).ravel() for p in params])


def unflatten_params(vector: np.ndarray, like: Params) -> Params:
    """Reshape ``vector`` into the shapes of the reference list ``like``."""
    return ParamSpec.of(like).unflatten(np.asarray(vector, dtype=np.float64))


def zeros_like_params(params: Params) -> Params:
    return [np.zeros_like(p) for p in params]


def add_scaled(accum: Params, params: Params, scale: float) -> None:
    """In-place ``accum += scale * params`` (element-wise over the lists)."""
    if len(accum) != len(params):
        raise ValueError("parameter lists have different lengths")
    for a, p in zip(accum, params):
        a += scale * p


def weighted_average(param_sets: list[Params], weights: list[float]) -> Params:
    """Weighted average of parameter lists (the FedAvg aggregation rule)."""
    if not param_sets:
        raise ValueError("no parameter sets to average")
    if len(param_sets) != len(weights):
        raise ValueError("param_sets and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    out = zeros_like_params(param_sets[0])
    for params, weight in zip(param_sets, weights):
        add_scaled(out, params, weight / total)
    return out


def params_cosine_similarity(a: Params, b: Params) -> float:
    """Cosine similarity between two flattened parameter lists.

    This is the expert-consolidation criterion in ShiftEx (Section 5.2.5):
    ``cos(theta_i, theta_j) > tau`` triggers a merge.
    """
    va, vb = flatten_params(a), flatten_params(b)
    na, nb = float(np.linalg.norm(va)), float(np.linalg.norm(vb))
    if na == 0.0 or nb == 0.0:
        return 1.0 if na == nb else 0.0
    return float(np.dot(va, vb) / (na * nb))


def params_l2_distance(a: Params, b: Params) -> float:
    """Euclidean distance between two flattened parameter lists."""
    return float(np.linalg.norm(flatten_params(a) - flatten_params(b)))
