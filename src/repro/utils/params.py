"""Model-parameter plane: flat vectors, zero-copy views, contiguous banks.

Federated aggregation, FedProx proximal terms, expert consolidation and
cosine-similarity merging all operate on *flattened* parameter vectors.
:class:`ParamSpec` records the shapes of a model's parameter list so vectors
round-trip losslessly; :class:`ParamBank` holds many flattened models as rows
of one contiguous ``(n_models, dim)`` matrix so aggregation and similarity
scoring run as single BLAS calls instead of Python loops.

Zero-copy conventions
---------------------
* :meth:`ParamSpec.view` reshapes a flat vector into a parameter list of
  *views* — mutating a view mutates the vector (and vice versa).
* :func:`flatten_params` detects parameter lists that are consecutive views
  of one contiguous base vector (the layout :class:`~repro.nn.network.Sequential`
  and :class:`ParamBank` produce) and returns that base without copying.
* :meth:`ParamBank.row_params` exposes a bank row as shaped views.  Bank
  growth may relocate the buffer, so do not cache row views across
  ``alloc`` calls — re-fetch them instead.

Copy-on-write and refcounting invariants
----------------------------------------
:class:`ParamBank` rows carry reference counts so cheap clones can share
storage copy-on-write.  Contributors touching the bank must preserve:

1. **Every `alloc` is balanced by exactly one `release` per reference.**
   A slot is recycled (returned by a later ``alloc``) only when its count
   reaches zero; releasing a dead row raises ``KeyError`` rather than
   corrupting another holder's data.
2. **Never write through a shared row.**  ``share()`` hands out the *same*
   row index with an incremented count; any writer must first call
   ``ensure_private()`` (which returns a possibly different row index the
   caller must adopt) so other holders keep seeing the old bytes.
   ``write_row`` / ``row_params(writeable=True)`` on a shared row is the
   one way to silently break an unrelated expert.
3. **Row views do not survive growth.**  ``alloc`` may relocate the
   backing buffer; re-fetch ``row()`` / ``row_params()`` views after any
   allocation instead of caching them.
4. **`matrix(rows=None)` is slot order, not allocation order.**  Once any
   row has been released and recycled the two diverge — callers pairing
   rows with positional metadata (weights, expert ids) must pass explicit
   ``rows``.

Sharding
--------
:class:`ShardedParamBank` is a drop-in facade over N single-shard banks
backed by :mod:`multiprocessing.shared_memory`, splitting rows across
shards so aggregation and similarity kernels can fan out over processes
(see :mod:`repro.utils.sharding`).  ``matrix()`` stays the single seam every
consumer goes through: per-shard buffers are zero-copy, the stacked matrix
is gathered only on explicit materialization.  With ``ShardPlan(shards=1)``
(the default everywhere) no sharded bank is ever constructed and every code
path is byte-for-byte the in-process one.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.utils.sharding import (
    ShardPlan,
    resolve_shard_plan,
    shard_ranges,
    submit_shard_op_batches,
    warn_remote_fallback,
)

Params = list[np.ndarray]

DEFAULT_DTYPE = np.float64


def resolve_dtype(dtype) -> np.dtype:
    """Normalize a dtype knob (``None``/str/``np.dtype``) to a float dtype."""
    if dtype is None:
        return np.dtype(DEFAULT_DTYPE)
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ValueError(f"unknown parameter dtype {dtype!r}") from exc
    if resolved.kind != "f":
        raise ValueError(f"parameter dtype must be floating point; got {resolved}")
    return resolved


@dataclass(frozen=True)
class ParamSpec:
    """Shapes and sizes of a parameter list, for flatten/unflatten."""

    shapes: tuple[tuple[int, ...], ...]

    @classmethod
    def of(cls, params: Params) -> "ParamSpec":
        return cls(shapes=tuple(tuple(p.shape) for p in params))

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(int(np.prod(s)) if s else 1 for s in self.shapes)

    @property
    def total_size(self) -> int:
        return int(sum(self.sizes))

    def _check_vector(self, vector: np.ndarray) -> None:
        if vector.ndim != 1 or vector.size != self.total_size:
            raise ValueError(
                f"vector of size {vector.size} does not match spec "
                f"with total size {self.total_size}"
            )

    def unflatten(self, vector: np.ndarray) -> Params:
        """Reshape ``vector`` into an owning parameter list (copies)."""
        self._check_vector(vector)
        params: Params = []
        offset = 0
        for shape, size in zip(self.shapes, self.sizes):
            params.append(vector[offset:offset + size].reshape(shape).copy())
            offset += size
        return params

    def view(self, vector: np.ndarray) -> Params:
        """Reshape ``vector`` into a parameter list of zero-copy views.

        Mutating a returned array mutates ``vector`` (and vice versa); the
        list round-trips through :func:`flatten_params` without copying.
        ``vector`` must be contiguous — a copy here would silently break
        the aliasing contract.
        """
        vector = np.asarray(vector)
        if not vector.flags.c_contiguous:
            raise ValueError(
                "ParamSpec.view requires a contiguous vector; copy it first "
                "(views of a hidden copy would not alias the caller's data)"
            )
        self._check_vector(vector)
        params: Params = []
        offset = 0
        for shape, size in zip(self.shapes, self.sizes):
            params.append(vector[offset:offset + size].reshape(shape))
            offset += size
        return params


def _root_base(array: np.ndarray) -> np.ndarray | None:
    base = array.base
    while isinstance(base, np.ndarray) and base.base is not None:
        base = base.base
    return base if isinstance(base, np.ndarray) else None


def _contiguous_base(params: Params) -> np.ndarray | None:
    """The base vector when ``params`` are consecutive views of one buffer.

    Returns the covering slice of the shared contiguous base (zero-copy,
    flattened when the base is multi-dimensional, e.g. a ``ParamBank``
    buffer), or None when the list does not tile a single buffer.
    """
    base = _root_base(params[0])
    if base is None or not base.flags.c_contiguous:
        return None
    itemsize = base.itemsize
    base_addr = base.__array_interface__["data"][0]
    first_addr = params[0].__array_interface__["data"][0]
    if (first_addr - base_addr) % itemsize:
        return None
    start = (first_addr - base_addr) // itemsize
    cursor = start
    for p in params:
        if p.size == 0:
            continue
        if (_root_base(p) is not base or p.dtype != base.dtype
                or not p.flags.c_contiguous):
            return None
        if p.__array_interface__["data"][0] != base_addr + cursor * itemsize:
            return None
        cursor += p.size
    flat_base = base if base.ndim == 1 else base.reshape(-1)
    if start == 0 and cursor == flat_base.size:
        return flat_base
    return flat_base[start:cursor]


def flatten_params(params: Params, dtype=None) -> np.ndarray:
    """Concatenate a parameter list into one flat vector.

    When the list already consists of consecutive views over one contiguous
    buffer (models bound to flat storage, bank rows) the buffer itself is
    returned as a zero-copy view; otherwise the arrays are concatenated.
    ``dtype`` forces the result dtype (default: float64 for plain lists,
    the shared buffer's dtype on the zero-copy path).
    """
    if not params:
        return np.zeros(0, dtype=resolve_dtype(dtype))
    base = _contiguous_base(params)
    if base is not None and (dtype is None or base.dtype == np.dtype(dtype)):
        return base
    target = np.dtype(dtype) if dtype is not None else np.float64
    return np.concatenate([np.asarray(p, dtype=target).ravel() for p in params])


def unflatten_params(vector: np.ndarray, like: Params) -> Params:
    """Reshape ``vector`` into the shapes of the reference list ``like``."""
    return ParamSpec.of(like).unflatten(np.asarray(vector, dtype=np.float64))


def zeros_like_params(params: Params) -> Params:
    return [np.zeros_like(p) for p in params]


def add_scaled(accum: Params, params: Params, scale: float) -> None:
    """In-place ``accum += scale * params`` (element-wise over the lists)."""
    if len(accum) != len(params):
        raise ValueError("parameter lists have different lengths")
    for a, p in zip(accum, params):
        a += scale * p


def stack_params(param_sets: list[Params], dtype=None,
                 names: list[str] | None = None,
                 ) -> tuple[np.ndarray, ParamSpec]:
    """Stack parameter lists into one ``(n_sets, dim)`` matrix.

    Every list must match the first one's shapes; a mismatch raises a
    ``ValueError`` naming the offending entry (``names[i]`` when given, the
    index otherwise) and both shape tuples.
    """
    if not param_sets:
        raise ValueError("no parameter sets to stack")
    spec = ParamSpec.of(param_sets[0])
    if dtype is None:
        dtype = np.result_type(*(p.dtype for p in param_sets[0])) \
            if param_sets[0] else np.dtype(DEFAULT_DTYPE)
    matrix = np.empty((len(param_sets), spec.total_size), dtype=dtype)
    for i, params in enumerate(param_sets):
        got = ParamSpec.of(params)
        if got != spec:
            who = names[i] if names is not None else f"entry {i}"
            raise ValueError(
                f"parameter shapes of {who} do not align: expected "
                f"{spec.shapes}, got {got.shapes}"
            )
        matrix[i] = flatten_params(params, dtype=dtype)
    return matrix, spec


def weighted_average(param_sets: list[Params], weights: list[float],
                     names: list[str] | None = None) -> Params:
    """Weighted average of parameter lists (the FedAvg aggregation rule).

    Computed as a single ``w @ M`` matrix-vector product over the stacked
    flattened sets.  ``names`` labels the sets in shape-mismatch errors
    (e.g. party ids); the result is a view list over one fresh flat vector.
    """
    if not param_sets:
        raise ValueError("no parameter sets to average")
    if len(param_sets) != len(weights):
        raise ValueError("param_sets and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    matrix, spec = stack_params(param_sets, names=names)
    scaled = np.asarray(weights, dtype=matrix.dtype) / total
    return spec.view(scaled @ matrix)


def cosine_similarity_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity of the rows of ``matrix`` in one matmul.

    Zero rows follow the :func:`params_cosine_similarity` conventions:
    similarity 1 between two zero rows, 0 between a zero and a non-zero row.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix; got shape {matrix.shape}")
    norms = np.linalg.norm(matrix, axis=1)
    zero = norms == 0.0
    safe = np.where(zero, 1.0, norms)
    unit = matrix / safe[:, None]
    sims = unit @ unit.T
    if zero.any():
        sims[zero, :] = 0.0
        sims[:, zero] = 0.0
        sims[np.ix_(zero, zero)] = 1.0
    return sims


class ParamBank:
    """Contiguous ``(n_rows, dim)`` storage for flattened parameter sets.

    Rows are allocated/released with reference counts so cheap clones can
    share storage copy-on-write (:meth:`share` / :meth:`ensure_private`).
    ``matrix()`` exposes the live rows for single-matmul aggregation and
    similarity scoring.  Growth may relocate the buffer — do not cache row
    views across ``alloc`` calls.
    """

    def __init__(self, spec: ParamSpec, dtype=None, capacity: int = 4) -> None:
        self.spec = spec
        self.dtype = resolve_dtype(dtype)
        self._buf = self._new_buffer((max(int(capacity), 1), spec.total_size))
        self._retire_buffer()
        self._refs: list[int] = []  # per-slot reference count (0 = free)
        self._free: list[int] = []

    # ------------------------------------------------------------------ storage hooks

    def _new_buffer(self, shape: tuple[int, int]) -> np.ndarray:
        """Allocate a zeroed backing buffer (subclasses swap the storage)."""
        return np.zeros(shape, dtype=self.dtype)

    def _retire_buffer(self) -> None:
        """Called after `_buf` moved to a buffer from `_new_buffer`."""

    # ------------------------------------------------------------------ construction

    @classmethod
    def from_param_sets(cls, param_sets: list[Params], dtype=None,
                        names: list[str] | None = None) -> "ParamBank":
        """Stack parameter lists into a fresh bank (one row per set)."""
        matrix, spec = stack_params(param_sets, dtype=dtype, names=names)
        bank = cls(spec, dtype=matrix.dtype, capacity=len(param_sets))
        bank._buf[:len(param_sets)] = matrix
        bank._refs = [1] * len(param_sets)
        return bank

    # ------------------------------------------------------------------ row lifecycle

    @property
    def n_slots(self) -> int:
        return len(self._refs)

    @property
    def n_rows(self) -> int:
        """Number of live (referenced) rows."""
        return sum(1 for r in self._refs if r > 0)

    @property
    def dim(self) -> int:
        return self.spec.total_size

    def _grow(self, min_slots: int) -> None:
        if min_slots <= self._buf.shape[0]:
            return
        new_cap = max(min_slots, 2 * self._buf.shape[0])
        buf = self._new_buffer((new_cap, self.dim))
        buf[:self._buf.shape[0]] = self._buf
        self._buf = buf
        self._retire_buffer()

    def _check_row(self, row: int) -> None:
        if not 0 <= row < len(self._refs) or self._refs[row] == 0:
            raise KeyError(f"row {row} is not a live bank row")

    def alloc(self, values: Params | np.ndarray | None = None) -> int:
        """Allocate a row (refcount 1), optionally initialized with values."""
        if self._free:
            row = self._free.pop()
        else:
            row = len(self._refs)
            self._refs.append(0)
            self._grow(row + 1)
        self._refs[row] = 1
        if values is None:
            self._buf[row] = 0.0
        else:
            self.write_row(row, values)
        return row

    def share(self, row: int) -> int:
        """Add a copy-on-write reference to ``row``."""
        self._check_row(row)
        self._refs[row] += 1
        return row

    def release(self, row: int) -> None:
        """Drop one reference; the slot is recycled when none remain."""
        self._check_row(row)
        self._refs[row] -= 1
        if self._refs[row] == 0:
            self._free.append(row)

    def refcount(self, row: int) -> int:
        self._check_row(row)
        return self._refs[row]

    def is_shared(self, row: int) -> bool:
        return self.refcount(row) > 1

    def ensure_private(self, row: int) -> int:
        """Copy-on-write split: return a row only this caller references."""
        self._check_row(row)
        if self._refs[row] == 1:
            return row
        self._refs[row] -= 1
        values = self._buf[row].copy()  # copy before alloc: growth relocates
        return self.alloc(values)

    # ------------------------------------------------------------------ row access

    def row(self, row: int) -> np.ndarray:
        """Zero-copy 1-D view of one row."""
        self._check_row(row)
        return self._buf[row]

    def row_params(self, row: int, writeable: bool = True) -> Params:
        """The row as shaped zero-copy parameter views."""
        views = self.spec.view(self.row(row))
        if not writeable:
            for v in views:
                v.flags.writeable = False
        return views

    def write_row(self, row: int, values: Params | np.ndarray) -> None:
        self._check_row(row)
        if isinstance(values, np.ndarray) and values.ndim == 1:
            self.spec._check_vector(values)
            np.copyto(self._buf[row], values, casting="same_kind")
            return
        got = ParamSpec.of(values)
        if got != self.spec:
            raise ValueError(
                f"parameter shapes do not match bank spec: expected "
                f"{self.spec.shapes}, got {got.shapes}"
            )
        target = self.spec.view(self._buf[row])
        for dst, src in zip(target, values):
            np.copyto(dst, src, casting="same_kind")

    # ------------------------------------------------------------------ matrix ops

    def matrix(self, rows: list[int] | None = None) -> np.ndarray:
        """Stacked ``(k, dim)`` matrix of the given (default: all live) rows.

        A zero-copy view when the rows form an ascending contiguous run,
        otherwise one gather copy.  With ``rows=None`` the order is *slot*
        order, which diverges from allocation order once a released slot has
        been recycled — callers pairing rows with positional metadata
        (weights, expert ids) must pass explicit ``rows``.
        """
        if rows is None:
            rows = [i for i, r in enumerate(self._refs) if r > 0]
        else:
            for row in rows:
                self._check_row(row)
        if not rows:
            return np.zeros((0, self.dim), dtype=self.dtype)
        first, last = rows[0], rows[-1]
        if rows == list(range(first, last + 1)):
            return self._buf[first:last + 1]
        return self._buf[np.asarray(rows)]

    def weighted_combine(self, weights, rows: list[int] | None = None) -> np.ndarray:
        """FedAvg kernel: normalized ``w @ matrix`` in one BLAS call.

        ``weights`` align positionally with ``rows``; pass explicit ``rows``
        whenever any row has ever been released (see :meth:`matrix`).
        """
        matrix = self.matrix(rows)
        weights = np.asarray(weights, dtype=self.dtype)
        if weights.shape != (matrix.shape[0],):
            raise ValueError(
                f"weights shape {weights.shape} does not match "
                f"{matrix.shape[0]} rows"
            )
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        return (weights / total) @ matrix

    def weighted_combine_many(self, weight_sets,
                              rows_sets: list | None = None,
                              ) -> list[np.ndarray]:
        """Many :meth:`weighted_combine` selections at once.

        For the in-process bank this is just the loop; the sharded bank
        overrides it to ship all selections in one submission per shard.
        The two signatures stay aligned so round code is backend-agnostic.
        """
        if rows_sets is None:
            rows_sets = [None] * len(weight_sets)
        return [self.weighted_combine(w, r)
                for w, r in zip(weight_sets, rows_sets)]

    def cosine_matrix(self, rows: list[int] | None = None,
                      seal=None) -> np.ndarray:
        """Pairwise cosine similarity of rows via one normalized matmul.

        ``seal`` (a :class:`~repro.privacy.sealed_scoring.ScoreSeal`, duck-
        typed to avoid an import cycle) runs the kernel over sign-sealed
        copies of the rows instead of the plaintext gather.  The ``±1``
        factors cancel term-by-term inside every inner product, so the
        masked path is bitwise-identical to the plaintext one at any
        precision — while the stacked operand the kernel actually touches
        carries no plaintext parameter row.
        """
        matrix = self.matrix(rows)
        if seal is not None:
            matrix = seal.seal(matrix)
        return cosine_similarity_matrix(matrix)

    def astype(self, dtype) -> "ParamBank":
        """A new bank with every slot cast to ``dtype`` (refcounts preserved)."""
        dtype = resolve_dtype(dtype)
        bank = ParamBank(self.spec, dtype=dtype, capacity=max(self.n_slots, 1))
        bank._buf[:self.n_slots] = self._buf[:self.n_slots].astype(dtype)
        bank._refs = list(self._refs)
        bank._free = list(self._free)
        return bank

    @property
    def nbytes(self) -> int:
        return int(self._buf.nbytes)


class _ShmShard(ParamBank):
    """One shard of a :class:`ShardedParamBank`: a bank in shared memory.

    The backing buffer lives in a named ``multiprocessing.shared_memory``
    segment so worker processes can attach to it zero-copy (see
    :func:`repro.utils.sharding._attach`).  Growth allocates a fresh segment
    and *unlinks* the old name immediately; the old mapping itself is kept
    open until :meth:`close` because previously handed-out row views may
    still alias it (the same "views do not survive growth" caveat as the
    in-process bank, made explicit by the extra segment).
    """

    def __init__(self, spec: ParamSpec, dtype=None, capacity: int = 4) -> None:
        self._shm = None
        self._incoming = None
        self._retired: list = []
        super().__init__(spec, dtype=dtype, capacity=capacity)

    def _new_buffer(self, shape: tuple[int, int]) -> np.ndarray:
        from multiprocessing import shared_memory

        nbytes = max(1, int(shape[0]) * int(shape[1]) * self.dtype.itemsize)
        self._incoming = shared_memory.SharedMemory(create=True, size=nbytes)
        arr = np.ndarray(shape, dtype=self.dtype, buffer=self._incoming.buf)
        arr[...] = 0.0
        return arr

    def _retire_buffer(self) -> None:
        old, self._shm = self._shm, self._incoming
        self._incoming = None
        if old is not None:
            try:
                old.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._retired.append(old)

    @property
    def token(self) -> tuple[str, tuple[int, int], str]:
        """(shm name, buffer shape, dtype) — what a worker needs to attach.

        Re-read before every operation: growth swaps the segment name.
        """
        return (self._shm.name, tuple(self._buf.shape), str(self.dtype))

    def close(self) -> None:
        """Unlink the live segment and release every kept-open mapping."""
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._retired.append(self._shm)
            self._shm = None
        self._buf = np.zeros((0, self.spec.total_size), dtype=self.dtype)
        retired, self._retired = self._retired, []
        for shm in retired:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - caller still holds views
                self._retired.append(shm)


def _remote_unavailable():
    """The outage exception class, imported lazily (except-clause helper)."""
    from repro.net.client import ShardServiceUnavailable

    return ShardServiceUnavailable


def _close_shards(shards: list[_ShmShard]) -> None:
    for shard in shards:
        shard.close()


class ShardedParamBank:
    """Drop-in :class:`ParamBank` facade splitting rows across N shm shards.

    Rows are spread round-robin over ``plan.shards`` single-shard banks
    backed by shared memory; :meth:`from_param_sets` assigns contiguous row
    ranges instead, mirroring the matrix layout.  The public surface is the
    ``ParamBank`` one — row ids, refcounts and copy-on-write behave
    identically (the same invariants from the module docstring apply) — with
    two sharding-specific differences:

    * :meth:`matrix` *materializes*: it gathers the selected rows from the
      shard buffers into one fresh array.  Zero-copy access is per shard
      (:meth:`shard_views` / row views), which is exactly what the fan-out
      kernels consume.
    * :meth:`weighted_combine` and :meth:`cosine_matrix` run as per-shard
      partial products — in the worker pool under ``backend="process"``,
      in-parent under ``"serial"`` — combined in ascending shard order, so
      the two backends agree bitwise and differ from the unsharded kernels
      only by summation order.

    Shared-memory segments are unlinked when the bank is garbage collected
    or :meth:`close` is called explicitly.
    """

    def __init__(self, spec: ParamSpec, dtype=None, capacity: int = 4,
                 plan: ShardPlan | int | None = 2) -> None:
        self.spec = spec
        self.dtype = resolve_dtype(dtype)
        self.plan = resolve_shard_plan(plan)
        per_shard = max(1, -(-max(int(capacity), 1) // self.plan.shards))
        self._shards = [_ShmShard(spec, dtype=self.dtype, capacity=per_shard)
                        for _ in range(self.plan.shards)]
        self._slots: list[tuple[int, int] | None] = []  # gid -> (shard, local)
        self._free: list[int] = []
        self._cursor = 0  # round-robin shard assignment for fresh rows
        # Remote plans mirror shard rows inside shard-service daemons.  The
        # local shm shards stay the source of truth (training writes rows
        # zero-copy); _dirty tracks which locals changed since the last
        # sync, and each batched submission prepends one write_rows op that
        # brings the mirror current before its compute ops run.
        self._dirty: list[set[int]] = [set() for _ in self._shards]
        self._remote = None
        self._remote_dead = False
        self._finalizer = weakref.finalize(self, _close_shards, self._shards)

    # ------------------------------------------------------------------ construction

    @classmethod
    def from_param_sets(cls, param_sets: list[Params], dtype=None,
                        names: list[str] | None = None,
                        plan: ShardPlan | int | None = 2) -> "ShardedParamBank":
        """Stack parameter lists into a sharded bank, one contiguous row
        range per shard."""
        matrix, spec = stack_params(param_sets, dtype=dtype, names=names)
        bank = cls(spec, dtype=matrix.dtype, capacity=len(param_sets),
                   plan=plan)
        for s, (a, b) in enumerate(shard_ranges(len(param_sets),
                                                bank.plan.shards)):
            shard = bank._shards[s]
            shard._grow(max(b - a, 1))
            if b > a:
                shard._buf[:b - a] = matrix[a:b]
            shard._refs = [1] * (b - a)
            bank._dirty[s].update(range(b - a))
            for local in range(b - a):
                bank._slots.append((s, local))
        bank._cursor = len(param_sets)
        return bank

    # ------------------------------------------------------------------ row lifecycle

    @property
    def n_slots(self) -> int:
        return len(self._slots)

    @property
    def n_rows(self) -> int:
        """Number of live (referenced) rows across all shards."""
        return sum(shard.n_rows for shard in self._shards)

    @property
    def dim(self) -> int:
        return self.spec.total_size

    def _entry(self, row: int) -> tuple[_ShmShard, int]:
        if not 0 <= row < len(self._slots) or self._slots[row] is None:
            raise KeyError(f"row {row} is not a live bank row")
        s, local = self._slots[row]
        return self._shards[s], local

    def _new_gid(self, slot: tuple[int, int]) -> int:
        if self._free:
            gid = self._free.pop()
            self._slots[gid] = slot
        else:
            gid = len(self._slots)
            self._slots.append(slot)
        return gid

    def alloc(self, values: Params | np.ndarray | None = None) -> int:
        """Allocate a row (refcount 1) on the next shard round-robin."""
        s = self._cursor % self.plan.shards
        self._cursor += 1
        local = self._shards[s].alloc(values)
        self._dirty[s].add(local)
        return self._new_gid((s, local))

    def share(self, row: int) -> int:
        """Add a copy-on-write reference to ``row``."""
        shard, local = self._entry(row)
        shard.share(local)
        return row

    def release(self, row: int) -> None:
        """Drop one reference; the slot is recycled when none remain."""
        shard, local = self._entry(row)
        shard.release(local)
        if shard._refs[local] == 0:
            self._slots[row] = None
            self._free.append(row)

    def refcount(self, row: int) -> int:
        shard, local = self._entry(row)
        return shard.refcount(local)

    def is_shared(self, row: int) -> bool:
        return self.refcount(row) > 1

    def ensure_private(self, row: int) -> int:
        """Copy-on-write split: return a row only this caller references."""
        shard, local = self._entry(row)
        if shard.refcount(local) == 1:
            return row
        s = self._slots[row][0]
        private = shard.ensure_private(local)
        self._dirty[s].add(private)
        return self._new_gid((s, private))

    # ------------------------------------------------------------------ row access

    def row(self, row: int) -> np.ndarray:
        """Zero-copy 1-D view of one row (into its shard's buffer).

        Handing out a writeable view conservatively marks the row dirty for
        remote mirrors; a view written *after* the bank's next remote
        submission without re-fetching ``row()`` is not re-synced (the same
        "views do not survive growth" caching caveat applies).
        """
        shard, local = self._entry(row)
        self._dirty[self._slots[row][0]].add(local)
        return shard.row(local)

    def row_params(self, row: int, writeable: bool = True) -> Params:
        """The row as shaped zero-copy parameter views."""
        shard, local = self._entry(row)
        if writeable:
            self._dirty[self._slots[row][0]].add(local)
        return shard.row_params(local, writeable=writeable)

    def write_row(self, row: int, values: Params | np.ndarray) -> None:
        shard, local = self._entry(row)
        shard.write_row(local, values)
        self._dirty[self._slots[row][0]].add(local)

    # ------------------------------------------------------------------ matrix ops

    def _live_rows(self) -> list[int]:
        return [gid for gid, slot in enumerate(self._slots) if slot is not None]

    def _selections(self, rows: list[int]) -> list[tuple[int, int]]:
        """``rows`` as (shard, local) entries, validating liveness."""
        entries = []
        for row in rows:
            shard, local = self._entry(row)
            entries.append((self._slots[row][0], local))
        return entries

    def shard_views(self) -> list[np.ndarray]:
        """Zero-copy per-shard buffer views (live and free slots alike)."""
        return [shard._buf for shard in self._shards]

    def shard_tokens(self) -> list:
        """Worker attach tokens, re-read per operation (growth renames)."""
        return [shard.token for shard in self._shards]

    def matrix(self, rows: list[int] | None = None) -> np.ndarray:
        """Explicitly materialize the stacked ``(k, dim)`` row matrix.

        Unlike the in-process bank this always gathers (one copy): the
        selected rows live in different shard buffers.  Row order follows
        ``rows`` (default: live rows in id order); the same positional
        caveat as :meth:`ParamBank.matrix` applies.
        """
        if rows is None:
            rows = self._live_rows()
        entries = self._selections(rows)
        out = np.empty((len(entries), self.dim), dtype=self.dtype)
        for i, (s, local) in enumerate(entries):
            out[i] = self._shards[s]._buf[local]
        return out

    def weighted_combine(self, weights, rows: list[int] | None = None,
                         ) -> np.ndarray:
        """FedAvg kernel as per-shard partial ``w @ M`` matvecs.

        Weights are normalized over the *full* selection, each shard
        computes its partial product over its rows, and the parent sums the
        partials in ascending shard order — all backends agree bitwise.
        """
        return self.weighted_combine_many([weights], [rows])[0]

    def _prepare_combine(self, weights, rows):
        """One selection as per-shard ``(locals, weights)`` op inputs."""
        if rows is None:
            rows = self._live_rows()
        entries = self._selections(rows)
        weights = np.asarray(weights, dtype=self.dtype)
        if weights.shape != (len(entries),):
            raise ValueError(
                f"weights shape {weights.shape} does not match "
                f"{len(entries)} rows"
            )
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        scaled = weights / total
        locals_by_shard: list[list[int]] = [[] for _ in self._shards]
        weights_by_shard: list[list[float]] = [[] for _ in self._shards]
        for (s, local), w in zip(entries, scaled):
            locals_by_shard[s].append(local)
            weights_by_shard[s].append(w)
        return len(entries), locals_by_shard, weights_by_shard

    def weighted_combine_many(self, weight_sets,
                              rows_sets: list | None = None,
                              ) -> list[np.ndarray]:
        """All of a round's aggregation matvecs, one submission per shard.

        Every ``(weights, rows)`` selection contributes one matvec op per
        shard it touches; each shard then receives its *whole op list* in a
        single pool (or shard-service) round trip instead of one trip per
        selection.  Per-op partials are still reduced in ascending shard
        order, so results are bitwise-identical to calling
        :meth:`weighted_combine` once per selection, on every backend.
        """
        if rows_sets is None:
            rows_sets = [None] * len(weight_sets)
        prepared = [self._prepare_combine(w, r)
                    for w, r in zip(weight_sets, rows_sets)]
        total_rows = sum(n for n, _, _ in prepared)
        backend = self.plan.backend_for(
            total_rows * self.dim * self.dtype.itemsize)
        if backend == "remote":
            session = self._remote_session()
            if session is not None:
                try:
                    return self._remote_combine_many(session, prepared)
                except _remote_unavailable() as exc:
                    self._mark_remote_dead(exc)
            backend = "serial"
        ops_by_shard: list[list[tuple]] = [[] for _ in self._shards]
        op_ids_by_shard: list[list[int]] = [[] for _ in self._shards]
        for i, (_n, locals_by_shard, weights_by_shard) in enumerate(prepared):
            for s in range(len(self._shards)):
                if locals_by_shard[s]:
                    ops_by_shard[s].append(
                        ("matvec", locals_by_shard[s],
                         np.asarray(weights_by_shard[s], dtype=self.dtype)))
                    op_ids_by_shard[s].append(i)
        results = submit_shard_op_batches(self.shard_tokens(), ops_by_shard,
                                          backend)
        outs = [np.zeros(self.dim, dtype=self.dtype) for _ in prepared]
        for s in range(len(self._shards)):
            for i, partial in zip(op_ids_by_shard[s], results[s]):
                outs[i] += partial
        return outs

    # ------------------------------------------------------------------ remote mirror

    def _remote_session(self):
        """The lazily opened shard-service session, or None when degraded."""
        if self._remote_dead:
            return None
        if self._remote is None:
            from repro.net.client import (RemoteBankSession,
                                          ShardServiceUnavailable)

            capacity = max(shard.n_slots for shard in self._shards)
            try:
                self._remote = RemoteBankSession(
                    self.plan.hosts, shards=len(self._shards), dim=self.dim,
                    dtype=str(self.dtype), capacity=capacity)
            except ShardServiceUnavailable as exc:
                self._mark_remote_dead(exc)
                return None
            # a fresh mirror holds zeros; everything local is unsynced
            for s, shard in enumerate(self._shards):
                self._dirty[s].update(range(shard.n_slots))
        return self._remote

    def _mark_remote_dead(self, exc) -> None:
        self._remote_dead = True
        self._remote = None
        warn_remote_fallback(str(exc))

    def _sync_ops(self, s: int) -> list[dict]:
        """A ``write_rows`` op bringing shard ``s``'s mirror current."""
        dirty = sorted(self._dirty[s])
        if not dirty:
            return []
        data = self._shards[s]._buf[np.asarray(dirty, dtype=np.intp)]
        return [{"op": "write_rows", "rows": dirty, "data": data}]

    def _remote_combine_many(self, session, prepared) -> list[np.ndarray]:
        outs = [np.zeros(self.dim, dtype=self.dtype) for _ in prepared]
        for s in range(len(self._shards)):
            ops = self._sync_ops(s)
            pad = len(ops)
            op_ids = []
            for i, (_n, locals_by_shard, weights_by_shard) in \
                    enumerate(prepared):
                if locals_by_shard[s]:
                    ops.append({"op": "matvec", "rows": locals_by_shard[s],
                                "weights": np.asarray(weights_by_shard[s],
                                                      dtype=self.dtype)})
                    op_ids.append(i)
            if not ops:
                continue
            results = session.shard_batch(s, ops)
            self._dirty[s].clear()
            for i, partial in zip(op_ids, results[pad:]):
                outs[i] += np.asarray(partial)
        return outs

    def _remote_gram_blocks(self, entries, positions_by_shard, seal=None):
        """Per-shard Gram block rows computed service-side (or None).

        The selection is gathered locally and shipped with each shard's
        block request — Gram blocks need *every* selected row, which spans
        shards on other hosts.  Returns None (degrade to serial) when the
        service is unreachable.  With a ``seal`` the gathered stack is
        sign-sealed *before* it goes on the wire, so the shard service
        never receives a plaintext parameter row (the Gram block it
        returns is bitwise the plaintext one — the signs cancel).
        """
        session = self._remote_session()
        if session is None:
            return None
        views = self.shard_views()
        x = np.stack([views[s][local] for s, local in entries])
        if seal is not None:
            x = seal.seal(x)
        blocks = []
        try:
            for s, positions in enumerate(positions_by_shard):
                if not positions:
                    continue
                results = session.shard_batch(
                    s, [{"op": "gram", "positions": positions, "x": x}])
                blocks.append(np.asarray(results[0]))
        except _remote_unavailable() as exc:
            self._mark_remote_dead(exc)
            return None
        return blocks

    def cosine_matrix(self, rows: list[int] | None = None,
                      seal=None) -> np.ndarray:
        """Pairwise cosine similarity via per-shard Gram block rows.

        Each shard computes the raw product block for the selected rows it
        owns against the full selection; the parent assembles the blocks and
        normalizes once (zero rows follow the
        :func:`cosine_similarity_matrix` conventions).

        ``seal`` sign-seals the gathered selection before any backend
        touches it: the remote service receives only sealed rows, and the
        process fan-out — whose Gram ops read plaintext rows straight from
        the shared-memory shards — degrades to the sealed serial gather.
        Either way the signs cancel inside the Gram products, so the
        result stays bitwise the unsealed one.
        """
        if rows is None:
            rows = self._live_rows()
        entries = self._selections(rows)
        k = len(entries)
        if k == 0:
            return np.zeros((0, 0), dtype=self.dtype)
        positions_by_shard: list[list[int]] = [[] for _ in self._shards]
        for i, (s, _local) in enumerate(entries):
            positions_by_shard[s].append(i)
        backend = self.plan.backend_for(k * self.dim * self.dtype.itemsize)
        raw = np.empty((k, k), dtype=self.dtype)
        if backend == "remote":
            blocks = self._remote_gram_blocks(entries, positions_by_shard,
                                              seal=seal)
            if blocks is None:
                backend = "serial"
        if backend == "process" and seal is not None:
            backend = "serial"
        if backend == "process":
            ops_by_shard = [[("gram", entries, p)] if p else []
                            for p in positions_by_shard]
            results = submit_shard_op_batches(self.shard_tokens(),
                                              ops_by_shard, backend)
            blocks = [r[0] for r in results if r]
        elif backend == "serial":
            views = self.shard_views()
            x = np.stack([views[s][local] for s, local in entries])
            if seal is not None:
                x = seal.seal(x)
            tasks_pos = [p for p in positions_by_shard if p]
            blocks = [x[np.asarray(p)] @ x.T for p in tasks_pos]
        for positions, block in zip(
                [p for p in positions_by_shard if p], blocks):
            raw[np.asarray(positions)] = block
        norms = np.sqrt(np.maximum(np.diag(raw), 0.0))
        zero = norms == 0.0
        safe = np.where(zero, 1.0, norms)
        sims = raw / np.outer(safe, safe)
        if zero.any():
            sims[zero, :] = 0.0
            sims[:, zero] = 0.0
            sims[np.ix_(zero, zero)] = 1.0
        return sims

    def astype(self, dtype) -> "ShardedParamBank":
        """A new sharded bank with every slot cast (refcounts preserved)."""
        dtype = resolve_dtype(dtype)
        bank = ShardedParamBank(self.spec, dtype=dtype,
                                capacity=max(self.n_slots, 1), plan=self.plan)
        for s, (src, dst) in enumerate(zip(self._shards, bank._shards)):
            n = src.n_slots
            dst._grow(max(n, 1))
            dst._buf[:n] = src._buf[:n].astype(dtype)
            dst._refs = list(src._refs)
            dst._free = list(src._free)
            bank._dirty[s].update(range(n))
        bank._slots = list(self._slots)
        bank._free = list(self._free)
        bank._cursor = self._cursor
        return bank

    @property
    def nbytes(self) -> int:
        return int(sum(shard.nbytes for shard in self._shards))

    def close(self) -> None:
        """Unlink every shard's segment and free remote mirrors (idempotent)."""
        if self._remote is not None:
            try:
                self._remote.free()
            except Exception:  # best-effort: the run is tearing down
                pass
            self._remote = None
        self._finalizer.detach()
        _close_shards(self._shards)


def make_param_bank(spec: ParamSpec, dtype=None, capacity: int = 4,
                    plan: ShardPlan | int | None = None):
    """The bank a consumer should build under ``plan``.

    ``plan`` inactive (None / ``shards=1``) returns a plain in-process
    :class:`ParamBank` — the byte-for-byte historical path; an active plan
    returns a :class:`ShardedParamBank`.
    """
    plan = resolve_shard_plan(plan)
    if not plan.is_active:
        return ParamBank(spec, dtype=dtype, capacity=capacity)
    return ShardedParamBank(spec, dtype=dtype, capacity=capacity, plan=plan)


def params_cosine_similarity(a: Params, b: Params) -> float:
    """Cosine similarity between two flattened parameter lists.

    This is the expert-consolidation criterion in ShiftEx (Section 5.2.5):
    ``cos(theta_i, theta_j) > tau`` triggers a merge.
    """
    va, vb = flatten_params(a), flatten_params(b)
    na, nb = float(np.linalg.norm(va)), float(np.linalg.norm(vb))
    if na == 0.0 or nb == 0.0:
        return 1.0 if na == nb else 0.0
    return float(np.dot(va, vb) / (na * nb))


def params_l2_distance(a: Params, b: Params) -> float:
    """Euclidean distance between two flattened parameter lists."""
    fa = np.asarray(flatten_params(a), dtype=np.float64)
    fb = np.asarray(flatten_params(b), dtype=np.float64)
    return float(np.linalg.norm(fa - fb))
