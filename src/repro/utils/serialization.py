"""Persistence: model parameters, expert registries and run results.

Deployment plumbing a downstream user needs: checkpoint an expert pool
between aggregator restarts, export a run's metrics for plotting.  Parameter
lists go to ``.npz`` (lossless at the model's configured precision); run
results to JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.utils.params import Params


def save_params(path: str | Path, params: Params) -> Path:
    """Write a parameter list to ``.npz`` preserving order."""
    path = Path(path)
    arrays = {f"param_{i:04d}": p for i, p in enumerate(params)}
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_params(path: str | Path) -> Params:
    """Read a parameter list written by :func:`save_params`."""
    with np.load(Path(path)) as data:
        keys = sorted(data.files)
        if not keys or not all(k.startswith("param_") for k in keys):
            raise ValueError(f"{path} is not a saved parameter list")
        return [data[k].copy() for k in keys]


def save_expert_registry(path: str | Path, registry) -> Path:
    """Checkpoint an :class:`~repro.experts.registry.ExpertRegistry`.

    Stores every expert's parameters, latent-memory signature, and metadata
    in one ``.npz`` plus a JSON manifest entry.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    manifest = {
        "memory_capacity": registry.memory_capacity,
        "memory_eta": registry.memory_eta,
        "created_total": registry.created_total,
        "merged_total": registry.merged_total,
        "experts": [],
    }
    for expert in registry.all():
        eid = expert.expert_id
        for i, p in enumerate(expert.params):
            arrays[f"expert_{eid:04d}_param_{i:04d}"] = p
        entry = {
            "expert_id": eid,
            "created_window": expert.created_window,
            "updated_window": expert.updated_window,
            "train_rounds": expert.train_rounds,
            "samples_seen": expert.samples_seen,
            "merged_from": list(expert.merged_from),
            "num_params": len(expert.params),
            "has_memory": not expert.memory.is_empty,
            "memory_updates": expert.memory.updates,
        }
        if not expert.memory.is_empty:
            arrays[f"expert_{eid:04d}_memory"] = expert.memory.signature
            arrays[f"expert_{eid:04d}_memory_labels"] = expert.memory.signature_labels
            arrays[f"expert_{eid:04d}_centroid"] = expert.memory.centroid
        manifest["experts"].append(entry)
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    return path


def load_expert_registry(path: str | Path):
    """Restore a registry checkpoint written by :func:`save_expert_registry`."""
    from repro.experts.memory import LatentMemory
    from repro.experts.registry import Expert, ExpertRegistry

    with np.load(Path(path)) as data:
        if "__manifest__" not in data.files:
            raise ValueError(f"{path} is not an expert-registry checkpoint")
        manifest = json.loads(bytes(data["__manifest__"]).decode("utf-8"))
        registry = ExpertRegistry(
            memory_capacity=manifest["memory_capacity"],
            memory_eta=manifest["memory_eta"],
        )
        for entry in manifest["experts"]:
            eid = entry["expert_id"]
            params = [data[f"expert_{eid:04d}_param_{i:04d}"].copy()
                      for i in range(entry["num_params"])]
            memory = LatentMemory(manifest["memory_capacity"],
                                  manifest["memory_eta"])
            if entry["has_memory"]:
                memory._rows = data[f"expert_{eid:04d}_memory"].copy()
                memory._labels = data[f"expert_{eid:04d}_memory_labels"].copy()
                memory._centroid_ema = data[f"expert_{eid:04d}_centroid"].copy()
                memory.updates = entry["memory_updates"]
            expert = Expert(
                expert_id=eid,
                params=params,
                memory=memory,
                created_window=entry["created_window"],
                updated_window=entry["updated_window"],
                train_rounds=entry["train_rounds"],
                samples_seen=entry["samples_seen"],
                merged_from=tuple(entry["merged_from"]),
            )
            # ``adopt`` moves the expert onto the registry's contiguous
            # parameter bank so pool-level matrix ops stay single matmuls.
            registry.adopt(expert)
        registry._next_id = max((e["expert_id"] for e in manifest["experts"]),
                                default=-1) + 1
        registry.created_total = manifest["created_total"]
        registry.merged_total = manifest["merged_total"]
        return registry


def _jsonify(value):
    """Recursively coerce numpy scalars/arrays into plain JSON values."""
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def run_result_to_dict(result) -> dict:
    """JSON-serializable view of a :class:`StrategyRunResult`."""
    return {
        "strategy": result.strategy_name,
        "dataset": result.dataset,
        "seed": result.seed,
        "window_series": [[float(a) for a in s] for s in result.window_series],
        "summaries": [
            {
                "window": s.window,
                "accuracy_drop": s.accuracy_drop,
                "recovery_rounds": s.recovery_rounds,
                "max_accuracy": s.max_accuracy,
                "pre_shift_accuracy": s.pre_shift_accuracy,
                "rounds": s.rounds,
            }
            for s in result.summaries
        ],
        "expert_history": ([{str(k): v for k, v in dist.items()}
                            for dist in result.expert_history]
                           if result.expert_history else None),
        "state_log": _jsonify(result.state_log),
        "ledger": result.ledger_summary,
        "profiler": result.profiler_summary,
        "extras": _jsonify(result.extras),
    }


def dict_to_run_result(data: dict):
    """Rebuild a :class:`StrategyRunResult` from :func:`run_result_to_dict`.

    Round-trips exactly for ``window_series``, ``summaries``, ``extras``,
    ``expert_history``, and the ledger/profiler summaries (JSON preserves
    float bit patterns); ``state_log`` comes back JSON-normalized.
    """
    from repro.harness.runner import StrategyRunResult
    from repro.metrics.windows import WindowSummary

    summaries = [
        WindowSummary(
            window=s["window"],
            accuracy_drop=s["accuracy_drop"],
            recovery_rounds=s["recovery_rounds"],
            max_accuracy=s["max_accuracy"],
            pre_shift_accuracy=s["pre_shift_accuracy"],
            rounds=s["rounds"],
        )
        for s in data["summaries"]
    ]
    expert_history = data.get("expert_history")
    if expert_history is not None:
        expert_history = [{int(k): v for k, v in dist.items()}
                          for dist in expert_history]
    return StrategyRunResult(
        strategy_name=data["strategy"],
        dataset=data["dataset"],
        seed=data["seed"],
        window_series=[list(s) for s in data["window_series"]],
        summaries=summaries,
        state_log=data.get("state_log", []),
        expert_history=expert_history,
        ledger_summary=data.get("ledger", {}),
        profiler_summary=data.get("profiler", {}),
        extras=data.get("extras", {}),
    )


def save_run_result(path: str | Path, result) -> Path:
    path = Path(path)
    path.write_text(json.dumps(run_result_to_dict(result), indent=2))
    return path


def load_run_result_dict(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def load_run_result(path: str | Path):
    """Read a run result written by :func:`save_run_result`."""
    return dict_to_run_result(load_run_result_dict(path))
