"""Deterministic random-number management.

Each subsystem (data generation, party sampling, model init, detection
bootstrap, ...) derives its own independent :class:`numpy.random.Generator`
from a root seed plus a string label.  This keeps experiments reproducible
while letting components draw randomness in any order.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seed_sequence(root_seed: int, *labels: object) -> np.random.SeedSequence:
    """Derive a :class:`numpy.random.SeedSequence` from a root seed and labels.

    Labels are hashed so that e.g. ``("party", 17, "window", 3)`` yields a
    stream independent from ``("party", 18, "window", 3)`` and stable across
    processes (unlike Python's randomized ``hash``).
    """
    digest = hashlib.sha256(repr(labels).encode("utf-8")).digest()
    entropy = int.from_bytes(digest[:8], "little")
    return np.random.SeedSequence([root_seed & 0xFFFFFFFF, entropy])


def spawn_rng(root_seed: int, *labels: object) -> np.random.Generator:
    """Return a generator seeded from ``root_seed`` and a label path."""
    return np.random.default_rng(seed_sequence(root_seed, *labels))
