"""Per-subsystem precision plans: float32 parameters, float64 islands.

One global ``dtype`` knob cannot express the configuration the detection
pipeline actually needs: parameter storage/transport/aggregation are
memory-bandwidth-bound and ~2x faster at float32, while the calibrated
detection statistics (MMD nulls, JSD histograms, threshold quantiles) are
quantile estimates whose decisions should not move with the parameter
plane's precision.  A :class:`PrecisionPlan` names the dtype of each
subsystem separately:

* ``params`` — model parameters, round banks, async stream buffers, the
  expert pool, secure-aggregation seal words (uint32 for float32 rows).
* ``detection_stats`` — the dtype party embeddings are cast to at the
  Algorithm-1 reporting boundary, so every downstream detection statistic
  (calibration nulls, shift deltas, clustering, latent-memory matching)
  runs at this precision.  Default float64: the "detection island".

The legacy ``dtype`` knob survives as a shorthand alias: ``dtype="float32"``
means ``PrecisionPlan(params="float32")`` — parameters at reduced precision,
detection statistics still on the float64 island.  A fully reduced plan must
be asked for explicitly (``params=float32,detection_stats=float32``).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import asdict, dataclass

import numpy as np

from repro.utils.params import resolve_dtype


@dataclass(frozen=True)
class PrecisionPlan:
    """Which dtype each subsystem of a run uses (see module docstring)."""

    params: str = "float64"
    detection_stats: str = "float64"

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", str(resolve_dtype(self.params)))
        object.__setattr__(self, "detection_stats",
                           str(resolve_dtype(self.detection_stats)))

    @property
    def np_params(self) -> np.dtype:
        return resolve_dtype(self.params)

    @property
    def np_detection_stats(self) -> np.dtype:
        return resolve_dtype(self.detection_stats)

    @property
    def is_mixed(self) -> bool:
        return self.params != self.detection_stats

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_value(cls, value) -> "PrecisionPlan":
        """Coerce a plan knob: None / dtype-ish / mapping / spec string.

        * ``None`` — the float64 default plan.
        * a dtype (``"float32"``, ``np.float32``, ``np.dtype``) — shorthand
          for that parameter precision with detection stats kept float64.
        * a mapping — ``{"params": ..., "detection_stats": ...}``.
        * a spec string — ``"params=float32,detection_stats=float64"``
          (either key may be omitted; a bare dtype is the shorthand above).
        """
        if value is None:
            return cls()
        if isinstance(value, PrecisionPlan):
            return value
        if isinstance(value, Mapping):
            unknown = set(value) - {"params", "detection_stats"}
            if unknown:
                raise ValueError(
                    f"unknown precision keys {sorted(unknown)}; "
                    f"expected 'params' and/or 'detection_stats'")
            return cls(**{k: str(v) for k, v in value.items()})
        if isinstance(value, str) and "=" in value:
            return cls.parse(value)
        # A dtype-ish shorthand: parameters at the given precision, the
        # detection statistics stay on the float64 island.
        return cls(params=str(resolve_dtype(value)))

    @classmethod
    def parse(cls, text: str) -> "PrecisionPlan":
        """Parse a CLI spec: ``float32`` or ``params=float32,detection_stats=float64``."""
        text = text.strip()
        if "=" not in text:
            return cls.from_value(text)
        fields: dict[str, str] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, val = item.partition("=")
            if not sep or not val.strip():
                raise ValueError(
                    f"precision spec item '{item}' is not key=dtype")
            fields[key.strip()] = val.strip()
        return cls.from_value(fields)

    def __str__(self) -> str:
        return f"params={self.params},detection_stats={self.detection_stats}"
