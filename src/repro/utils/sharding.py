"""Sharded execution plane: fan parameter-bank kernels out over processes.

The contiguous parameter plane (:mod:`repro.utils.params`) made every hot
path a single BLAS call over one matrix.  This module splits those matrices
*by row range* across N shards backed by :mod:`multiprocessing.shared_memory`
so the calls parallelize across processes:

* :class:`ShardPlan` is the declarative knob — ``shards=1`` (the default)
  means "no sharding at all": every consumer constructs the exact same
  in-process :class:`~repro.utils.params.ParamBank` objects as before, byte
  for byte.  ``shards >= 2`` activates :class:`~repro.utils.params.ShardedParamBank`
  and the fan-out helpers below.
* The worker pool (:func:`submit_shard_tasks`) is a lazily started,
  process-wide ``ProcessPoolExecutor``.  Workers *attach* to shard buffers by
  shared-memory name, so no parameter matrix is ever pickled — only small
  task descriptors and partial results cross the pipe.
* The ``serial`` backend runs the identical per-shard computations in the
  parent, in shard order.  Because the parent always combines partial
  results in ascending shard order, the process and serial backends produce
  **bitwise-identical** outputs; they differ from the unsharded kernels only
  by floating-point summation order ("exact-sum order tolerance").

Determinism contract
--------------------
For a fixed ``ShardPlan`` the sharded kernels are deterministic: shard
membership is a pure function of row order, per-shard partials are computed
by the same numpy kernels regardless of backend, and cross-shard reduction
happens in ascending shard index.  Changing ``shards`` changes summation
order (and therefore the last few ulps), never the math.
"""

from __future__ import annotations

import atexit
import os
import warnings
from dataclasses import dataclass, field

import numpy as np

_BACKENDS = ("auto", "process", "serial", "remote")

# Below this much per-operation data the pool's IPC round trip costs more
# than the BLAS call it parallelizes (sub-millisecond kernels; see the
# *_sharded entries in BENCH_param_plane.json), so ``backend="auto"`` stays
# in-process.  An explicit ``backend="process"`` always fans out.
PROCESS_MIN_BYTES = 4 << 20

# One token names one shard buffer: (shm_name, shape, dtype string).  Tokens
# are re-read from the owning bank for every operation because growth swaps
# the backing segment (and therefore the name).
ShardToken = tuple[str, tuple[int, int], str]


@dataclass(frozen=True)
class ShardPlan:
    """How (and whether) bank-backed kernels split across processes.

    ``shards=1`` disables sharding entirely — consumers build plain
    in-process banks and reproduce unsharded results bitwise.  ``backend``
    picks who executes the per-shard work:

    * ``"process"`` — a persistent worker pool; shards are computed
      concurrently, attached zero-copy via shared memory.
    * ``"serial"``  — the parent computes each shard in order.  Numerically
      identical to ``"process"``; useful on starved machines and in tests.
    * ``"remote"``  — shard mirrors live inside ``repro.net.shard_service``
      daemons on ``hosts`` (shard ``s`` maps to ``hosts[s % len(hosts)]``);
      per-shard partials are computed server-side and reduced over the wire
      in ascending shard order, so results stay bitwise-identical to the
      local backends.  A lost connection degrades to ``"serial"`` with a
      one-line warning.
    * ``"auto"``    — ``"process"`` when the machine has more than one CPU,
      else ``"serial"`` (fan-out on one core only adds overhead).

    Serialized with :class:`~repro.harness.profiles.RunSettings` and
    :class:`~repro.experiments.plan.ExperimentPlan` via :meth:`to_dict` /
    :meth:`from_dict`.
    """

    shards: int = 1
    backend: str = "auto"
    hosts: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}; got '{self.backend}'")
        object.__setattr__(self, "hosts", tuple(str(h) for h in self.hosts))
        if self.backend == "remote" and not self.hosts:
            raise ValueError("backend='remote' requires at least one host "
                             "(e.g. hosts=('127.0.0.1:7700',) or --shard-hosts)")
        if self.hosts and self.backend != "remote":
            raise ValueError("hosts are only meaningful with backend='remote'; "
                             f"got backend='{self.backend}'")

    @property
    def is_active(self) -> bool:
        """True when consumers should build sharded banks / fan out."""
        return self.shards > 1

    def resolved_backend(self) -> str:
        """The backend actually used: ``auto`` resolves against cpu count."""
        if not self.is_active:
            return "serial"
        if self.backend == "auto":
            return "process" if (os.cpu_count() or 1) > 1 else "serial"
        return self.backend

    def backend_for(self, work_bytes: int) -> str:
        """The backend for one operation over ``work_bytes`` of data.

        ``auto`` only pays the process fan-out when the operation is big
        enough (``PROCESS_MIN_BYTES``) for parallel BLAS to beat the IPC
        round trip; explicit backends are honored unconditionally.
        """
        backend = self.resolved_backend()
        if (backend == "process" and self.backend == "auto"
                and work_bytes < PROCESS_MIN_BYTES):
            return "serial"
        return backend

    def to_dict(self) -> dict:
        out = {"shards": self.shards, "backend": self.backend}
        if self.hosts:  # omitted when empty so pre-remote plan files round-trip
            out["hosts"] = list(self.hosts)
        return out

    @classmethod
    def from_dict(cls, data) -> "ShardPlan":
        if isinstance(data, ShardPlan):
            return data
        return cls(**dict(data))


def resolve_shard_plan(value) -> ShardPlan:
    """Normalize a knob value (None / int / mapping / plan) to a ShardPlan."""
    if value is None:
        return ShardPlan()
    if isinstance(value, ShardPlan):
        return value
    if isinstance(value, int):
        return ShardPlan(shards=value)
    return ShardPlan.from_dict(value)


def shard_ranges(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``shards`` contiguous, near-equal ranges.

    The first ``n % shards`` ranges get one extra element.  Ranges may be
    empty when ``n < shards``; the list always has exactly ``shards``
    entries so results can be combined positionally by shard index.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    base, extra = divmod(max(n, 0), shards)
    out: list[tuple[int, int]] = []
    start = 0
    for s in range(shards):
        stop = start + base + (1 if s < extra else 0)
        out.append((start, stop))
        start = stop
    return out


# --------------------------------------------------------------------------
# worker pool
# --------------------------------------------------------------------------

_EXECUTOR = None
_EXECUTOR_SIZE = 0
_ATEXIT_REGISTERED = False


def _shutdown_pool() -> None:
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is not None:
        # wait=True drains workers before the interpreter (or a recreate)
        # moves on — otherwise exit can race ShardedParamBank finalizers
        # unlinking segments a worker still has mapped, and the shared
        # resource tracker logs leaked-segment warnings.
        _EXECUTOR.shutdown(wait=True, cancel_futures=True)
        _EXECUTOR = None
        _EXECUTOR_SIZE = 0


def _get_executor(workers: int):
    """The process-wide worker pool, grown (recreated) on demand."""
    global _EXECUTOR, _EXECUTOR_SIZE, _ATEXIT_REGISTERED
    workers = max(1, int(workers))
    if _EXECUTOR is None or _EXECUTOR_SIZE < workers:
        from concurrent.futures import ProcessPoolExecutor
        import multiprocessing as mp

        if _EXECUTOR is not None:
            _EXECUTOR.shutdown(wait=True, cancel_futures=True)
        try:
            ctx = mp.get_context("fork")  # cheap on Linux; workers inherit numpy
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = mp.get_context("spawn")
        _EXECUTOR = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        _EXECUTOR_SIZE = workers
        if not _ATEXIT_REGISTERED:
            # once per interpreter, not once per growth-recreate
            atexit.register(_shutdown_pool)
            _ATEXIT_REGISTERED = True
    return _EXECUTOR


def _run_in_pool(fn, task_args: list[tuple]) -> list:
    pool = _get_executor(len(task_args))
    futures = [pool.submit(fn, *args) for args in task_args]
    return [f.result() for f in futures]


def submit_shard_tasks(fn, task_args: list[tuple], backend: str) -> list:
    """Run ``fn(*args)`` once per shard, returning results in shard order.

    ``backend="serial"`` executes in the parent loop; ``"process"`` fans out
    over the pool but still *collects* in submission (shard) order, so the
    two backends are interchangeable bit for bit.

    A worker that dies mid-task poisons the whole pool and surfaces as
    ``BrokenProcessPool`` on every future; one such failure rebuilds the
    pool and retries, and a second consecutive failure degrades to the
    serial backend for this call with a one-line warning instead of
    killing the run.
    """
    if backend == "serial" or len(task_args) <= 1:
        return [fn(*args) for args in task_args]
    from concurrent.futures.process import BrokenProcessPool

    try:
        return _run_in_pool(fn, task_args)
    except BrokenProcessPool:
        _shutdown_pool()
        try:
            return _run_in_pool(fn, task_args)
        except BrokenProcessPool:
            _shutdown_pool()
            warnings.warn("shard worker pool broke twice; running this "
                          "submission on the serial backend", RuntimeWarning,
                          stacklevel=2)
            return [fn(*args) for args in task_args]


# --------------------------------------------------------------------------
# worker-side shared-memory access
# --------------------------------------------------------------------------


def _attach(token: ShardToken):
    """Attach to a shard buffer by name (worker side, zero-copy)."""
    from multiprocessing import shared_memory

    # Workers are forked (see _get_executor), so they share the parent's
    # resource-tracker process: attaching re-registers the same name as a
    # no-op and the segment's lifetime stays owned by the creating
    # ShardedParamBank.  (Windows, the spawn fallback platform, has no
    # resource tracker for shared memory.)
    shm = shared_memory.SharedMemory(name=token[0])
    arr = np.ndarray(token[1], dtype=np.dtype(token[2]), buffer=shm.buf)
    return shm, arr


def _matvec_partial(arr: np.ndarray, rows: list[int],
                    weights: np.ndarray) -> np.ndarray:
    """``w @ arr[rows]`` with the empty-selection case made explicit.

    When ``n < shards`` some shards own no selected rows; ``np.asarray([])``
    is float64 and would raise ``IndexError`` as an index, so an empty
    selection short-circuits to the additive identity instead.
    """
    if not len(rows):
        return np.zeros(arr.shape[1], dtype=arr.dtype)
    index = np.asarray(rows, dtype=np.intp)
    return np.asarray(weights, dtype=arr.dtype) @ arr[index]


def _task_matvec(token: ShardToken, rows: list[int],
                 weights: np.ndarray) -> np.ndarray:
    """One shard's partial ``w @ M`` over its selected rows."""
    shm, arr = _attach(token)
    try:
        return _matvec_partial(arr, rows, weights)
    finally:
        del arr
        shm.close()


def _task_gather_product(tokens: list[ShardToken],
                         entries: list[tuple[int, int]],
                         positions: list[int]) -> np.ndarray:
    """One shard's block of the raw Gram product ``X[positions] @ X.T``.

    ``entries`` lists every requested row as ``(shard, local_row)`` in output
    order; the worker gathers the full selection zero-copy from the attached
    segments, then computes only its block rows.
    """
    shms, arrays = [], []
    try:
        for token in tokens:
            shm, arr = _attach(token)
            shms.append(shm)
            arrays.append(arr)
        x = np.stack([arrays[s][r] for s, r in entries])
        return x[np.asarray(positions)] @ x.T
    finally:
        del arrays
        for shm in shms:
            shm.close()


# --------------------------------------------------------------------------
# batched round submissions
# --------------------------------------------------------------------------
#
# A round touches each shard many times: one aggregation matvec per stream
# buffer, plus Gram blocks for matching/consolidation.  Submitting each op
# individually pays one pool round trip per op; a *batch* ships all of one
# shard's ops in a single submission and returns their results together, so
# the IPC cost per round is O(shards), not O(ops x shards).  Ops execute in
# list order against the same numpy kernels as the single-op tasks, so
# batching never changes a single bit of the results.
#
# Op descriptors (plain tuples so they pickle cheaply):
#   ("matvec", rows, weights)      -> partial ``w @ M`` on this shard
#   ("gram", entries, positions)   -> this shard's Gram block rows; entries
#                                     may reference any shard (lazily attached)


def _apply_shard_op(arrays_for, shard: int, op: tuple):
    kind = op[0]
    if kind == "matvec":
        _, rows, weights = op
        return _matvec_partial(arrays_for(shard), rows, weights)
    if kind == "gram":
        _, entries, positions = op
        x = np.stack([arrays_for(s)[r] for s, r in entries])
        return x[np.asarray(positions)] @ x.T
    raise ValueError(f"unknown shard op '{kind}'")


def _task_run_shard_ops(tokens: list[ShardToken], shard: int,
                        ops: list[tuple]) -> list:
    """Execute all of one shard's ops in a single pool round trip."""
    attached: dict[int, tuple] = {}

    def arrays_for(s: int) -> np.ndarray:
        if s not in attached:
            attached[s] = _attach(tokens[s])
        return attached[s][1]

    try:
        return [_apply_shard_op(arrays_for, shard, op) for op in ops]
    finally:
        pairs = list(attached.values())
        attached.clear()
        for shm, arr in pairs:
            del arr
            shm.close()


def submit_shard_op_batches(tokens: list[ShardToken],
                            ops_by_shard: list[list[tuple]],
                            backend: str) -> list[list]:
    """Run each shard's op list as one submission; results in op order.

    Returns one result list per shard, positionally aligned with
    ``ops_by_shard`` (shards with no ops get an empty list).  Like
    :func:`submit_shard_tasks`, serial and process backends are
    interchangeable bit for bit.
    """
    tasks = [(tokens, shard, ops)
             for shard, ops in enumerate(ops_by_shard) if ops]
    parts = submit_shard_tasks(_task_run_shard_ops, tasks, backend)
    out: list[list] = [[] for _ in ops_by_shard]
    for (_, shard, _ops), results in zip(tasks, parts):
        out[shard] = results
    return out


def _task_mmd_chunk(x: np.ndarray, ys: list[np.ndarray],
                    gamma: float | None) -> np.ndarray:
    from repro.detection.mmd import mmd_to_many

    return mmd_to_many(x, ys, gamma)


def _task_ccmmd_chunk(x: np.ndarray, x_labels: np.ndarray,
                      ys: list[np.ndarray], ys_labels: list[np.ndarray],
                      gamma: float | None, min_per_class: int) -> np.ndarray:
    from repro.detection.mmd import class_conditional_mmd_to_many

    return class_conditional_mmd_to_many(x, x_labels, ys, ys_labels, gamma,
                                         min_per_class)


def _task_mmd_many_chunk(xs: list[np.ndarray], ys: list[np.ndarray],
                         gamma: float | None) -> np.ndarray:
    from repro.detection.mmd import mmd_many_to_many

    return mmd_many_to_many(xs, ys, gamma)


def _task_ccmmd_many_chunk(xs: list[np.ndarray], xs_labels: list[np.ndarray],
                           ys: list[np.ndarray], ys_labels: list[np.ndarray],
                           gamma: float | None,
                           min_per_class: int) -> np.ndarray:
    from repro.detection.mmd import class_conditional_mmd_many_to_many

    return class_conditional_mmd_many_to_many(xs, xs_labels, ys, ys_labels,
                                              gamma, min_per_class)


# Kernels a remote plan may run server-side.  The wire protocol ships kernel
# *names* plus arrays — never code — and both the client and the service
# resolve through this one allowlist, so the two sides cannot drift.
REMOTE_KERNELS = {
    "mmd_chunk": _task_mmd_chunk,
    "ccmmd_chunk": _task_ccmmd_chunk,
    "mmd_many_chunk": _task_mmd_many_chunk,
    "ccmmd_many_chunk": _task_ccmmd_many_chunk,
}

_FALLBACK_WARNED: set[str] = set()


def warn_remote_fallback(reason: str) -> None:
    """One-line, once-per-reason warning when remote work degrades to serial."""
    if reason not in _FALLBACK_WARNED:
        _FALLBACK_WARNED.add(reason)
        warnings.warn(f"shard service unavailable ({reason}); falling back "
                      "to the serial backend", RuntimeWarning, stacklevel=3)


def _run_kernel_chunks(fn, kernel: str, tasks: list[tuple],
                       backend: str, plan: ShardPlan) -> list:
    """Fan kernel chunks out per the backend; remote failures go serial."""
    if backend == "remote":
        from repro.net.client import ShardServiceUnavailable, run_kernel_tasks

        try:
            return run_kernel_tasks(plan.hosts, kernel, tasks)
        except ShardServiceUnavailable as exc:
            warn_remote_fallback(str(exc))
            backend = "serial"
    return submit_shard_tasks(fn, tasks, backend)


# --------------------------------------------------------------------------
# sharded scoring kernels (expert matching)
# --------------------------------------------------------------------------


def sharded_mmd_to_many(x: np.ndarray, ys: list[np.ndarray],
                        gamma: float | None,
                        plan: ShardPlan) -> np.ndarray:
    """``mmd_to_many`` with the target sets split across shards.

    Each shard scores a contiguous chunk of ``ys``; chunk results are
    concatenated in shard order, so the output aligns with ``ys`` exactly
    like the unsharded call.
    """
    from repro.detection.mmd import mmd_to_many

    if not plan.is_active or len(ys) < 2:
        return mmd_to_many(x, ys, gamma)
    backend = plan.backend_for(x.nbytes + sum(y.nbytes for y in ys))
    ranges = shard_ranges(len(ys), plan.shards)
    tasks = [(x, ys[a:b], gamma) for a, b in ranges if b > a]
    parts = _run_kernel_chunks(_task_mmd_chunk, "mmd_chunk", tasks,
                               backend, plan)
    return np.concatenate(parts) if parts else np.zeros(0)


def sharded_class_conditional_mmd_to_many(
        x: np.ndarray, x_labels: np.ndarray,
        ys: list[np.ndarray], ys_labels: list[np.ndarray],
        gamma: float | None, plan: ShardPlan,
        min_per_class: int = 2) -> np.ndarray:
    """Class-conditional :func:`sharded_mmd_to_many` (same chunking)."""
    from repro.detection.mmd import class_conditional_mmd_to_many

    if not plan.is_active or len(ys) < 2:
        return class_conditional_mmd_to_many(x, x_labels, ys, ys_labels,
                                             gamma, min_per_class)
    backend = plan.backend_for(x.nbytes + sum(y.nbytes for y in ys))
    ranges = shard_ranges(len(ys), plan.shards)
    tasks = [(x, x_labels, ys[a:b], ys_labels[a:b], gamma, min_per_class)
             for a, b in ranges if b > a]
    parts = _run_kernel_chunks(_task_ccmmd_chunk, "ccmmd_chunk", tasks,
                               backend, plan)
    return np.concatenate(parts) if parts else np.zeros(0)


def sharded_mmd_many_to_many(xs: list[np.ndarray], ys: list[np.ndarray],
                             gamma: float | None,
                             plan: ShardPlan) -> np.ndarray:
    """``mmd_many_to_many`` with the target axis split across shards.

    Each shard scores every cluster against a contiguous chunk of ``ys``;
    chunk results are concatenated column-wise in shard order.
    """
    from repro.detection.mmd import mmd_many_to_many

    if not plan.is_active or len(ys) < 2:
        return mmd_many_to_many(xs, ys, gamma)
    backend = plan.backend_for(sum(x.nbytes for x in xs)
                               + sum(y.nbytes for y in ys))
    ranges = shard_ranges(len(ys), plan.shards)
    tasks = [(xs, ys[a:b], gamma) for a, b in ranges if b > a]
    parts = _run_kernel_chunks(_task_mmd_many_chunk, "mmd_many_chunk",
                               tasks, backend, plan)
    if not parts:
        return np.zeros((len(xs), 0))
    return np.concatenate(parts, axis=1)


def sharded_class_conditional_mmd_many_to_many(
        xs: list[np.ndarray], xs_labels: list[np.ndarray],
        ys: list[np.ndarray], ys_labels: list[np.ndarray],
        gamma: float | None, plan: ShardPlan,
        min_per_class: int = 2) -> np.ndarray:
    """Class-conditional :func:`sharded_mmd_many_to_many` (same chunking)."""
    from repro.detection.mmd import class_conditional_mmd_many_to_many

    if not plan.is_active or len(ys) < 2:
        return class_conditional_mmd_many_to_many(xs, xs_labels, ys,
                                                  ys_labels, gamma,
                                                  min_per_class)
    backend = plan.backend_for(sum(x.nbytes for x in xs)
                               + sum(y.nbytes for y in ys))
    ranges = shard_ranges(len(ys), plan.shards)
    tasks = [(xs, xs_labels, ys[a:b], ys_labels[a:b], gamma, min_per_class)
             for a, b in ranges if b > a]
    parts = _run_kernel_chunks(_task_ccmmd_many_chunk, "ccmmd_many_chunk",
                               tasks, backend, plan)
    if not parts:
        return np.zeros((len(xs), 0))
    return np.concatenate(parts, axis=1)
