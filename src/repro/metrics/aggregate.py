"""Aggregate window summaries across repeated runs (mean +/- std cells)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.windows import WindowSummary


@dataclass(frozen=True)
class MetricAggregate:
    """Mean/std of Drop/Max and the typical recovery time across seeds."""

    window: int
    drop_mean: float
    drop_std: float
    max_mean: float
    max_std: float
    recovery_median: int | None  # None when the majority of runs never recover
    recovery_values: tuple[int | None, ...]
    rounds: int

    def recovery_label(self) -> str:
        if self.recovery_median is None:
            return f">{self.rounds}"
        return str(self.recovery_median)


def aggregate_summaries(per_run: list[list[WindowSummary]]) -> list[MetricAggregate]:
    """Combine per-seed window summaries into per-window aggregates.

    All runs must cover the same windows.  Recovery is aggregated as the
    median over runs, treating non-recovery as worse than any finite time;
    if at least half the runs fail to recover, the aggregate reports
    non-recovery (as the paper renders ``>51``).
    """
    if not per_run:
        raise ValueError("need at least one run")
    n_windows = len(per_run[0])
    if any(len(run) != n_windows for run in per_run):
        raise ValueError("all runs must have the same number of windows")

    aggregates: list[MetricAggregate] = []
    for w in range(n_windows):
        cells = [run[w] for run in per_run]
        window = cells[0].window
        if any(c.window != window for c in cells):
            raise ValueError("window indices misaligned across runs")
        drops = np.array([c.accuracy_drop for c in cells])
        maxes = np.array([c.max_accuracy for c in cells])
        recoveries = tuple(c.recovery_rounds for c in cells)
        rounds = max(c.rounds for c in cells)
        finite = sorted(r for r in recoveries if r is not None)
        if len(finite) * 2 <= len(recoveries) - 1 or not finite:
            median: int | None = None
        else:
            # Median with non-recoveries treated as +inf.
            padded = finite + [rounds + 1] * (len(recoveries) - len(finite))
            padded.sort()
            mid = padded[(len(padded) - 1) // 2]
            median = None if mid > rounds else int(mid)
        aggregates.append(MetricAggregate(
            window=window,
            drop_mean=float(drops.mean()),
            drop_std=float(drops.std(ddof=1)) if len(cells) > 1 else 0.0,
            max_mean=float(maxes.mean()),
            max_std=float(maxes.std(ddof=1)) if len(cells) > 1 else 0.0,
            recovery_median=median,
            recovery_values=recoveries,
            rounds=rounds,
        ))
    return aggregates
