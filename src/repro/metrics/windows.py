"""Per-window metric computation from accuracy series.

A window's series is ``[entry_accuracy, acc_after_round_1, ..., acc_after_round_R]``:
index 0 is measured right after the shift (before any adaptation), so

* drop  = pre_shift_accuracy - series[0]
* time  = smallest r with series[r] >= recovery_ratio * pre_shift_accuracy
* max   = max(series)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WindowSummary:
    """Drop / Time / Max for one window (the cells of Tables 1-2)."""

    window: int
    accuracy_drop: float
    recovery_rounds: int | None  # None = did not recover within the window
    max_accuracy: float
    pre_shift_accuracy: float
    rounds: int

    def recovery_label(self) -> str:
        """Human-readable recovery time (``'>R'`` when unrecovered)."""
        if self.recovery_rounds is None:
            return f">{self.rounds}"
        return str(self.recovery_rounds)


def _check_series(series: list[float]) -> list[float]:
    if not series:
        raise ValueError("accuracy series must be non-empty")
    if any(not np.isfinite(a) for a in series):
        raise ValueError("accuracy series contains non-finite values")
    return [float(a) for a in series]


def accuracy_drop(pre_shift_accuracy: float, series: list[float]) -> float:
    """Immediate post-shift decline (percentage points when accs are in %)."""
    series = _check_series(series)
    return float(pre_shift_accuracy - series[0])


def recovery_time(pre_shift_accuracy: float, series: list[float],
                  recovery_ratio: float = 0.95) -> int | None:
    """Rounds until accuracy regains ``recovery_ratio`` of pre-shift level.

    Index 0 of the series is the entry evaluation (0 rounds of adaptation).
    Returns ``None`` when the target is never reached.
    """
    if not 0.0 < recovery_ratio <= 1.0:
        raise ValueError("recovery_ratio must be in (0, 1]")
    series = _check_series(series)
    target = recovery_ratio * pre_shift_accuracy
    for rounds, accuracy in enumerate(series):
        if accuracy >= target:
            return rounds
    return None


def max_accuracy(series: list[float]) -> float:
    return float(max(_check_series(series)))


def summarize_window(window: int, pre_shift_accuracy: float,
                     series: list[float],
                     recovery_ratio: float = 0.95) -> WindowSummary:
    """Compute the full Drop/Time/Max summary for one window."""
    series = _check_series(series)
    return WindowSummary(
        window=window,
        accuracy_drop=accuracy_drop(pre_shift_accuracy, series),
        recovery_rounds=recovery_time(pre_shift_accuracy, series, recovery_ratio),
        max_accuracy=max_accuracy(series),
        pre_shift_accuracy=float(pre_shift_accuracy),
        rounds=len(series) - 1,
    )


def summarize_run(window_series: list[list[float]],
                  recovery_ratio: float = 0.95) -> list[WindowSummary]:
    """Summarize windows 1..N of a run (window 0 is burn-in).

    The pre-shift reference of window ``w`` is the last evaluation of window
    ``w-1``.
    """
    if len(window_series) < 2:
        raise ValueError("need at least a burn-in window plus one shift window")
    summaries: list[WindowSummary] = []
    for window in range(1, len(window_series)):
        pre_shift = _check_series(window_series[window - 1])[-1]
        summaries.append(
            summarize_window(window, pre_shift, window_series[window],
                             recovery_ratio)
        )
    return summaries
