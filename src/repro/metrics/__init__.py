"""Evaluation metrics for continual FL (paper Section 6, "Metrics Captured").

* **Accuracy Drop** — decline from the pre-shift accuracy (the last
  evaluation of the previous window) to the first evaluation after the
  shift, before any adaptation rounds.
* **Recovery Time** — training rounds until accuracy regains 95 % of the
  pre-shift level (``None`` when it never does within the window — rendered
  as ``> R``).
* **Max Accuracy** — best accuracy reached inside the window.
"""

from repro.metrics.windows import (
    WindowSummary,
    accuracy_drop,
    recovery_time,
    max_accuracy,
    summarize_window,
    summarize_run,
)
from repro.metrics.aggregate import MetricAggregate, aggregate_summaries

__all__ = [
    "WindowSummary",
    "accuracy_drop",
    "recovery_time",
    "max_accuracy",
    "summarize_window",
    "summarize_run",
    "MetricAggregate",
    "aggregate_summaries",
]
