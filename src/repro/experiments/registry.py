"""Strategy registry: map names to :class:`ContinualStrategy` factories.

Every strategy the experiment layer can run — the paper's five baselines,
ShiftEx itself, and any user-defined method — lives in one registry.  A
factory is anything callable that returns a strategy instance (usually the
class itself):

    from repro.experiments import register_strategy

    @register_strategy("my-method")
    class MyStrategy(ContinualStrategy):
        name = "my-method"
        ...

    build_strategy("my-method", alpha=0.3)   # -> MyStrategy(alpha=0.3)

Built-in strategies register themselves when their modules import; the
registry loads them lazily on first lookup so importing this module stays
cheap and cycle-free.
"""

from __future__ import annotations

from typing import Callable

from repro.utils.validation import doc_first_line

_REGISTRY: dict[str, Callable[..., object]] = {}
_builtins_loaded = False
_builtins_loading = False


def _ensure_builtins() -> None:
    """Import the modules whose decorators register the built-in methods."""
    global _builtins_loaded, _builtins_loading
    if _builtins_loaded or _builtins_loading:
        return
    # The flag flips only on success so a failed import is retried, not
    # silently cached as an empty registry; the in-progress guard keeps the
    # imports below (which call back into this module) from recursing.
    _builtins_loading = True
    try:
        import repro.baselines  # noqa: F401  registers fedavg/fedprox/oort/fielding/feddrift
        import repro.core.server  # noqa: F401  registers shiftex
        _builtins_loaded = True
    finally:
        _builtins_loading = False


def register_strategy(name: str, *, overwrite: bool = False):
    """Class/function decorator adding a strategy factory under ``name``.

    Raises :class:`ValueError` when ``name`` is already taken unless
    ``overwrite=True`` (useful for notebooks that re-execute cells).
    """
    if not isinstance(name, str) or not name:
        raise TypeError("strategy name must be a non-empty string")

    def decorator(factory: Callable[..., object]):
        if not callable(factory):
            raise TypeError(f"strategy '{name}' factory must be callable")
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"strategy '{name}' is already registered; pass overwrite=True "
                f"to replace it")
        _REGISTRY[name] = factory
        return factory

    return decorator


def unregister_strategy(name: str) -> None:
    """Remove a registration (no-op when absent).  Mainly for tests."""
    _REGISTRY.pop(name, None)


def is_registered(name: str) -> bool:
    _ensure_builtins()
    return name in _REGISTRY


def strategy_names() -> tuple[str, ...]:
    """All registered names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def build_strategy(name: str, **kwargs):
    """Instantiate a registered strategy, forwarding ``kwargs`` to its factory."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown strategy '{name}'; available: {list(strategy_names())}")
    return _REGISTRY[name](**kwargs)


def strategy_description(name: str) -> str:
    """One-line description of a registered strategy (docstring first line)."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown strategy '{name}'; available: {list(strategy_names())}")
    factory = _REGISTRY[name]
    describe = getattr(factory, "describe", None)
    if callable(describe):
        return describe()
    return doc_first_line(factory, fallback=name)
