"""Composable experiment API: registry, plans, executors, and run events.

The pieces fit together like this:

* :mod:`~repro.experiments.registry` — ``@register_strategy`` / ``build_strategy``:
  every runnable method (paper baselines, ShiftEx, user code) by name;
* :mod:`~repro.experiments.plan` — :class:`ExperimentPlan`, the declarative
  dataset x strategies x seeds x profile grid, serializable to JSON/TOML;
* :mod:`~repro.experiments.executors` — :class:`SerialExecutor` and the
  process-parallel :class:`ParallelExecutor` that runs the same grid with
  bitwise-identical results;
* :mod:`~repro.experiments.events` — :class:`RunCallback` hooks
  (``on_run_start`` / ``on_round_end`` / ``on_window_end`` / ``on_run_end``)
  with stock plugins for progress logging, JSON checkpointing, early stop;
* :mod:`~repro.experiments.results` — :class:`ComparisonResult`, the grid's
  collected runs and per-strategy aggregates.
"""

from repro.experiments.registry import (
    build_strategy,
    is_registered,
    register_strategy,
    strategy_description,
    strategy_names,
    unregister_strategy,
)
from repro.experiments.events import (
    EarlyStopper,
    JsonCheckpointer,
    ProgressLogger,
    RunCallback,
    RunInfo,
)
from repro.experiments.executors import ParallelExecutor, SerialExecutor, run_cell
from repro.experiments.plan import (
    ExperimentCell,
    ExperimentPlan,
    StrategySpec,
    load_plan,
    save_plan,
)
from repro.experiments.results import ComparisonResult

__all__ = [
    "register_strategy",
    "unregister_strategy",
    "build_strategy",
    "is_registered",
    "strategy_names",
    "strategy_description",
    "RunCallback",
    "RunInfo",
    "ProgressLogger",
    "JsonCheckpointer",
    "EarlyStopper",
    "SerialExecutor",
    "ParallelExecutor",
    "run_cell",
    "ExperimentPlan",
    "ExperimentCell",
    "StrategySpec",
    "save_plan",
    "load_plan",
    "ComparisonResult",
]
