"""Pluggable grid executors: serial and process-parallel cell execution.

Both executors run the same module-level :func:`run_cell`, so a grid's
results do not depend on which executor produced them: each cell builds its
dataset and strategy from the plan's declarative state and seeds every RNG
from the cell's explicit seed.  ``ParallelExecutor(jobs=N)`` therefore
yields bitwise-identical tables to ``SerialExecutor`` while overlapping the
strategy x seed grid across processes — the dominant cost of multi-seed
paper tables.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor


def run_cell(plan, cell, callbacks=()):
    """Execute one (strategy, seed) cell of a plan.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it by
    reference; everything it needs travels inside ``plan`` and ``cell``.
    """
    from repro.harness.runner import run_strategy
    spec, settings = plan.resolve()
    try:
        strategy = cell.spec.build()
    except KeyError as exc:
        raise KeyError(
            f"{exc.args[0] if exc.args else exc}; if this cell ran in a "
            f"'spawn'-start worker process, strategies must be registered at "
            f"import time in an importable module (not __main__)") from exc
    return run_strategy(strategy, spec, settings, seed=cell.seed,
                        callbacks=callbacks)


class SerialExecutor:
    """Run cells one after another in the calling process (the default)."""

    def map(self, plan, callbacks=()):
        return [run_cell(plan, cell, callbacks) for cell in plan.cells()]


class ParallelExecutor:
    """Run cells across a process pool, preserving cell order.

    Requires the plan and callbacks to be picklable — strategies must come
    from the registry (or be module-level factories), not lambdas.  Workers
    use the ``fork`` start method where available so strategies registered
    anywhere in the parent (scripts, notebooks) stay visible; under
    ``spawn`` (Windows), registrations must happen at import time in an
    importable module.  With one cell or ``jobs=1`` it degrades to
    in-process execution.
    """

    def __init__(self, jobs: int = 2) -> None:
        if jobs <= 0:
            raise ValueError("jobs must be positive")
        self.jobs = jobs

    def map(self, plan, callbacks=()):
        cells = plan.cells()
        if len(cells) <= 1 or self.jobs == 1:
            return [run_cell(plan, cell, callbacks) for cell in cells]
        try:
            pickle.dumps((plan, tuple(callbacks)))
        except Exception as exc:
            raise ValueError(
                "ParallelExecutor needs a picklable plan and callbacks; use "
                "registry-named strategies (@register_strategy) instead of "
                "closures, or fall back to SerialExecutor") from exc
        mp_context = (multiprocessing.get_context("fork")
                      if "fork" in multiprocessing.get_all_start_methods()
                      else None)
        workers = min(self.jobs, len(cells))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=mp_context) as pool:
            futures = [pool.submit(run_cell, plan, cell, callbacks)
                       for cell in cells]
            return [f.result() for f in futures]
