"""Declarative experiment plans: dataset x strategies x seeds x profile.

An :class:`ExperimentPlan` is the unit of work the experiment layer runs:

    plan = ExperimentPlan.build("cifar10_c_sim", ["fedprox", "shiftex"],
                                seeds=(0, 1, 2), profile="small")
    result = plan.run(executor=ParallelExecutor(jobs=4))

Plans serialize to JSON (and load from JSON or TOML), so a paper table
becomes a checked-in file executed with ``python -m repro run plan.json``.
Each (strategy, seed) pair is one :class:`ExperimentCell`; cells are
independent and deterministically seeded, which is what lets the parallel
executor reproduce serial results bit for bit.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.data.registry import DatasetSpec
from repro.experiments.executors import SerialExecutor
from repro.experiments.registry import build_strategy
from repro.experiments.results import ComparisonResult
from repro.federation.async_engine import FederationConfig
from repro.federation.pool import PopulationConfig
from repro.federation.rounds import RoundConfig
from repro.harness.profiles import RunSettings, get_profile
from repro.nn.training import LocalTrainingConfig
from repro.privacy.plan import PrivacyPlan
from repro.utils.precision import PrecisionPlan


@dataclass
class StrategySpec:
    """One strategy entry of a plan.

    ``label`` names the row in tables; ``method`` is the registry name built
    with ``kwargs`` (defaults to the label).  A raw ``factory`` callable may
    replace the registry lookup for ad-hoc strategies, at the cost of the
    spec no longer serializing.
    """

    label: str
    method: str | None = None
    kwargs: dict = field(default_factory=dict)
    factory: Callable[..., object] | None = None

    def build(self):
        if self.factory is not None:
            return self.factory(**self.kwargs)
        return build_strategy(self.method or self.label, **self.kwargs)

    def to_dict(self) -> dict:
        if self.factory is not None:
            raise ValueError(
                f"strategy '{self.label}' uses a raw factory and cannot be "
                f"serialized; register it with @register_strategy instead")
        return {"method": self.method or self.label, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_entry(cls, label: str, entry) -> "StrategySpec":
        """Build from a plan-file entry: name, mapping, or callable."""
        if isinstance(entry, StrategySpec):
            return entry
        if callable(entry):
            return cls(label=label, factory=entry)
        if isinstance(entry, str):
            return cls(label=label, method=entry)
        if isinstance(entry, Mapping):
            method = entry.get("method", label)
            kwargs = dict(entry.get("kwargs", {}))
            return cls(label=label, method=method, kwargs=kwargs)
        raise TypeError(f"cannot interpret strategy entry {entry!r}")


@dataclass(frozen=True)
class ExperimentCell:
    """One (strategy, seed) grid point; ``index`` fixes the result order."""

    index: int
    spec: StrategySpec
    seed: int


@dataclass
class ExperimentPlan:
    """Declarative grid spec whose :meth:`run` produces a ComparisonResult.

    ``precision`` declares the run's per-subsystem
    :class:`~repro.utils.precision.PrecisionPlan` (parameter dtype plus the
    detection-statistics island dtype) on top of whatever the profile
    settings say — precision is part of the experiment spec and serializes
    with the plan.  ``dtype`` is the legacy shorthand alias
    (``"float32"`` means ``params=float32`` with detection statistics kept
    float64); setting both to conflicting values is an error.

    ``federation`` likewise declares the participation regime (sync /
    buffered / async plus an availability scenario); it overrides the
    profile settings' federation config and serializes with the plan, so a
    dropout study is a checked-in file.

    ``shards`` declares the parameter-bank sharding (see
    :mod:`repro.utils.sharding`): how many shared-memory shards round banks
    and the expert pool split across.  It overrides the profile settings'
    ``shards`` and serializes with the plan; ``None`` defers to the profile
    (whose default, 1, is the bitwise single-process path).
    ``shard_backend`` picks who executes per-shard work
    (``auto|process|serial|remote``) and ``shard_hosts`` names the
    ``repro.net.shard_service`` daemons a ``remote`` backend talks to — an
    address list or a TOML/JSON topology-file path (resolved at plan
    construction so the serialized plan pins concrete addresses).  Both
    serialize with the plan; ``None`` defers to the profile settings.

    ``privacy`` declares the run's :class:`~repro.privacy.plan.PrivacyPlan`
    (a plan instance, a mapping, or a spec string such as
    ``"masking=on,threshold=3"``): pairwise-masked rounds, Shamir t-of-n
    dropout recovery, sealed expert scoring, and the mask-root override.
    ``secure_aggregation`` is the legacy boolean alias for
    ``privacy.masking`` — ``secure_aggregation: true`` in an old plan file
    means ``PrivacyPlan(masking=True)``, bit for bit.  ``None`` defers to
    the profile settings (off); masking is exact, so flipping it never
    changes results.

    ``population`` declares a virtual-party population (see
    :class:`~repro.federation.pool.PopulationConfig`): parties become
    seeded specs materialized on dispatch by a bounded
    :class:`~repro.federation.pool.PartyPool` instead of eager objects, so
    a plan can request 10^5–10^6 clients.  ``cohort_size`` overrides the
    profile's per-round participant budget (the natural companion knob:
    population fixes how many parties *exist*, cohort_size how many train
    per round).  Both serialize with the plan; ``None`` defers to the
    profile settings.
    """

    dataset: str
    strategies: tuple[StrategySpec, ...]
    seeds: tuple[int, ...] = (0,)
    profile: str = "ci"
    spec_override: DatasetSpec | None = None
    settings_override: RunSettings | None = None
    name: str = ""
    dtype: str | None = None
    precision: PrecisionPlan | None = None
    federation: FederationConfig | None = None
    shards: int | None = None
    shard_backend: str | None = None
    shard_hosts: tuple[str, ...] | None = None
    secure_aggregation: bool | None = None
    privacy: PrivacyPlan | None = None
    population: PopulationConfig | None = None
    cohort_size: int | None = None

    def __post_init__(self) -> None:
        self.strategies = tuple(self.strategies)
        self.seeds = tuple(int(s) for s in self.seeds)
        if not self.strategies:
            raise ValueError("plan needs at least one strategy")
        if not self.seeds:
            raise ValueError("plan needs at least one seed")
        if self.dtype is not None:
            from repro.utils.params import resolve_dtype
            self.dtype = str(resolve_dtype(self.dtype))
        if self.precision is not None:
            self.precision = PrecisionPlan.from_value(self.precision)
            if self.dtype is not None and self.dtype != self.precision.params:
                raise ValueError(
                    f"dtype={self.dtype!r} conflicts with precision "
                    f"params={self.precision.params!r}; set one (dtype is "
                    f"the shorthand alias for precision.params)")
        if self.shards is not None:
            self.shards = int(self.shards)
            if self.shards < 1:
                raise ValueError("shards must be at least 1 when given")
        if self.shard_hosts is not None:
            from repro.net.topology import resolve_shard_hosts
            self.shard_hosts = resolve_shard_hosts(self.shard_hosts)
            if self.shard_hosts and self.shard_backend is None:
                self.shard_backend = "remote"  # hosts imply the remote backend
        if self.shard_backend is not None:
            from repro.utils.sharding import ShardPlan
            # Validates the backend name and the backend<->hosts pairing the
            # same way RunSettings will at resolve() time.
            ShardPlan(shards=self.shards or 2, backend=self.shard_backend,
                      hosts=self.shard_hosts or ())
        if self.secure_aggregation is not None:
            self.secure_aggregation = bool(self.secure_aggregation)
        if self.privacy is not None:
            self.privacy = PrivacyPlan.from_value(self.privacy)
            if (self.secure_aggregation is not None
                    and self.secure_aggregation != self.privacy.masking):
                raise ValueError(
                    f"secure_aggregation={self.secure_aggregation} conflicts "
                    f"with privacy masking={self.privacy.masking}; set one "
                    f"(secure_aggregation is the legacy alias for "
                    f"privacy.masking)")
        if self.federation is not None and not isinstance(self.federation,
                                                          FederationConfig):
            self.federation = FederationConfig.from_dict(self.federation)
        self.population = PopulationConfig.from_value(self.population)
        if self.cohort_size is not None:
            self.cohort_size = int(self.cohort_size)
            if self.cohort_size < 1:
                raise ValueError("cohort_size must be at least 1 when given")
        labels = [s.label for s in self.strategies]
        dupes = {label for label in labels if labels.count(label) > 1}
        if dupes:
            raise ValueError(f"duplicate strategy labels: {sorted(dupes)}")

    # ------------------------------------------------------------ construction

    @classmethod
    def build(cls, dataset: str, strategies, seeds: Iterable[int] = (0,),
              profile: str = "ci", spec_override: DatasetSpec | None = None,
              settings_override: RunSettings | None = None,
              name: str = "", dtype: str | None = None,
              precision: "PrecisionPlan | str | Mapping | None" = None,
              federation: FederationConfig | None = None,
              shards: int | None = None,
              shard_backend: str | None = None,
              shard_hosts=None,
              secure_aggregation: bool | None = None,
              privacy: "PrivacyPlan | str | Mapping | None" = None,
              population: "PopulationConfig | int | None" = None,
              cohort_size: int | None = None) -> "ExperimentPlan":
        """Flexible constructor: strategies as names, mapping, or specs.

        ``strategies`` may be an iterable of names/StrategySpecs or a mapping
        ``label -> entry`` where the entry is a registry name, a
        ``{"method": ..., "kwargs": {...}}`` mapping, or a factory callable.
        """
        specs: list[StrategySpec] = []
        if isinstance(strategies, Mapping):
            for label, entry in strategies.items():
                specs.append(StrategySpec.from_entry(label, entry))
        else:
            for entry in strategies:
                if isinstance(entry, StrategySpec):
                    specs.append(entry)
                elif isinstance(entry, str):
                    specs.append(StrategySpec(label=entry, method=entry))
                else:
                    raise TypeError(
                        f"strategy list entries must be names or StrategySpec, "
                        f"got {entry!r}")
        return cls(dataset=dataset, strategies=tuple(specs),
                   seeds=tuple(seeds), profile=profile,
                   spec_override=spec_override,
                   settings_override=settings_override, name=name,
                   dtype=dtype,
                   precision=(PrecisionPlan.from_value(precision)
                              if precision is not None else None),
                   federation=federation, shards=shards,
                   shard_backend=shard_backend, shard_hosts=shard_hosts,
                   secure_aggregation=secure_aggregation,
                   privacy=(PrivacyPlan.from_value(privacy)
                            if privacy is not None else None),
                   population=population, cohort_size=cohort_size)

    # -------------------------------------------------------------- execution

    def cells(self) -> list[ExperimentCell]:
        """The grid in execution order: strategy-major, then seed."""
        out: list[ExperimentCell] = []
        for spec in self.strategies:
            for seed in self.seeds:
                out.append(ExperimentCell(index=len(out), spec=spec, seed=seed))
        return out

    def resolve(self) -> tuple[DatasetSpec, RunSettings]:
        """The (dataset spec, run settings) every cell executes under."""
        if self.spec_override is not None and self.settings_override is not None:
            spec, settings = self.spec_override, self.settings_override
        else:
            spec, settings = get_profile(self.profile, self.dataset)
            if self.spec_override is not None:
                spec = self.spec_override
            if self.settings_override is not None:
                settings = self.settings_override
        # dtype is the shorthand alias for precision.params; either knob
        # replaces the profile's whole plan.  Both fields must move together
        # through dataclasses.replace or the re-run __post_init__ would see
        # the stale sibling and report a conflict.
        plan_precision = self.precision
        if plan_precision is None and self.dtype is not None:
            plan_precision = PrecisionPlan.from_value(self.dtype)
        if plan_precision is not None and settings.precision != plan_precision:
            settings = dataclasses.replace(settings, precision=plan_precision,
                                           dtype=None)
        if self.federation is not None and settings.federation != self.federation:
            settings = dataclasses.replace(settings, federation=self.federation)
        if self.shards is not None and settings.shards != self.shards:
            settings = dataclasses.replace(settings, shards=self.shards)
        if (self.shard_backend is not None
                and settings.shard_backend != self.shard_backend):
            # backend and hosts move together: ShardPlan validation requires
            # hosts exactly when the backend is remote.
            settings = dataclasses.replace(
                settings, shard_backend=self.shard_backend,
                shard_hosts=self.shard_hosts or ())
        elif (self.shard_hosts is not None
                and settings.shard_hosts != self.shard_hosts):
            settings = dataclasses.replace(settings,
                                           shard_hosts=self.shard_hosts)
        # privacy and its legacy alias move together (like dtype/precision):
        # either knob replaces the profile's whole privacy plan, and the
        # mirrored secure_aggregation bool must follow or the re-run
        # __post_init__ would see the stale sibling and report a conflict.
        plan_privacy = self.privacy
        if plan_privacy is None and self.secure_aggregation is not None:
            plan_privacy = PrivacyPlan.from_value(self.secure_aggregation)
        if plan_privacy is not None and settings.privacy != plan_privacy:
            settings = dataclasses.replace(
                settings, privacy=plan_privacy,
                secure_aggregation=plan_privacy.masking)
        if self.population is not None and settings.population != self.population:
            settings = dataclasses.replace(settings,
                                           population=self.population)
        if (self.cohort_size is not None
                and settings.round_config.participants_per_round
                != self.cohort_size):
            settings = dataclasses.replace(
                settings, round_config=dataclasses.replace(
                    settings.round_config,
                    participants_per_round=self.cohort_size))
        return spec, settings

    def run(self, executor=None, callbacks=()) -> ComparisonResult:
        """Execute every cell and assemble the comparison result.

        ``executor`` defaults to :class:`SerialExecutor`; pass
        :class:`~repro.experiments.executors.ParallelExecutor` to fan the
        grid out over processes.  ``callbacks`` are threaded into every
        cell's runner (under a parallel executor they fire inside workers).
        """
        executor = executor if executor is not None else SerialExecutor()
        cell_runs = executor.map(self, callbacks=tuple(callbacks))
        result = ComparisonResult(dataset=self.dataset, profile=self.profile,
                                  seeds=self.seeds)
        per_label = len(self.seeds)
        for i, spec in enumerate(self.strategies):
            result.add_runs(spec.label,
                            cell_runs[i * per_label:(i + 1) * per_label])
        return result

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "dataset": self.dataset,
            "profile": self.profile,
            "seeds": list(self.seeds),
            "strategies": {s.label: s.to_dict() for s in self.strategies},
        }
        if self.dtype is not None:
            out["dtype"] = self.dtype
        if self.precision is not None:
            out["precision"] = self.precision.to_dict()
        if self.federation is not None:
            out["federation"] = self.federation.to_dict()
        if self.shards is not None:
            out["shards"] = self.shards
        if self.shard_backend is not None:
            out["shard_backend"] = self.shard_backend
        if self.shard_hosts is not None:
            out["shard_hosts"] = list(self.shard_hosts)
        if self.secure_aggregation is not None:
            out["secure_aggregation"] = self.secure_aggregation
        if self.privacy is not None:
            out["privacy"] = self.privacy.to_dict()
        if self.population is not None:
            out["population"] = self.population.to_dict()
        if self.cohort_size is not None:
            out["cohort_size"] = self.cohort_size
        if self.spec_override is not None:
            out["spec_override"] = dataclasses.asdict(self.spec_override)
        if self.settings_override is not None:
            out["settings_override"] = dataclasses.asdict(self.settings_override)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentPlan":
        try:
            dataset = data["dataset"]
            raw_strategies = data["strategies"]
        except KeyError as exc:
            raise ValueError(f"plan is missing required key {exc}") from None
        if isinstance(raw_strategies, Mapping):
            specs = [StrategySpec.from_entry(label, entry)
                     for label, entry in raw_strategies.items()]
        else:
            specs = [StrategySpec.from_entry(nm, nm) for nm in raw_strategies]
        spec_override = data.get("spec_override")
        settings_override = data.get("settings_override")
        return cls(
            dataset=dataset,
            strategies=tuple(specs),
            seeds=tuple(data.get("seeds", (0,))),
            profile=data.get("profile", "ci"),
            spec_override=(_dataset_spec_from_dict(spec_override)
                           if spec_override is not None else None),
            settings_override=(_run_settings_from_dict(settings_override)
                               if settings_override is not None else None),
            name=data.get("name", ""),
            dtype=data.get("dtype"),
            precision=(PrecisionPlan.from_value(data["precision"])
                       if data.get("precision") is not None else None),
            federation=(FederationConfig.from_dict(data["federation"])
                        if data.get("federation") is not None else None),
            shards=data.get("shards"),
            shard_backend=data.get("shard_backend"),
            shard_hosts=(tuple(data["shard_hosts"])
                         if data.get("shard_hosts") is not None else None),
            secure_aggregation=data.get("secure_aggregation"),
            privacy=(PrivacyPlan.from_value(data["privacy"])
                     if data.get("privacy") is not None else None),
            population=data.get("population"),
            cohort_size=data.get("cohort_size"),
        )


def _dataset_spec_from_dict(data: Mapping) -> DatasetSpec:
    fields = {f.name for f in dataclasses.fields(DatasetSpec)}
    kwargs = {k: v for k, v in data.items() if k in fields}
    kwargs["window_regimes"] = tuple(
        (str(c), int(s)) for c, s in kwargs.get("window_regimes", ()))
    return DatasetSpec(**kwargs)


def _run_settings_from_dict(data: Mapping) -> RunSettings:
    data = dict(data)
    round_config = dict(data.pop("round_config", {}))
    local = LocalTrainingConfig(**round_config.pop("local", {}))
    federation = data.pop("federation", None)
    kwargs = dict(data)
    if federation is not None:
        kwargs["federation"] = FederationConfig.from_dict(federation)
    return RunSettings(round_config=RoundConfig(local=local, **round_config),
                       **kwargs)


def save_plan(path: str | Path, plan: ExperimentPlan) -> Path:
    """Write a plan as JSON (the canonical on-disk format)."""
    path = Path(path)
    path.write_text(json.dumps(plan.to_dict(), indent=2) + "\n")
    return path


def load_plan(path: str | Path) -> ExperimentPlan:
    """Read a plan from ``.json`` or ``.toml`` (suffix decides the parser)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"plan file not found: {path}")
    if path.suffix.lower() in (".toml", ".tml"):
        try:
            import tomllib
        except ModuleNotFoundError:  # stdlib from 3.11; package supports 3.10
            raise ValueError(
                f"reading TOML plans requires Python 3.11+ (tomllib); "
                f"convert {path.name} to JSON or upgrade Python") from None
        try:
            data = tomllib.loads(path.read_text())
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"{path} is not valid TOML: {exc}") from None
    else:
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from None
    return ExperimentPlan.from_dict(data)
