"""Grid results: all runs of one comparison plus per-strategy aggregates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.metrics.aggregate import MetricAggregate, aggregate_summaries

if TYPE_CHECKING:  # import cycle: the runner fires experiments.events
    from repro.harness.runner import StrategyRunResult


@dataclass
class ComparisonResult:
    """All runs of one dataset comparison plus per-strategy aggregates.

    ``runs`` maps strategy label -> one :class:`StrategyRunResult` per seed
    (in ``seeds`` order); ``aggregates`` holds the matching per-window
    mean/std cells used by the paper-style tables.
    """

    dataset: str
    profile: str
    seeds: tuple[int, ...]
    runs: dict[str, list[StrategyRunResult]] = field(default_factory=dict)
    aggregates: dict[str, list[MetricAggregate]] = field(default_factory=dict)

    @property
    def strategy_names(self) -> list[str]:
        return list(self.runs)

    def num_windows(self) -> int:
        """Window count of the recorded runs (0 when the result is empty)."""
        for runs in self.runs.values():
            if runs:
                return len(runs[0].window_series)
        return 0

    def add_runs(self, label: str, runs: list[StrategyRunResult]) -> None:
        """Record one strategy's per-seed runs and refresh its aggregates.

        Early-stopped runs may cover fewer windows than their siblings; the
        aggregates then span the window prefix common to every seed (empty
        when a run stopped during burn-in).
        """
        if not runs:
            raise ValueError(f"strategy '{label}' produced no runs")
        self.runs[label] = list(runs)
        common = min(len(r.summaries) for r in runs)
        self.aggregates[label] = (
            aggregate_summaries([r.summaries[:common] for r in runs])
            if common else [])
