"""Run events: the callback protocol the harness runner fires.

Cross-cutting concerns — progress logging, JSON checkpointing, early
stopping — attach to a run as callbacks instead of being hard-coded into
:func:`~repro.harness.runner.run_strategy`:

    run_strategy(strategy, spec, settings, callbacks=[ProgressLogger()])

Event order for one run::

    on_run_start
    (on_round_end* on_window_end)  x num_windows
    on_run_end

Any callback may call :meth:`RunCallback.request_stop`; the runner stops
after the current round, closes the window with the rounds completed so far,
truncates the remaining windows, and records ``stopped_early`` /
``stop_reason`` / ``completed_windows`` in the result's ``extras``.  The
runner clears pending stop state before ``on_run_start``, so one callback
instance can observe every cell of a grid without a stop in one run
leaking into the next.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunInfo:
    """Static facts about one run, passed to every event."""

    strategy_name: str
    dataset: str
    seed: int
    num_windows: int
    rounds_burn_in: int
    rounds_per_window: int


class RunCallback:
    """Base class; subclasses override the hooks they care about."""

    _stop_reason: str | None = None

    # ------------------------------------------------------------------ hooks

    def on_run_start(self, info: RunInfo) -> None:
        """Fired once before the first window's data is dealt."""

    def on_round_end(self, info: RunInfo, window: int, round_index: int,
                     accuracy: float) -> None:
        """Fired after each round's evaluation (``accuracy`` is mean %)."""

    def on_window_end(self, info: RunInfo, window: int, series: list[float],
                      state: dict) -> None:
        """Fired after a window closes with its accuracy series and state."""

    def on_run_end(self, info: RunInfo, result) -> None:
        """Fired once with the finished :class:`StrategyRunResult`."""

    # ------------------------------------------------------------- early stop

    def request_stop(self, reason: str = "callback requested stop") -> None:
        """Ask the runner to truncate the run after the current round."""
        self._stop_reason = reason

    def clear_stop(self) -> None:
        """Drop any pending stop request (the runner calls this per run)."""
        self._stop_reason = None

    @property
    def stop_requested(self) -> bool:
        return self._stop_reason is not None

    @property
    def stop_reason(self) -> str | None:
        return self._stop_reason


class ProgressLogger(RunCallback):
    """Print one line per window (plus run start/end) — CLI progress."""

    def __init__(self, emit=print) -> None:
        self.emit = emit

    def on_run_start(self, info: RunInfo) -> None:
        self.emit(f"[{info.strategy_name} seed={info.seed}] starting "
                  f"{info.dataset}: {info.num_windows} windows")

    def on_window_end(self, info: RunInfo, window: int, series: list[float],
                      state: dict) -> None:
        self.emit(f"[{info.strategy_name} seed={info.seed}] W{window}: "
                  f"entry {series[0]:.2f}% -> max {max(series):.2f}%")

    def on_run_end(self, info: RunInfo, result) -> None:
        self.emit(f"[{info.strategy_name} seed={info.seed}] done "
                  f"({len(result.window_series)} windows)")


class JsonCheckpointer(RunCallback):
    """Persist run progress as JSON after every window.

    Writes ``<dataset>_<strategy>_seed<seed>.partial.json`` incrementally and
    replaces it with the full run result (same stem, ``.json``) at run end,
    so a crashed multi-hour grid leaves resumable evidence behind.
    """

    def __init__(self, directory) -> None:
        from pathlib import Path
        self.directory = Path(directory)

    def _stem(self, info: RunInfo) -> str:
        return f"{info.dataset}_{info.strategy_name}_seed{info.seed}"

    def on_run_start(self, info: RunInfo) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        self._series: list[list[float]] = []

    def on_window_end(self, info: RunInfo, window: int, series: list[float],
                      state: dict) -> None:
        import json
        self._series.append(list(series))
        partial = {
            "strategy": info.strategy_name,
            "dataset": info.dataset,
            "seed": info.seed,
            "windows_completed": len(self._series),
            "window_series": self._series,
        }
        path = self.directory / f"{self._stem(info)}.partial.json"
        path.write_text(json.dumps(partial, indent=2))

    def on_run_end(self, info: RunInfo, result) -> None:
        from repro.utils.serialization import save_run_result
        save_run_result(self.directory / f"{self._stem(info)}.json", result)
        partial = self.directory / f"{self._stem(info)}.partial.json"
        if partial.exists():
            partial.unlink()


class EarlyStopper(RunCallback):
    """Stop a run once a target accuracy or a round budget is reached."""

    def __init__(self, target_accuracy: float | None = None,
                 max_total_rounds: int | None = None) -> None:
        if target_accuracy is None and max_total_rounds is None:
            raise ValueError("give target_accuracy and/or max_total_rounds")
        self.target_accuracy = target_accuracy
        self.max_total_rounds = max_total_rounds
        self._rounds = 0

    def on_run_start(self, info: RunInfo) -> None:
        self._rounds = 0

    def on_round_end(self, info: RunInfo, window: int, round_index: int,
                     accuracy: float) -> None:
        self._rounds += 1
        if (self.target_accuracy is not None
                and accuracy >= self.target_accuracy):
            self.request_stop(
                f"accuracy {accuracy:.2f}% reached target "
                f"{self.target_accuracy:.2f}%")
        elif (self.max_total_rounds is not None
                and self._rounds >= self.max_total_rounds):
            self.request_stop(f"round budget {self.max_total_rounds} exhausted")


def first_stop_reason(callbacks) -> str | None:
    """The first pending stop request among ``callbacks`` (None if none)."""
    for cb in callbacks:
        reason = getattr(cb, "stop_reason", None)
        if reason is not None:
            return reason
    return None
