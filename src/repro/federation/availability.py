"""Client-availability scenarios: dropout, stragglers, correlated outages.

Real FL deployments never see the full cohort report back each round —
parties drop out (battery, churn), straggle (slow links, contended devices),
or vanish together when shared infrastructure fails.  The simulator here
decides, per ``(party, round)``, whether a dispatched report is lost or how
many rounds late it arrives.  Every draw derives from
:func:`repro.utils.rng.spawn_rng` on ``(seed, labels...)``, so a scenario is
a pure function of its seed: two runs with the same seed see identical
dropouts, delays, and outages, which is what the determinism CI job asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.rng import spawn_rng

SCENARIOS = ("none", "dropout30", "stragglers", "flaky", "outages")


@dataclass(frozen=True)
class AvailabilityConfig:
    """Knobs for one availability scenario (all off by default).

    * ``dropout_prob`` — per-(party, round) Bernoulli probability the report
      is lost entirely (independent across parties).
    * ``straggler_prob`` / ``straggler_zipf_a`` / ``max_delay_rounds`` — a
      straggling report arrives ``min(Zipf(a), max_delay_rounds)`` rounds
      late; Zipf gives the heavy tail observed in device studies (most
      stragglers are 1 round late, a few are very late).
    * ``outage_prob`` / ``outage_fraction`` / ``outage_rounds`` — with
      probability ``outage_prob`` per round a *correlated* outage starts,
      knocking out a random ``outage_fraction`` of the population for
      ``outage_rounds`` consecutive rounds.
    """

    dropout_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_zipf_a: float = 2.0
    max_delay_rounds: int = 8
    outage_prob: float = 0.0
    outage_fraction: float = 0.3
    outage_rounds: int = 2

    def __post_init__(self) -> None:
        for name in ("dropout_prob", "straggler_prob", "outage_prob",
                     "outage_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {value}")
        if self.straggler_zipf_a <= 1.0:
            raise ValueError("straggler_zipf_a must be > 1 for a finite mean")
        if self.max_delay_rounds < 1:
            raise ValueError("max_delay_rounds must be at least 1")
        if self.outage_rounds < 1:
            raise ValueError("outage_rounds must be at least 1")

    @property
    def is_active(self) -> bool:
        """True when any knob can actually perturb participation."""
        return (self.dropout_prob > 0 or self.straggler_prob > 0
                or self.outage_prob > 0)

    @classmethod
    def scenario(cls, name: str, **overrides) -> "AvailabilityConfig":
        """Named presets used by docs, examples, and CI (see README matrix).

        The valid names are the module-level ``SCENARIOS`` tuple (which the
        CLI exposes as ``--scenario`` choices).
        """
        presets = {
            "none": cls(),
            "dropout30": cls(dropout_prob=0.3),
            "stragglers": cls(straggler_prob=0.4),
            "flaky": cls(dropout_prob=0.15, straggler_prob=0.25,
                         outage_prob=0.05),
            "outages": cls(outage_prob=0.1, outage_fraction=0.4,
                           outage_rounds=2),
        }
        assert set(presets) == set(SCENARIOS)
        if name not in presets:
            raise KeyError(
                f"unknown availability scenario '{name}'; "
                f"available: {sorted(presets)}")
        return replace(presets[name], **overrides) if overrides else presets[name]


@dataclass(frozen=True)
class ReportFate:
    """What happens to one dispatched report."""

    party_id: int
    dropped: bool
    delay: int  # rounds until arrival (0 = same round); meaningless if dropped
    in_outage: bool = False


class AvailabilitySimulator:
    """Deterministic per-(party, round) availability draws.

    ``num_parties`` fixes the population correlated outages sample from;
    dropout/straggler draws are per-party streams and do not need it.  All
    methods are pure functions of ``(seed, party_id, tick)`` — the caches
    here only memoize those pure draws, so replaying any round gives the
    same fates.  ``enumeration_limit`` bounds the exact-subset outage
    regime: see :attr:`enumerates_outages` for the O(cohort) large-population
    derivation.
    """

    def __init__(self, config: AvailabilityConfig, seed: int = 0,
                 num_parties: int | None = None,
                 enumeration_limit: int = 4096) -> None:
        self.config = config
        self.seed = seed
        self.num_parties = num_parties
        self.enumeration_limit = enumeration_limit
        self._outage_cache: dict[int, frozenset[int]] = {}

    @property
    def enumerates_outages(self) -> bool:
        """True when outage membership is an exact-``k`` enumerated subset.

        Below ``enumeration_limit`` each outage knocks out exactly
        ``round(outage_fraction * num_parties)`` parties — the historical
        semantics, preserved bitwise.  Above it, enumerating the population
        per round would make dispatch O(population), so membership switches
        to an independent per-(party, start) Bernoulli(``outage_fraction``)
        draw from a counter-based spawn of the party's stream: same expected
        outage size, O(cohort) queries.
        """
        return (bool(self.num_parties)
                and self.num_parties <= self.enumeration_limit)

    def _outage_start_active(self, start: int) -> bool:
        """Whether a correlated outage begins at round ``start`` (the first
        draw of the start's stream — identical bits on both regimes)."""
        rng = spawn_rng(self.seed, "availability-outage", start)
        return rng.random() < self.config.outage_prob

    def outage_parties(self, tick: int) -> frozenset[int]:
        """Parties knocked out at ``tick`` by any outage still in progress.

        Stateless on purpose: an outage starting at round ``s`` covers rounds
        ``[s, s + outage_rounds)``, so membership at ``tick`` is the union
        over possible start rounds — replayable from the seed alone.  Only
        valid on the enumeration regime; large populations must query
        :meth:`party_in_outage` per cohort member instead.
        """
        cfg = self.config
        if cfg.outage_prob <= 0 or not self.num_parties:
            return frozenset()
        if not self.enumerates_outages:
            raise ValueError(
                f"population {self.num_parties} exceeds enumeration_limit "
                f"{self.enumeration_limit}, so the outage set cannot be "
                f"enumerated; dispatch through cohort_fates(party_ids, tick) "
                f"(or query party_in_outage(party, tick) per member), which "
                f"scales O(cohort) instead of O(population)")
        cached = self._outage_cache.get(tick)
        if cached is not None:
            return cached
        affected: set[int] = set()
        for start in range(max(0, tick - cfg.outage_rounds + 1), tick + 1):
            rng = spawn_rng(self.seed, "availability-outage", start)
            if rng.random() >= cfg.outage_prob:
                continue
            k = int(round(cfg.outage_fraction * self.num_parties))
            if k <= 0:
                continue
            affected.update(int(p) for p in rng.choice(
                self.num_parties, size=min(k, self.num_parties), replace=False))
        if len(self._outage_cache) >= 8:
            self._outage_cache.clear()
        result = frozenset(affected)
        self._outage_cache[tick] = result
        return result

    def party_in_outage(self, party_id: int, tick: int) -> bool:
        """O(outage_rounds) membership query — never enumerates the population.

        Above the enumeration limit, membership in an active outage is a
        per-(party, start) Bernoulli(``outage_fraction``) draw spawned from
        the start round counter, so a cohort's fates cost O(cohort) while
        any two queries for the same (party, tick) agree.
        """
        cfg = self.config
        if cfg.outage_prob <= 0 or not self.num_parties:
            return False
        if self.enumerates_outages:
            return party_id in self.outage_parties(tick)
        for start in range(max(0, tick - cfg.outage_rounds + 1), tick + 1):
            if not self._outage_start_active(start):
                continue
            draw = spawn_rng(self.seed, "availability-outage", start,
                             "member", party_id).random()
            if draw < cfg.outage_fraction:
                return True
        return False

    def fate(self, party_id: int, tick: int,
             outage: frozenset[int] | None = None) -> ReportFate:
        """Decide a dispatched report's fate; pass a precomputed ``outage``
        set when calling for a whole cohort to avoid re-deriving it."""
        cfg = self.config
        if outage is not None:
            in_outage = party_id in outage
        else:
            in_outage = self.party_in_outage(party_id, tick)
        if in_outage:
            return ReportFate(party_id, dropped=True, delay=0, in_outage=True)
        if not cfg.is_active:
            return ReportFate(party_id, dropped=False, delay=0)
        rng = spawn_rng(self.seed, "availability", party_id, tick)
        # Fixed draw order keeps fates stable when knobs are toggled off.
        drop_draw = rng.random()
        straggle_draw = rng.random()
        if cfg.dropout_prob > 0 and drop_draw < cfg.dropout_prob:
            return ReportFate(party_id, dropped=True, delay=0)
        delay = 0
        if cfg.straggler_prob > 0 and straggle_draw < cfg.straggler_prob:
            delay = min(int(rng.zipf(cfg.straggler_zipf_a)),
                        cfg.max_delay_rounds)
        return ReportFate(party_id, dropped=False, delay=delay)

    def cohort_fates(self, party_ids: list[int], tick: int) -> list[ReportFate]:
        """Fates for a whole cohort at one tick — O(cohort) either regime."""
        if self.config.outage_prob > 0 and self.enumerates_outages:
            outage = self.outage_parties(tick)
            return [self.fate(pid, tick, outage=outage) for pid in party_ids]
        return [self.fate(pid, tick) for pid in party_ids]
