"""Communication and runtime accounting.

The paper reports ShiftEx's overheads (Section 5.4 and the Results
discussion): bytes moved per round, aggregator memory, and the latency of
detection / clustering / assignment.  These ledgers collect exactly those
quantities from the simulator.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field

# Fallback element width when a run has no PrecisionPlan (full precision).
# Real runs construct the ledger via from_precision so float32 parameter
# planes stop being over-counted 2x.
_DEFAULT_BYTES_PER_FLOAT = 8


@dataclass
class CommunicationLedger:
    """Counts protocol bytes by direction and category.

    ``bytes_per_float`` is the wire width of one model/statistics element
    and must match the run's parameter dtype — build the ledger with
    :meth:`from_precision` so a float32 plane counts 4 bytes per element,
    not a hardcoded 8.  Already-byte-sized traffic (e.g. the shard-service
    frames) is recorded verbatim via :meth:`record_wire`.
    """

    uplink_bytes: int = 0
    downlink_bytes: int = 0
    bytes_per_float: int = _DEFAULT_BYTES_PER_FLOAT
    by_category: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    @classmethod
    def from_precision(cls, precision=None) -> "CommunicationLedger":
        """A ledger whose element width matches ``precision.np_params``."""
        if precision is None:
            return cls()
        return cls(bytes_per_float=int(precision.np_params.itemsize))

    def record_model_download(self, num_params: int, num_parties: int = 1) -> None:
        size = num_params * self.bytes_per_float * num_parties
        self.downlink_bytes += size
        self.by_category["model_down"] += size

    def record_model_upload(self, num_params: int, num_parties: int = 1) -> None:
        size = num_params * self.bytes_per_float * num_parties
        self.uplink_bytes += size
        self.by_category["model_up"] += size

    def record_statistics_upload(self, embedding_rows: int, embedding_dim: int,
                                 num_classes: int, num_parties: int = 1) -> None:
        """Shift statistics: embeddings + label histogram + 2 scalar scores."""
        per_party = (embedding_rows * embedding_dim + num_classes + 2) \
            * self.bytes_per_float
        size = per_party * num_parties
        self.uplink_bytes += size
        self.by_category["shift_stats_up"] += size

    def record_wire(self, category: str, sent_bytes: int,
                    received_bytes: int) -> None:
        """Exact byte counts measured on a socket (no element scaling)."""
        self.uplink_bytes += int(sent_bytes)
        self.downlink_bytes += int(received_bytes)
        self.by_category[category] += int(sent_bytes) + int(received_bytes)

    @property
    def total_bytes(self) -> int:
        return self.uplink_bytes + self.downlink_bytes

    def summary(self) -> dict[str, float]:
        out = {"uplink_mb": self.uplink_bytes / 1e6,
               "downlink_mb": self.downlink_bytes / 1e6,
               "total_mb": self.total_bytes / 1e6,
               # raw integers so dtype halving can be pinned exactly
               "uplink_bytes": float(self.uplink_bytes),
               "downlink_bytes": float(self.downlink_bytes),
               "bytes_per_float": float(self.bytes_per_float)}
        out.update({f"{k}_mb": v / 1e6 for k, v in self.by_category.items()})
        return out


class RuntimeProfiler:
    """Wall-clock accumulator for named phases (detection, clustering, ...)."""

    def __init__(self) -> None:
        self._totals: dict[str, float] = defaultdict(float)
        self._counts: dict[str, int] = defaultdict(int)

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] += elapsed
            self._counts[name] += 1

    def add(self, name: str, seconds: float) -> None:
        self._totals[name] += seconds
        self._counts[name] += 1

    def total_seconds(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def mean_ms(self, name: str) -> float:
        count = self._counts.get(name, 0)
        if count == 0:
            return 0.0
        return 1000.0 * self._totals[name] / count

    def summary(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "total_s": self._totals[name],
                "count": float(self._counts[name]),
                "mean_ms": self.mean_ms(name),
            }
            for name in sorted(self._totals)
        }
