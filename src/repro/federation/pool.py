"""Virtual-party residency: scale the simulator to million-party populations.

The eager harness builds one live :class:`~repro.federation.party.Party` per
client — a model replica plus a window of data each — which caps populations
at a few thousand.  This module inverts that: a party *is* its seeded
:class:`PartySpec` (party id, dataset shard, RNG root, dtype), and
:class:`PartyPool` materializes the live object only while it is needed —
on dispatch it binds a model replica from a small reusable free list and
generates the party's window data from the spec; after the party's report
lands its state is evicted again (bounded LRU).  Because every piece of
party state is a pure function of ``(seed, labels...)`` streams
(:func:`~repro.utils.rng.spawn_rng`), materialization order is invisible to
results: a pooled run with ``population == spec.num_parties`` and an
unbounded pool reproduces the eager path bit for bit, which
``tests/test_party_pool.py`` pins for all six strategies.

Residency invariants
--------------------
1. **Materialization is pure.**  A party's training draws are labelled by
   ``(seed, "party-train", party_id, round_tag)`` and its data by
   ``(spec.seed, "data", party_id, window, split)``, so evicting and
   rebuilding a party between rounds cannot change any number it produces.
2. **Model replicas are interchangeable.**  Every protocol op
   (``local_train`` / ``evaluate`` / ``embeddings``) starts with
   ``set_params``, so a replica's weights on arrival never matter; the pool
   therefore recycles ``Sequential`` instances through a free list instead
   of rebuilding layer buffers per materialization.
3. **Pinned residents are never evicted.**  ``acquire``/``release`` wrap a
   party's in-flight window (the cohort loop pins each trainee); capacity
   pressure skips pinned rows, temporarily overshooting ``max_resident``
   rather than corrupting a straggler mid-training.  Bank rows holding
   buffered *reports* live in the
   :class:`~repro.federation.async_engine.AsyncRoundBuffer` and are
   independent of party residency — evicting a party never touches its
   in-flight report.
4. **Eviction is deterministic.**  Same seed, same access sequence → same
   eviction order (``eviction_log``); the LRU holds insertion/access order
   only, never wall-clock state.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import asdict, dataclass

import numpy as np

from repro.data.federated import FederatedShiftDataset
from repro.data.registry import DatasetSpec
from repro.federation.party import Party
from repro.nn.models import build_model
from repro.utils.params import resolve_dtype
from repro.utils.rng import spawn_rng

PARTICIPATION_SKEWS = ("uniform", "zipf")


@dataclass(frozen=True)
class PartySpec:
    """A virtual party's whole identity — enough to rebuild it exactly.

    ``shard_id`` names the dataset shard (``party_id % spec.num_parties``)
    whose shift schedule the party lives on; ``seed`` is the run's root seed
    whose ``("party-train", party_id, ...)`` labels are the party's private
    RNG stream.  Two pools given the same spec materialize bitwise-identical
    parties.
    """

    party_id: int
    shard_id: int
    seed: int
    dtype: str | None = None


@dataclass(frozen=True)
class PopulationConfig:
    """Declarative population-scale knobs (``RunSettings.population``).

    * ``size`` — how many virtual parties exist.  ``size == spec.num_parties``
      with ``max_resident=None`` reproduces the eager path bitwise.
    * ``max_resident`` — LRU bound on live parties (None = unbounded).
    * ``skew`` / ``zipf_a`` — cohort participation distribution: ``uniform``
      or ``zipf`` (rank ``i`` drawn with weight ``(i + 1) ** -zipf_a``).
    * ``survey`` — optional cap on whole-population surveys
      (:meth:`PartyPool.survey_ids`): strategy bookkeeping that would
      otherwise enumerate every party sees a fixed seeded subset instead.
    """

    size: int
    max_resident: int | None = None
    skew: str = "uniform"
    zipf_a: float = 1.2
    survey: int | None = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"population size must be positive; got {self.size}")
        if self.max_resident is not None and self.max_resident < 1:
            raise ValueError("max_resident must be positive when given")
        if self.skew not in PARTICIPATION_SKEWS:
            raise ValueError(
                f"skew must be one of {PARTICIPATION_SKEWS}; got '{self.skew}'")
        if self.zipf_a <= 0:
            raise ValueError("zipf_a must be positive")
        if self.survey is not None and self.survey < 1:
            raise ValueError("survey must be positive when given")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_value(cls, value) -> "PopulationConfig | None":
        """Coerce None / int / mapping / PopulationConfig (serialization)."""
        if value is None or isinstance(value, PopulationConfig):
            return value
        if isinstance(value, (int, np.integer)):
            return cls(size=int(value))
        if isinstance(value, Mapping):
            return cls(**dict(value))
        raise TypeError(f"cannot interpret population {value!r}")


class CohortSampler:
    """Seeded cohort draws from a population-scale participation skew.

    ``uniform`` is a plain without-replacement draw — numpy's
    ``Generator.choice(n, k, replace=False)`` is O(k) time and memory even
    at n = 1e6, and produces the same bits as sampling from the materialized
    sorted id list, which is what keeps pooled selection identical to the
    eager strategies' ``rng.choice(sorted(parties), ...)``.  ``zipf`` draws
    rank ``i`` with weight ``(i + 1) ** -zipf_a`` via inverse-CDF rejection
    on a lazily built cumulative table (the only O(population) allocation,
    made once and only when the skew is actually zipf).
    """

    def __init__(self, population: int, skew: str = "uniform",
                 zipf_a: float = 1.2) -> None:
        if population < 1:
            raise ValueError("population must be positive")
        if skew not in PARTICIPATION_SKEWS:
            raise ValueError(
                f"skew must be one of {PARTICIPATION_SKEWS}; got '{skew}'")
        if zipf_a <= 0:
            raise ValueError("zipf_a must be positive")
        self.population = int(population)
        self.skew = skew
        self.zipf_a = float(zipf_a)
        self._cum: np.ndarray | None = None

    def _cumulative(self) -> np.ndarray:
        if self._cum is None:
            ranks = np.arange(1, self.population + 1, dtype=np.float64)
            self._cum = np.cumsum(ranks ** -self.zipf_a)
        return self._cum

    def sample(self, rng: np.random.Generator, k: int) -> list[int]:
        """``k`` distinct party ids (ordered as drawn, like ``rng.choice``)."""
        k = int(min(k, self.population))
        if k <= 0:
            raise ValueError("cohort size must be positive")
        if self.skew == "uniform":
            return [int(p) for p in
                    rng.choice(self.population, size=k, replace=False)]
        if k >= self.population:
            return list(range(self.population))
        cum = self._cumulative()
        total = float(cum[-1])
        if 4 * k >= self.population:
            # Rejection would coupon-collect the tail; fall back to numpy's
            # exact weighted draw (fine at the small populations this hits).
            weights = np.diff(cum, prepend=0.0)
            return [int(p) for p in rng.choice(
                self.population, size=k, replace=False, p=weights / total)]
        chosen: list[int] = []
        seen: set[int] = set()
        while len(chosen) < k:
            draws = rng.random(k - len(chosen)) * total
            for idx in np.searchsorted(cum, draws, side="right"):
                pid = int(idx)
                if pid not in seen:
                    seen.add(pid)
                    chosen.append(pid)
        return chosen


class PartyPool(Mapping):
    """A population of virtual parties behind the ``dict[int, Party]`` API.

    Drop-in for the eager party dict everywhere the harness passes one:
    ``pool[pid]`` materializes (or returns the resident) party ``pid`` with
    its current window's data bound; ``len(pool)`` is the *population*, not
    the resident count.  The life cycle::

        PartySpec ──materialize──▶ resident Party ──report──▶ evicted
           ▲        (model from free list,            (LRU, pin-aware)  │
           └────────────────── window data from spec) ◀─────────────────┘

    ``acquire``/``release`` pin a party for its in-flight training window;
    :func:`~repro.federation.rounds.train_cohort` calls them around each
    trainee when the mapping exposes them (plain dicts don't).
    """

    def __init__(self, spec: DatasetSpec,
                 dataset: FederatedShiftDataset | None = None, *,
                 population: int | None = None, seed: int = 0,
                 dtype=None, max_resident: int | None = None,
                 skew: str = "uniform", zipf_a: float = 1.2,
                 survey: int | None = None) -> None:
        self.spec = spec
        self.dataset = (dataset if dataset is not None
                        else FederatedShiftDataset(spec))
        self.population = (int(population) if population is not None
                           else int(spec.num_parties))
        if self.population < 1:
            raise ValueError("population must be positive")
        if max_resident is not None:
            max_resident = int(max_resident)
            if max_resident < 1:
                raise ValueError("max_resident must be positive when given")
        if survey is not None:
            survey = int(survey)
            if survey < 1:
                raise ValueError("survey must be positive when given")
        self.seed = int(seed)
        self.dtype = resolve_dtype(dtype) if dtype is not None else None
        self.max_resident = max_resident
        self.survey = survey
        self.sampler = CohortSampler(self.population, skew=skew, zipf_a=zipf_a)
        self._window = 0
        self._resident: "OrderedDict[int, Party]" = OrderedDict()
        self._models: dict[int, object] = {}  # model lent to each resident
        self._free_models: list[object] = []
        self._data_window: dict[int, int] = {}
        self._pins: dict[int, int] = {}
        self._survey_ids: tuple[int, ...] | None = None
        self.eviction_log: list[int] = []
        self.counters = {
            "materialized": 0, "resident_hits": 0, "evictions": 0,
            "models_built": 0, "data_binds": 0, "peak_resident": 0,
        }

    @classmethod
    def from_config(cls, spec: DatasetSpec,
                    dataset: FederatedShiftDataset | None,
                    config: PopulationConfig, *, seed: int = 0,
                    dtype=None) -> "PartyPool":
        return cls(spec, dataset, population=config.size, seed=seed,
                   dtype=dtype, max_resident=config.max_resident,
                   skew=config.skew, zipf_a=config.zipf_a,
                   survey=config.survey)

    # ------------------------------------------------------------------ mapping

    def __len__(self) -> int:
        return self.population

    def __iter__(self):
        return iter(range(self.population))

    def __contains__(self, pid) -> bool:
        return (isinstance(pid, (int, np.integer))
                and 0 <= int(pid) < self.population)

    def __getitem__(self, pid) -> Party:
        if pid not in self:
            raise KeyError(pid)
        pid = int(pid)
        party = self._resident.get(pid)
        if party is None:
            party = self._materialize(pid)
        else:
            self._resident.move_to_end(pid)
            self.counters["resident_hits"] += 1
        if self._data_window.get(pid) != self._window:
            party.set_window_data(
                self.dataset.virtual_party_window(pid, self._window))
            self._data_window[pid] = self._window
            self.counters["data_binds"] += 1
        return party

    # ------------------------------------------------------------------ specs

    def spec_for(self, pid: int) -> PartySpec:
        """The pure identity pool state is rebuilt from on materialization."""
        if pid not in self:
            raise KeyError(pid)
        return PartySpec(
            party_id=int(pid),
            shard_id=int(pid) % self.spec.num_parties,
            seed=self.seed,
            dtype=str(self.dtype) if self.dtype is not None else None,
        )

    # ------------------------------------------------------------------ residency

    def _materialize(self, pid: int) -> Party:
        model = None
        while self._free_models:
            candidate = self._free_models.pop()
            # A recycled model must match the pool's parameter precision: a
            # float32 run resurrecting a float64 free-list model (or vice
            # versa) would silently re-widen part of the population.  A
            # mismatched model is dropped, never lent out again.
            if self.dtype is None or candidate.dtype == self.dtype:
                model = candidate
                break
        if model is None:
            model = build_model(self.spec.model_name, self.spec.input_shape,
                                self.spec.num_classes,
                                spawn_rng(self.seed, "party-model", pid),
                                dtype=self.dtype)
            self.counters["models_built"] += 1
        party = Party(pid, model, self.spec.num_classes, seed=self.seed,
                      population=self.population)
        self._resident[pid] = party
        self._models[pid] = model
        self.counters["materialized"] += 1
        if len(self._resident) > self.counters["peak_resident"]:
            self.counters["peak_resident"] = len(self._resident)
        self._evict_over_capacity(protect=pid)
        return party

    def _evict_over_capacity(self, protect: int | None = None) -> None:
        if self.max_resident is None:
            return
        while len(self._resident) > self.max_resident:
            victim = None
            for pid in self._resident:  # LRU order: least recent first
                if pid in self._pins or pid == protect:
                    continue
                victim = pid
                break
            if victim is None:
                return  # every resident pinned: overshoot, never corrupt
            self._evict(victim)

    def _evict(self, pid: int) -> None:
        party = self._resident.pop(pid)
        party.release()  # the data reference must not outlive residency
        self._data_window.pop(pid, None)
        self._free_models.append(self._models.pop(pid))
        self.eviction_log.append(pid)
        self.counters["evictions"] += 1

    def acquire(self, pid) -> Party:
        """Materialize and pin ``pid``: pinned residents are never evicted."""
        party = self[pid]
        pid = int(pid)
        self._pins[pid] = self._pins.get(pid, 0) + 1
        return party

    def release(self, pid) -> None:
        """Drop one pin; the last release makes the party evictable again."""
        pid = int(pid)
        count = self._pins.get(pid, 0)
        if count <= 0:
            raise ValueError(f"party {pid} is not pinned")
        if count == 1:
            del self._pins[pid]
            self._evict_over_capacity()
        else:
            self._pins[pid] = count - 1

    def resident_ids(self) -> tuple[int, ...]:
        """Currently resident parties in LRU order (tests/bench introspection)."""
        return tuple(self._resident)

    def pinned_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._pins))

    # ------------------------------------------------------------------ windows

    def begin_window(self, window: int) -> None:
        """Invalidate every resident's bound data; rebind lazily on access."""
        self._window = int(window)
        for party in self._resident.values():
            party.release()
        self._data_window.clear()

    @property
    def window(self) -> int:
        return self._window

    # ------------------------------------------------------------------ surveys

    def survey_ids(self) -> tuple[int, ...]:
        """Stable id order for whole-population surveys (strategy state).

        Every id when ``survey`` is unset; otherwise a fixed seeded subset,
        so survey-driven strategy bookkeeping stays O(survey) at scale.
        """
        if self._survey_ids is None:
            if self.survey is None or self.survey >= self.population:
                self._survey_ids = tuple(range(self.population))
            else:
                rng = spawn_rng(self.seed, "party-pool-survey")
                ids = rng.choice(self.population, size=self.survey,
                                 replace=False)
                self._survey_ids = tuple(sorted(int(p) for p in ids))
        return self._survey_ids

    # ------------------------------------------------------------------ summary

    def summary(self) -> dict:
        """Deterministic residency counters (lands in result extras)."""
        return {
            "population": self.population,
            "max_resident": self.max_resident,
            "skew": self.sampler.skew,
            "resident": len(self._resident),
            "pinned": len(self._pins),
            "free_models": len(self._free_models),
            **{k: int(v) for k, v in self.counters.items()},
        }
