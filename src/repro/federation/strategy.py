"""The continual-FL strategy interface every method implements.

A strategy owns its server-side state (global model, experts, clusters, ...)
across windows.  The harness drives it through the window/round life cycle:

    strategy.setup(ctx)
    for window in windows:
        feed parties their window data
        strategy.start_window(window)            # shift reaction happens here
        for each round:
            strategy.run_round(window, round)    # one FL round
            evaluate: strategy.params_for_party(p) on every party's test set

``params_for_party`` is the per-party inference model: the single global
model for FedProx/OORT, the cluster model for Fielding/FedDrift, the
assigned expert for ShiftEx — matching the paper's party-level inference
story (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.data.registry import DatasetSpec
from repro.federation.accounting import CommunicationLedger, RuntimeProfiler
from repro.federation.party import Party
from repro.federation.rounds import RoundConfig
from repro.nn.network import Sequential
from repro.privacy.plan import PrivacyPlan
from repro.privacy.sealed_scoring import ScoreSeal
from repro.privacy.secure_aggregation import MaskingSpec
from repro.utils.params import Params
from repro.utils.precision import PrecisionPlan
from repro.utils.rng import spawn_rng
from repro.utils.sharding import ShardPlan

if TYPE_CHECKING:  # import cycle: async_engine -> rounds -> party only
    from repro.detection.thresholds import ThresholdTable
    from repro.federation.async_engine import FederationEngine


@dataclass
class StrategyContext:
    """Everything a strategy needs from the environment.

    ``federation`` is the run's participation engine (None = pure synchronous
    rounds).  Strategies pass it to ``run_fl_round`` together with a
    ``stream`` key naming the aggregation target, so buffered reports for one
    cluster/expert never leak into another.

    ``shard_plan`` is the run's parameter-bank sharding
    (:class:`~repro.utils.sharding.ShardPlan`): strategies thread it into
    ``run_fl_round`` and the expert matching/consolidation calls so round
    banks and pool-level scoring fan out across processes.  The default
    (1 shard) is the byte-for-byte in-process path.

    ``secure_aggregation`` is the run's mask-stream root seed when secure
    aggregation is on (None = off, the default).  Strategies pass
    ``masking_spec`` — the seed bundled with the run's
    :class:`~repro.privacy.plan.PrivacyPlan` Shamir threshold and the
    ledger — as ``run_fl_round(secure=...)`` so every round they run, on
    any stream, seals its party updates in their bank rows and (with a
    threshold) distributes recovery shares.  ``score_seal`` is the run's
    sealed-scoring sign vector (None = plaintext scoring); the ShiftEx
    setup binds it onto the expert registry.

    ``precision`` is the run's :class:`~repro.utils.precision.PrecisionPlan`:
    ``params`` the model/bank dtype, ``detection_stats`` the float64 island
    dtype every detection statistic is computed at.  ``thresholds`` is the
    committed :class:`~repro.detection.thresholds.ThresholdTable` for that
    parameter precision (None when no table exists); strategies resolve
    their ``None``-defaulted detection/matching knobs through
    :meth:`threshold` so an explicitly configured value always wins.
    """

    spec: DatasetSpec
    parties: dict[int, Party]
    model_factory: Callable[[], Sequential]
    round_config: RoundConfig
    seed: int = 0
    reference_embedding_source: Callable[[], np.ndarray] | None = None
    ledger: CommunicationLedger = field(default_factory=CommunicationLedger)
    profiler: RuntimeProfiler = field(default_factory=RuntimeProfiler)
    federation: "FederationEngine | None" = None
    shard_plan: ShardPlan = field(default_factory=ShardPlan)
    secure_aggregation: int | None = None
    privacy: PrivacyPlan | None = None
    score_seal: ScoreSeal | None = None
    precision: PrecisionPlan = field(default_factory=PrecisionPlan)
    thresholds: "ThresholdTable | None" = None
    _party_ids: "tuple[int, ...] | None" = field(default=None, init=False,
                                                 repr=False, compare=False)

    def rng(self, *labels: object) -> np.random.Generator:
        return spawn_rng(self.seed, *labels)

    @property
    def masking_spec(self) -> MaskingSpec | None:
        """The ``run_fl_round(secure=...)`` argument for this run.

        None when masking is off; otherwise the mask-root seed bundled
        with the privacy plan's Shamir threshold (None = seed-derived
        shortcut, no share rounds) and the run ledger, so share traffic
        lands under the ``secure_agg`` wire category.
        """
        if self.secure_aggregation is None:
            return None
        threshold = self.privacy.threshold if self.privacy is not None else None
        return MaskingSpec(seed=self.secure_aggregation, threshold=threshold,
                           ledger=self.ledger)

    def threshold(self, key: str, default: float) -> float:
        """Resolve a detection/matching threshold for this run's precision.

        Returns the committed table's entry for ``key`` when a table is
        loaded, else ``default`` (the historical float64-tuned value).
        Strategies call this only for knobs the user left at ``None`` — an
        explicit config value never reaches here.
        """
        if self.thresholds is None:
            return float(default)
        return self.thresholds.value(key, default)

    # ------------------------------------------------------------- population

    @property
    def population(self) -> int:
        """How many parties exist — virtual and resident alike."""
        return len(self.parties)

    @property
    def party_ids(self) -> tuple[int, ...]:
        """Stable id order for whole-population surveys.

        For the eager dict this is every id, sorted — the order strategies
        historically iterated, so survey-driven state is bit-identical.  A
        :class:`~repro.federation.pool.PartyPool` may cap it to a seeded
        survey subset so per-party bookkeeping stays bounded at scale.
        """
        if self._party_ids is None:
            survey = getattr(self.parties, "survey_ids", None)
            ids = survey() if callable(survey) else sorted(self.parties)
            self._party_ids = tuple(int(p) for p in ids)
        return self._party_ids

    def iter_parties(self):
        """``(pid, Party)`` pairs in survey order (materializes pooled ids)."""
        for pid in self.party_ids:
            yield pid, self.parties[pid]

    def sample_cohort(self, rng: np.random.Generator,
                      k: int | None = None) -> list[int]:
        """Draw a round cohort of ``k`` ids (default: the round-config knob).

        The eager path draws without replacement from the sorted id list —
        the exact historical selection bits.  A pool delegates to its
        :class:`~repro.federation.pool.CohortSampler`, whose uniform draw
        produces those same bits over ``range(population)`` without ever
        materializing an id list, and whose ``zipf`` skew models heavy-tail
        participation at scale.
        """
        if k is None:
            k = self.round_config.participants_per_round
        k = min(int(k), len(self.parties))
        sampler = getattr(self.parties, "sampler", None)
        if sampler is not None:
            return sampler.sample(rng, k)
        return [int(p) for p in rng.choice(sorted(self.parties), size=k,
                                           replace=False)]

    def new_model_params(self, *labels: object) -> Params:
        """Freshly initialized model parameters (deterministic per label)."""
        # The factory uses its own seed; labels namespace repeated calls.
        model = self.model_factory()
        return model.get_params()


class ContinualStrategy:
    """Base class; subclasses override the window/round hooks."""

    name: str = "base"

    def __init__(self) -> None:
        self.ctx: StrategyContext | None = None

    # ------------------------------------------------------------------ life cycle

    def setup(self, ctx: StrategyContext) -> None:
        """Bind the environment and initialize server-side state."""
        self.ctx = ctx

    def start_window(self, window: int) -> None:
        """React to a new window (parties already hold the new data)."""

    def run_round(self, window: int, round_index: int) -> None:
        """Execute one federated training round."""
        raise NotImplementedError

    def end_window(self, window: int) -> None:
        """Hook after a window's last round (snapshot state, update memory)."""

    def params_for_party(self, party_id: int) -> Params:
        """Inference parameters for one party (its assigned model)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ helpers

    @property
    def context(self) -> StrategyContext:
        if self.ctx is None:
            raise RuntimeError(f"strategy '{self.name}' is not set up")
        return self.ctx

    def evaluate_all_parties(self) -> dict[int, float]:
        """Per-party test accuracy under each party's assigned model.

        Iterates the context's survey order so a pooled population evaluates
        its bounded survey subset instead of materializing every virtual
        party.
        """
        ctx = self.context
        return {
            pid: party.evaluate(self.params_for_party(pid))[0]
            for pid, party in ctx.iter_parties()
        }

    def mean_accuracy(self) -> float:
        accs = self.evaluate_all_parties()
        return float(np.mean(list(accs.values())))

    def describe_state(self) -> dict:
        """Strategy-specific state summary (expert counts etc.)."""
        return {}

    @classmethod
    def describe(cls) -> str:
        """One-line human description (docstring first line) for CLI listings."""
        from repro.utils.validation import doc_first_line
        return doc_first_line(cls, fallback=cls.name)
