"""One federated round: select -> broadcast -> local train -> aggregate.

Cohort updates land directly in a round-local
:class:`~repro.utils.params.ParamBank` — each party writes its trained flat
vector into one bank row — so FedAvg is a single weighted ``w @ M``
matrix-vector product over the stacked updates, with no per-update
re-flattening or Python-level accumulation loops.

Participation modes: with no ``engine`` the round is fully synchronous (every
participant trains and reports).  Passing a
:class:`~repro.federation.async_engine.FederationEngine` routes the round
through its availability simulator and buffered/async aggregation logic —
dropped reports vanish, stragglers arrive rounds later, and aggregation fires
on ``min_reports``/``max_wait_rounds`` instead of blocking on the cohort.

Secure aggregation: ``run_fl_round(secure=seed)`` runs the round under a
:class:`~repro.privacy.secure_aggregation.SecureAggregationSession` — each
party's bank row is sealed in the exact bit domain the moment training
writes it, and the aggregate is produced by the session's recovery phase.
Sealing round-trips exactly, so the masked round is bit-for-bit the
unmasked one; ``secure=None`` (the default) never constructs a session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.federation.party import Party
from repro.nn.training import LocalTrainingConfig
from repro.privacy.secure_aggregation import (
    MaskingSpec,
    SecureAggregationSession,
    resolve_masking,
)
from repro.utils.params import ParamBank, ParamSpec, Params, make_param_bank
from repro.utils.sharding import ShardPlan, resolve_shard_plan


@dataclass
class RoundConfig:
    """Round-level hyper-parameters shared by all strategies."""

    participants_per_round: int = 10
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)

    def __post_init__(self) -> None:
        if self.participants_per_round <= 0:
            raise ValueError("participants_per_round must be positive")


@dataclass
class RoundStats:
    """Bookkeeping emitted by one round.

    ``participants`` is the dispatched cohort; under an async engine the
    extra fields record what actually happened: which parties' reports
    entered this round's aggregate (``reported``, one entry per report, so a
    party can appear twice), which dispatches were lost (``dropped``), and
    per-party training loss/sample counts for the parties that trained this
    call (``mean_losses`` / ``samples`` — selection policies like OORT feed
    on these).  ``staleness`` maps each reporting party to the age in rounds
    of its *latest* aggregated report (per-report ages are folded into the
    engine's ``staleness_total`` counter).  ``aggregated`` is False when the
    engine decided to keep buffering instead of producing new parameters.
    """

    participants: list[int]
    mean_train_loss: float
    total_samples: int
    reported: list[int] = field(default_factory=list)
    dropped: list[int] = field(default_factory=list)
    staleness: dict[int, int] = field(default_factory=dict)
    mean_losses: dict[int, float] = field(default_factory=dict)
    samples: dict[int, int] = field(default_factory=dict)
    aggregated: bool = True


def round_dtype(parties: dict[int, Party], participant_ids: list[int],
                params: Params, dtype=None) -> np.dtype:
    """The round bank's dtype: the cohort's bound model precision.

    Falls back to ``np.result_type`` over the incoming parameter list only
    when no participant exposes a model dtype.  Preferring the bound model
    dtype keeps a float32 run's bank at float32 even when a strategy hands
    over float64 parameters (e.g. a fresh ``weighted_average`` of plain
    lists), which previously upcast the whole aggregation path silently.
    """
    if dtype is not None:
        return np.dtype(dtype)
    for pid in participant_ids:
        model_dtype = getattr(parties.get(pid), "dtype", None)
        if model_dtype is not None:
            return np.dtype(model_dtype)
    if params:
        return np.result_type(*(p.dtype for p in params))
    return np.dtype(np.float64)


def train_cohort(parties: dict[int, Party], participant_ids: list[int],
                 params: Params, config: RoundConfig, round_tag: object,
                 bank: ParamBank,
                 seal: Callable[[int, int, object], None] | None = None,
                 ) -> tuple[list[int], list]:
    """Train every participant, landing each update in a fresh bank row.

    Returns ``(rows, updates)`` aligned with ``participant_ids``.  Shared by
    the synchronous path and the async engine so both train identically.

    ``seal(party_id, row, update)`` fires immediately after each party's
    trained vector lands in its row — the secure-aggregation hook masks the
    row there, before the next party trains, so an unmasked update is never
    left resident once control returns from the party.

    When ``parties`` is a :class:`~repro.federation.pool.PartyPool` (any
    mapping exposing ``acquire``/``release``), each trainee is pinned for
    exactly its training call, so residency pressure from materializing the
    rest of the cohort can never evict a party mid-training.  Plain dicts
    skip the pinning entirely.
    """
    acquire = getattr(parties, "acquire", None)
    release = getattr(parties, "release", None)
    rows: list[int] = []
    updates = []
    for party_id in participant_ids:
        if party_id not in parties:
            raise KeyError(f"unknown party id {party_id}")
        row = bank.alloc()
        rows.append(row)
        party = acquire(party_id) if acquire is not None else parties[party_id]
        try:
            update = party.local_train(
                params, config.local, round_tag, out_flat=bank.row(row))
            if seal is not None:
                seal(party_id, row, update)
        finally:
            if release is not None:
                release(party_id)
        updates.append(update)
    return rows, updates


def make_round_session(participant_ids: list[int], spec: ParamSpec, bank,
                       secure: "int | MaskingSpec", context: tuple,
                       ) -> tuple[SecureAggregationSession, Callable]:
    """A per-round session plus the ``train_cohort`` seal hook.

    The hook seals only reports that carry samples — zero-sample rows are
    released immediately by both round paths and never enter an aggregate.
    ``secure`` is the mask-stream root seed, or a
    :class:`~repro.privacy.secure_aggregation.MaskingSpec` carrying the
    Shamir recovery threshold and the ledger that meters share traffic.
    """
    masking = resolve_masking(secure)
    session = SecureAggregationSession(
        list(participant_ids), spec, shared_seed=masking.seed,
        dtype=bank.dtype, context=context, threshold=masking.threshold,
        ledger=masking.ledger)

    def seal(party_id: int, row: int, update) -> None:
        if update.num_samples > 0:
            session.seal_row(party_id, bank.row(row))

    return session, seal


def mean_finite_loss(updates) -> float:
    losses = [u.mean_loss for u in updates if np.isfinite(u.mean_loss)]
    return float(np.mean(losses)) if losses else float("nan")


def _sync_round(parties: dict[int, Party], participant_ids: list[int],
                params: Params, config: RoundConfig, round_tag: object,
                dtype=None, shards: ShardPlan | None = None,
                secure: "int | MaskingSpec | None" = None,
                ) -> tuple[Params, RoundStats]:
    spec = ParamSpec.of(params)
    bank = make_param_bank(spec,
                           dtype=round_dtype(parties, participant_ids, params,
                                             dtype),
                           capacity=len(participant_ids), plan=shards)
    try:
        session = seal = None
        if secure is not None:
            session, seal = make_round_session(participant_ids, spec, bank,
                                               secure,
                                               context=("sync", round_tag))
        rows, updates = train_cohort(parties, participant_ids, params, config,
                                     round_tag, bank, seal=seal)
        weights = np.array([float(u.num_samples) for u in updates])
        usable = weights > 0
        if not usable.any():
            raise ValueError(
                f"aggregation failed in round {round_tag!r}: all updates "
                "carry zero samples"
            )
        usable_rows = [r for r, ok in zip(rows, usable) if ok]
        if session is not None:
            new_params = spec.view(session.combine_rows(
                bank, weights[usable],
                [(u.party_id, r) for u, r, ok in zip(updates, rows, usable)
                 if ok]))
        else:
            new_params = spec.view(bank.weighted_combine(weights[usable],
                                                         usable_rows))
    finally:
        # The combined vector is a fresh array, so the round bank (and any
        # sharded shm segments / remote mirrors behind it) can go now
        # instead of waiting for GC to run finalizers at interpreter exit.
        close = getattr(bank, "close", None)
        if close is not None:
            close()
    stats = RoundStats(
        participants=list(participant_ids),
        mean_train_loss=mean_finite_loss(updates),
        total_samples=int(sum(u.num_samples for u in updates)),
        reported=[u.party_id for u, ok in zip(updates, usable) if ok],
        staleness={u.party_id: 0 for u, ok in zip(updates, usable) if ok},
        mean_losses={u.party_id: u.mean_loss for u in updates},
        samples={u.party_id: u.num_samples for u in updates},
    )
    return new_params, stats


def run_fl_round(parties: dict[int, Party], participant_ids: list[int],
                 params: Params, config: RoundConfig,
                 round_tag: object = 0, engine=None,
                 stream: object = "default",
                 dtype=None,
                 shards: "ShardPlan | int | None" = None,
                 secure: "int | MaskingSpec | None" = None,
                 ) -> tuple[Params, RoundStats]:
    """Train ``params`` for one round over the given participants.

    Returns the FedAvg-aggregated parameters and round statistics.  The
    caller owns participant selection (uniform, OORT, FLIPS, ...) so every
    strategy can reuse this loop.  ``parties`` is any ``int -> Party``
    mapping: the eager dict or a
    :class:`~repro.federation.pool.PartyPool`, which materializes each
    participant on first touch and is pinned per-trainee by
    :func:`train_cohort`.

    ``engine`` (a :class:`~repro.federation.async_engine.FederationEngine`)
    switches the round to simulated-availability participation; ``stream``
    then names the aggregation target (one buffer per global model / cluster
    / expert) so buffered reports never cross models.  ``dtype`` overrides
    the round bank precision (default: the cohort's bound model dtype).

    ``shards`` (a :class:`~repro.utils.sharding.ShardPlan` or shard count)
    splits the round bank across shared-memory shards so the FedAvg matvec
    runs as per-shard partial products; the default (1 shard) keeps the
    in-process bank and reproduces historical results bitwise.  Under an
    engine the engine's own plan wins when this argument is None.

    ``secure`` (a mask-stream root seed, a
    :class:`~repro.privacy.secure_aggregation.MaskingSpec`, or None = off)
    masks the round: every bank row is sealed at training time and the
    aggregate comes out of the session's recovery phase — bit-for-bit the
    unmasked result, with no unmasked party update resident in
    server-side storage.  A spec with a ``threshold`` additionally runs
    the Shamir share-distribution and reconstruction rounds, metered in
    its ledger under the ``secure_agg`` channel.
    """
    if not participant_ids:
        raise ValueError("cannot run a round with no participants")
    if engine is not None:
        return engine.run_round(parties, participant_ids, params, config,
                                round_tag=round_tag, stream=stream,
                                dtype=dtype, shards=shards, secure=secure)
    return _sync_round(parties, participant_ids, params, config, round_tag,
                       dtype=dtype, shards=resolve_shard_plan(shards),
                       secure=secure)
