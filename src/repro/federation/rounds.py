"""One federated round: select -> broadcast -> local train -> aggregate."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.federation.aggregation import fedavg
from repro.federation.party import Party
from repro.nn.training import LocalTrainingConfig
from repro.utils.params import Params


@dataclass
class RoundConfig:
    """Round-level hyper-parameters shared by all strategies."""

    participants_per_round: int = 10
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)

    def __post_init__(self) -> None:
        if self.participants_per_round <= 0:
            raise ValueError("participants_per_round must be positive")


@dataclass
class RoundStats:
    """Bookkeeping emitted by one round."""

    participants: list[int]
    mean_train_loss: float
    total_samples: int


def run_fl_round(parties: dict[int, Party], participant_ids: list[int],
                 params: Params, config: RoundConfig,
                 round_tag: object = 0) -> tuple[Params, RoundStats]:
    """Train ``params`` for one round over the given participants.

    Returns the FedAvg-aggregated parameters and round statistics.  The
    caller owns participant selection (uniform, OORT, FLIPS, ...) so every
    strategy can reuse this loop.
    """
    if not participant_ids:
        raise ValueError("cannot run a round with no participants")
    updates = []
    for party_id in participant_ids:
        if party_id not in parties:
            raise KeyError(f"unknown party id {party_id}")
        updates.append(parties[party_id].local_train(params, config.local, round_tag))
    new_params = fedavg(updates)
    losses = [u.mean_loss for u in updates if np.isfinite(u.mean_loss)]
    stats = RoundStats(
        participants=list(participant_ids),
        mean_train_loss=float(np.mean(losses)) if losses else float("nan"),
        total_samples=int(sum(u.num_samples for u in updates)),
    )
    return new_params, stats
