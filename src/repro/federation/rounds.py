"""One federated round: select -> broadcast -> local train -> aggregate.

Cohort updates land directly in a round-local
:class:`~repro.utils.params.ParamBank` — each party writes its trained flat
vector into one bank row — so FedAvg is a single weighted ``w @ M``
matrix-vector product over the stacked updates, with no per-update
re-flattening or Python-level accumulation loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.federation.party import Party
from repro.nn.training import LocalTrainingConfig
from repro.utils.params import ParamBank, ParamSpec, Params


@dataclass
class RoundConfig:
    """Round-level hyper-parameters shared by all strategies."""

    participants_per_round: int = 10
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)

    def __post_init__(self) -> None:
        if self.participants_per_round <= 0:
            raise ValueError("participants_per_round must be positive")


@dataclass
class RoundStats:
    """Bookkeeping emitted by one round."""

    participants: list[int]
    mean_train_loss: float
    total_samples: int


def run_fl_round(parties: dict[int, Party], participant_ids: list[int],
                 params: Params, config: RoundConfig,
                 round_tag: object = 0) -> tuple[Params, RoundStats]:
    """Train ``params`` for one round over the given participants.

    Returns the FedAvg-aggregated parameters and round statistics.  The
    caller owns participant selection (uniform, OORT, FLIPS, ...) so every
    strategy can reuse this loop.
    """
    if not participant_ids:
        raise ValueError("cannot run a round with no participants")
    spec = ParamSpec.of(params)
    dtype = np.result_type(*(p.dtype for p in params)) if params else np.float64
    bank = ParamBank(spec, dtype=dtype, capacity=len(participant_ids))
    rows: list[int] = []
    updates = []
    for party_id in participant_ids:
        if party_id not in parties:
            raise KeyError(f"unknown party id {party_id}")
        row = bank.alloc()
        rows.append(row)
        updates.append(parties[party_id].local_train(
            params, config.local, round_tag, out_flat=bank.row(row)))
    weights = np.array([float(u.num_samples) for u in updates])
    usable = weights > 0
    if not usable.any():
        raise ValueError(
            f"aggregation failed in round {round_tag!r}: all updates carry "
            "zero samples"
        )
    new_params = spec.view(bank.weighted_combine(
        weights[usable], [r for r, ok in zip(rows, usable) if ok]))
    losses = [u.mean_loss for u in updates if np.isfinite(u.mean_loss)]
    stats = RoundStats(
        participants=list(participant_ids),
        mean_train_loss=float(np.mean(losses)) if losses else float("nan"),
        total_samples=int(sum(u.num_samples for u in updates)),
    )
    return new_params, stats
