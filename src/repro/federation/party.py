"""Party: one federated client in the simulator.

A party owns its private per-window data, a local model replica, and the
local operations of the protocol: training on received parameters,
evaluation on its private test split, penultimate-layer embedding extraction
(for shift detection), and label-histogram reporting.  Raw samples never
cross the party boundary — only parameters, statistics, and embeddings, as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.federated import PartyWindowData
from repro.nn.network import Sequential
from repro.nn.training import LocalTrainingConfig, evaluate, train_local
from repro.utils.params import Params
from repro.utils.rng import spawn_rng


@dataclass
class LocalUpdate:
    """What a party returns from one local training pass."""

    party_id: int
    params: Params
    num_samples: int
    mean_loss: float


class Party:
    """A federated client with per-window private data."""

    def __init__(self, party_id: int, model: Sequential, num_classes: int,
                 seed: int = 0, population: int | None = None) -> None:
        self.party_id = party_id
        self.num_classes = num_classes
        self.seed = seed
        self.population = population
        self._model = model
        self._data: PartyWindowData | None = None
        self._last_window: int | None = None

    def _describe(self) -> str:
        if self.population is not None:
            return f"party {self.party_id} (population {self.population})"
        return f"party {self.party_id}"

    # ------------------------------------------------------------------ data plane

    def set_window_data(self, data: PartyWindowData) -> None:
        if data.party_id != self.party_id:
            raise ValueError(
                f"window {data.window} data for party {data.party_id} "
                f"given to {self._describe()}"
            )
        self._data = data
        self._last_window = data.window

    @property
    def data(self) -> PartyWindowData:
        if self._data is None:
            hint = ("" if self._last_window is None
                    else f" (window {self._last_window} data was released)")
            raise RuntimeError(
                f"{self._describe()} has no window data yet{hint}")
        return self._data

    def release(self) -> None:
        """Drop the window-data reference.

        Pool eviction calls this so a dematerialized party can never keep a
        data shard alive; the next ``set_window_data`` rebinds it.
        """
        self._data = None

    @property
    def has_data(self) -> bool:
        return self._data is not None

    @property
    def num_train_samples(self) -> int:
        return self.data.num_train

    @property
    def dtype(self) -> np.dtype:
        """The bound model precision — what round banks must allocate at."""
        return self._model.dtype

    def label_histogram(self) -> np.ndarray:
        """Normalized train-label histogram (reported to the aggregator)."""
        return self.data.label_histogram(self.num_classes)

    # ------------------------------------------------------------------ protocol ops

    def local_train(self, params: Params, config: LocalTrainingConfig,
                    round_tag: object = 0,
                    out_flat: np.ndarray | None = None) -> LocalUpdate:
        """Train a local replica initialized at ``params`` on this window.

        ``out_flat`` (optionally a :class:`~repro.utils.params.ParamBank`
        row) receives the flat trained parameters; the update's ``params``
        are then zero-copy views of it, so the aggregator can stack cohort
        updates without re-flattening.
        """
        self._model.set_params(params)
        rng = spawn_rng(self.seed, "party-train", self.party_id, round_tag)
        result = train_local(
            self._model, self.data.x_train, self.data.y_train, config, rng,
            global_params=params if config.prox_mu > 0 else None,
            out_flat=out_flat,
        )
        return LocalUpdate(
            party_id=self.party_id,
            params=result.params,
            num_samples=result.num_samples,
            mean_loss=result.mean_loss,
        )

    def evaluate(self, params: Params, split: str = "test",
                 return_features: bool = False):
        """(accuracy, loss) of ``params`` on this party's local split.

        ``return_features`` adds the penultimate-layer embeddings of the
        split as a third element, from the same single forward pass — the
        cheap path when a caller needs both metrics and representations.
        """
        self._model.set_params(params)
        if split == "test":
            x, y = self.data.x_test, self.data.y_test
        elif split == "train":
            x, y = self.data.x_train, self.data.y_train
        else:
            raise ValueError("split must be 'test' or 'train'")
        return evaluate(self._model, x, y, return_features=return_features)

    def loss_on(self, params: Params, split: str = "train") -> float:
        """Local loss of a model — the signal FedDrift clusters on."""
        _acc, loss = self.evaluate(params, split)
        return loss

    def embeddings(self, params: Params, split: str = "train",
                   max_samples: int | None = None) -> np.ndarray:
        """Penultimate-layer embeddings of this window under ``params``.

        This is Algorithm 1's ``phi(x_i)``: the party-side latent profile
        P_t(X) shared with the aggregator instead of raw data.
        """
        features, _labels = self.embeddings_with_labels(params, split, max_samples)
        return features

    def embeddings_with_labels(self, params: Params, split: str = "train",
                               max_samples: int | None = None,
                               ) -> tuple[np.ndarray, np.ndarray]:
        """Embeddings plus their labels — labels never leave the party.

        The label column exists so the party can compute class-conditional
        detection statistics locally (Algorithm 1); only embeddings, the
        label *histogram*, and scalar scores are transmitted.
        """
        self._model.set_params(params)
        if split == "train":
            x, y = self.data.x_train, self.data.y_train
        else:
            x, y = self.data.x_test, self.data.y_test
        if max_samples is not None and x.shape[0] > max_samples:
            rng = spawn_rng(self.seed, "party-embed", self.party_id, split)
            idx = rng.choice(x.shape[0], size=max_samples, replace=False)
            x, y = x[idx], y[idx]
        return self._model.features(x), np.asarray(y).copy()
