"""Federated learning core: parties, aggregation, rounds, accounting.

This package is the Flower/PySyft stand-in: an in-process FL simulator with
the same moving parts — parties that train locally and report updates, a
weighted FedAvg aggregation rule (with optional FedProx proximal term in the
local objective), per-round participant selection hooks, and communication /
computation accounting.
"""

from repro.federation.party import Party, LocalUpdate
from repro.federation.aggregation import fedavg
from repro.federation.rounds import RoundConfig, RoundStats, run_fl_round
from repro.federation.accounting import CommunicationLedger, RuntimeProfiler
from repro.federation.strategy import ContinualStrategy, StrategyContext

__all__ = [
    "Party",
    "LocalUpdate",
    "fedavg",
    "RoundConfig",
    "RoundStats",
    "run_fl_round",
    "CommunicationLedger",
    "RuntimeProfiler",
    "ContinualStrategy",
    "StrategyContext",
]
