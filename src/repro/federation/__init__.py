"""Federated learning core: parties, aggregation, rounds, accounting.

This package is the Flower/PySyft stand-in: an in-process FL simulator with
the same moving parts — parties that train locally and report updates, a
weighted FedAvg aggregation rule (with optional FedProx proximal term in the
local objective), per-round participant selection hooks, communication /
computation accounting, and an asynchronous federation engine (buffered
staleness-weighted aggregation under simulated client availability).
"""

from repro.federation.party import Party, LocalUpdate
from repro.federation.aggregation import (
    STALENESS_POLICIES,
    fedavg,
    staleness_decay,
    staleness_weighted_fedavg,
)
from repro.federation.availability import (
    AvailabilityConfig,
    AvailabilitySimulator,
    ReportFate,
)
from repro.federation.pool import (
    PARTICIPATION_SKEWS,
    CohortSampler,
    PartyPool,
    PartySpec,
    PopulationConfig,
)
from repro.federation.rounds import RoundConfig, RoundStats, run_fl_round
from repro.federation.async_engine import (
    PARTICIPATION_MODES,
    AsyncRoundBuffer,
    FederationConfig,
    FederationEngine,
    build_engine,
)
from repro.federation.accounting import CommunicationLedger, RuntimeProfiler
from repro.federation.strategy import ContinualStrategy, StrategyContext

__all__ = [
    "Party",
    "LocalUpdate",
    "fedavg",
    "STALENESS_POLICIES",
    "staleness_decay",
    "staleness_weighted_fedavg",
    "AvailabilityConfig",
    "AvailabilitySimulator",
    "ReportFate",
    "PARTICIPATION_SKEWS",
    "CohortSampler",
    "PartyPool",
    "PartySpec",
    "PopulationConfig",
    "RoundConfig",
    "RoundStats",
    "run_fl_round",
    "PARTICIPATION_MODES",
    "AsyncRoundBuffer",
    "FederationConfig",
    "FederationEngine",
    "build_engine",
    "CommunicationLedger",
    "RuntimeProfiler",
    "ContinualStrategy",
    "StrategyContext",
]
