"""Buffered / asynchronous federation engine.

The synchronous simulator assumes every dispatched party reports back within
its round.  This module drops that assumption: parties train at dispatch time
(on the then-current parameters) and their reports travel through the
availability simulator — lost outright, or arriving rounds later — into a
per-model :class:`AsyncRoundBuffer` of preallocated
:class:`~repro.utils.params.ParamBank` rows tagged with their dispatch round.
Aggregation fires when the mode's trigger condition holds and weights each
report by ``num_samples * staleness_decay(age)``, so late reports count less
under the ``polynomial`` / ``exponential`` policies (and exactly the same
under ``constant``).

Participation modes
-------------------
* ``sync``     — block for the full surviving cohort every round (dropped
  reports are excluded, stragglers are awaited); with no availability knobs
  this is bit-identical to :func:`~repro.federation.rounds.run_fl_round`
  without an engine.
* ``buffered`` — FedBuff-style: aggregate once ``min_reports`` reports are in
  (default: the cohort size) or the oldest buffered report has waited
  ``max_wait_rounds`` rounds; otherwise keep the parameters unchanged and
  keep buffering.
* ``async``    — aggregate whatever has arrived, every round.

One engine serves a whole run: each global model / cluster / expert names its
own ``stream``, so buffered reports never cross aggregation targets, and the
harness advances the shared round clock once per (window, round).

Buffer lifecycle invariants
---------------------------
Contributors touching the engine must preserve these; the differential test
suite (``tests/test_differential_aggregation.py``) pins most of them:

1. **Every buffered report owns exactly one bank row**, allocated at
   training time and released on exactly one of three exits: aggregation
   (:meth:`AsyncRoundBuffer.pop`), window flush (:meth:`AsyncRoundBuffer.flush`
   via :meth:`FederationEngine.begin_window`), or stream invalidation
   (the stream's model changed shape/precision in ``_buffer_for``).
   Leaking a row strands bank capacity for the rest of the run; releasing
   twice corrupts an unrelated report's storage.  Under secure
   aggregation (``run_round(secure=...)``) the row is additionally
   *sealed* (bit-domain masked) from the moment training writes it:
   aggregation is the only exit that unseals — transiently, scrubbing
   the row before release — while the flush/invalidation exits discard
   the report still sealed, so a flushed buffer leaks no residue.
2. **The clock only moves forward**, exactly once per federated round via
   :meth:`FederationEngine.advance`; running a round before the first
   ``advance`` is an error.  Reports are tagged with their dispatch tick,
   and staleness is always ``current tick - dispatch tick``.
3. **Aggregation order is dispatch order.**  ``ready()`` preserves push
   order, which is deterministic for a fixed seed; weights therefore align
   positionally with rows and two runs of one scenario are bit-identical.
4. **Zero-sample reports never enter the buffer** — they carry no weight
   and would poison ``weighted_combine``'s positive-total requirement.
5. **At age 0 every staleness policy multiplies by exactly 1.0**, which is
   what makes ``buffered``/``async`` with no availability perturbation
   reproduce the synchronous path bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.federation.aggregation import STALENESS_POLICIES, staleness_decay
from repro.federation.availability import (
    AvailabilityConfig,
    AvailabilitySimulator,
)
from repro.federation.party import Party
from repro.federation.rounds import (
    RoundConfig,
    RoundStats,
    _sync_round,
    make_round_session,
    mean_finite_loss,
    round_dtype,
    train_cohort,
)
from repro.utils.params import ParamSpec, Params, make_param_bank
from repro.utils.sharding import ShardPlan, resolve_shard_plan

PARTICIPATION_MODES = ("sync", "buffered", "async")


@dataclass(frozen=True)
class FederationConfig:
    """How rounds aggregate and what availability scenario they run under.

    Serialized with :class:`~repro.harness.profiles.RunSettings` and
    :class:`~repro.experiments.plan.ExperimentPlan`, so a participation
    scenario is part of the experiment spec.  ``min_reports=None`` means
    "the dispatched cohort size", which makes ``buffered`` with no
    availability knobs reproduce ``sync`` bitwise.
    """

    mode: str = "sync"
    min_reports: int | None = None
    max_wait_rounds: int = 1
    staleness_policy: str = "constant"
    staleness_alpha: float = 0.5
    staleness_gamma: float = 0.5
    availability: AvailabilityConfig = field(default_factory=AvailabilityConfig)

    def __post_init__(self) -> None:
        if self.mode not in PARTICIPATION_MODES:
            raise ValueError(
                f"mode must be one of {PARTICIPATION_MODES}; got '{self.mode}'")
        if self.staleness_policy not in STALENESS_POLICIES:
            raise ValueError(
                f"staleness_policy must be one of {STALENESS_POLICIES}; "
                f"got '{self.staleness_policy}'")
        if self.min_reports is not None and self.min_reports < 1:
            raise ValueError("min_reports must be positive when given")
        if self.max_wait_rounds < 1:
            raise ValueError("max_wait_rounds must be at least 1")

    @property
    def is_active(self) -> bool:
        """True when rounds behave differently from the engine-less path."""
        return self.mode != "sync" or self.availability.is_active

    def to_dict(self) -> dict:
        import dataclasses
        out = dataclasses.asdict(self)
        if self.min_reports is None:
            del out["min_reports"]
        return out

    @classmethod
    def from_dict(cls, data) -> "FederationConfig":
        if isinstance(data, FederationConfig):
            return data
        data = dict(data)
        availability = data.pop("availability", None)
        if availability is not None and not isinstance(availability,
                                                       AvailabilityConfig):
            availability = AvailabilityConfig(**availability)
        if availability is not None:
            data["availability"] = availability
        return cls(**data)


@dataclass
class _PendingReport:
    """One in-flight update parked in a buffer row until it arrives.

    ``session`` is the dispatch round's
    :class:`~repro.privacy.secure_aggregation.SecureAggregationSession`
    when the report's row is sealed (None on unmasked runs); the engine
    uses it to unseal the row exactly when its aggregation fires.
    """

    row: int
    party_id: int
    dispatch_tick: int
    arrival_tick: int
    num_samples: int
    mean_loss: float
    session: object = None


class AsyncRoundBuffer:
    """In-flight reports for one aggregation stream, rows in a ParamBank.

    Parties write trained flat vectors straight into preallocated bank rows
    (the same zero-copy path the sync round uses); each row is tagged with
    its dispatch round so aggregation can weight by staleness.  Rows are
    released back to the bank as soon as their report is aggregated or
    expired.
    """

    def __init__(self, spec: ParamSpec, dtype=None, capacity: int = 4,
                 shards: ShardPlan | None = None) -> None:
        self.bank = make_param_bank(spec, dtype=dtype, capacity=capacity,
                                    plan=shards)
        self._pending: list[_PendingReport] = []

    @property
    def spec(self) -> ParamSpec:
        return self.bank.spec

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def push(self, report: _PendingReport) -> None:
        self._pending.append(report)

    def ready(self, tick: int) -> list[_PendingReport]:
        """Arrived reports in dispatch order (stable across runs)."""
        return [r for r in self._pending if r.arrival_tick <= tick]

    def oldest_ready_age(self, tick: int) -> int:
        ready = self.ready(tick)
        if not ready:
            return 0
        return tick - min(r.dispatch_tick for r in ready)

    def pop(self, reports: list[_PendingReport]) -> None:
        """Remove aggregated reports and recycle their bank rows."""
        taken = set(id(r) for r in reports)
        for report in reports:
            self.bank.release(report.row)
        self._pending = [r for r in self._pending if id(r) not in taken]

    def flush(self) -> int:
        """Drop every in-flight report (window boundary); returns the count."""
        count = len(self._pending)
        for report in self._pending:
            self.bank.release(report.row)
        self._pending = []
        return count


class FederationEngine:
    """Shared round clock + availability + per-stream buffered aggregation.

    The harness (or a test) drives the clock: :meth:`advance` once per
    federated round, :meth:`begin_window` at window boundaries (in-flight
    reports are dropped there — parties re-train on the new window's data
    anyway, and experts/clusters may not survive the boundary).  Strategies
    stay oblivious: they call ``run_fl_round(..., engine=..., stream=...)``
    exactly where they called the synchronous version.
    """

    def __init__(self, config: FederationConfig, seed: int = 0,
                 num_parties: int | None = None,
                 shard_plan: "ShardPlan | int | None" = None) -> None:
        self.config = config
        self.seed = seed
        self.shard_plan = resolve_shard_plan(shard_plan)
        self.simulator = AvailabilitySimulator(config.availability, seed,
                                               num_parties)
        self.clock = -1  # advance() before the first round makes this 0
        self._buffers: dict[object, AsyncRoundBuffer] = {}
        self.counters = {
            "rounds": 0, "dispatched": 0, "dropped": 0, "delayed": 0,
            "aggregations": 0, "aggregated_reports": 0, "skipped_rounds": 0,
            "expired_reports": 0, "staleness_total": 0,
        }

    # ------------------------------------------------------------------ clock

    def advance(self, round_tag: object = None) -> int:
        """Start the next federated round; returns the new tick."""
        self.clock += 1
        self.counters["rounds"] += 1
        return self.clock

    def begin_window(self, window: int) -> int:
        """Flush every stream at a window boundary; returns reports dropped."""
        expired = sum(buf.flush() for buf in self._buffers.values())
        self.counters["expired_reports"] += expired
        return expired

    @property
    def in_flight(self) -> int:
        return sum(buf.in_flight for buf in self._buffers.values())

    def summary(self) -> dict:
        """Deterministic run-level counters (lands in result extras)."""
        out = {"mode": self.config.mode, **self.counters}
        agg = self.counters["aggregated_reports"]
        out["mean_staleness"] = (
            self.counters["staleness_total"] / agg if agg else 0.0)
        out["in_flight_at_end"] = self.in_flight
        return out

    # ------------------------------------------------------------------ rounds

    def _buffer_for(self, stream: object, spec: ParamSpec, dtype,
                    capacity: int,
                    shards: ShardPlan | None = None) -> AsyncRoundBuffer:
        buf = self._buffers.get(stream)
        if buf is not None and (buf.spec != spec
                                or buf.bank.dtype != np.dtype(dtype)):
            # The stream's model changed shape (e.g. a rebuilt expert) or
            # precision; whatever was in flight can no longer be aggregated
            # into it.  Close the orphaned bank now — sharded banks hold shm
            # segments (and possibly remote mirrors) that would otherwise
            # linger until interpreter exit.
            self.counters["expired_reports"] += buf.flush()
            close = getattr(buf.bank, "close", None)
            if close is not None:
                close()
            buf = None
        if buf is None:
            buf = AsyncRoundBuffer(spec, dtype=dtype, capacity=capacity,
                                   shards=shards)
            self._buffers[stream] = buf
        return buf

    def _should_aggregate(self, buf: AsyncRoundBuffer, tick: int,
                          cohort_size: int) -> bool:
        ready = buf.ready(tick)
        if not ready:
            return False
        if self.config.mode == "async":
            return True
        min_reports = self.config.min_reports
        if min_reports is None:
            min_reports = cohort_size
        if len(ready) >= min_reports:
            return True
        return buf.oldest_ready_age(tick) >= self.config.max_wait_rounds

    def run_round(self, parties: dict[int, Party], participant_ids: list[int],
                  params: Params, config: RoundConfig, round_tag: object = 0,
                  stream: object = "default", dtype=None,
                  shards: "ShardPlan | int | None" = None,
                  secure: "int | object | None" = None,
                  ) -> tuple[Params, RoundStats]:
        """One engine-mediated round (called via ``run_fl_round``)."""
        if self.clock < 0:
            raise RuntimeError(
                "FederationEngine.advance() must be called before the first "
                "round (the harness does this once per federated round)")
        plan = self.shard_plan if shards is None else resolve_shard_plan(shards)
        tick = self.clock
        fates = self.simulator.cohort_fates(list(participant_ids), tick)
        alive = [f for f in fates if not f.dropped]
        dropped = [f.party_id for f in fates if f.dropped]
        self.counters["dispatched"] += len(participant_ids)
        self.counters["dropped"] += len(dropped)

        if self.config.mode == "sync":
            return self._run_sync(parties, alive, dropped, participant_ids,
                                  params, config, round_tag, dtype, plan,
                                  secure)

        spec = ParamSpec.of(params)
        bank_dtype = round_dtype(parties, list(participant_ids), params, dtype)
        buf = self._buffer_for(stream, spec, bank_dtype,
                               capacity=max(len(participant_ids), 1),
                               shards=plan)
        alive_ids = [f.party_id for f in alive]
        session = seal = None
        if secure is not None and alive_ids:
            # One session per dispatch cohort: its pairwise masks are
            # namespaced by (stream, tick) so no two rounds share a stream
            # of mask material, and each buffered report remembers which
            # session can unseal it once its aggregation fires.
            session, seal = make_round_session(
                alive_ids, spec, buf.bank, secure,
                context=("stream", stream, tick))
        rows, updates = train_cohort(parties, alive_ids, params, config,
                                     round_tag, buf.bank, seal=seal)
        for fate, row, update in zip(alive, rows, updates):
            if update.num_samples <= 0:
                buf.bank.release(row)  # an empty report carries nothing
                continue
            if fate.delay > 0:
                self.counters["delayed"] += 1
            buf.push(_PendingReport(
                row=row, party_id=update.party_id, dispatch_tick=tick,
                arrival_tick=tick + fate.delay,
                num_samples=update.num_samples, mean_loss=update.mean_loss,
                session=session,
            ))

        stats = RoundStats(
            participants=list(participant_ids),
            mean_train_loss=mean_finite_loss(updates),
            total_samples=int(sum(u.num_samples for u in updates)),
            dropped=dropped,
            mean_losses={u.party_id: u.mean_loss for u in updates},
            samples={u.party_id: u.num_samples for u in updates},
            aggregated=False,
        )
        if not self._should_aggregate(buf, tick, len(participant_ids)):
            self.counters["skipped_rounds"] += 1
            return params, stats

        ready = buf.ready(tick)
        ages = [tick - r.dispatch_tick for r in ready]
        decay = staleness_decay(ages, self.config.staleness_policy,
                                self.config.staleness_alpha,
                                self.config.staleness_gamma)
        weights = np.array([float(r.num_samples) for r in ready]) * decay
        sealed = [r for r in ready if r.session is not None]
        if sealed:
            # Recovery phase: unseal exactly the rows entering this
            # aggregate (possibly spanning several dispatch sessions), run
            # the bank kernel, and scrub the rows before they are released.
            # The finally mirrors combine_rows: even if the kernel raises,
            # no unmasked update stays resident in the stream buffer.
            # Under a Shamir threshold, each dispatch session first runs
            # its reconstruction round for the parties being unsealed —
            # every cohort member sealed a row (it is alive), so the full
            # cohort answers the share query and the ledger meters the
            # pull under ``secure_agg``.
            by_session: dict[int, tuple[object, list[int]]] = {}
            for r in sealed:
                entry = by_session.setdefault(id(r.session),
                                              (r.session, []))
                entry[1].append(r.party_id)
            for session, party_ids in by_session.values():
                session.recover(party_ids)
            unsealed = []
            try:
                for r in sealed:
                    r.session.unseal_row(r.party_id, buf.bank.row(r.row))
                    unsealed.append(r)
                new_flat = buf.bank.weighted_combine(weights,
                                                     [r.row for r in ready])
            finally:
                for r in unsealed:
                    buf.bank.row(r.row)[...] = 0.0
            new_params = spec.view(new_flat)
        else:
            new_params = spec.view(buf.bank.weighted_combine(
                weights, [r.row for r in ready]))
        stats.aggregated = True
        stats.reported = [r.party_id for r in ready]
        stats.staleness = {r.party_id: age for r, age in zip(ready, ages)}
        self.counters["aggregations"] += 1
        self.counters["aggregated_reports"] += len(ready)
        self.counters["staleness_total"] += int(sum(ages))
        buf.pop(ready)
        return new_params, stats

    def _run_sync(self, parties, alive, dropped, participant_ids, params,
                  config, round_tag, dtype,
                  shards: ShardPlan | None = None,
                  secure: "int | object | None" = None,
                  ) -> tuple[Params, RoundStats]:
        """Blocking mode: full surviving cohort, stragglers awaited."""
        alive_ids = [f.party_id for f in alive]
        if not alive_ids:
            self.counters["skipped_rounds"] += 1
            return params, RoundStats(
                participants=list(participant_ids),
                mean_train_loss=float("nan"), total_samples=0,
                dropped=dropped, aggregated=False,
            )
        new_params, stats = _sync_round(parties, alive_ids, params, config,
                                        round_tag, dtype=dtype, shards=shards,
                                        secure=secure)
        stats.participants = list(participant_ids)
        stats.dropped = dropped
        self.counters["aggregations"] += 1
        self.counters["aggregated_reports"] += len(stats.reported)
        return new_params, stats


def build_engine(config: FederationConfig, seed: int = 0,
                 num_parties: int | None = None,
                 shard_plan: "ShardPlan | int | None" = None,
                 ) -> FederationEngine | None:
    """An engine when the config changes behavior, else None (pure sync).

    Returning None keeps default runs on the engine-less fast path, which is
    the seed-reproduction code path byte for byte.  ``shard_plan`` becomes
    the engine's default bank sharding for every stream buffer.
    """
    if not config.is_active:
        return None
    return FederationEngine(config, seed=seed, num_parties=num_parties,
                            shard_plan=shard_plan)
