"""Aggregation rules.

FedAvg runs as one ``w @ M`` matrix-vector product over the stacked
flattened updates (see :func:`repro.utils.params.weighted_average`) instead
of a Python loop over parameter lists, so per-round cost is a single BLAS
call regardless of how many tensors a model has.

Staleness weighting (for the buffered/async engine in
:mod:`repro.federation.async_engine`) multiplies each report's sample weight
by a decay in its age: ``constant`` leaves FedAvg untouched, ``polynomial``
is FedAsync's ``(1 + s)^-alpha`` (Xie et al., 2019), ``exponential`` is
``gamma^s``.  At staleness 0 every policy yields multiplier exactly 1.0, so
an async run with no delays is bit-identical to the synchronous path.
"""

from __future__ import annotations

import numpy as np

from repro.federation.party import LocalUpdate
from repro.utils.params import Params, weighted_average

STALENESS_POLICIES = ("constant", "polynomial", "exponential")


def fedavg(updates: list[LocalUpdate]) -> Params:
    """Sample-count-weighted parameter average (McMahan et al., 2017).

    The single aggregation rule both FedAvg and FedProx use server-side
    (FedProx differs only in the local objective).  Updates whose parameter
    shapes disagree raise a ``ValueError`` naming the offending party and
    both shape tuples.
    """
    if not updates:
        raise ValueError("fedavg requires at least one update")
    usable = [u for u in updates if u.num_samples > 0]
    if not usable:
        raise ValueError("all updates carry zero samples")
    return weighted_average(
        [u.params for u in usable],
        [float(u.num_samples) for u in usable],
        names=[f"party {u.party_id}" for u in usable],
    )


def staleness_decay(staleness, policy: str = "constant", alpha: float = 0.5,
                    gamma: float = 0.5) -> np.ndarray:
    """Per-report weight multipliers for report ages ``staleness`` (rounds).

    Ages must be non-negative integers/floats; age 0 maps to exactly 1.0
    under every policy (the bitwise sync-equivalence anchor).
    """
    s = np.asarray(staleness, dtype=np.float64)
    if s.size and float(s.min()) < 0:
        raise ValueError("staleness ages must be non-negative")
    if policy == "constant":
        return np.ones_like(s)
    if policy == "polynomial":
        if alpha < 0:
            raise ValueError("staleness_alpha must be non-negative")
        return (1.0 + s) ** (-alpha)
    if policy == "exponential":
        if not 0.0 < gamma <= 1.0:
            raise ValueError("staleness_gamma must be in (0, 1]")
        return gamma ** s
    raise KeyError(
        f"unknown staleness policy '{policy}'; available: {STALENESS_POLICIES}")


def staleness_weighted_fedavg(updates: list[LocalUpdate], staleness: list[int],
                              policy: str = "constant", alpha: float = 0.5,
                              gamma: float = 0.5) -> Params:
    """FedAvg with each update's weight decayed by its age in rounds.

    The list-based reference implementation of the bank-resident path in
    :class:`~repro.federation.async_engine.AsyncRoundBuffer` — the
    differential test suite pins the two to each other.
    """
    if len(updates) != len(staleness):
        raise ValueError("updates and staleness must have equal length")
    keep = [(u, s) for u, s in zip(updates, staleness) if u.num_samples > 0]
    if not keep:
        raise ValueError("all updates carry zero samples")
    decay = staleness_decay([s for _, s in keep], policy, alpha, gamma)
    weights = [float(u.num_samples) * float(d) for (u, _), d in zip(keep, decay)]
    return weighted_average(
        [u.params for u, _ in keep], weights,
        names=[f"party {u.party_id}" for u, _ in keep],
    )
