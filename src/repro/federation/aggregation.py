"""Aggregation rules."""

from __future__ import annotations

from repro.federation.party import LocalUpdate
from repro.utils.params import Params, weighted_average


def fedavg(updates: list[LocalUpdate]) -> Params:
    """Sample-count-weighted parameter average (McMahan et al., 2017).

    The single aggregation rule both FedAvg and FedProx use server-side
    (FedProx differs only in the local objective).
    """
    if not updates:
        raise ValueError("fedavg requires at least one update")
    usable = [u for u in updates if u.num_samples > 0]
    if not usable:
        raise ValueError("all updates carry zero samples")
    return weighted_average(
        [u.params for u in usable],
        [float(u.num_samples) for u in usable],
    )
