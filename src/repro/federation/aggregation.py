"""Aggregation rules.

FedAvg runs as one ``w @ M`` matrix-vector product over the stacked
flattened updates (see :func:`repro.utils.params.weighted_average`) instead
of a Python loop over parameter lists, so per-round cost is a single BLAS
call regardless of how many tensors a model has.
"""

from __future__ import annotations

from repro.federation.party import LocalUpdate
from repro.utils.params import Params, weighted_average


def fedavg(updates: list[LocalUpdate]) -> Params:
    """Sample-count-weighted parameter average (McMahan et al., 2017).

    The single aggregation rule both FedAvg and FedProx use server-side
    (FedProx differs only in the local objective).  Updates whose parameter
    shapes disagree raise a ``ValueError`` naming the offending party and
    both shape tuples.
    """
    if not updates:
        raise ValueError("fedavg requires at least one update")
    usable = [u for u in updates if u.num_samples > 0]
    if not usable:
        raise ValueError("all updates carry zero samples")
    return weighted_average(
        [u.params for u in usable],
        [float(u.num_samples) for u in usable],
        names=[f"party {u.party_id}" for u in usable],
    )
