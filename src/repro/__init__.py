"""ShiftEx reproduction: shift-aware mixture-of-experts continual FL.

Reproduces "Shift Happens: Mixture of Experts based Continual Adaptation in
Federated Learning" (Bhope et al., Middleware 2025) as a self-contained
Python library: a numpy neural-network substrate, synthetic shifted federated
datasets, a streaming/windowing engine, MMD/JSD shift detection, the ShiftEx
expert-management core, five comparison baselines, and a composable
experiment layer (strategy registry, declarative plans, serial/parallel
executors, run events) regenerating every table and figure of the paper's
evaluation.

Quickstart::

    from repro.experiments import ExperimentPlan, ParallelExecutor
    from repro.harness import render_drop_time_max_table

    plan = ExperimentPlan.build("cifar10_c_sim", ["fedprox", "shiftex"],
                                seeds=(0, 1), profile="ci")
    result = plan.run(executor=ParallelExecutor(jobs=2))
    print(render_drop_time_max_table(result, title="CIFAR-10-C (simulated)"))
"""

__version__ = "1.1.0"

from repro.core import ShiftExConfig, ShiftExStrategy
from repro.experiments import (
    ExperimentPlan,
    ParallelExecutor,
    SerialExecutor,
    build_strategy,
    register_strategy,
    strategy_names,
)
from repro.harness import run_comparison, run_strategy

__all__ = [
    "ShiftExConfig",
    "ShiftExStrategy",
    "ExperimentPlan",
    "SerialExecutor",
    "ParallelExecutor",
    "register_strategy",
    "build_strategy",
    "strategy_names",
    "run_comparison",
    "run_strategy",
    "__version__",
]
