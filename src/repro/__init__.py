"""ShiftEx reproduction: shift-aware mixture-of-experts continual FL.

Reproduces "Shift Happens: Mixture of Experts based Continual Adaptation in
Federated Learning" (Bhope et al., Middleware 2025) as a self-contained
Python library: a numpy neural-network substrate, synthetic shifted federated
datasets, a streaming/windowing engine, MMD/JSD shift detection, the ShiftEx
expert-management core, four comparison baselines, and an experiment harness
regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro.harness import run_comparison, render_drop_time_max_table
    result = run_comparison("cifar10_c_sim", profile="ci", seeds=(0,))
    print(render_drop_time_max_table(result, title="CIFAR-10-C (simulated)"))
"""

__version__ = "1.0.0"

from repro.core import ShiftExConfig, ShiftExStrategy
from repro.harness import run_comparison, run_strategy

__all__ = [
    "ShiftExConfig",
    "ShiftExStrategy",
    "run_comparison",
    "run_strategy",
    "__version__",
]
