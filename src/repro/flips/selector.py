"""Label-distribution clustering and equitable participant sampling."""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.clustering.selection import select_num_clusters
from repro.detection.divergence import jsd
from repro.utils.validation import normalize_histogram


def label_balance_score(histograms: list[np.ndarray]) -> float:
    """JSD between the pooled label histogram of a cohort and uniform.

    Lower is better; 0 means the cohort's aggregate training data is
    perfectly class-balanced.  This is the quantity FLIPS minimizes and the
    practical surrogate for the mu-term of the ShiftEx objective.
    """
    if not histograms:
        raise ValueError("need at least one histogram")
    pooled = normalize_histogram(np.sum([normalize_histogram(h) for h in histograms],
                                        axis=0))
    uniform = np.full(pooled.size, 1.0 / pooled.size)
    return jsd(pooled, uniform)


class FlipsSelector:
    """Clusters parties by label histogram, then samples clusters equitably.

    Usage: ``fit`` once per window with the parties' reported label
    histograms, then ``select`` each round.  Selection walks the clusters
    round-robin (largest remaining first), drawing the least-recently-chosen
    party within each cluster, which yields both class balance and
    participation fairness.
    """

    def __init__(self, num_clusters: int | None = None, max_clusters: int = 5) -> None:
        if num_clusters is not None and num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        if max_clusters <= 0:
            raise ValueError("max_clusters must be positive")
        self.num_clusters = num_clusters
        self.max_clusters = max_clusters
        self._party_ids: list[int] = []
        self._clusters: dict[int, list[int]] = {}
        self._selection_counts: dict[int, int] = {}

    # ------------------------------------------------------------------ fitting

    def fit(self, label_histograms: dict[int, np.ndarray],
            rng: np.random.Generator) -> "FlipsSelector":
        """Cluster parties by (normalized) label histogram."""
        if not label_histograms:
            raise ValueError("label_histograms must not be empty")
        self._party_ids = sorted(label_histograms)
        matrix = np.stack([
            normalize_histogram(np.asarray(label_histograms[p], dtype=np.float64))
            for p in self._party_ids
        ])
        k_cap = min(self.max_clusters, len(self._party_ids))
        if self.num_clusters is not None:
            k = min(self.num_clusters, len(self._party_ids))
            result = kmeans(matrix, k, rng)
        else:
            _k, result, _scores = select_num_clusters(matrix, rng, k_max=k_cap)
        self._clusters = {}
        for party, label in zip(self._party_ids, result.labels):
            self._clusters.setdefault(int(label), []).append(party)
        for party in self._party_ids:
            self._selection_counts.setdefault(party, 0)
        return self

    @property
    def clusters(self) -> dict[int, list[int]]:
        """Cluster id -> sorted party ids (copy)."""
        return {c: list(m) for c, m in self._clusters.items()}

    @property
    def is_fitted(self) -> bool:
        return bool(self._clusters)

    # ------------------------------------------------------------------ selection

    def select(self, num_participants: int, rng: np.random.Generator,
               available: set[int] | None = None) -> list[int]:
        """Pick participants with equitable per-cluster representation.

        Clusters are visited round-robin; within a cluster, parties with the
        lowest historical selection count are preferred (ties broken
        randomly).  When ``available`` is given, only those parties are
        eligible; clusters with no eligible member are skipped.
        """
        if not self.is_fitted:
            raise RuntimeError("call fit() before select()")
        if num_participants <= 0:
            raise ValueError("num_participants must be positive")

        pools: dict[int, list[int]] = {}
        for cluster, members in self._clusters.items():
            eligible = [p for p in members if available is None or p in available]
            if eligible:
                pools[cluster] = eligible
        if not pools:
            raise ValueError("no eligible parties to select from")

        selected: list[int] = []
        # Visit bigger clusters first so remainders go to the most populous
        # label regimes, mirroring FLIPS's equitable-representation goal.
        order = sorted(pools, key=lambda c: -len(pools[c]))
        cursor = 0
        while len(selected) < num_participants and any(pools.values()):
            cluster = order[cursor % len(order)]
            cursor += 1
            pool = pools[cluster]
            if not pool:
                if all(not p for p in pools.values()):
                    break
                continue
            least = min(self._selection_counts[p] for p in pool)
            candidates = [p for p in pool if self._selection_counts[p] == least]
            choice = int(rng.choice(candidates))
            pool.remove(choice)
            selected.append(choice)
            self._selection_counts[choice] += 1
        return selected

    def selection_counts(self) -> dict[int, int]:
        """Historical per-party selection counts (copy)."""
        return dict(self._selection_counts)
