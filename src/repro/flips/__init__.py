"""FLIPS: Federated Learning with Intelligent Participant Selection.

Reimplementation of the selection middleware the paper builds on (Bhope et
al., Middleware '23) and uses in three places: the bootstrap phase, expert
updates, and new-expert training.  FLIPS clusters parties by their label
histograms and samples participants equitably across clusters so every label
regime is represented in each round, which is how ShiftEx realizes the
label-imbalance (mu/JSD) term of its assignment objective without manual
tuning.
"""

from repro.flips.selector import FlipsSelector, label_balance_score

__all__ = ["FlipsSelector", "label_balance_score"]
