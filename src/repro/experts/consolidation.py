"""Expert consolidation: merge near-duplicate experts (Section 5.2.5).

Two experts merge when their flattened parameter vectors exceed cosine
similarity ``tau`` *and* their latent memories agree that they serve nearly
identical covariate regimes (memory MMD at most ``memory_epsilon``, when
both memories are non-empty).  The parameter test alone is necessary but not
sufficient: models descended from the same bootstrap initialization stay
globally aligned for a while, and a just-cloned expert is exactly identical
to its source — so untrained experts are never merge candidates, and the
regime check keeps genuinely specialized experts apart.

The full pairwise cosine-similarity matrix comes from one normalized matmul
over the registry's stacked parameter matrix
(:func:`repro.utils.params.cosine_similarity_matrix`); only candidate pairs
already above ``tau`` pay for the memory-MMD regime check, scanned in
descending-similarity order so the first qualifying pair is the best one.

Merging averages parameters weighted by training samples seen, blends the
latent memories, and remaps affected parties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.mmd import class_conditional_mmd
from repro.experts.memory import LatentMemory
from repro.experts.registry import Expert, ExpertRegistry
from repro.utils.params import cosine_similarity_matrix, weighted_average
from repro.utils.sharding import ShardPlan


@dataclass(frozen=True)
class ConsolidationEvent:
    """Record of one merge: which experts fused into which."""

    merged_ids: tuple[int, int]
    new_id: int
    similarity: float


def _merge_pair(registry: ExpertRegistry, a: Expert, b: Expert, window: int,
                similarity: float, rng: np.random.Generator) -> ConsolidationEvent:
    weight_a = float(max(a.samples_seen, 1))
    weight_b = float(max(b.samples_seen, 1))
    merged_params = weighted_average([a.params, b.params], [weight_a, weight_b])
    share_a = weight_a / (weight_a + weight_b)
    merged_memory: LatentMemory = a.memory.merged_with(b.memory, share_a, rng)
    # Build the merged expert directly on a pool-bank row: one copy of the
    # averaged vector instead of private-bank-then-adopt.
    bank, row = registry.alloc_pool_row(merged_params)
    merged = Expert(
        expert_id=registry.allocate_id(),
        params=None,
        bank=bank,
        row=row,
        memory=merged_memory,
        created_window=min(a.created_window, b.created_window),
        updated_window=window,
        train_rounds=a.train_rounds + b.train_rounds,
        samples_seen=a.samples_seen + b.samples_seen,
        merged_from=(a.expert_id, b.expert_id),
    )
    registry.replace_pair_with_merged(a.expert_id, b.expert_id, merged)
    return ConsolidationEvent(
        merged_ids=(a.expert_id, b.expert_id),
        new_id=merged.expert_id,
        similarity=similarity,
    )


def _regimes_agree(a: Expert, b: Expert, memory_epsilon: float | None,
                   gamma: float | None, seal=None) -> bool:
    """The latent-memory gate: both memories describe one covariate regime."""
    if memory_epsilon is None or a.memory.is_empty or b.memory.is_empty:
        return True
    sig_a, sig_b = a.memory.signature, b.memory.signature
    if seal is not None:  # sign-sealed MMD is bitwise-identical (see ScoreSeal)
        sig_a, sig_b = seal.seal(sig_a), seal.seal(sig_b)
    regime_distance = class_conditional_mmd(
        sig_a, a.memory.signature_labels,
        sig_b, b.memory.signature_labels, gamma,
    )
    return regime_distance <= memory_epsilon


def _best_mergeable_pair(experts: list[Expert], tau: float,
                         memory_epsilon: float | None, gamma: float | None,
                         registry: ExpertRegistry | None = None,
                         shards: ShardPlan | None = None,
                         ) -> tuple[Expert, Expert, float] | None:
    """Highest-similarity pair above ``tau`` that passes the regime gate.

    Similarities for all pairs come from a single normalized matmul — or,
    under an active shard plan, from per-shard Gram blocks over the pool
    bank (:meth:`ExpertRegistry.cosine_matrix`) — the (expensive) memory
    check runs only on candidates above ``tau``, best first, so the first
    pass that succeeds is the answer.
    """
    seal = getattr(registry, "score_seal", None) if registry is not None else None
    if shards is not None and shards.is_active and registry is not None:
        sims = registry.cosine_matrix([e.expert_id for e in experts])
    else:
        stacked = np.stack(
            [np.asarray(e.flat, dtype=np.float64) for e in experts])
        if seal is not None:
            stacked = seal.seal(stacked)
        sims = cosine_similarity_matrix(stacked)
    iu, ju = np.triu_indices(len(experts), k=1)
    pair_sims = sims[iu, ju]
    # Stable descending order keeps the legacy tie-break: first (i, j) wins.
    for idx in np.argsort(-pair_sims, kind="stable"):
        sim = float(pair_sims[idx])
        if sim <= tau:
            break
        a, b = experts[int(iu[idx])], experts[int(ju[idx])]
        if _regimes_agree(a, b, memory_epsilon, gamma, seal=seal):
            return a, b, sim
    return None


def consolidate_experts(registry: ExpertRegistry, tau: float, window: int,
                        rng: np.random.Generator,
                        assignments: dict[int, int] | None = None,
                        memory_epsilon: float | None = None,
                        gamma: float | None = None,
                        shards: ShardPlan | None = None,
                        ) -> list[ConsolidationEvent]:
    """Repeatedly merge the most similar qualifying expert pair above ``tau``.

    ``assignments`` (party -> expert id), when given, is updated in place so
    parties keep pointing at live experts.  ``memory_epsilon`` adds the
    regime check described in the module docstring.  An active ``shards``
    plan computes the similarity matrix as per-shard Gram blocks over the
    pool bank; the default stays on the single-matmul path byte for byte.
    Returns merge events in order; at least one expert always survives.
    """
    if not -1.0 <= tau <= 1.0:
        raise ValueError("tau must be a valid cosine similarity bound")
    events: list[ConsolidationEvent] = []
    while len(registry) >= 2:
        experts = [e for e in registry.all() if e.train_rounds > 0]
        if len(experts) < 2:
            break
        best = _best_mergeable_pair(experts, tau, memory_epsilon, gamma,
                                    registry=registry, shards=shards)
        if best is None:
            break
        event = _merge_pair(registry, best[0], best[1], window, best[2], rng)
        events.append(event)
        if assignments is not None:
            for party, expert_id in list(assignments.items()):
                if expert_id in event.merged_ids:
                    assignments[party] = event.new_id
    return events
