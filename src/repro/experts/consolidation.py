"""Expert consolidation: merge near-duplicate experts (Section 5.2.5).

Two experts merge when their flattened parameter vectors exceed cosine
similarity ``tau`` *and* their latent memories agree that they serve nearly
identical covariate regimes (memory MMD at most ``memory_epsilon``, when
both memories are non-empty).  The parameter test alone is necessary but not
sufficient: models descended from the same bootstrap initialization stay
globally aligned for a while, and a just-cloned expert is exactly identical
to its source — so untrained experts are never merge candidates, and the
regime check keeps genuinely specialized experts apart.

Merging averages parameters weighted by training samples seen, blends the
latent memories, and remaps affected parties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.mmd import class_conditional_mmd
from repro.experts.memory import LatentMemory
from repro.experts.registry import Expert, ExpertRegistry
from repro.utils.params import params_cosine_similarity, weighted_average


@dataclass(frozen=True)
class ConsolidationEvent:
    """Record of one merge: which experts fused into which."""

    merged_ids: tuple[int, int]
    new_id: int
    similarity: float


def _merge_pair(registry: ExpertRegistry, a: Expert, b: Expert, window: int,
                similarity: float, rng: np.random.Generator) -> ConsolidationEvent:
    weight_a = float(max(a.samples_seen, 1))
    weight_b = float(max(b.samples_seen, 1))
    merged_params = weighted_average([a.params, b.params], [weight_a, weight_b])
    share_a = weight_a / (weight_a + weight_b)
    merged_memory: LatentMemory = a.memory.merged_with(b.memory, share_a, rng)
    merged = Expert(
        expert_id=registry.allocate_id(),
        params=merged_params,
        memory=merged_memory,
        created_window=min(a.created_window, b.created_window),
        updated_window=window,
        train_rounds=a.train_rounds + b.train_rounds,
        samples_seen=a.samples_seen + b.samples_seen,
        merged_from=(a.expert_id, b.expert_id),
    )
    registry.replace_pair_with_merged(a.expert_id, b.expert_id, merged)
    return ConsolidationEvent(
        merged_ids=(a.expert_id, b.expert_id),
        new_id=merged.expert_id,
        similarity=similarity,
    )


def _mergeable(a: Expert, b: Expert, tau: float,
               memory_epsilon: float | None,
               gamma: float | None) -> float | None:
    """Return the similarity when the pair qualifies for merging, else None."""
    if a.train_rounds == 0 or b.train_rounds == 0:
        return None
    sim = params_cosine_similarity(a.params, b.params)
    if sim <= tau:
        return None
    if memory_epsilon is not None and not a.memory.is_empty and not b.memory.is_empty:
        regime_distance = class_conditional_mmd(
            a.memory.signature, a.memory.signature_labels,
            b.memory.signature, b.memory.signature_labels, gamma,
        )
        if regime_distance > memory_epsilon:
            return None
    return sim


def consolidate_experts(registry: ExpertRegistry, tau: float, window: int,
                        rng: np.random.Generator,
                        assignments: dict[int, int] | None = None,
                        memory_epsilon: float | None = None,
                        gamma: float | None = None,
                        ) -> list[ConsolidationEvent]:
    """Repeatedly merge the most similar qualifying expert pair above ``tau``.

    ``assignments`` (party -> expert id), when given, is updated in place so
    parties keep pointing at live experts.  ``memory_epsilon`` adds the
    regime check described in the module docstring.  Returns merge events in
    order; at least one expert always survives.
    """
    if not -1.0 <= tau <= 1.0:
        raise ValueError("tau must be a valid cosine similarity bound")
    events: list[ConsolidationEvent] = []
    while len(registry) >= 2:
        experts = registry.all()
        best_pair: tuple[Expert, Expert] | None = None
        best_sim = tau
        for i in range(len(experts)):
            for j in range(i + 1, len(experts)):
                sim = _mergeable(experts[i], experts[j], tau, memory_epsilon, gamma)
                if sim is not None and sim > best_sim:
                    best_sim = sim
                    best_pair = (experts[i], experts[j])
        if best_pair is None:
            break
        event = _merge_pair(registry, best_pair[0], best_pair[1], window,
                            best_sim, rng)
        events.append(event)
        if assignments is not None:
            for party, expert_id in list(assignments.items()):
                if expert_id in event.merged_ids:
                    assignments[party] = event.new_id
    return events
