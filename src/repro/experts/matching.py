"""Match covariate clusters to existing experts via latent-memory MMD.

Implements the reuse rule of Section 5.2.2:

    if  min_k MMD(P_bar_j(X), M(k)) <= epsilon,  assign cluster G_j to expert k

where ``M(k)`` is expert k's latent-memory signature.  Recurring covariate
patterns thereby reuse existing experts instead of spawning new ones.

When the cluster carries class tags (and the memory stores them), the score
is *class-conditional* MMD: at window-sized samples the label-composition
differences between a cluster and a memory otherwise dominate the
unconditional statistic and mask the covariate signal entirely.

Scaling
-------
With an active :class:`~repro.utils.sharding.ShardPlan` the per-expert score
vector fans out across shards (each scores a contiguous chunk of expert
memories; results are concatenated), and :class:`WindowMatchScorer` batches
*all* of a window's clusters into one stacked Gram evaluation — the
memory-side kernel means are computed once per window instead of once per
cluster.  Both are gated behind ``shards >= 2``: the default path is the
historical per-cluster call, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.mmd import class_conditional_mmd_to_many, mmd_to_many
from repro.experts.registry import Expert, ExpertRegistry
from repro.utils.sharding import (
    ShardPlan,
    sharded_class_conditional_mmd_many_to_many,
    sharded_class_conditional_mmd_to_many,
    sharded_mmd_many_to_many,
    sharded_mmd_to_many,
)
from repro.utils.validation import check_2d


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one cluster against the registry."""

    matched: bool
    expert_id: int | None
    score: float  # best (lowest) MMD across experts, inf if registry empty
    scores: dict[int, float]  # per-expert MMD


def _subsample_cluster(cluster_embeddings: np.ndarray,
                       cluster_labels: np.ndarray | None,
                       max_rows: int | None,
                       rng: np.random.Generator | None,
                       ) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate a cluster pool and subsample it to ``max_rows`` rows.

    MMD's magnitude depends on sample size, so matching at the same row
    count the reuse threshold was calibrated at (the latent-memory
    capacity) keeps the score and the threshold on one scale.
    """
    cluster_embeddings = check_2d(cluster_embeddings, "cluster_embeddings")
    if cluster_labels is not None:
        cluster_labels = np.asarray(cluster_labels)
        if cluster_labels.shape != (cluster_embeddings.shape[0],):
            raise ValueError("cluster_labels must align with embedding rows")
    if max_rows is not None and cluster_embeddings.shape[0] > max_rows:
        if rng is None:
            raise ValueError("subsampling the cluster pool requires an rng")
        idx = rng.choice(cluster_embeddings.shape[0], size=max_rows,
                         replace=False)
        cluster_embeddings = cluster_embeddings[idx]
        if cluster_labels is not None:
            cluster_labels = cluster_labels[idx]
    return cluster_embeddings, cluster_labels


def _eligible_experts(registry: ExpertRegistry,
                      exclude: set[int] | None) -> list[Expert]:
    """Experts a cluster may match: non-empty memory, not excluded."""
    return [
        expert for expert in registry.all()
        if not (exclude and expert.expert_id in exclude)
        and not expert.memory.is_empty
    ]


def _best_match(eligible: list[Expert], score_values,
                epsilon: float) -> MatchResult:
    """Fold per-expert scores into a MatchResult (first minimum wins)."""
    scores: dict[int, float] = {}
    best_id: int | None = None
    best_score = float("inf")
    for expert, score in zip(eligible, score_values):
        score = float(score)
        scores[expert.expert_id] = score
        if score < best_score:
            best_score = score
            best_id = expert.expert_id
    matched = best_id is not None and best_score <= epsilon
    return MatchResult(
        matched=matched,
        expert_id=best_id if matched else None,
        score=best_score,
        scores=scores,
    )


def match_cluster_to_expert(cluster_embeddings: np.ndarray,
                            registry: ExpertRegistry,
                            epsilon: float,
                            gamma: float | None = None,
                            exclude: set[int] | None = None,
                            max_rows: int | None = None,
                            rng: np.random.Generator | None = None,
                            cluster_labels: np.ndarray | None = None,
                            shards: ShardPlan | None = None,
                            ) -> MatchResult:
    """Find the closest expert by MMD between cluster and memory signatures.

    ``epsilon`` is the reuse threshold; experts with empty memories (never
    trained on any regime) and ids in ``exclude`` are skipped.

    ``max_rows`` subsamples the cluster pool before comparison (see
    :func:`_subsample_cluster`).  An active ``shards`` plan fans the
    per-expert score vector out across shards — each shard scores a
    contiguous chunk of the expert pool and the chunks are concatenated, so
    the result aligns with the serial call up to floating-point noise.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    cluster_embeddings, cluster_labels = _subsample_cluster(
        cluster_embeddings, cluster_labels, max_rows, rng)
    eligible = _eligible_experts(registry, exclude)
    # Sealed scoring: when the registry carries a ScoreSeal, the cluster
    # pool and every memory signature are sign-sealed before they reach a
    # kernel (or a shard worker).  MMD is built from inner products and
    # row differences, so the seal cancels bitwise — class labels are
    # stratification metadata, not parameters, and stay as-is.
    signatures = [e.memory.signature for e in eligible]
    seal = getattr(registry, "score_seal", None)
    if seal is not None:
        cluster_embeddings = seal.seal(cluster_embeddings)
        signatures = seal.seal_many(signatures)
    # One batched evaluation over all expert memories: the cluster-side
    # kernel blocks are computed once and the cross blocks come from a
    # single stacked matmul, instead of a per-expert Python loop.  With an
    # active shard plan the expert pool is chunked across shards on top.
    if shards is not None and shards.is_active:
        if cluster_labels is not None:
            score_values = sharded_class_conditional_mmd_to_many(
                cluster_embeddings, cluster_labels, signatures,
                [e.memory.signature_labels for e in eligible], gamma, shards,
            )
        else:
            score_values = sharded_mmd_to_many(
                cluster_embeddings, signatures, gamma, shards)
    elif cluster_labels is not None:
        score_values = class_conditional_mmd_to_many(
            cluster_embeddings, cluster_labels, signatures,
            [e.memory.signature_labels for e in eligible], gamma,
        )
    else:
        score_values = mmd_to_many(cluster_embeddings, signatures, gamma)
    return _best_match(eligible, score_values, epsilon)


def nearest_expert(cluster_embeddings: np.ndarray, registry: ExpertRegistry,
                   gamma: float | None = None) -> Expert | None:
    """The closest expert regardless of threshold (None if registry empty)."""
    result = match_cluster_to_expert(cluster_embeddings, registry,
                                     epsilon=float("inf"), gamma=gamma)
    if result.expert_id is None:
        return None
    return registry.get(result.expert_id)


class WindowMatchScorer:
    """Batch-score all of a window's clusters in one Gram evaluation.

    The per-cluster path pays the memory-side kernel means once per
    *cluster*; a shift window with several covariate clusters recomputes
    them k times.  This scorer stacks every cluster into a single
    :func:`~repro.detection.mmd.mmd_many_to_many` (or class-conditional)
    evaluation against the expert pool *as it stands at construction time*,
    optionally fanning the expert axis out across shards.

    Cluster-by-cluster processing stays semantically sequential: a cluster
    handled earlier in the window may create a new expert or refresh a
    matched expert's memory, and later clusters must see that.  ``match()``
    therefore serves cached scores only for experts whose memory is
    untouched since the snapshot (tracked via ``LatentMemory.updates``) and
    rescores the delta — typically one expert per preceding cluster —
    against the cluster's already-subsampled pool.
    """

    def __init__(self, registry: ExpertRegistry,
                 clusters: list[np.ndarray],
                 cluster_labels: list[np.ndarray] | None,
                 gamma: float | None = None,
                 max_rows: int | None = None,
                 rngs: list[np.random.Generator] | None = None,
                 shards: ShardPlan | None = None) -> None:
        if cluster_labels is not None and len(cluster_labels) != len(clusters):
            raise ValueError("cluster_labels must align with clusters")
        if rngs is not None and len(rngs) != len(clusters):
            raise ValueError("rngs must align with clusters")
        self._registry = registry
        self._gamma = gamma
        self._shards = shards
        # Sealed scoring: cluster pools are sealed once at construction and
        # *stored sealed*, so a parked scorer (async buffer) never holds a
        # plaintext snapshot; stale-expert signatures are sealed on rescore.
        self._seal = getattr(registry, "score_seal", None)
        self._xs: list[np.ndarray] = []
        self._xls: list[np.ndarray] | None = (
            [] if cluster_labels is not None else None)
        for i, cluster in enumerate(clusters):
            labels = cluster_labels[i] if cluster_labels is not None else None
            rng = rngs[i] if rngs is not None else None
            x, xl = _subsample_cluster(cluster, labels, max_rows, rng)
            if self._seal is not None:
                x = self._seal.seal(x)
            self._xs.append(x)
            if self._xls is not None:
                self._xls.append(xl)
        snapshot = _eligible_experts(registry, exclude=None)
        self._snapshot_ids = [e.expert_id for e in snapshot]
        self._snapshot_state = {
            e.expert_id: (e.memory, e.memory.updates) for e in snapshot}
        plan = shards if shards is not None else ShardPlan()
        if snapshot and clusters:
            ys = [e.memory.signature for e in snapshot]
            if self._seal is not None:
                ys = self._seal.seal_many(ys)
            if self._xls is not None:
                yls = [e.memory.signature_labels for e in snapshot]
                self._scores = sharded_class_conditional_mmd_many_to_many(
                    self._xs, self._xls, ys, yls, gamma, plan)
            else:
                self._scores = sharded_mmd_many_to_many(self._xs, ys, gamma,
                                                        plan)
        else:
            self._scores = np.zeros((len(clusters), 0))
        self._columns = {eid: j for j, eid in enumerate(self._snapshot_ids)}

    def _is_fresh(self, expert: Expert) -> bool:
        state = self._snapshot_state.get(expert.expert_id)
        return (state is not None and state[0] is expert.memory
                and state[1] == expert.memory.updates)

    def match(self, index: int, epsilon: float,
              exclude: set[int] | None = None) -> MatchResult:
        """Match cluster ``index`` against the registry *as it is now*."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        x = self._xs[index]
        xl = self._xls[index] if self._xls is not None else None
        eligible = _eligible_experts(self._registry, exclude)
        stale = [e for e in eligible if not self._is_fresh(e)]
        fresh_scores: dict[int, float] = {}
        if stale:
            stale_sigs = [e.memory.signature for e in stale]
            if self._seal is not None:  # x is already sealed from __init__
                stale_sigs = self._seal.seal_many(stale_sigs)
            if xl is not None:
                vals = class_conditional_mmd_to_many(
                    x, xl, stale_sigs,
                    [e.memory.signature_labels for e in stale], self._gamma)
            else:
                vals = mmd_to_many(x, stale_sigs, self._gamma)
            fresh_scores = {e.expert_id: float(v)
                            for e, v in zip(stale, vals)}
        score_values = [
            fresh_scores.get(e.expert_id,
                             self._scores[index,
                                          self._columns.get(e.expert_id, -1)])
            for e in eligible
        ]
        return _best_match(eligible, score_values, epsilon)
