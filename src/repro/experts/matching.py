"""Match covariate clusters to existing experts via latent-memory MMD.

Implements the reuse rule of Section 5.2.2:

    if  min_k MMD(P_bar_j(X), M(k)) <= epsilon,  assign cluster G_j to expert k

where ``M(k)`` is expert k's latent-memory signature.  Recurring covariate
patterns thereby reuse existing experts instead of spawning new ones.

When the cluster carries class tags (and the memory stores them), the score
is *class-conditional* MMD: at window-sized samples the label-composition
differences between a cluster and a memory otherwise dominate the
unconditional statistic and mask the covariate signal entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.mmd import class_conditional_mmd_to_many, mmd_to_many
from repro.experts.registry import Expert, ExpertRegistry
from repro.utils.validation import check_2d


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one cluster against the registry."""

    matched: bool
    expert_id: int | None
    score: float  # best (lowest) MMD across experts, inf if registry empty
    scores: dict[int, float]  # per-expert MMD


def match_cluster_to_expert(cluster_embeddings: np.ndarray,
                            registry: ExpertRegistry,
                            epsilon: float,
                            gamma: float | None = None,
                            exclude: set[int] | None = None,
                            max_rows: int | None = None,
                            rng: np.random.Generator | None = None,
                            cluster_labels: np.ndarray | None = None,
                            ) -> MatchResult:
    """Find the closest expert by MMD between cluster and memory signatures.

    ``epsilon`` is the reuse threshold; experts with empty memories (never
    trained on any regime) and ids in ``exclude`` are skipped.

    ``max_rows`` subsamples the cluster pool before comparison.  MMD's
    magnitude depends on sample size, so matching at the same row count the
    reuse threshold was calibrated at (the latent-memory capacity) keeps the
    score and the threshold on one scale.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    cluster_embeddings = check_2d(cluster_embeddings, "cluster_embeddings")
    if cluster_labels is not None:
        cluster_labels = np.asarray(cluster_labels)
        if cluster_labels.shape != (cluster_embeddings.shape[0],):
            raise ValueError("cluster_labels must align with embedding rows")
    if max_rows is not None and cluster_embeddings.shape[0] > max_rows:
        if rng is None:
            raise ValueError("subsampling the cluster pool requires an rng")
        idx = rng.choice(cluster_embeddings.shape[0], size=max_rows, replace=False)
        cluster_embeddings = cluster_embeddings[idx]
        if cluster_labels is not None:
            cluster_labels = cluster_labels[idx]
    eligible = [
        expert for expert in registry.all()
        if not (exclude and expert.expert_id in exclude)
        and not expert.memory.is_empty
    ]
    # One batched evaluation over all expert memories: the cluster-side
    # kernel blocks are computed once and the cross blocks come from a
    # single stacked matmul, instead of a per-expert Python loop.
    if cluster_labels is not None:
        score_values = class_conditional_mmd_to_many(
            cluster_embeddings, cluster_labels,
            [e.memory.signature for e in eligible],
            [e.memory.signature_labels for e in eligible], gamma,
        )
    else:
        score_values = mmd_to_many(
            cluster_embeddings, [e.memory.signature for e in eligible], gamma)
    scores: dict[int, float] = {}
    best_id: int | None = None
    best_score = float("inf")
    for expert, score in zip(eligible, score_values):
        score = float(score)
        scores[expert.expert_id] = score
        if score < best_score:
            best_score = score
            best_id = expert.expert_id
    matched = best_id is not None and best_score <= epsilon
    return MatchResult(
        matched=matched,
        expert_id=best_id if matched else None,
        score=best_score,
        scores=scores,
    )


def nearest_expert(cluster_embeddings: np.ndarray, registry: ExpertRegistry,
                   gamma: float | None = None) -> Expert | None:
    """The closest expert regardless of threshold (None if registry empty)."""
    result = match_cluster_to_expert(cluster_embeddings, registry,
                                     epsilon=float("inf"), gamma=gamma)
    if result.expert_id is None:
        return None
    return registry.get(result.expert_id)
