"""Expert compression via online distillation (paper Section 9, future work).

"Future work will explore expert compression via online distillation" — this
module implements that extension: a pool of experts is distilled into one
compact student model by matching the *assignment-weighted* soft predictions
of the experts on a reference set.  Each reference sample is routed to the
expert responsible for its regime (mirroring ShiftEx's party-level routing),
so the student learns the union of the experts' specializations without any
party data leaving the aggregator.

The distillation loss is the standard soft-target cross-entropy
``H(softmax(teacher/T), softmax(student/T))`` scaled by ``T^2`` (Hinton et
al., 2015), optionally mixed with hard-label cross-entropy when labels are
available for the reference set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experts.registry import ExpertRegistry
from repro.nn.losses import softmax_probs
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.utils.params import Params


@dataclass
class DistillationConfig:
    """Hyper-parameters for pool-to-student distillation."""

    temperature: float = 2.0
    epochs: int = 10
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    hard_label_weight: float = 0.25  # 0 = pure soft targets

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if not 0.0 <= self.hard_label_weight <= 1.0:
            raise ValueError("hard_label_weight must be in [0, 1]")


@dataclass
class DistillationResult:
    """Distilled parameters plus teacher/student agreement statistics."""

    student_params: Params
    teacher_agreement: float  # fraction of reference samples where argmax agrees
    mean_soft_loss: float
    num_experts: int
    num_reference_samples: int


def _teacher_logits(registry: ExpertRegistry, model: Sequential,
                    x: np.ndarray, routing: np.ndarray) -> np.ndarray:
    """Per-sample logits from each sample's routed expert."""
    expert_ids = registry.ids()
    logits = None
    for eid in expert_ids:
        members = np.nonzero(routing == eid)[0]
        if members.size == 0:
            continue
        model.set_params(registry.get(eid).params)
        out = model.forward(x[members], training=False)
        if logits is None:
            logits = np.zeros((x.shape[0], out.shape[1]))
        logits[members] = out
    if logits is None:
        raise ValueError("routing assigned no samples to any expert")
    return logits


def distill_expert_pool(registry: ExpertRegistry, student: Sequential,
                        scratch_model: Sequential,
                        x_reference: np.ndarray, routing: np.ndarray,
                        config: DistillationConfig,
                        rng: np.random.Generator,
                        y_reference: np.ndarray | None = None,
                        ) -> DistillationResult:
    """Distill every expert's behaviour into ``student`` (updated in place).

    Parameters
    ----------
    registry : the expert pool (the teachers).
    student : the compact model to train.
    scratch_model : a model of the experts' architecture used to evaluate
        teacher logits (its parameters are overwritten).
    x_reference : (n, ...) reference inputs spanning the observed regimes —
        e.g. the aggregator's calibration set re-corrupted per regime.
    routing : (n,) expert id responsible for each reference sample.
    y_reference : optional hard labels mixed in with ``hard_label_weight``.
    """
    x_reference = np.asarray(x_reference, dtype=np.float64)
    routing = np.asarray(routing)
    if routing.shape != (x_reference.shape[0],):
        raise ValueError("routing must assign an expert to every reference sample")
    if len(registry) == 0:
        raise ValueError("cannot distill an empty expert pool")
    unknown = set(np.unique(routing)) - set(registry.ids())
    if unknown:
        raise ValueError(f"routing references unknown experts {sorted(unknown)}")
    if y_reference is not None and config.hard_label_weight > 0:
        y_reference = np.asarray(y_reference)
        if y_reference.shape != (x_reference.shape[0],):
            raise ValueError("y_reference must align with x_reference")

    teacher = _teacher_logits(registry, scratch_model, x_reference, routing)
    temp = config.temperature
    soft_targets = softmax_probs(teacher / temp)

    optimizer = SGD(config.lr, momentum=config.momentum)
    n = x_reference.shape[0]
    losses: list[float] = []
    for _epoch in range(config.epochs):
        order = rng.permutation(n)
        for start in range(0, n, config.batch_size):
            idx = order[start:start + config.batch_size]
            xb = x_reference[idx]
            student.zero_grads()
            logits = student.forward(xb, training=True)
            # Soft-target cross-entropy at temperature T (grad scaled by T^2
            # restores gradient magnitude, as in Hinton et al.).
            probs = softmax_probs(logits / temp)
            target = soft_targets[idx]
            eps = 1e-12
            soft_loss = float(-np.mean(np.sum(target * np.log(probs + eps), axis=1)))
            grad = (probs - target) / (idx.size) * temp
            if (y_reference is not None and config.hard_label_weight > 0):
                hard_probs = softmax_probs(logits)
                hard_grad = hard_probs.copy()
                hard_grad[np.arange(idx.size), y_reference[idx]] -= 1.0
                hard_grad /= idx.size
                w = config.hard_label_weight
                grad = (1 - w) * grad + w * hard_grad
            student.backward(grad)
            optimizer.step(student.params, student.grads)
            losses.append(soft_loss)

    student_pred = student.predict(x_reference)
    teacher_pred = teacher.argmax(axis=1)
    agreement = float(np.mean(student_pred == teacher_pred))
    return DistillationResult(
        student_params=student.get_params(),
        teacher_agreement=agreement,
        mean_soft_loss=float(np.mean(losses)) if losses else float("nan"),
        num_experts=len(registry),
        num_reference_samples=n,
    )
