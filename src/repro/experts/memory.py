"""Latent memory: exponentially decayed signature of an expert's regime.

The paper (Section 5.2.2) keeps, per expert, "a latent memory, an exponential
moving average of each expert's embedding signatures", and matches incoming
covariate clusters against it with MMD.  MMD needs *samples*, so the memory
is a fixed-capacity reservoir of embedding rows: each update replaces an
``eta`` fraction of stored rows with rows from the new window, which decays
old signatures geometrically (an EMA over the represented distribution)
while remaining a valid sample for kernel tests.  An exact EMA of the
centroid is kept alongside for cheap diagnostics.

Rows carry class tags so matching can use *class-conditional* MMD — at
window-sized samples the label-composition noise of pooled embeddings
otherwise drowns the covariate signal (see ``repro.detection.mmd``).  The
tags are the same granularity of information as the label histograms parties
already report; in TEE mode they remain sealed inside the enclave.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


class LatentMemory:
    """Fixed-capacity, exponentially decayed labelled-embedding reservoir."""

    def __init__(self, capacity: int = 64, eta: float = 0.3) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < eta <= 1.0:
            raise ValueError("eta must be in (0, 1]")
        self.capacity = capacity
        self.eta = eta
        self._rows: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._centroid_ema: np.ndarray | None = None
        self.updates = 0

    @property
    def is_empty(self) -> bool:
        return self._rows is None

    @property
    def signature(self) -> np.ndarray:
        """The stored embedding sample (rows, d)."""
        if self._rows is None:
            raise RuntimeError("latent memory is empty")
        return self._rows

    @property
    def signature_labels(self) -> np.ndarray:
        """Class tags aligned with :attr:`signature` rows."""
        if self._labels is None:
            raise RuntimeError("latent memory is empty")
        return self._labels

    @property
    def centroid(self) -> np.ndarray:
        """EMA of window centroids (cheap matching diagnostic)."""
        if self._centroid_ema is None:
            raise RuntimeError("latent memory is empty")
        return self._centroid_ema

    @staticmethod
    def _check(embeddings: np.ndarray,
               labels: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
        embeddings = check_2d(embeddings, "embeddings")
        if labels is None:
            labels = np.zeros(embeddings.shape[0], dtype=int)
        labels = np.asarray(labels)
        if labels.shape != (embeddings.shape[0],):
            raise ValueError("labels must align with embedding rows")
        return embeddings, labels

    def update(self, embeddings: np.ndarray, rng: np.random.Generator,
               labels: np.ndarray | None = None) -> None:
        """Fold a new window of (labelled) embeddings into the memory."""
        embeddings, labels = self._check(embeddings, labels)
        new_centroid = embeddings.mean(axis=0)
        if self._rows is None:
            take = min(self.capacity, embeddings.shape[0])
            idx = rng.choice(embeddings.shape[0], size=take, replace=False)
            self._rows = embeddings[idx].copy()
            self._labels = labels[idx].copy()
            self._centroid_ema = new_centroid.copy()
        else:
            if embeddings.shape[1] != self._rows.shape[1]:
                raise ValueError(
                    f"embedding dim {embeddings.shape[1]} does not match "
                    f"memory dim {self._rows.shape[1]}"
                )
            assert self._labels is not None
            if self._rows.shape[0] < self.capacity:
                # Grow toward capacity before decaying.
                deficit = self.capacity - self._rows.shape[0]
                take = min(deficit, embeddings.shape[0])
                idx = rng.choice(embeddings.shape[0], size=take, replace=False)
                self._rows = np.vstack([self._rows, embeddings[idx]])
                self._labels = np.concatenate([self._labels, labels[idx]])
            n_replace = int(round(self.eta * self._rows.shape[0]))
            n_replace = min(n_replace, embeddings.shape[0])
            if n_replace > 0:
                victims = rng.choice(self._rows.shape[0], size=n_replace, replace=False)
                donors = rng.choice(embeddings.shape[0], size=n_replace, replace=False)
                self._rows[victims] = embeddings[donors]
                self._labels[victims] = labels[donors]
            assert self._centroid_ema is not None
            self._centroid_ema = (
                (1.0 - self.eta) * self._centroid_ema + self.eta * new_centroid
            )
        self.updates += 1

    def merged_with(self, other: "LatentMemory", self_weight: float,
                    rng: np.random.Generator) -> "LatentMemory":
        """Blend two memories (used when consolidating experts)."""
        if not 0.0 <= self_weight <= 1.0:
            raise ValueError("self_weight must be in [0, 1]")
        merged = LatentMemory(capacity=self.capacity, eta=self.eta)
        if self.is_empty and other.is_empty:
            return merged
        if self.is_empty:
            merged._rows = other.signature.copy()
            merged._labels = other.signature_labels.copy()
            merged._centroid_ema = other.centroid.copy()
        elif other.is_empty:
            merged._rows = self.signature.copy()
            merged._labels = self.signature_labels.copy()
            merged._centroid_ema = self.centroid.copy()
        else:
            n_self = int(round(self_weight * self.capacity))
            n_self = min(max(n_self, 1), self.capacity - 1)
            n_other = self.capacity - n_self
            idx_s = rng.choice(self.signature.shape[0],
                               size=min(n_self, self.signature.shape[0]),
                               replace=False)
            idx_o = rng.choice(other.signature.shape[0],
                               size=min(n_other, other.signature.shape[0]),
                               replace=False)
            merged._rows = np.vstack([self.signature[idx_s],
                                      other.signature[idx_o]])
            merged._labels = np.concatenate([self.signature_labels[idx_s],
                                             other.signature_labels[idx_o]])
            merged._centroid_ema = (self_weight * self.centroid
                                    + (1.0 - self_weight) * other.centroid)
        merged.updates = self.updates + other.updates
        return merged
