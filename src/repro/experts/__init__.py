"""Expert lifecycle management (the aggregator side of the MoE).

* :class:`~repro.experts.registry.Expert` / :class:`ExpertRegistry` — the pool
  of specialized global models, each tagged with a latent-memory signature of
  the covariate regime it serves;
* :class:`~repro.experts.memory.LatentMemory` — exponentially decayed
  reservoir of embedding signatures enabling expert *reuse* when a covariate
  regime recurs (paper Section 5.2.2);
* :mod:`~repro.experts.matching` — MMD matching of covariate clusters against
  expert memories;
* :mod:`~repro.experts.consolidation` — cosine-similarity merge of redundant
  experts (Section 5.2.5);
* :mod:`~repro.experts.facility` — the facility-location assignment program
  (Equation 2) with an exact enumerative solver for small instances and the
  greedy approximation used at scale.
"""

from repro.experts.memory import LatentMemory
from repro.experts.registry import Expert, ExpertRegistry
from repro.experts.matching import match_cluster_to_expert, MatchResult
from repro.experts.consolidation import consolidate_experts, ConsolidationEvent
from repro.experts.distillation import (
    DistillationConfig,
    DistillationResult,
    distill_expert_pool,
)
from repro.experts.facility import (
    FacilityLocationProblem,
    FacilityLocationSolution,
    solve_exact,
    solve_greedy,
)

__all__ = [
    "LatentMemory",
    "Expert",
    "ExpertRegistry",
    "match_cluster_to_expert",
    "MatchResult",
    "consolidate_experts",
    "ConsolidationEvent",
    "DistillationConfig",
    "DistillationResult",
    "distill_expert_pool",
    "FacilityLocationProblem",
    "FacilityLocationSolution",
    "solve_exact",
    "solve_greedy",
]
