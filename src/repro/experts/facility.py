"""Facility-location expert assignment (Equation 2 of the paper).

The program jointly minimizes, over assignment variables ``z`` and expert
activations ``w``:

* covariate mismatch — ``sum_c sum_k z_ck * MMD(P_c, P_k)``;
* expert-creation cost — ``lambda * sum_{k in K_n} w_k``;
* label imbalance — ``mu * sum_k JSD(y_k, y_bar)`` where ``y_k`` is the
  aggregate label histogram of expert k's cohort and ``y_bar`` the global
  mean histogram;

subject to: every party picks exactly one expert, parties may only use
activated experts, existing experts are always active, and no expert serves
more than ``U_max`` parties.

The problem is NP-hard (the paper cites the planar facility-location
results), so ShiftEx uses the modular pipeline of Section 5.2 at runtime.
Here we ship both an exact enumerative solver for small instances (to
validate approximations, and for the ablation bench) and a greedy +
local-search approximation mirroring the paper's decomposition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.detection.divergence import jsd
from repro.utils.validation import normalize_histogram


@dataclass
class FacilityLocationProblem:
    """Problem data for Equation 2.

    ``mmd_costs[c, k]`` is the covariate mismatch between party ``c`` and
    expert column ``k``; columns are partitioned into ``existing`` (K_0,
    always active) and ``candidates`` (K_n, cost ``lam`` each to activate).
    """

    mmd_costs: np.ndarray
    existing: tuple[int, ...]
    candidates: tuple[int, ...]
    party_histograms: np.ndarray
    lam: float = 0.1
    mu: float = 0.1
    capacity: int | None = None

    def __post_init__(self) -> None:
        self.mmd_costs = np.asarray(self.mmd_costs, dtype=np.float64)
        if self.mmd_costs.ndim != 2:
            raise ValueError("mmd_costs must be (n_parties, n_experts)")
        n_parties, n_experts = self.mmd_costs.shape
        cols = sorted((*self.existing, *self.candidates))
        if cols != list(range(n_experts)):
            raise ValueError("existing + candidates must cover every expert column")
        self.party_histograms = np.stack([
            normalize_histogram(h) for h in np.asarray(self.party_histograms,
                                                       dtype=np.float64)
        ])
        if self.party_histograms.shape[0] != n_parties:
            raise ValueError("party_histograms must align with mmd_costs rows")
        if self.lam < 0 or self.mu < 0:
            raise ValueError("lam and mu must be non-negative")
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError("capacity must be positive when given")
        if self.capacity is not None and self.capacity * n_experts < n_parties:
            raise ValueError("total capacity cannot cover all parties")

    @property
    def num_parties(self) -> int:
        return int(self.mmd_costs.shape[0])

    @property
    def num_experts(self) -> int:
        return int(self.mmd_costs.shape[1])

    @property
    def global_mean_histogram(self) -> np.ndarray:
        return normalize_histogram(self.party_histograms.mean(axis=0))

    # ------------------------------------------------------------------ objective

    def objective(self, assignment: np.ndarray) -> float:
        """Evaluate Equation 2 for a full assignment vector.

        ``assignment[c]`` is the expert column of party ``c``.  Raises on
        capacity violations.  Activation is implied: a candidate is open iff
        some party uses it.
        """
        assignment = np.asarray(assignment, dtype=int)
        if assignment.shape != (self.num_parties,):
            raise ValueError("assignment must map every party to one expert")
        if assignment.min() < 0 or assignment.max() >= self.num_experts:
            raise ValueError("assignment references unknown expert columns")
        counts = np.bincount(assignment, minlength=self.num_experts)
        if self.capacity is not None and counts.max(initial=0) > self.capacity:
            raise ValueError("assignment violates the capacity constraint")

        mismatch = float(self.mmd_costs[np.arange(self.num_parties), assignment].sum())
        open_new = sum(1 for k in self.candidates if counts[k] > 0)
        creation = self.lam * open_new
        y_bar = self.global_mean_histogram
        imbalance = 0.0
        for k in range(self.num_experts):
            if counts[k] == 0:
                continue
            members = self.party_histograms[assignment == k]
            imbalance += jsd(normalize_histogram(members.mean(axis=0)), y_bar)
        return mismatch + creation + self.mu * imbalance


@dataclass
class FacilityLocationSolution:
    """A feasible assignment plus its cost breakdown."""

    assignment: np.ndarray
    objective: float
    open_experts: tuple[int, ...]
    method: str
    details: dict = field(default_factory=dict)


def solve_exact(problem: FacilityLocationProblem,
                max_states: int = 2_000_000) -> FacilityLocationSolution:
    """Brute-force enumeration over all feasible assignments.

    Only viable for small instances; raises when the state space exceeds
    ``max_states``.  Used in tests as ground truth for the greedy solver.
    """
    states = problem.num_experts ** problem.num_parties
    if states > max_states:
        raise ValueError(
            f"exact solver state space {states} exceeds limit {max_states}"
        )
    best_assignment: np.ndarray | None = None
    best_value = float("inf")
    for combo in itertools.product(range(problem.num_experts),
                                   repeat=problem.num_parties):
        assignment = np.array(combo, dtype=int)
        counts = np.bincount(assignment, minlength=problem.num_experts)
        if problem.capacity is not None and counts.max(initial=0) > problem.capacity:
            continue
        value = problem.objective(assignment)
        if value < best_value:
            best_value = value
            best_assignment = assignment
    if best_assignment is None:
        raise RuntimeError("no feasible assignment exists")
    counts = np.bincount(best_assignment, minlength=problem.num_experts)
    open_experts = tuple(sorted(set(problem.existing)
                                | {k for k in problem.candidates if counts[k] > 0}))
    return FacilityLocationSolution(
        assignment=best_assignment,
        objective=best_value,
        open_experts=open_experts,
        method="exact",
    )


def _greedy_initial(problem: FacilityLocationProblem) -> np.ndarray:
    """Assign parties (hardest first) to the cheapest feasible expert.

    Candidate experts carry an amortized opening surcharge of ``lam`` the
    first time a party adopts them.
    """
    n, m = problem.num_parties, problem.num_experts
    assignment = np.full(n, -1, dtype=int)
    counts = np.zeros(m, dtype=int)
    opened = set(problem.existing)
    # Hardest parties first: those whose best option is worst.
    order = np.argsort(-problem.mmd_costs.min(axis=1))
    for c in order:
        best_k, best_cost = -1, float("inf")
        for k in range(m):
            if problem.capacity is not None and counts[k] >= problem.capacity:
                continue
            cost = problem.mmd_costs[c, k]
            if k not in opened:
                cost += problem.lam
            if cost < best_cost:
                best_cost, best_k = cost, k
        if best_k < 0:
            raise RuntimeError("capacity exhausted during greedy construction")
        assignment[c] = best_k
        counts[best_k] += 1
        opened.add(best_k)
    return assignment


def solve_greedy(problem: FacilityLocationProblem,
                 max_passes: int = 5) -> FacilityLocationSolution:
    """Greedy construction + first-improvement local search on Equation 2.

    Local search tries single-party reassignments (including onto unopened
    candidates) and keeps any move that lowers the full objective, for up to
    ``max_passes`` sweeps.
    """
    assignment = _greedy_initial(problem)
    value = problem.objective(assignment)
    n, m = problem.num_parties, problem.num_experts
    for _pass in range(max_passes):
        improved = False
        for c in range(n):
            current = assignment[c]
            for k in range(m):
                if k == current:
                    continue
                candidate = assignment.copy()
                candidate[c] = k
                counts = np.bincount(candidate, minlength=m)
                if problem.capacity is not None and counts.max() > problem.capacity:
                    continue
                new_value = problem.objective(candidate)
                if new_value + 1e-12 < value:
                    assignment, value = candidate, new_value
                    improved = True
                    break
        if not improved:
            break
    counts = np.bincount(assignment, minlength=m)
    open_experts = tuple(sorted(set(problem.existing)
                                | {k for k in problem.candidates if counts[k] > 0}))
    return FacilityLocationSolution(
        assignment=assignment,
        objective=value,
        open_experts=open_experts,
        method="greedy",
    )
