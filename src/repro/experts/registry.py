"""Expert pool: creation, lookup, assignment bookkeeping.

The registry is the aggregator's Theta_t: at window 0 it holds the single
bootstrap expert; later windows add specialists (cloned from the bootstrap
model per Algorithm 2, line 20) and consolidation merges redundant ones.

Storage-wise the pool lives in one contiguous :class:`~repro.utils.params.ParamBank`:
each expert's flattened parameters are a bank row, so pool-level operations
(pairwise cosine similarity for consolidation, stacked matching) run as
single matrix products over :meth:`ExpertRegistry.param_matrix`.  Rows are
reference counted, which makes :meth:`ExpertRegistry.clone` copy-on-write:
the clone shares the source row until either side writes.  With an active
:class:`~repro.utils.sharding.ShardPlan` the pool bank is a
:class:`~repro.utils.params.ShardedParamBank` and pool-level cosine
similarity fans out across processes (:meth:`ExpertRegistry.cosine_matrix`).

Copy-on-write and refcounting invariants
----------------------------------------
These hold on top of the bank-level invariants in
:mod:`repro.utils.params`; break any of them and one expert's training will
silently corrupt another's parameters:

1. **An expert writes its row only through `set_params` / `set_flat`**,
   which call ``ensure_private`` first.  Never mutate ``expert.params``
   views while :attr:`Expert.is_cow_shared` is true — they are handed out
   read-only for exactly this reason.
2. **Every expert owns exactly one live row reference.**  ``clone`` adds a
   reference (two experts, one row, refcount 2); the first writer splits.
   ``remove`` detaches the expert onto a private single-row bank *before*
   the pool row is released, so removed experts stay usable (checkpointing)
   while the pool recycles their slot.
3. **`param_matrix` / `cosine_matrix` order is `ids()` order** (sorted
   expert ids), never bank slot order — slot order diverges after any
   remove + create cycle.
4. **Adopted experts land on the pool bank before anything else touches
   them** (``_adopt``): pool-level matrix ops assume every registry expert
   shares one bank; a foreign-bank expert would silently fall back to a
   gather copy.
"""

from __future__ import annotations

import numpy as np

from repro.experts.memory import LatentMemory
from repro.utils.params import (
    ParamBank,
    ParamSpec,
    Params,
    cosine_similarity_matrix,
    make_param_bank,
)
from repro.utils.sharding import ShardPlan, resolve_shard_plan


class Expert:
    """One specialized global model plus its regime signature.

    Parameters live as one flat row of a :class:`ParamBank`; ``params``
    exposes the row as shaped zero-copy views (read-only while the row is
    shared with a copy-on-write clone).  Constructing an ``Expert`` directly
    with a parameter list gives it a private single-row bank; registry
    methods attach experts to the shared pool bank instead.
    """

    def __init__(self, expert_id: int, params: Params | None, memory: LatentMemory,
                 created_window: int, updated_window: int = 0,
                 train_rounds: int = 0, samples_seen: int = 0,
                 merged_from: tuple[int, ...] = (),
                 notes: dict | None = None,
                 bank: ParamBank | None = None, row: int | None = None) -> None:
        if bank is None:
            if params is None:
                raise ValueError("Expert needs either params or a (bank, row)")
            dtype = np.result_type(*(p.dtype for p in params)) if params \
                else np.float64
            bank = ParamBank(ParamSpec.of(params), dtype=dtype, capacity=1)
            row = bank.alloc(params)
        elif row is None:
            raise ValueError("a bank-backed Expert needs its row index")
        self._bank = bank
        self._row = row
        self.expert_id = expert_id
        self.memory = memory
        self.created_window = created_window
        self.updated_window = updated_window
        self.train_rounds = train_rounds
        self.samples_seen = samples_seen
        self.merged_from = tuple(merged_from)
        self.notes = dict(notes or {})

    # ------------------------------------------------------------------ parameters

    @property
    def spec(self) -> ParamSpec:
        return self._bank.spec

    @property
    def dtype(self) -> np.dtype:
        return self._bank.dtype

    @property
    def is_cow_shared(self) -> bool:
        """True while this expert shares its row with a copy-on-write clone."""
        return self._bank.is_shared(self._row)

    @property
    def flat(self) -> np.ndarray:
        """Zero-copy flat view of the parameters (read-only while shared)."""
        vector = self._bank.row(self._row)
        if self._bank.is_shared(self._row):
            vector = vector.view()
            vector.flags.writeable = False
        return vector

    @property
    def params(self) -> Params:
        """Zero-copy shaped views of the bank row.

        Writable when the row is private — mutating a view mutates the bank
        row directly.  While a copy-on-write clone shares the row the views
        are read-only; write through :meth:`set_params` to split first.
        """
        return self._bank.row_params(
            self._row, writeable=not self._bank.is_shared(self._row))

    def clone_params(self) -> Params:
        return [p.copy() for p in self.params]

    def set_params(self, params: Params) -> None:
        self._row = self._bank.ensure_private(self._row)
        self._bank.write_row(self._row, params)

    def set_flat(self, vector: np.ndarray) -> None:
        self._row = self._bank.ensure_private(self._row)
        self._bank.write_row(self._row, np.asarray(vector))

    def _detach(self) -> None:
        """Move the parameters to a private single-row bank.

        Called when the expert leaves a registry, so its data survives the
        pool row being recycled.
        """
        values = self._bank.row(self._row).copy()
        bank = ParamBank(self._bank.spec, dtype=self._bank.dtype, capacity=1)
        row = bank.alloc(values)
        self._bank.release(self._row)
        self._bank, self._row = bank, row


class ExpertRegistry:
    """Ordered pool of experts with stable integer ids."""

    def __init__(self, memory_capacity: int = 64, memory_eta: float = 0.3,
                 dtype=None,
                 shard_plan: "ShardPlan | int | None" = None) -> None:
        self.memory_capacity = memory_capacity
        self.memory_eta = memory_eta
        self._dtype = dtype  # None: inferred from the first expert's params
        # May be reassigned until the first expert creates the pool bank
        # (ShiftEx binds it from the run context in ``setup``).
        self.shard_plan = resolve_shard_plan(shard_plan)
        # Sealed scoring (PrivacyPlan.sealed_scoring): when bound (ShiftEx
        # ``setup``), every pool-level similarity/MMD kernel runs over
        # sign-sealed operands — bitwise-identical results, no plaintext
        # row materialized by the scoring pipeline.
        self.score_seal = None
        self._bank: ParamBank | None = None
        self._experts: dict[int, Expert] = {}
        self._next_id = 0
        self.created_total = 0
        self.merged_total = 0

    # ------------------------------------------------------------------ pool access

    def __len__(self) -> int:
        return len(self._experts)

    def __contains__(self, expert_id: int) -> bool:
        return expert_id in self._experts

    def ids(self) -> list[int]:
        return sorted(self._experts)

    def get(self, expert_id: int) -> Expert:
        if expert_id not in self._experts:
            raise KeyError(f"unknown expert id {expert_id}")
        return self._experts[expert_id]

    def all(self) -> list[Expert]:
        return [self._experts[i] for i in self.ids()]

    @property
    def bank(self) -> ParamBank | None:
        """The pool's contiguous parameter bank (None while empty)."""
        return self._bank

    def param_matrix(self, ids: list[int] | None = None) -> np.ndarray:
        """Stacked ``(k, dim)`` matrix of expert parameters in id order.

        The matrix view/gather comes straight from the pool bank; experts
        adopted from other banks (deserialized checkpoints) are stacked in.
        """
        experts = self.all() if ids is None else [self.get(i) for i in ids]
        if not experts:
            raise ValueError("registry holds no experts to stack")
        if self._bank is not None and all(e._bank is self._bank for e in experts):
            return self._bank.matrix([e._row for e in experts])
        return np.stack([np.asarray(e.flat) for e in experts])

    def cosine_matrix(self, ids: list[int] | None = None) -> np.ndarray:
        """Pairwise expert cosine similarity in id order.

        Runs on the pool bank when every selected expert lives there — under
        an active shard plan that fans per-shard Gram blocks out across the
        worker pool — and falls back to a stacked gather otherwise.  With a
        bound :attr:`score_seal` both paths score sign-sealed operands
        (bitwise-identical; see :mod:`repro.privacy.sealed_scoring`).
        """
        experts = self.all() if ids is None else [self.get(i) for i in ids]
        if not experts:
            raise ValueError("registry holds no experts to score")
        if self._bank is not None and all(e._bank is self._bank for e in experts):
            return self._bank.cosine_matrix([e._row for e in experts],
                                            seal=self.score_seal)
        stacked = np.stack([np.asarray(e.flat) for e in experts])
        if self.score_seal is not None:
            stacked = self.score_seal.seal(stacked)
        return cosine_similarity_matrix(stacked)

    # ------------------------------------------------------------------ lifecycle

    def _ensure_bank(self, params: Params) -> ParamBank:
        if self._bank is None:
            dtype = self._dtype
            if dtype is None and params:
                dtype = np.result_type(*(p.dtype for p in params))
            self._bank = make_param_bank(ParamSpec.of(params), dtype=dtype,
                                         plan=self.shard_plan)
        return self._bank

    def _seed_memory(self, embeddings: np.ndarray | None,
                     rng: np.random.Generator | None,
                     labels: np.ndarray | None) -> LatentMemory:
        memory = LatentMemory(self.memory_capacity, self.memory_eta)
        if embeddings is not None:
            if rng is None:
                raise ValueError("seeding latent memory requires an rng")
            memory.update(embeddings, rng, labels=labels)
        return memory

    def create(self, params: Params, window: int,
               embeddings: np.ndarray | None = None,
               rng: np.random.Generator | None = None,
               labels: np.ndarray | None = None,
               notes: dict | None = None) -> Expert:
        """Register a new expert (optionally seeding its latent memory)."""
        bank = self._ensure_bank(params)
        row = bank.alloc(params)
        expert = Expert(
            expert_id=self._next_id,
            params=None,
            memory=self._seed_memory(embeddings, rng, labels),
            created_window=window,
            updated_window=window,
            notes=dict(notes or {}),
            bank=bank,
            row=row,
        )
        self._experts[expert.expert_id] = expert
        self._next_id += 1
        self.created_total += 1
        return expert

    def clone(self, source_id: int, window: int,
              embeddings: np.ndarray | None = None,
              rng: np.random.Generator | None = None,
              labels: np.ndarray | None = None,
              notes: dict | None = None) -> Expert:
        """Copy-on-write clone: the new expert shares the source's bank row.

        No parameters are copied until either side writes (``set_params`` /
        training), at which point the writer silently gets a private row.
        The clone starts with a fresh latent memory — it is about to serve a
        different regime.
        """
        source = self.get(source_id)
        if source._bank is not self._bank:
            # Adopted expert on a foreign bank: pull it into the pool first.
            self._adopt(source)
        row = self._bank.share(source._row)
        merged_notes = {"cloned_from": source_id}
        merged_notes.update(notes or {})
        expert = Expert(
            expert_id=self._next_id,
            params=None,
            memory=self._seed_memory(embeddings, rng, labels),
            created_window=window,
            updated_window=window,
            notes=merged_notes,
            bank=self._bank,
            row=row,
        )
        self._experts[expert.expert_id] = expert
        self._next_id += 1
        self.created_total += 1
        return expert

    def alloc_pool_row(self, params: Params) -> tuple[ParamBank, int]:
        """Allocate a pool-bank row holding ``params``.

        For callers building an expert that is about to join the pool
        (consolidation's merge result): constructing the ``Expert`` directly
        on the returned ``(bank, row)`` skips the private-bank + re-adopt
        copies.
        """
        bank = self._ensure_bank(params)
        return bank, bank.alloc(params)

    def _adopt(self, expert: Expert) -> None:
        """Move an expert living on a foreign bank onto the pool bank."""
        bank = self._ensure_bank(list(expert.params))
        if expert._bank is bank:
            return
        if expert.spec != bank.spec:
            raise ValueError(
                f"expert {expert.expert_id} parameter shapes {expert.spec.shapes} "
                f"do not match the pool spec {bank.spec.shapes}"
            )
        row = bank.alloc(np.asarray(expert.flat))
        expert._bank.release(expert._row)
        expert._bank, expert._row = bank, row

    def adopt(self, expert: Expert) -> Expert:
        """Register an externally built expert (checkpoint restore path)."""
        self._adopt(expert)
        self._experts[expert.expert_id] = expert
        self._next_id = max(self._next_id, expert.expert_id + 1)
        return expert

    def remove(self, expert_id: int) -> Expert:
        if expert_id not in self._experts:
            raise KeyError(f"unknown expert id {expert_id}")
        expert = self._experts.pop(expert_id)
        # Detach so the expert keeps its parameters after its row is recycled.
        expert._detach()
        return expert

    def replace_pair_with_merged(self, id_a: int, id_b: int, merged: Expert) -> None:
        """Swap two experts for their consolidation result."""
        self.remove(id_a)
        self.remove(id_b)
        self._adopt(merged)
        self._experts[merged.expert_id] = merged
        self.merged_total += 1

    def allocate_id(self) -> int:
        """Reserve a fresh id (used by consolidation to build merged experts)."""
        expert_id = self._next_id
        self._next_id += 1
        return expert_id

    # ------------------------------------------------------------------ accounting

    def memory_footprint(self, embedding_dim: int, num_parties: int,
                         precision=None) -> dict[str, float]:
        """Aggregator-side memory model of Section 5.4, in bytes.

        O(k*d) expert centroids + O(n) party mapping + expert parameters
        (at the pool's configured precision).  ``precision`` (a
        :class:`~repro.utils.precision.PrecisionPlan`) sizes the centroid
        and signature floats at the detection island's dtype instead of
        the historical 8-byte default; the party mapping stays 8-byte ids
        regardless.
        """
        bytes_per_float = (8 if precision is None
                           else precision.np_detection_stats.itemsize)
        k = len(self)
        centroids = k * embedding_dim * bytes_per_float
        signatures = sum(
            0 if e.memory.is_empty else e.memory.signature.size * bytes_per_float
            for e in self.all()
        )
        mapping = num_parties * 8
        params = sum(e.flat.size * e.dtype.itemsize for e in self.all())
        return {
            "num_experts": float(k),
            "centroid_bytes": float(centroids),
            "signature_bytes": float(signatures),
            "mapping_bytes": float(mapping),
            "param_bytes": float(params),
            "total_bytes": float(centroids + signatures + mapping + params),
        }
