"""Expert pool: creation, lookup, assignment bookkeeping.

The registry is the aggregator's Theta_t: at window 0 it holds the single
bootstrap expert; later windows add specialists (cloned from the bootstrap
model per Algorithm 2, line 20) and consolidation merges redundant ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experts.memory import LatentMemory
from repro.utils.params import Params


@dataclass
class Expert:
    """One specialized global model plus its regime signature."""

    expert_id: int
    params: Params
    memory: LatentMemory
    created_window: int
    updated_window: int = 0
    train_rounds: int = 0
    samples_seen: int = 0
    merged_from: tuple[int, ...] = ()
    notes: dict = field(default_factory=dict)

    def clone_params(self) -> Params:
        return [p.copy() for p in self.params]

    def set_params(self, params: Params) -> None:
        self.params = [p.copy() for p in params]


class ExpertRegistry:
    """Ordered pool of experts with stable integer ids."""

    def __init__(self, memory_capacity: int = 64, memory_eta: float = 0.3) -> None:
        self.memory_capacity = memory_capacity
        self.memory_eta = memory_eta
        self._experts: dict[int, Expert] = {}
        self._next_id = 0
        self.created_total = 0
        self.merged_total = 0

    # ------------------------------------------------------------------ pool access

    def __len__(self) -> int:
        return len(self._experts)

    def __contains__(self, expert_id: int) -> bool:
        return expert_id in self._experts

    def ids(self) -> list[int]:
        return sorted(self._experts)

    def get(self, expert_id: int) -> Expert:
        if expert_id not in self._experts:
            raise KeyError(f"unknown expert id {expert_id}")
        return self._experts[expert_id]

    def all(self) -> list[Expert]:
        return [self._experts[i] for i in self.ids()]

    # ------------------------------------------------------------------ lifecycle

    def create(self, params: Params, window: int,
               embeddings: np.ndarray | None = None,
               rng: np.random.Generator | None = None,
               labels: np.ndarray | None = None,
               notes: dict | None = None) -> Expert:
        """Register a new expert (optionally seeding its latent memory)."""
        memory = LatentMemory(self.memory_capacity, self.memory_eta)
        if embeddings is not None:
            if rng is None:
                raise ValueError("seeding latent memory requires an rng")
            memory.update(embeddings, rng, labels=labels)
        expert = Expert(
            expert_id=self._next_id,
            params=[p.copy() for p in params],
            memory=memory,
            created_window=window,
            updated_window=window,
            notes=dict(notes or {}),
        )
        self._experts[expert.expert_id] = expert
        self._next_id += 1
        self.created_total += 1
        return expert

    def remove(self, expert_id: int) -> Expert:
        if expert_id not in self._experts:
            raise KeyError(f"unknown expert id {expert_id}")
        return self._experts.pop(expert_id)

    def replace_pair_with_merged(self, id_a: int, id_b: int, merged: Expert) -> None:
        """Swap two experts for their consolidation result."""
        self.remove(id_a)
        self.remove(id_b)
        self._experts[merged.expert_id] = merged
        self.merged_total += 1

    def allocate_id(self) -> int:
        """Reserve a fresh id (used by consolidation to build merged experts)."""
        expert_id = self._next_id
        self._next_id += 1
        return expert_id

    # ------------------------------------------------------------------ accounting

    def memory_footprint(self, embedding_dim: int, num_parties: int) -> dict[str, float]:
        """Aggregator-side memory model of Section 5.4, in bytes.

        O(k*d) expert centroids + O(n) party mapping + expert parameters.
        """
        bytes_per_float = 8
        k = len(self)
        centroids = k * embedding_dim * bytes_per_float
        signatures = sum(
            0 if e.memory.is_empty else e.memory.signature.size * bytes_per_float
            for e in self.all()
        )
        mapping = num_parties * 8
        params = sum(sum(p.size for p in e.params) for e in self.all()) * bytes_per_float
        return {
            "num_experts": float(k),
            "centroid_bytes": float(centroids),
            "signature_bytes": float(signatures),
            "mapping_bytes": float(mapping),
            "param_bytes": float(params),
            "total_bytes": float(centroids + signatures + mapping + params),
        }
