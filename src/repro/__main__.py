"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``compare``  — run any registered strategies over a simulated dataset and
  print the paper-style Drop/Time/Max table (``--jobs N`` fans the
  strategy x seed grid over processes);
* ``run``      — execute a saved experiment plan (JSON or TOML) or a
  declarative scenario document (``--scenario-file``);
* ``scenarios`` — ``validate`` a scenario file or ``sample`` seeded
  documents from the fuzz generator (see ``docs/SCENARIOS.md``);
* ``methods``  — list the strategy registry;
* ``datasets`` — list the simulated datasets and their shift schedules;
* ``inspect``  — show a dataset spec's schedule window by window.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.data.registry import build_shift_schedule, dataset_names, get_dataset_spec
from repro.federation.aggregation import STALENESS_POLICIES
from repro.federation.async_engine import PARTICIPATION_MODES, FederationConfig
from repro.federation.availability import SCENARIOS
from repro.federation.pool import PARTICIPATION_SKEWS, PopulationConfig
from repro.scenarios import (
    ScenarioGenerator,
    compile_scenario,
    federation_from_knobs,
    lint_scenario,
    load_scenario,
    population_from_knobs,
    save_scenario,
)
from repro.experiments import (
    ExperimentPlan,
    ParallelExecutor,
    ProgressLogger,
    SerialExecutor,
    load_plan,
    strategy_description,
    strategy_names,
)
from repro.harness import render_drop_time_max_table
from repro.harness.comparison import (
    PAPER_METHODS,
    expert_distribution_table,
    render_expert_distribution,
)
from repro.utils.serialization import save_run_result


def cmd_datasets(_args) -> int:
    print(f"{'name':22s} {'paper dataset':16s} {'parties':>7s} {'windows':>7s} "
          f"{'windowing':>9s} {'label shift':>11s}")
    for name in dataset_names():
        spec = get_dataset_spec(name)
        print(f"{name:22s} {spec.paper_name:16s} {spec.num_parties:7d} "
              f"{spec.num_windows:7d} {spec.windowing:>9s} "
              f"{'yes' if spec.label_shift else 'no':>11s}")
    return 0


def cmd_inspect(args) -> int:
    spec = get_dataset_spec(args.dataset)
    schedule = build_shift_schedule(spec)
    print(f"{spec.name} ({spec.paper_name}): {spec.num_parties} parties, "
          f"{spec.num_classes} classes, {spec.windowing} windows, "
          f"model={spec.model_name}")
    for window in range(spec.num_windows):
        if window == 0:
            regime = "clean burn-in"
        else:
            corruption, severity = spec.window_regimes[window - 1]
            regime = f"{corruption} (severity {severity})"
        shifted = len(schedule.parties_shifted_at(window))
        regimes = len(schedule.distinct_regimes_up_to(window))
        print(f"  W{window}: {regime:28s} shifted parties: {shifted:3d}   "
              f"distinct regimes so far: {regimes}")
    return 0


def cmd_methods(_args) -> int:
    print(f"{'name':12s} description")
    for name in strategy_names():
        print(f"{name:12s} {strategy_description(name)}")
    return 0


def _executor(jobs: int):
    if jobs < 1:
        raise ValueError("--jobs must be at least 1")
    return ParallelExecutor(jobs=jobs) if jobs > 1 else SerialExecutor()


def _print_result(result, title: str) -> None:
    print()
    print(render_drop_time_max_table(result, title=title))
    if "shiftex" in result.runs:
        print("\nShiftEx expert dynamics:")
        print(render_expert_distribution(expert_distribution_table(result)))


def _save_runs(result, output_dir: str) -> None:
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    for name, runs in result.runs.items():
        for run in runs:
            path = out / f"{result.dataset}_{name}_seed{run.seed}.json"
            save_run_result(path, run)
    print(f"\nper-run JSON written to {out}/")


def _federation_from_args(args) -> FederationConfig | None:
    """A FederationConfig when any participation flag was given, else None.

    The flag-to-config mapping itself lives in
    :func:`repro.scenarios.compiler.federation_from_knobs`, shared with the
    scenario compiler so flags and ``[availability]`` blocks cannot drift.
    """
    config, warnings = federation_from_knobs(
        participation=args.participation, preset=args.scenario,
        dropout=args.dropout, straggler=args.straggler, outage=args.outage,
        min_reports=args.min_reports, max_wait=args.max_wait,
        staleness_policy=args.staleness_policy)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    return config


def _population_from_args(args) -> PopulationConfig | None:
    """A PopulationConfig when any population flag was given, else None."""
    try:
        return population_from_knobs(
            size=args.population, max_resident=args.max_resident,
            skew=args.participation_skew, zipf_a=args.zipf_a,
            survey=args.survey_parties)
    except ValueError:
        if args.population is None:  # dependents without --population
            raise ValueError(
                "--max-resident/--participation-skew/--zipf-a/"
                "--survey-parties require --population") from None
        raise


def _add_population_args(parser) -> None:
    group = parser.add_argument_group(
        "population", "virtual-party population scaling (PartyPool)")
    group.add_argument("--population", type=int, default=None, metavar="N",
                       help="simulate N virtual parties: each is a seeded "
                            "spec materialized on dispatch and evicted after "
                            "its report, so N can far exceed the dataset's "
                            "eager party count (default: eager parties)")
    group.add_argument("--cohort-size", type=int, default=None, metavar="K",
                       help="parties trained per round (overrides the "
                            "profile's participants_per_round)")
    group.add_argument("--max-resident", type=int, default=None, metavar="M",
                       help="LRU bound on simultaneously live parties "
                            "(default: unbounded; requires --population)")
    group.add_argument("--participation-skew", default=None,
                       choices=PARTICIPATION_SKEWS,
                       help="cohort sampling distribution over the "
                            "population (default uniform)")
    group.add_argument("--zipf-a", type=float, default=None, metavar="A",
                       help="zipf participation exponent: rank i is drawn "
                            "with weight (i+1)^-A (default 1.2)")
    group.add_argument("--survey-parties", type=int, default=None,
                       metavar="S",
                       help="cap whole-population surveys (per-party "
                            "strategy state, clustering) to a seeded subset "
                            "of S parties (default: everyone)")


def _add_federation_args(parser) -> None:
    group = parser.add_argument_group(
        "participation", "asynchronous federation and client availability")
    group.add_argument("--participation", default=None,
                       choices=PARTICIPATION_MODES,
                       help="round regime: sync blocks on the surviving "
                            "cohort, buffered fires on --min-reports/"
                            "--max-wait, async aggregates whatever arrived")
    group.add_argument("--scenario", default=None, choices=SCENARIOS,
                       help="named availability preset (see README matrix)")
    group.add_argument("--dropout", type=float, default=None,
                       help="per-(party, round) report-loss probability")
    group.add_argument("--straggler", type=float, default=None,
                       help="probability a report arrives rounds late "
                            "(heavy-tailed delay)")
    group.add_argument("--outage", type=float, default=None,
                       help="per-round probability a correlated outage starts")
    group.add_argument("--min-reports", type=int, default=None,
                       help="buffered: aggregate once this many reports are "
                            "in (default: the cohort size)")
    group.add_argument("--max-wait", type=int, default=None,
                       help="buffered: force aggregation after the oldest "
                            "report waited this many rounds (default 1)")
    group.add_argument("--staleness-policy", default=None,
                       choices=STALENESS_POLICIES,
                       help="decay on late reports' weights "
                            "(default constant = plain FedAvg)")


def cmd_compare(args) -> int:
    methods = tuple(args.methods) if args.methods else PAPER_METHODS
    available = strategy_names()
    unknown = set(methods) - set(available)
    if unknown:
        print(f"unknown methods: {sorted(unknown)}; "
              f"available: {available}", file=sys.stderr)
        return 2
    seeds = tuple(args.seeds)
    print(f"running {list(methods)} on {args.dataset} "
          f"(profile={args.profile}, seeds={seeds}, jobs={args.jobs}) ...",
          flush=True)
    callbacks = (ProgressLogger(),) if args.progress else ()
    try:
        federation = _federation_from_args(args)
        population = _population_from_args(args)
        plan = ExperimentPlan.build(args.dataset, methods, seeds=seeds,
                                    profile=args.profile, dtype=args.dtype,
                                    precision=args.precision,
                                    federation=federation, shards=args.shards,
                                    shard_backend=args.shard_backend,
                                    shard_hosts=args.shard_hosts,
                                    secure_aggregation=(True if args.secure_agg
                                                        else None),
                                    privacy=args.privacy,
                                    population=population,
                                    cohort_size=args.cohort_size)
        result = plan.run(executor=_executor(args.jobs), callbacks=callbacks)
    except (ValueError, KeyError) as exc:
        print(str(exc).strip("'\""), file=sys.stderr)
        return 2
    _print_result(result,
                  title=f"{args.dataset}: Drop / Recovery Time / Max Accuracy")
    if args.output_dir:
        _save_runs(result, args.output_dir)
    return 0


def cmd_run(args) -> int:
    if (args.plan is None) == (args.scenario_file is None):
        print("run takes exactly one input: a plan file, or "
              "--scenario-file", file=sys.stderr)
        return 2
    source = args.plan if args.plan is not None else args.scenario_file
    try:
        if args.scenario_file is not None:
            plan = compile_scenario(load_scenario(args.scenario_file))
        else:
            plan = load_plan(args.plan)
    except (FileNotFoundError, ValueError, TypeError, KeyError) as exc:
        print(str(exc).strip("'\""), file=sys.stderr)
        return 2
    unknown = {s.method or s.label for s in plan.strategies} - set(strategy_names())
    if unknown:
        print(f"plan references unregistered methods: {sorted(unknown)}; "
              f"available: {strategy_names()}", file=sys.stderr)
        return 2
    label = plan.name or Path(source).stem
    print(f"running plan '{label}': {[s.label for s in plan.strategies]} on "
          f"{plan.dataset} (profile={plan.profile}, seeds={plan.seeds}, "
          f"jobs={args.jobs}) ...", flush=True)
    callbacks = (ProgressLogger(),) if args.progress else ()
    try:
        result = plan.run(executor=_executor(args.jobs), callbacks=callbacks)
    except (ValueError, KeyError) as exc:
        # KeyError: unknown dataset or profile named inside the plan file.
        print(str(exc).strip("'\""), file=sys.stderr)
        return 2
    _print_result(result,
                  title=f"{plan.dataset}: Drop / Recovery Time / Max Accuracy")
    if args.output_dir:
        _save_runs(result, args.output_dir)
    return 0


def cmd_scenarios_validate(args) -> int:
    try:
        doc = load_scenario(args.file)
        plan = compile_scenario(doc)
        spec, settings = plan.resolve()
    except (FileNotFoundError, ValueError, TypeError, KeyError) as exc:
        print(str(exc).strip("'\""), file=sys.stderr)
        return 2
    for warning in lint_scenario(doc):
        print(f"warning: {warning}", file=sys.stderr)
    strategies = [s.label for s in plan.strategies]
    print(f"{args.file}: ok")
    print(f"  dataset:    {plan.dataset} ({spec.num_parties} parties, "
          f"{spec.num_windows} windows)")
    print(f"  strategies: {strategies} x seeds {list(plan.seeds)}")
    print(f"  rounds:     burn_in={settings.rounds_burn_in} "
          f"per_window={settings.rounds_per_window} "
          f"participants={settings.round_config.participants_per_round}")
    mode = (settings.federation.mode if settings.federation is not None
            else "sync")
    print(f"  federation: {mode}")
    if spec.drift:
        for entry in spec.drift:
            print(f"  drift:      {entry.arrival} {entry.corruption}"
                  f"@{entry.severity} fraction={entry.fraction} "
                  f"start=W{entry.start_window} "
                  f"phase_offset<={entry.max_phase_offset}")
    return 0


def cmd_scenarios_sample(args) -> int:
    generator = ScenarioGenerator(seed=args.seed)
    docs = generator.corpus(args.count, start=args.start)
    if args.output_dir is None:
        print(json.dumps([doc.to_dict() for doc in docs], indent=2))
        return 0
    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    for doc in docs:
        path = save_scenario(out / f"{doc.name}.json", doc)
        print(path)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ShiftEx reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_datasets = subparsers.add_parser(
        "datasets", help="list the simulated datasets")
    p_datasets.set_defaults(func=cmd_datasets)

    p_inspect = subparsers.add_parser(
        "inspect", help="show a dataset's shift schedule")
    p_inspect.add_argument("dataset", choices=dataset_names())
    p_inspect.set_defaults(func=cmd_inspect)

    p_methods = subparsers.add_parser(
        "methods", help="list the registered strategies")
    p_methods.set_defaults(func=cmd_methods)

    p_compare = subparsers.add_parser(
        "compare", help="run strategies on a dataset and print the table")
    p_compare.add_argument("dataset", choices=dataset_names())
    p_compare.add_argument("--profile", default="ci",
                           choices=("ci", "small", "paper"))
    p_compare.add_argument("--methods", nargs="*", metavar="METHOD",
                           help="registered methods to run (see the 'methods' "
                                f"command; default: {PAPER_METHODS})")
    p_compare.add_argument("--seeds", nargs="*", type=int, default=[0])
    p_compare.add_argument("--dtype", default=None,
                           choices=("float32", "float64"),
                           help="model precision (default: the profile's; "
                                "float32 is ~2x faster).  Shorthand for "
                                "--precision params=DTYPE: detection "
                                "statistics stay on the float64 island")
    p_compare.add_argument("--precision", default=None, metavar="SPEC",
                           help="per-subsystem precision plan, e.g. "
                                "'params=float32,detection_stats=float64' "
                                "(a bare dtype sets params only); thresholds "
                                "come from the committed table for the "
                                "parameter precision")
    p_compare.add_argument("--shards", type=int, default=None, metavar="N",
                           help="split parameter banks across N shared-"
                                "memory shards so aggregation and expert "
                                "scoring fan out over processes (default 1: "
                                "in-process, bitwise-identical results)")
    p_compare.add_argument("--shard-backend", default=None,
                           choices=("auto", "process", "serial", "remote"),
                           help="who executes per-shard work (default: the "
                                "profile's 'auto'); 'remote' sends batched "
                                "shard ops to shard-service daemons and "
                                "requires --shard-hosts")
    p_compare.add_argument("--shard-hosts", default=None, metavar="HOSTS|FILE",
                           help="shard-service daemons for the remote "
                                "backend: comma-separated host:port "
                                "addresses, or a TOML/JSON topology file "
                                "(implies --shard-backend remote)")
    p_compare.add_argument("--secure-agg", action="store_true",
                           help="mask every round under pairwise secure "
                                "aggregation: party updates stay sealed in "
                                "their bank rows (including async buffers) "
                                "until aggregation; sealing is exact, so "
                                "results match the unmasked run bit for bit "
                                "(legacy alias for --privacy masking=on)")
    p_compare.add_argument("--privacy", default=None, metavar="SPEC",
                           help="privacy plan spec, e.g. "
                                "'masking=on,threshold=3' (Shamir t-of-n "
                                "dropout recovery), 'threshold=majority', "
                                "'sealed_scoring=on', 'mask_seed=7'; bare "
                                "'on'/'off' toggles masking; see "
                                "repro.privacy.plan.PrivacyPlan")
    p_compare.add_argument("--jobs", type=int, default=1,
                           help="run the strategy x seed grid over N processes")
    p_compare.add_argument("--progress", action="store_true",
                           help="print per-window progress lines")
    p_compare.add_argument("--output-dir", default=None,
                           help="write per-run JSON results here")
    _add_federation_args(p_compare)
    _add_population_args(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_run = subparsers.add_parser(
        "run", help="execute a saved experiment plan or scenario file")
    p_run.add_argument("plan", nargs="?", default=None,
                       help="path to the plan file (JSON or TOML)")
    p_run.add_argument("--scenario-file", default=None, metavar="FILE",
                       help="compile and run a scenario document instead of "
                            "a plan (TOML or JSON; see docs/SCENARIOS.md)")
    p_run.add_argument("--jobs", type=int, default=1,
                       help="run the strategy x seed grid over N processes")
    p_run.add_argument("--progress", action="store_true",
                       help="print per-window progress lines")
    p_run.add_argument("--output-dir", default=None,
                       help="write per-run JSON results here")
    p_run.set_defaults(func=cmd_run)

    p_scenarios = subparsers.add_parser(
        "scenarios", help="validate or sample declarative scenario files")
    scenario_subs = p_scenarios.add_subparsers(dest="scenario_command",
                                               required=True)
    p_validate = scenario_subs.add_parser(
        "validate", help="check a scenario file and print its resolved shape")
    p_validate.add_argument("file", help="scenario file (TOML or JSON)")
    p_validate.set_defaults(func=cmd_scenarios_validate)
    p_sample = scenario_subs.add_parser(
        "sample", help="emit seeded documents from the scenario fuzzer")
    p_sample.add_argument("--seed", type=int, default=0,
                          help="generator seed (default 0, the CI corpus)")
    p_sample.add_argument("--start", type=int, default=0,
                          help="first corpus index to emit (default 0)")
    p_sample.add_argument("--count", type=int, default=1,
                          help="how many documents to emit (default 1)")
    p_sample.add_argument("--output-dir", default=None, metavar="DIR",
                          help="write one JSON file per document here "
                               "instead of printing to stdout")
    p_sample.set_defaults(func=cmd_scenarios_sample)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `python -m repro methods | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
