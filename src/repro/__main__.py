"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``compare``  — run strategies over a simulated dataset and print the paper-
  style Drop/Time/Max table (optionally saving JSON results per run);
* ``datasets`` — list the simulated datasets and their shift schedules;
* ``inspect``  — show a dataset spec's schedule window by window.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.data.registry import build_shift_schedule, dataset_names, get_dataset_spec
from repro.harness import run_comparison, render_drop_time_max_table
from repro.harness.comparison import (
    PAPER_METHODS,
    default_strategies,
    expert_distribution_table,
    render_expert_distribution,
)
from repro.utils.serialization import save_run_result


def cmd_datasets(_args) -> int:
    print(f"{'name':22s} {'paper dataset':16s} {'parties':>7s} {'windows':>7s} "
          f"{'windowing':>9s} {'label shift':>11s}")
    for name in dataset_names():
        spec = get_dataset_spec(name)
        print(f"{name:22s} {spec.paper_name:16s} {spec.num_parties:7d} "
              f"{spec.num_windows:7d} {spec.windowing:>9s} "
              f"{'yes' if spec.label_shift else 'no':>11s}")
    return 0


def cmd_inspect(args) -> int:
    spec = get_dataset_spec(args.dataset)
    schedule = build_shift_schedule(spec)
    print(f"{spec.name} ({spec.paper_name}): {spec.num_parties} parties, "
          f"{spec.num_classes} classes, {spec.windowing} windows, "
          f"model={spec.model_name}")
    for window in range(spec.num_windows):
        if window == 0:
            regime = "clean burn-in"
        else:
            corruption, severity = spec.window_regimes[window - 1]
            regime = f"{corruption} (severity {severity})"
        shifted = len(schedule.parties_shifted_at(window))
        regimes = len(schedule.distinct_regimes_up_to(window))
        print(f"  W{window}: {regime:28s} shifted parties: {shifted:3d}   "
              f"distinct regimes so far: {regimes}")
    return 0


def cmd_compare(args) -> int:
    methods = tuple(args.methods) if args.methods else PAPER_METHODS
    unknown = set(methods) - set(PAPER_METHODS)
    if unknown:
        print(f"unknown methods: {sorted(unknown)}; "
              f"available: {PAPER_METHODS}", file=sys.stderr)
        return 2
    strategies = default_strategies(methods)
    seeds = tuple(args.seeds)
    print(f"running {list(methods)} on {args.dataset} "
          f"(profile={args.profile}, seeds={seeds}) ...", flush=True)
    result = run_comparison(args.dataset, strategies, profile=args.profile,
                            seeds=seeds)
    print()
    print(render_drop_time_max_table(
        result, title=f"{args.dataset}: Drop / Recovery Time / Max Accuracy"))
    if "shiftex" in result.runs:
        print("\nShiftEx expert dynamics:")
        print(render_expert_distribution(expert_distribution_table(result)))
    if args.output_dir:
        out = Path(args.output_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, runs in result.runs.items():
            for run in runs:
                path = out / f"{args.dataset}_{name}_seed{run.seed}.json"
                save_run_result(path, run)
        print(f"\nper-run JSON written to {out}/")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ShiftEx reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_datasets = subparsers.add_parser(
        "datasets", help="list the simulated datasets")
    p_datasets.set_defaults(func=cmd_datasets)

    p_inspect = subparsers.add_parser(
        "inspect", help="show a dataset's shift schedule")
    p_inspect.add_argument("dataset", choices=dataset_names())
    p_inspect.set_defaults(func=cmd_inspect)

    p_compare = subparsers.add_parser(
        "compare", help="run strategies on a dataset and print the table")
    p_compare.add_argument("dataset", choices=dataset_names())
    p_compare.add_argument("--profile", default="ci",
                           choices=("ci", "small", "paper"))
    p_compare.add_argument("--methods", nargs="*", metavar="METHOD",
                           help=f"subset of {PAPER_METHODS} (default: all)")
    p_compare.add_argument("--seeds", nargs="*", type=int, default=[0])
    p_compare.add_argument("--output-dir", default=None,
                           help="write per-run JSON results here")
    p_compare.set_defaults(func=cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
