"""Bootstrap calibration of the detection thresholds delta_cov / delta_label.

Per the paper (Section 5): "The thresholds are derived during the bootstrap
phase from the null distributions of MMD and JSD scores.  delta_cov is set
via p-value estimation from bootstrapped client feature representations
assuming no shift, while delta_label is based on JSD statistics between
predicted and prior label distributions under stable conditions."

Concretely, the aggregator holds a reference embedding matrix and a set of
stable label priors; repeated resampling under the no-shift null yields
empirical score distributions whose ``1 - p`` quantile becomes the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.divergence import jsd
from repro.detection.mmd import class_conditional_mmd, median_heuristic_gamma, mmd
from repro.utils.validation import check_2d, normalize_histogram


def bootstrap_mmd_null(embeddings: np.ndarray, sample_size: int,
                       num_bootstrap: int, rng: np.random.Generator,
                       gamma: float | None = None) -> np.ndarray:
    """Null MMD scores between disjoint resamples of one embedding pool.

    Each draw splits a random subset of the pool into two halves of
    ``sample_size`` and records their MMD — the distribution of the detector
    statistic when *no* shift occurred.
    """
    embeddings = check_2d(embeddings, "embeddings")
    n = embeddings.shape[0]
    if sample_size < 2:
        raise ValueError("sample_size must be at least 2")
    if 2 * sample_size > n:
        raise ValueError(
            f"need at least 2*sample_size={2 * sample_size} reference embeddings; have {n}"
        )
    if num_bootstrap <= 0:
        raise ValueError("num_bootstrap must be positive")
    if gamma is None:
        gamma = median_heuristic_gamma(embeddings)
    scores = np.empty(num_bootstrap)
    for b in range(num_bootstrap):
        idx = rng.choice(n, size=2 * sample_size, replace=False)
        scores[b] = mmd(embeddings[idx[:sample_size]],
                        embeddings[idx[sample_size:]], gamma)
    return scores


def bootstrap_jsd_null(prior: np.ndarray, sample_size: int,
                       num_bootstrap: int, rng: np.random.Generator) -> np.ndarray:
    """Null JSD scores between multinomial resamples of one label prior.

    Models the sampling noise of per-window label histograms under a stable
    label distribution.
    """
    prior = normalize_histogram(np.asarray(prior, dtype=np.float64))
    if sample_size < 1:
        raise ValueError("sample_size must be positive")
    if num_bootstrap <= 0:
        raise ValueError("num_bootstrap must be positive")
    scores = np.empty(num_bootstrap)
    for b in range(num_bootstrap):
        h1 = normalize_histogram(rng.multinomial(sample_size, prior).astype(np.float64))
        h2 = normalize_histogram(rng.multinomial(sample_size, prior).astype(np.float64))
        scores[b] = jsd(h1, h2)
    return scores


def bootstrap_party_mmd_null(party_pools: list[tuple[np.ndarray, np.ndarray]],
                             num_bootstrap: int, rng: np.random.Generator,
                             gamma: float | None = None) -> np.ndarray:
    """Null class-conditional MMD from per-party labelled embedding pools.

    This is the paper's "p-value estimation from bootstrapped client feature
    representations assuming no shift": for each draw, pick a party and
    compare two full-size with-replacement resamples of its own clean-window
    embeddings — the distribution of Algorithm 1's covariate statistic when
    the party's data did *not* shift (including its label-composition
    sampling noise).
    """
    if not party_pools:
        raise ValueError("need at least one party pool")
    for embeddings, labels in party_pools:
        embeddings = check_2d(embeddings, "party embeddings")
        if np.asarray(labels).shape != (embeddings.shape[0],):
            raise ValueError("labels must align with embedding rows")
    if num_bootstrap <= 0:
        raise ValueError("num_bootstrap must be positive")
    if gamma is None:
        gamma = median_heuristic_gamma(np.vstack([e for e, _ in party_pools]))
    scores = np.empty(num_bootstrap)
    for b in range(num_bootstrap):
        embeddings, labels = party_pools[int(rng.integers(len(party_pools)))]
        n = embeddings.shape[0]
        i1 = rng.choice(n, size=n, replace=True)
        i2 = rng.choice(n, size=n, replace=True)
        scores[b] = class_conditional_mmd(
            embeddings[i1], np.asarray(labels)[i1],
            embeddings[i2], np.asarray(labels)[i2], gamma,
        )
    return scores


def threshold_from_null(null_scores: np.ndarray, p_value: float = 0.05) -> float:
    """``1 - p_value`` quantile of a null score sample."""
    null_scores = np.asarray(null_scores, dtype=np.float64)
    if null_scores.ndim != 1 or null_scores.size == 0:
        raise ValueError("null_scores must be a non-empty 1-D array")
    if not 0.0 < p_value < 1.0:
        raise ValueError("p_value must be in (0, 1)")
    return float(np.quantile(null_scores, 1.0 - p_value))


@dataclass(frozen=True)
class CalibratedThresholds:
    """Calibrated detector thresholds plus kernel bandwidth.

    ``epsilon_base`` is the null quantile of *unconditional* MMD at
    reuse-matching sample sizes — the reference scale for the latent-memory
    threshold epsilon (Section 5.2.2), which the server scales by its
    ``epsilon_scale``.
    """

    delta_cov: float
    delta_label: float
    gamma: float
    p_value: float
    epsilon_base: float = 0.0


class ThresholdCalibrator:
    """Bundles MMD and JSD null calibration for the bootstrap phase."""

    def __init__(self, num_bootstrap: int = 200, p_value: float = 0.05) -> None:
        if num_bootstrap <= 0:
            raise ValueError("num_bootstrap must be positive")
        if not 0.0 < p_value < 1.0:
            raise ValueError("p_value must be in (0, 1)")
        self.num_bootstrap = num_bootstrap
        self.p_value = p_value

    def calibrate(self, party_pools: list[tuple[np.ndarray, np.ndarray]],
                  stable_priors: np.ndarray, window_sample_size: int,
                  rng: np.random.Generator,
                  reuse_sample_size: int = 64) -> CalibratedThresholds:
        """Derive detection thresholds from the clean bootstrap window.

        Parameters
        ----------
        party_pools : per-party ``(embeddings, labels)`` of the burn-in
            window — the "bootstrapped client feature representations".
        stable_priors : (n_parties, c) label priors observed under stable
            conditions.
        window_sample_size : typical per-window label-histogram sample count
            (controls JSD sampling noise).
        reuse_sample_size : sample size for the epsilon_base null (typically
            the latent-memory capacity).
        """
        if not party_pools:
            raise ValueError("party_pools must not be empty")
        pooled = np.vstack([check_2d(e, "embeddings") for e, _ in party_pools])
        gamma = median_heuristic_gamma(pooled)
        mmd_null = bootstrap_party_mmd_null(party_pools, self.num_bootstrap, rng, gamma)
        priors = np.atleast_2d(np.asarray(stable_priors, dtype=np.float64))
        per_prior = max(1, self.num_bootstrap // priors.shape[0])
        jsd_null = np.concatenate([
            bootstrap_jsd_null(prior, window_sample_size, per_prior, rng)
            for prior in priors
        ])
        reuse_m = min(reuse_sample_size, pooled.shape[0] // 2)
        if reuse_m >= 2:
            reuse_null = bootstrap_mmd_null(
                pooled, reuse_m, self.num_bootstrap, rng, gamma
            )
            epsilon_base = threshold_from_null(reuse_null, self.p_value)
        else:
            epsilon_base = threshold_from_null(mmd_null, self.p_value)
        return CalibratedThresholds(
            delta_cov=threshold_from_null(mmd_null, self.p_value),
            delta_label=threshold_from_null(jsd_null, self.p_value),
            gamma=gamma,
            p_value=self.p_value,
            epsilon_base=epsilon_base,
        )
