"""Discrete divergences: KL and Jensen–Shannon.

JSD is the label-shift statistic of the paper (Section 4.3): symmetric,
bounded by ``log 2`` (natural log), and finite even for distributions with
disjoint support.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_probability_vector

_EPS = 1e-12


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Kullback–Leibler divergence ``D_KL(P || Q)`` in nats.

    Infinite when P puts mass where Q has none; terms with ``p_i == 0``
    contribute zero.
    """
    p = check_probability_vector(p, "p")
    q = check_probability_vector(q, "q")
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    support = p > 0
    if np.any(q[support] <= 0):
        return float("inf")
    return float(np.sum(p[support] * np.log(p[support] / q[support])))


def jsd(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen–Shannon divergence in nats; in ``[0, log 2]``.

    ``JSD(P || Q) = 0.5 * D_KL(P || M) + 0.5 * D_KL(Q || M)`` with
    ``M = (P + Q) / 2``.
    """
    p = check_probability_vector(p, "p")
    q = check_probability_vector(q, "q")
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    m = 0.5 * (p + q)
    # M covers the support of both P and Q, so both KL terms are finite.
    value = 0.0
    for dist in (p, q):
        support = dist > 0
        value += 0.5 * float(
            np.sum(dist[support] * np.log(dist[support] / (m[support] + _EPS)))
        )
    return float(np.clip(value, 0.0, np.log(2.0)))


def jsd_max() -> float:
    """Upper bound of JSD in nats (attained by disjoint-support pairs)."""
    return float(np.log(2.0))
